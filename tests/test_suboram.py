"""Tests for the subORAM batch-access engine (Figure 19)."""

import random

import pytest

from repro.errors import DuplicateRequestError, NotInitializedError
from repro.suboram.suboram import SubOram
from repro.types import BatchEntry, OpType


def make_suboram(num_objects=50, value_size=4):
    so = SubOram(suboram_id=0, value_size=value_size, security_parameter=16)
    so.initialize({k: bytes([k % 256]) * value_size for k in range(num_objects)})
    return so


def read_entry(key, **kw):
    return BatchEntry(op=OpType.READ, key=key, is_dummy=False, **kw)


def write_entry(key, value, **kw):
    return BatchEntry(op=OpType.WRITE, key=key, value=value, is_dummy=False, **kw)


def dummy_entry(index):
    return BatchEntry(op=OpType.READ, key=-(1000 + index), is_dummy=True)


class TestReads:
    def test_single_read(self):
        so = make_suboram()
        [resp] = so.batch_access([read_entry(7)])
        assert resp.value == bytes([7]) * 4

    def test_batch_of_reads(self):
        so = make_suboram()
        responses = so.batch_access([read_entry(k) for k in (3, 1, 4, 15, 9)])
        values = {r.key: r.value for r in responses}
        assert values == {k: bytes([k]) * 4 for k in (3, 1, 4, 15, 9)}

    def test_unknown_key_returns_none(self):
        so = make_suboram()
        [resp] = so.batch_access([read_entry(9999)])
        assert resp.value is None

    def test_dummies_come_back(self):
        """Responses include dummy entries (the LB filters them)."""
        so = make_suboram()
        responses = so.batch_access([read_entry(1), dummy_entry(0), dummy_entry(1)])
        assert len(responses) == 3
        assert sum(1 for r in responses if r.is_dummy) == 2


class TestWrites:
    def test_write_returns_prior_value(self):
        so = make_suboram()
        [resp] = so.batch_access([write_entry(5, b"aaaa")])
        assert resp.value == bytes([5]) * 4
        assert so.peek(5) == b"aaaa"

    def test_write_then_read_across_batches(self):
        so = make_suboram()
        so.batch_access([write_entry(2, b"zzzz")])
        [resp] = so.batch_access([read_entry(2)])
        assert resp.value == b"zzzz"

    def test_read_in_same_batch_sees_prior_value(self):
        """All responses reflect batch-start state (reads-before-writes)."""
        so = make_suboram()
        responses = so.batch_access(
            [write_entry(2, b"zzzz"), read_entry(3)]
        )
        by_key = {r.key: r.value for r in responses}
        assert by_key[2] == bytes([2]) * 4  # prior value
        assert so.peek(2) == b"zzzz"

    def test_write_to_unknown_key_is_noop(self):
        so = make_suboram()
        [resp] = so.batch_access([write_entry(9999, b"aaaa")])
        assert resp.value is None
        assert so.peek(9999) is None

    def test_denied_write_not_applied(self):
        """§D: permitted=0 writes never modify the store."""
        so = make_suboram()
        entry = write_entry(4, b"xxxx")
        entry.permitted = 0
        so.batch_access([entry])
        assert so.peek(4) == bytes([4]) * 4

    def test_untouched_objects_unchanged(self, rng):
        so = make_suboram()
        so.batch_access([write_entry(10, b"qqqq"), read_entry(20)])
        for k in range(50):
            expected = b"qqqq" if k == 10 else bytes([k % 256]) * 4
            assert so.peek(k) == expected


class TestProtocolInvariants:
    def test_duplicate_keys_rejected(self):
        so = make_suboram()
        with pytest.raises(DuplicateRequestError):
            so.batch_access([read_entry(1), write_entry(1, b"aaaa")])

    def test_empty_batch(self):
        so = make_suboram()
        assert so.batch_access([]) == []

    def test_uninitialized_rejected(self):
        so = SubOram(suboram_id=0, value_size=4)
        with pytest.raises(NotInitializedError):
            so.batch_access([read_entry(1)])

    def test_every_object_reencrypted_even_without_writes(self):
        """The scan rewrites every slot so write sets are invisible."""
        so = make_suboram(num_objects=5)
        before = [so.store.host_ciphertext(i) for i in range(5)]
        so.batch_access([read_entry(0)])
        after = [so.store.host_ciphertext(i) for i in range(5)]
        assert all(b != a for b, a in zip(before, after))

    def test_large_random_batch_matches_model(self, rng):
        so = make_suboram(num_objects=40)
        model = {k: bytes([k % 256]) * 4 for k in range(40)}
        for _ in range(10):
            keys = rng.sample(range(40), rng.randrange(1, 15))
            batch, writes = [], {}
            for k in keys:
                if rng.random() < 0.5:
                    v = bytes([rng.randrange(256)]) * 4
                    batch.append(write_entry(k, v))
                    writes[k] = v
                else:
                    batch.append(read_entry(k))
            responses = so.batch_access(batch)
            for r in responses:
                assert r.value == model[r.key]
            model.update(writes)
