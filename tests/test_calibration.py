"""Tests for cost-model calibration fitting."""

import pytest

from repro.analysis.calibration import (
    _comparators,
    calibrate_profile,
    fit_scan_constants,
    fit_sort_constant,
    measure_python_sort,
)
from repro.errors import ConfigurationError
from repro.sim.machines import DEFAULT_PROFILE


class TestSortFit:
    def test_recovers_exact_constant(self):
        c = 42e-9
        samples = [(n, c * _comparators(n)) for n in (128, 512, 2048)]
        assert fit_sort_constant(samples) == pytest.approx(c)

    def test_robust_to_noise(self):
        c = 100e-9
        samples = [
            (n, c * _comparators(n) * noise)
            for n, noise in ((128, 1.05), (512, 0.95), (2048, 1.02))
        ]
        assert fit_sort_constant(samples) == pytest.approx(c, rel=0.1)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            fit_sort_constant([])


class TestScanFit:
    def test_recovers_exact_constants(self):
        a, b = 300e-9, 2e-9
        samples = [
            (n, size, n * (a + size * b))
            for n, size in ((10_000, 64), (10_000, 512), (50_000, 160))
        ]
        fit_a, fit_b = fit_scan_constants(samples)
        assert fit_a == pytest.approx(a, rel=1e-6)
        assert fit_b == pytest.approx(b, rel=1e-6)

    def test_rejects_degenerate_sizes(self):
        samples = [(10, 64, 1.0), (20, 64, 2.0)]  # one size only
        with pytest.raises(ConfigurationError):
            fit_scan_constants(samples)

    def test_rejects_too_few(self):
        with pytest.raises(ConfigurationError):
            fit_scan_constants([(10, 64, 1.0)])


class TestCalibrateProfile:
    def test_python_profile_slower_than_paper(self):
        """The interpreter's sort constant exceeds the calibrated C++/SGX
        one — why figure benches use the model, not wall clock."""
        profile = calibrate_profile(sort_sizes=(128, 256, 512))
        assert profile.sort_compare_s > DEFAULT_PROFILE.sort_compare_s
        # Everything else carries over.
        assert profile.scan_object_s == DEFAULT_PROFILE.scan_object_s

    def test_custom_measurement_source(self):
        def fake_measure(sizes):
            return [(n, 5e-9 * _comparators(n)) for n in sizes]

        profile = calibrate_profile(measure_sort=fake_measure)
        assert profile.sort_compare_s == pytest.approx(5e-9)

    def test_measure_python_sort_shape(self):
        samples = measure_python_sort((64, 128))
        assert [n for n, _ in samples] == [64, 128]
        assert all(seconds > 0 for _, seconds in samples)
