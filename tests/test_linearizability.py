"""Tests for the linearizability checkers and Snoopy's guarantees (§C)."""

import random

import pytest

from repro.core.client import Client
from repro.core.config import SnoopyConfig
from repro.core.linearizability import (
    History,
    LinearizabilityViolation,
    Operation,
    check_linearizable,
    check_snoopy_history,
    snoopy_linearization_order,
)
from repro.core.snoopy import Snoopy
from repro.types import OpType


def op(kind, key, result=None, written=None, start=0, end=0, lb=0, arrival=0,
       client=0, seq=0):
    return Operation(
        client_id=client,
        seq=seq,
        op=kind,
        key=key,
        written=written,
        result=result,
        start_epoch=start,
        end_epoch=end,
        load_balancer=lb,
        arrival=arrival,
    )


class TestOrder:
    def test_orders_by_epoch_then_balancer(self):
        ops = [
            op(OpType.READ, 1, end=2, lb=0),
            op(OpType.READ, 1, end=1, lb=1),
            op(OpType.READ, 1, end=1, lb=0),
        ]
        ordered = snoopy_linearization_order(ops)
        assert [(o.end_epoch, o.load_balancer) for o in ordered] == [
            (1, 0),
            (1, 1),
            (2, 0),
        ]

    def test_reads_before_writes_within_group(self):
        ops = [
            op(OpType.WRITE, 1, end=1, arrival=0),
            op(OpType.READ, 1, end=1, arrival=1),
        ]
        ordered = snoopy_linearization_order(ops)
        assert ordered[0].op is OpType.READ


class TestStrictChecker:
    def test_accepts_simple_history(self):
        history = History(
            initial={1: b"a"},
            operations=[
                op(OpType.READ, 1, result=b"a", start=0, end=1),
                op(OpType.WRITE, 1, written=b"b", result=b"a", start=1, end=2),
                op(OpType.READ, 1, result=b"b", start=2, end=3),
            ],
        )
        check_snoopy_history(history)

    def test_rejects_stale_read(self):
        history = History(
            initial={1: b"a"},
            operations=[
                op(OpType.WRITE, 1, written=b"b", result=b"a", start=0, end=1),
                op(OpType.READ, 1, result=b"a", start=1, end=2),  # stale!
            ],
        )
        with pytest.raises(LinearizabilityViolation):
            check_snoopy_history(history)

    def test_rejects_wrong_write_prior(self):
        history = History(
            initial={1: b"a"},
            operations=[
                op(OpType.WRITE, 1, written=b"b", result=b"WRONG", start=0, end=1),
            ],
        )
        with pytest.raises(LinearizabilityViolation):
            check_snoopy_history(history)

    def test_same_epoch_reads_see_epoch_start(self):
        history = History(
            initial={1: b"a"},
            operations=[
                op(OpType.WRITE, 1, written=b"b", result=b"a", end=1, arrival=0),
                op(OpType.READ, 1, result=b"a", end=1, arrival=1),
            ],
        )
        check_snoopy_history(history)

    def test_cross_balancer_ordering_within_epoch(self):
        """LB 1's batch sees LB 0's writes in the same epoch."""
        history = History(
            initial={1: b"a"},
            operations=[
                op(OpType.WRITE, 1, written=b"b", result=b"a", end=1, lb=0),
                op(OpType.READ, 1, result=b"b", end=1, lb=1),
            ],
        )
        check_snoopy_history(history)


class TestExhaustiveChecker:
    def test_accepts_concurrent_reordering(self):
        # Two concurrent ops: read may see either side of the write.
        history = History(
            initial={1: b"a"},
            operations=[
                op(OpType.WRITE, 1, written=b"b", result=b"a", start=0, end=2),
                op(OpType.READ, 1, result=b"b", start=0, end=2),
            ],
        )
        assert check_linearizable(history)

    def test_rejects_impossible(self):
        history = History(
            initial={1: b"a"},
            operations=[
                op(OpType.READ, 1, result=b"never-written", start=0, end=1),
            ],
        )
        assert not check_linearizable(history)

    def test_respects_real_time(self):
        history = History(
            initial={1: b"a"},
            operations=[
                op(OpType.WRITE, 1, written=b"b", result=b"a", start=0, end=1),
                op(OpType.READ, 1, result=b"a", start=2, end=3),  # too late
            ],
        )
        assert not check_linearizable(history)

    def test_size_guard(self):
        history = History(initial={}, operations=[op(OpType.READ, 1)] * 13)
        with pytest.raises(ValueError):
            check_linearizable(history)


class TestSnoopyHistories:
    @pytest.mark.parametrize("balancers,suborams", [(1, 2), (2, 2), (3, 3)])
    def test_random_concurrent_history_linearizable(self, balancers, suborams):
        rng = random.Random(balancers * 7 + suborams)
        config = SnoopyConfig(
            num_load_balancers=balancers,
            num_suborams=suborams,
            value_size=4,
            security_parameter=16,
        )
        store = Snoopy(config, rng=random.Random(3))
        initial = {k: bytes([k]) * 4 for k in range(15)}
        store.initialize(dict(initial))
        clients = [Client(store, client_id=i) for i in range(4)]

        for _ in range(12):
            for client in clients:
                for _ in range(rng.randrange(3)):
                    key = rng.randrange(15)
                    if rng.random() < 0.5:
                        client.submit_write(key, bytes([rng.randrange(256)]) * 4)
                    else:
                        client.submit_read(key)
            responses = store.run_epoch()
            for client in clients:
                client.complete(responses)

        operations = [o for c in clients for o in c.history]
        assert operations, "history should be non-empty"
        check_snoopy_history(History(initial=initial, operations=operations))

    def test_small_history_cross_checked_exhaustively(self):
        """The strict checker agrees with the exhaustive oracle."""
        rng = random.Random(11)
        config = SnoopyConfig(
            num_load_balancers=2, num_suborams=2, value_size=4,
            security_parameter=16,
        )
        store = Snoopy(config, rng=random.Random(5))
        initial = {k: bytes([k]) * 4 for k in range(5)}
        store.initialize(dict(initial))
        client = Client(store, client_id=0)
        for _ in range(4):
            for _ in range(2):
                key = rng.randrange(5)
                if rng.random() < 0.5:
                    client.submit_write(key, bytes([rng.randrange(256)]) * 4)
                else:
                    client.submit_read(key)
            client.complete(store.run_epoch())

        history = History(initial=initial, operations=client.history)
        check_snoopy_history(history)
        assert check_linearizable(history)
