"""Tests for the wire serialization format."""

import pytest

from repro.core.wire import (
    WireError,
    decode_batch,
    decode_entry,
    encode_batch,
    encode_entry,
)
from repro.types import BatchEntry, OpType


def entries_equal(a: BatchEntry, b: BatchEntry) -> bool:
    return (
        a.op == b.op
        and a.key == b.key
        and a.value == b.value
        and a.suboram == b.suboram
        and a.tag == b.tag
        and a.client_id == b.client_id
        and a.seq == b.seq
        and a.is_dummy == b.is_dummy
        and bool(a.permitted) == bool(b.permitted)
    )


class TestEntryRoundtrip:
    def test_read_entry(self):
        entry = BatchEntry(op=OpType.READ, key=42, is_dummy=False, seq=7)
        decoded, offset = decode_entry(encode_entry(entry))
        assert entries_equal(entry, decoded)

    def test_write_entry_with_value(self):
        entry = BatchEntry(
            op=OpType.WRITE, key=1, value=b"payload", is_dummy=False,
            client_id=9, seq=3, suboram=2, tag=5,
        )
        decoded, _ = decode_entry(encode_entry(entry))
        assert entries_equal(entry, decoded)

    def test_dummy_entry_negative_key(self):
        entry = BatchEntry(op=OpType.READ, key=-(2**61 + 17), is_dummy=True)
        decoded, _ = decode_entry(encode_entry(entry))
        assert entries_equal(entry, decoded)

    def test_denied_entry(self):
        entry = BatchEntry(op=OpType.WRITE, key=3, value=b"x", is_dummy=False,
                           permitted=0)
        decoded, _ = decode_entry(encode_entry(entry))
        assert decoded.permitted == 0

    def test_none_vs_empty_value_distinguished(self):
        none_entry = BatchEntry(op=OpType.READ, key=1, value=None, is_dummy=False)
        empty_entry = BatchEntry(op=OpType.READ, key=1, value=b"", is_dummy=False)
        assert decode_entry(encode_entry(none_entry))[0].value is None
        assert decode_entry(encode_entry(empty_entry))[0].value == b""

    def test_oversized_key_rejected(self):
        entry = BatchEntry(op=OpType.READ, key=2**70, is_dummy=False)
        with pytest.raises(WireError):
            encode_entry(entry)


class TestBatchRoundtrip:
    def test_batch(self):
        batch = [
            BatchEntry(op=OpType.READ, key=k, is_dummy=False, seq=k)
            for k in range(10)
        ]
        decoded = decode_batch(encode_batch(batch))
        assert len(decoded) == 10
        assert all(entries_equal(a, b) for a, b in zip(batch, decoded))

    def test_empty_batch(self):
        assert decode_batch(encode_batch([])) == []

    def test_fixed_size_for_fixed_shape(self):
        """Wire size depends only on batch size and value sizes (public)."""
        def batch_bytes(keys):
            return len(
                encode_batch(
                    [
                        BatchEntry(op=OpType.READ, key=k, is_dummy=False)
                        for k in keys
                    ]
                )
            )

        assert batch_bytes([1, 2, 3]) == batch_bytes([99, -5, 2**40])

    def test_truncated_rejected(self):
        data = encode_batch(
            [BatchEntry(op=OpType.READ, key=1, is_dummy=False)]
        )
        with pytest.raises(WireError):
            decode_batch(data[:-1])

    def test_trailing_garbage_rejected(self):
        data = encode_batch(
            [BatchEntry(op=OpType.READ, key=1, is_dummy=False)]
        )
        with pytest.raises(WireError):
            decode_batch(data + b"\x00")

    def test_bad_op_rejected(self):
        data = bytearray(
            encode_batch([BatchEntry(op=OpType.READ, key=1, is_dummy=False)])
        )
        data[4] = 0xFF  # first entry's op byte
        with pytest.raises(WireError):
            decode_batch(bytes(data))


class TestFuzz:
    def test_random_bytes_never_crash_unexpectedly(self):
        """Arbitrary bytes decode cleanly or raise WireError — nothing else."""
        import random as _random

        rng = _random.Random(0)
        for _ in range(300):
            blob = bytes(rng.getrandbits(8) for _ in range(rng.randrange(0, 200)))
            try:
                decode_batch(blob)
            except WireError:
                pass

    def test_truncations_of_valid_batch(self):
        batch = [
            BatchEntry(op=OpType.WRITE, key=k, value=b"xy", is_dummy=False)
            for k in range(5)
        ]
        data = encode_batch(batch)
        for cut in range(len(data)):
            try:
                decoded = decode_batch(data[:cut])
                # Only a shorter valid prefix could decode -- but the
                # count header makes that impossible except cut == len.
                assert False, f"truncation at {cut} decoded: {decoded}"
            except WireError:
                pass


class TestPropertyRoundtrip:
    def test_arbitrary_entries_roundtrip(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        entries_strategy = st.lists(
            st.builds(
                BatchEntry,
                op=st.sampled_from([OpType.READ, OpType.WRITE]),
                key=st.integers(min_value=-(2**62), max_value=2**62),
                value=st.one_of(st.none(), st.binary(max_size=64)),
                suboram=st.integers(min_value=0, max_value=2**31 - 1),
                tag=st.integers(min_value=0, max_value=2**63 - 1),
                client_id=st.integers(min_value=0, max_value=2**63 - 1),
                seq=st.integers(min_value=0, max_value=2**63 - 1),
                is_dummy=st.booleans(),
                permitted=st.integers(min_value=0, max_value=1),
            ),
            max_size=12,
        )

        @given(entries_strategy)
        @settings(max_examples=60, deadline=None)
        def roundtrip(batch):
            decoded = decode_batch(encode_batch(batch))
            assert len(decoded) == len(batch)
            for a, b in zip(batch, decoded):
                assert entries_equal(a, b)

        roundtrip()
