"""Tests for the wire serialization format."""

import pytest

from repro.core.wire import (
    FRAME_HEADER_SIZE,
    HELLO_SIZE,
    WIRE_VERSION,
    FrameKind,
    Role,
    VersionMismatchError,
    WireError,
    decode_batch,
    decode_entry,
    decode_frame_header,
    decode_hello,
    decode_request,
    decode_response,
    decode_txn,
    encode_batch,
    encode_entry,
    encode_frame,
    encode_hello,
    encode_request,
    encode_response,
    encode_txn,
    request_size,
    response_size,
)
from repro.types import BatchEntry, OpType, Request, Response


def entries_equal(a: BatchEntry, b: BatchEntry) -> bool:
    return (
        a.op == b.op
        and a.key == b.key
        and a.value == b.value
        and a.suboram == b.suboram
        and a.tag == b.tag
        and a.client_id == b.client_id
        and a.seq == b.seq
        and a.is_dummy == b.is_dummy
        and bool(a.permitted) == bool(b.permitted)
    )


class TestEntryRoundtrip:
    def test_read_entry(self):
        entry = BatchEntry(op=OpType.READ, key=42, is_dummy=False, seq=7)
        decoded, offset = decode_entry(encode_entry(entry))
        assert entries_equal(entry, decoded)

    def test_write_entry_with_value(self):
        entry = BatchEntry(
            op=OpType.WRITE, key=1, value=b"payload", is_dummy=False,
            client_id=9, seq=3, suboram=2, tag=5,
        )
        decoded, _ = decode_entry(encode_entry(entry))
        assert entries_equal(entry, decoded)

    def test_dummy_entry_negative_key(self):
        entry = BatchEntry(op=OpType.READ, key=-(2**61 + 17), is_dummy=True)
        decoded, _ = decode_entry(encode_entry(entry))
        assert entries_equal(entry, decoded)

    def test_denied_entry(self):
        entry = BatchEntry(op=OpType.WRITE, key=3, value=b"x", is_dummy=False,
                           permitted=0)
        decoded, _ = decode_entry(encode_entry(entry))
        assert decoded.permitted == 0

    def test_none_vs_empty_value_distinguished(self):
        none_entry = BatchEntry(op=OpType.READ, key=1, value=None, is_dummy=False)
        empty_entry = BatchEntry(op=OpType.READ, key=1, value=b"", is_dummy=False)
        assert decode_entry(encode_entry(none_entry))[0].value is None
        assert decode_entry(encode_entry(empty_entry))[0].value == b""

    def test_oversized_key_rejected(self):
        entry = BatchEntry(op=OpType.READ, key=2**70, is_dummy=False)
        with pytest.raises(WireError):
            encode_entry(entry)


class TestBatchRoundtrip:
    def test_batch(self):
        batch = [
            BatchEntry(op=OpType.READ, key=k, is_dummy=False, seq=k)
            for k in range(10)
        ]
        decoded = decode_batch(encode_batch(batch))
        assert len(decoded) == 10
        assert all(entries_equal(a, b) for a, b in zip(batch, decoded))

    def test_empty_batch(self):
        assert decode_batch(encode_batch([])) == []

    def test_fixed_size_for_fixed_shape(self):
        """Wire size depends only on batch size and value sizes (public)."""
        def batch_bytes(keys):
            return len(
                encode_batch(
                    [
                        BatchEntry(op=OpType.READ, key=k, is_dummy=False)
                        for k in keys
                    ]
                )
            )

        assert batch_bytes([1, 2, 3]) == batch_bytes([99, -5, 2**40])

    def test_truncated_rejected(self):
        data = encode_batch(
            [BatchEntry(op=OpType.READ, key=1, is_dummy=False)]
        )
        with pytest.raises(WireError):
            decode_batch(data[:-1])

    def test_trailing_garbage_rejected(self):
        data = encode_batch(
            [BatchEntry(op=OpType.READ, key=1, is_dummy=False)]
        )
        with pytest.raises(WireError):
            decode_batch(data + b"\x00")

    def test_bad_op_rejected(self):
        data = bytearray(
            encode_batch([BatchEntry(op=OpType.READ, key=1, is_dummy=False)])
        )
        data[4] = 0xFF  # first entry's op byte
        with pytest.raises(WireError):
            decode_batch(bytes(data))


class TestFuzz:
    def test_random_bytes_never_crash_unexpectedly(self):
        """Arbitrary bytes decode cleanly or raise WireError — nothing else."""
        import random as _random

        rng = _random.Random(0)
        for _ in range(300):
            blob = bytes(rng.getrandbits(8) for _ in range(rng.randrange(0, 200)))
            try:
                decode_batch(blob)
            except WireError:
                pass

    def test_truncations_of_valid_batch(self):
        batch = [
            BatchEntry(op=OpType.WRITE, key=k, value=b"xy", is_dummy=False)
            for k in range(5)
        ]
        data = encode_batch(batch)
        for cut in range(len(data)):
            try:
                decoded = decode_batch(data[:cut])
                # Only a shorter valid prefix could decode -- but the
                # count header makes that impossible except cut == len.
                assert False, f"truncation at {cut} decoded: {decoded}"
            except WireError:
                pass


class TestHello:
    def test_roundtrip(self):
        version, role, flags = decode_hello(encode_hello(Role.CLIENT))
        assert version == WIRE_VERSION
        assert role == Role.CLIENT
        assert flags == 0

    def test_attested_flag_roundtrip(self):
        from repro.core.wire import HELLO_FLAG_ATTESTED

        hello = encode_hello(Role.SERVER, flags=HELLO_FLAG_ATTESTED)
        assert len(hello) == HELLO_SIZE
        _version, _role, flags = decode_hello(hello)
        assert flags & HELLO_FLAG_ATTESTED

    def test_fixed_size_for_every_role(self):
        sizes = {
            len(encode_hello(role))
            for role in (Role.CLIENT, Role.SERVER, Role.BALANCER, Role.WORKER)
        }
        assert sizes == {HELLO_SIZE}

    def test_version_mismatch_rejected(self):
        frame = encode_hello(Role.CLIENT, version=WIRE_VERSION + 1)
        with pytest.raises(VersionMismatchError) as excinfo:
            decode_hello(frame)
        assert excinfo.value.offered == WIRE_VERSION + 1
        assert WIRE_VERSION in excinfo.value.supported

    def test_bad_magic_rejected_before_version(self):
        frame = bytearray(encode_hello(Role.CLIENT, version=WIRE_VERSION + 1))
        frame[0] = 0x00
        # Garbage connections fail as malformed, never as version skew.
        with pytest.raises(WireError) as excinfo:
            decode_hello(bytes(frame))
        assert not isinstance(excinfo.value, VersionMismatchError)

    def test_truncated_rejected(self):
        with pytest.raises(WireError):
            decode_hello(encode_hello(Role.SERVER)[:-1])

    def test_unknown_role_rejected(self):
        with pytest.raises(WireError):
            encode_hello(99)
        frame = bytearray(encode_hello(Role.CLIENT))
        frame[5] = 99
        with pytest.raises(WireError):
            decode_hello(bytes(frame))


class TestFrames:
    def test_header_roundtrip(self):
        frame = encode_frame(FrameKind.REQUEST, b"abc")
        kind, length = decode_frame_header(frame)
        assert (kind, length) == (FrameKind.REQUEST, 3)
        assert frame[FRAME_HEADER_SIZE:] == b"abc"

    def test_empty_payload(self):
        kind, length = decode_frame_header(encode_frame(FrameKind.PING))
        assert (kind, length) == (FrameKind.PING, 0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(WireError):
            encode_frame(0)
        with pytest.raises(WireError):
            decode_frame_header(b"\x00\x00\x00\x00\x00")

    def test_oversized_length_rejected(self):
        import struct as _struct

        header = _struct.pack(">BI", FrameKind.BATCH, (1 << 30) + 1)
        with pytest.raises(WireError):
            decode_frame_header(header)

    def test_txn_payload_roundtrip(self):
        assert decode_txn(encode_txn(7, 8)) == (7, 8)
        with pytest.raises(WireError):
            decode_txn(b"\x00" * 3)


class TestRequestResponse:
    def test_request_roundtrip(self):
        request = Request(OpType.WRITE, 42, b"abcd", client_id=9, seq=3)
        data = encode_request(17, request, value_size=8, load_balancer=1)
        req_id, decoded, balancer = decode_request(data, value_size=8)
        assert req_id == 17
        assert balancer == 1
        assert decoded == request

    def test_read_and_write_same_length(self):
        """Request wire length depends only on the public value size."""
        read = encode_request(1, Request(OpType.READ, 5), value_size=16)
        write = encode_request(
            2, Request(OpType.WRITE, 900, b"x" * 16), value_size=16
        )
        assert len(read) == len(write) == request_size(16)

    def test_random_balancer_encodes_as_none(self):
        data = encode_request(3, Request(OpType.READ, 1), value_size=4)
        _, _, balancer = decode_request(data, value_size=4)
        assert balancer is None

    def test_oversized_value_rejected(self):
        with pytest.raises(WireError):
            encode_request(
                1, Request(OpType.WRITE, 1, b"toolong"), value_size=4
            )

    def test_wrong_size_rejected(self):
        data = encode_request(1, Request(OpType.READ, 1), value_size=4)
        with pytest.raises(WireError):
            decode_request(data[:-1], value_size=4)
        with pytest.raises(WireError):
            decode_request(data, value_size=8)

    def test_response_roundtrip(self):
        response = Response(key=5, value=b"vv", client_id=2, seq=7, ok=True)
        data = encode_response(
            21, response, value_size=8, load_balancer=1, arrival=4, epoch=9
        )
        req_id, decoded, placement, delivery_seq = decode_response(
            data, value_size=8
        )
        assert req_id == 21
        assert decoded == response
        assert placement == (1, 4, 9)
        assert delivery_seq == 0

    def test_response_delivery_seq_roundtrip(self):
        response = Response(key=5, value=b"vv", client_id=2, seq=7, ok=True)
        data = encode_response(
            21, response, value_size=8, load_balancer=1, arrival=4,
            epoch=9, delivery_seq=1234,
        )
        assert len(data) == response_size(8)  # seq never changes the size
        _, _, _, delivery_seq = decode_response(data, value_size=8)
        assert delivery_seq == 1234

    def test_response_none_value_distinguished(self):
        none_resp = Response(key=1, value=None)
        data = encode_response(
            1, none_resp, value_size=4, load_balancer=0, arrival=0, epoch=1
        )
        _, decoded, _, _ = decode_response(data, value_size=4)
        assert decoded.value is None
        assert len(data) == response_size(4)

    def test_fixed_size_for_fixed_value_size(self):
        sizes = {
            len(
                encode_response(
                    i,
                    Response(key=i, value=bytes([i]) * i, ok=bool(i % 2)),
                    value_size=8,
                    load_balancer=i,
                    arrival=i,
                    epoch=i,
                )
            )
            for i in range(1, 8)
        }
        assert sizes == {response_size(8)}


class TestPropertyRoundtrip:
    def test_arbitrary_entries_roundtrip(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        entries_strategy = st.lists(
            st.builds(
                BatchEntry,
                op=st.sampled_from([OpType.READ, OpType.WRITE]),
                key=st.integers(min_value=-(2**62), max_value=2**62),
                value=st.one_of(st.none(), st.binary(max_size=64)),
                suboram=st.integers(min_value=0, max_value=2**31 - 1),
                tag=st.integers(min_value=0, max_value=2**63 - 1),
                client_id=st.integers(min_value=0, max_value=2**63 - 1),
                seq=st.integers(min_value=0, max_value=2**63 - 1),
                is_dummy=st.booleans(),
                permitted=st.integers(min_value=0, max_value=1),
            ),
            max_size=12,
        )

        @given(entries_strategy)
        @settings(max_examples=60, deadline=None)
        def roundtrip(batch):
            decoded = decode_batch(encode_batch(batch))
            assert len(decoded) == len(batch)
            for a, b in zip(batch, decoded):
                assert entries_equal(a, b)

        roundtrip()
