"""Tests for the two-tier oblivious hash table."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CapacityError
from repro.oblivious.hashtable import TwoTierHashTable, TwoTierParams


class Item:
    def __init__(self, key):
        self.key = key

    def __repr__(self):
        return f"Item({self.key})"


def key_fn(item):
    return item.key


def build(keys, prf_key=b"table-key", **kwargs):
    return TwoTierHashTable.build(
        [Item(k) for k in keys], key_fn, prf_key, **kwargs
    )


class TestParams:
    def test_all_dimensions_positive(self):
        for n in (1, 2, 7, 100, 4096):
            p = TwoTierParams.for_capacity(n)
            assert p.tier1_buckets >= 1
            assert p.tier1_bucket_size >= 1
            assert p.tier2_buckets >= 1
            assert p.tier2_bucket_size >= 1
            assert p.tier2_capacity >= 1

    def test_dimensions_public(self):
        """Params depend only on capacity + lambda, never on contents."""
        assert TwoTierParams.for_capacity(500) == TwoTierParams.for_capacity(500)

    def test_lookup_cost_much_smaller_than_capacity(self):
        p = TwoTierParams.for_capacity(4096)
        assert p.lookup_scan_slots < 4096 / 10

    def test_slots_properties(self):
        p = TwoTierParams.for_capacity(64)
        assert p.tier1_slots == p.tier1_buckets * p.tier1_bucket_size
        assert p.total_slots == p.tier1_slots + p.tier2_slots

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            TwoTierParams.for_capacity(0)


class TestBuildAndExtract:
    @pytest.mark.parametrize("n", [1, 2, 5, 17, 64, 200])
    def test_extract_returns_all_items(self, n, rng):
        keys = rng.sample(range(10**6), n)
        table = build(keys)
        assert sorted(key_fn(i) for i in table.extract_real()) == sorted(keys)

    def test_every_item_findable_in_its_buckets(self, rng):
        keys = rng.sample(range(10**6), 80)
        table = build(keys)
        for k in keys:
            slots = table.lookup_slots(k)
            assert any(s.real and s.item.key == k for s in slots), k
            assert len(slots) == table.params.lookup_scan_slots

    def test_dummy_items_not_extracted(self, rng):
        keys = rng.sample(range(10**6), 30)
        table = TwoTierHashTable.build(
            [Item(k) for k in keys],
            key_fn,
            b"table-key",
            is_real_fn=lambda item: item.key % 2 == 0,
        )
        extracted = {key_fn(i) for i in table.extract_real()}
        assert extracted == {k for k in keys if k % 2 == 0}

    def test_capacity_enforced(self):
        params = TwoTierParams.for_capacity(4)
        with pytest.raises(CapacityError):
            build(list(range(10)), params=params)

    def test_key_changes_layout(self):
        keys = list(range(50))
        t1 = build(keys, prf_key=b"key-one")
        t2 = build(keys, prf_key=b"key-two")
        assert t1.bucket_slot_indices(0) != t2.bucket_slot_indices(0) or (
            t1.params != t2.params
        )

    def test_total_slot_count_is_public(self, rng):
        """Two tables with equal capacity have identical slot layouts."""
        a = build(rng.sample(range(10**6), 40))
        b = build(rng.sample(range(10**6), 40))
        assert len(a.slots) == len(b.slots)
        assert a.params == b.params

    @given(st.sets(st.integers(min_value=0, max_value=10**9), max_size=120))
    @settings(max_examples=25, deadline=None)
    def test_property_roundtrip(self, keys):
        if not keys:
            return
        table = build(sorted(keys))
        assert sorted(key_fn(i) for i in table.extract_real()) == sorted(keys)
        for k in list(keys)[:10]:
            assert any(
                s.real and s.item.key == k for s in table.lookup_slots(k)
            )


class TestRandomizedStress:
    def test_many_batches_never_overflow(self):
        """Tier-2 capacity bound holds over many random batches."""
        rng = random.Random(42)
        for trial in range(30):
            n = rng.randrange(1, 300)
            keys = rng.sample(range(10**9), n)
            prf_key = bytes([rng.randrange(256) for _ in range(16)])
            table = build(keys, prf_key=prf_key)
            assert len(table.extract_real()) == n
