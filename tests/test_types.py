"""Tests for core datatypes."""

import pytest

from repro.types import BatchEntry, DUMMY_KEY, OpType, Request, Response


class TestRequest:
    def test_read_write_predicates(self):
        assert Request(OpType.READ, 1).is_read()
        assert not Request(OpType.READ, 1).is_write()
        assert Request(OpType.WRITE, 1, b"v").is_write()

    def test_frozen(self):
        request = Request(OpType.READ, 1)
        with pytest.raises(AttributeError):
            request.key = 2  # type: ignore[misc]

    def test_defaults(self):
        request = Request(OpType.READ, 5)
        assert request.value is None
        assert request.client_id == 0
        assert request.seq == 0


class TestBatchEntry:
    def test_from_request_copies_fields(self):
        request = Request(OpType.WRITE, 9, b"v", client_id=3, seq=7)
        entry = BatchEntry.from_request(request)
        assert entry.op is OpType.WRITE
        assert entry.key == 9
        assert entry.value == b"v"
        assert entry.client_id == 3
        assert entry.seq == 7
        assert not entry.is_dummy
        assert entry.permitted == 1

    def test_default_is_dummy(self):
        entry = BatchEntry()
        assert entry.is_dummy
        assert entry.key == DUMMY_KEY

    def test_copy_independent(self):
        entry = BatchEntry(op=OpType.WRITE, key=1, value=b"v", is_dummy=False)
        clone = entry.copy()
        clone.value = b"changed"
        clone.permitted = 0
        assert entry.value == b"v"
        assert entry.permitted == 1

    def test_copy_preserves_all_fields(self):
        entry = BatchEntry(
            op=OpType.WRITE, key=5, value=b"v", suboram=2, tag=9,
            client_id=4, seq=6, is_dummy=False, permitted=0,
        )
        clone = entry.copy()
        for field in ("op", "key", "value", "suboram", "tag", "client_id",
                      "seq", "is_dummy", "permitted"):
            assert getattr(clone, field) == getattr(entry, field), field


class TestResponse:
    def test_defaults(self):
        response = Response(key=1, value=b"v")
        assert response.ok
        assert response.client_id == 0

    def test_denied_response(self):
        response = Response(key=1, value=None, ok=False)
        assert not response.ok
