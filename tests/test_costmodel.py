"""Tests for the calibrated cost model: anchors and structural properties."""

import pytest

from repro.sim.costmodel import (
    adaptive_sort_time,
    best_split,
    compact_time,
    epoch_feasible,
    load_balancer_time,
    max_throughput,
    mean_latency,
    oblix_access_time,
    oblix_recursion_levels,
    oblix_throughput,
    obladi_throughput,
    redis_throughput,
    sort_time,
    suboram_time,
)
from repro.sim.machines import DEFAULT_PROFILE


class TestSortModel:
    def test_single_thread_superlinear(self):
        assert sort_time(2**14) > 2 * sort_time(2**13)

    def test_threads_help_large_sorts(self):
        assert sort_time(2**16, threads=3) < sort_time(2**16, threads=1)

    def test_sync_overhead_hurts_small_sorts(self):
        """Fig. 13a: below the crossover a single thread wins."""
        assert sort_time(2**8, threads=3) > sort_time(2**8, threads=1)

    def test_adaptive_is_min(self):
        for n in (2**8, 2**12, 2**16):
            assert adaptive_sort_time(n, 3) == min(
                sort_time(n, t) for t in (1, 2, 3)
            )

    def test_degenerate_sizes(self):
        assert sort_time(0) == 0.0
        assert sort_time(1) == 0.0
        assert compact_time(1) == 0.0


class TestStageModels:
    def test_lb_time_grows_with_requests(self):
        assert load_balancer_time(10_000, 10) > load_balancer_time(1_000, 10)

    def test_suboram_scan_linear_in_objects(self):
        small = suboram_time(512, 100_000)
        large = suboram_time(512, 200_000)
        assert 1.5 < large / small < 2.5

    def test_paging_knee(self):
        """Fig. 12: marginal cost/object jumps past the EPC boundary.

        Marginal (not average) cost isolates the scan from the fixed
        hash-table construction, which dominates at small data sizes.
        """
        resident_marginal = (
            suboram_time(512, 2**15) - suboram_time(512, 2**14)
        ) / 2**14
        paged_marginal = (
            suboram_time(512, 2**22) - suboram_time(512, 2**21)
        ) / 2**21
        assert paged_marginal > resident_marginal

    def test_zero_batch_free(self):
        assert suboram_time(0, 100_000) == 0.0
        assert load_balancer_time(0, 10) == 0.0


class TestPaperAnchors:
    """DESIGN.md §6: the model must land near the paper's headline numbers."""

    def test_fig9a_500ms(self):
        _, _, x = best_split(18, 2_000_000, 0.5)
        assert 70_000 < x < 115_000  # paper: 92K

    def test_fig9a_300ms(self):
        _, _, x = best_split(18, 2_000_000, 0.3)
        assert 45_000 < x < 90_000  # paper: 68K

    def test_fig9a_1s(self):
        _, _, x = best_split(18, 2_000_000, 1.0)
        assert 100_000 < x < 165_000  # paper: 130K

    def test_oblix_anchor(self):
        assert 900 < oblix_throughput(2_000_000) < 1_400  # paper: 1,153

    def test_obladi_anchor(self):
        assert 5_500 < obladi_throughput(2_000_000) < 8_000  # paper: 6,716

    def test_redis_dwarfs_snoopy(self):
        """§8.2: Redis ~39x Snoopy at comparable machine counts."""
        _, _, snoopy = best_split(18, 2_000_000, 1.0)
        redis = redis_throughput(15)
        assert 20 < redis / snoopy < 80

    def test_snoopy_beats_obladi_at_scale(self):
        """The headline: >10x Obladi with 18 machines at 500 ms."""
        _, _, x = best_split(18, 2_000_000, 0.5)
        assert x / obladi_throughput(2_000_000) > 10

    def test_fig11b_single_suboram_latency(self):
        latency = mean_latency(500, 1, 1, 2_000_000)
        assert 0.6 < latency < 1.1  # paper: 847 ms

    def test_fig11b_latency_improves_with_suborams(self):
        latencies = [mean_latency(500, 1, s, 2_000_000) for s in (1, 5, 15)]
        assert latencies[0] > latencies[1] > latencies[2]
        assert latencies[2] < 0.15


class TestScalingShape:
    def test_throughput_increases_with_machines(self):
        xs = [best_split(m, 2_000_000, 1.0)[2] for m in range(4, 19, 2)]
        assert all(b >= a for a, b in zip(xs, xs[1:]))
        assert xs[-1] > 2 * xs[0]

    def test_relaxed_latency_increases_throughput(self):
        """§8.2: longer epochs amortize dummies better."""
        x_300 = best_split(18, 2_000_000, 0.3)[2]
        x_1000 = best_split(18, 2_000_000, 1.0)[2]
        assert x_1000 > x_300

    def test_feasibility_brackets_max(self):
        x = max_throughput(2, 4, 500_000, 1.0)
        epoch = 0.4
        assert epoch_feasible(x * 0.95, epoch, 2, 4, 500_000)
        assert not epoch_feasible(x * 1.1, epoch, 2, 4, 500_000)

    def test_infeasible_load_returns_inf_latency(self):
        assert mean_latency(10**9, 1, 1, 2_000_000) == float("inf")


class TestOblixModel:
    def test_recursion_levels_monotone(self):
        assert oblix_recursion_levels(500) == 1
        assert oblix_recursion_levels(250_000) < oblix_recursion_levels(2_000_000)

    def test_access_time_grows_with_size(self):
        assert oblix_access_time(2_000_000) > oblix_access_time(10_000)
