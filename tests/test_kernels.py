"""Equivalence tests for the vectorized oblivious kernels.

The numpy kernel must be a *drop-in* replacement for the scalar python
reference: byte-identical outputs and identical level-granular
:class:`~repro.oblivious.kernels.KernelTrace` schedules for sort,
compaction, and the subORAM scan — at every call site, from the raw
kernel API up through a full deployment.
"""

import copy
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SnoopyConfig
from repro.core.snoopy import Snoopy
from repro.crypto.keys import KeyChain
from repro.errors import ConfigurationError
from repro.loadbalancer.batching import generate_batches
from repro.loadbalancer.matching import match_responses
from repro.oblivious import soa
from repro.oblivious.compact import ocompact
from repro.oblivious.kernels import (
    KERNELS,
    KernelTrace,
    NumpyKernel,
    PythonKernel,
    ScanTable,
    resolve_kernel,
)
from repro.oblivious.memory import TracedMemory
from repro.oblivious.sort import (
    bitonic_sort_depth,
    bitonic_sort_levels,
    comparator_schedule,
)
from repro.security.simulator import simulate_suboram_store_sequence
from repro.suboram.suboram import SubOram
from repro.types import BatchEntry, OpType, Request

PY = KERNELS["python"]
NP = KERNELS["numpy"]


def _next_pow2(n: int) -> int:
    m = 1
    while m < n:
        m *= 2
    return m


# ---------------------------------------------------------------------------
# bitonic_sort_levels
# ---------------------------------------------------------------------------
class TestBitonicSortLevels:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 16, 33, 64])
    def test_flatten_matches_schedule(self, n):
        levels = bitonic_sort_levels(n)
        flat = [comp for level in levels for comp in level]
        assert flat == list(comparator_schedule(_next_pow2(n)))

    @pytest.mark.parametrize("n", [2, 3, 5, 8, 16, 33])
    def test_level_count_is_depth(self, n):
        assert len(bitonic_sort_levels(n)) == bitonic_sort_depth(n)

    @pytest.mark.parametrize("n", [4, 8, 16, 33])
    def test_levels_touch_disjoint_pairs(self, n):
        for level in bitonic_sort_levels(n):
            touched = [i for (i, j, _) in level] + [j for (i, j, _) in level]
            assert len(touched) == len(set(touched))


# ---------------------------------------------------------------------------
# Sort equivalence
# ---------------------------------------------------------------------------
# Duplicate-heavy domain: collisions exercise the swap-on-equal rule.
_sort_lists = st.lists(
    st.tuples(st.integers(-4, 4), st.integers(-4, 4)), max_size=40
)


class TestSortEquivalence:
    @given(items=_sort_lists, num_cols=st.integers(1, 2))
    @settings(max_examples=120, deadline=None)
    def test_outputs_and_traces_match(self, items, num_cols):
        columns = [[item[c] for item in items] for c in range(num_cols)]
        py_trace, np_trace = KernelTrace(), KernelTrace()
        py_out = PY.sort(list(items), columns, trace=py_trace)
        np_out = NP.sort(list(items), columns, trace=np_trace)
        assert py_out == np_out
        assert py_trace == np_trace

    def test_empty(self):
        assert NP.sort([], []) == PY.sort([], []) == []

    def test_trace_depends_only_on_length(self):
        t1, t2 = KernelTrace(), KernelTrace()
        NP.sort([(9, 9)] * 7, [[9] * 7], trace=t1)
        NP.sort([(0, 1)] * 7, [[0] * 7], trace=t2)
        assert t1 == t2

    def test_numpy_kernel_rejects_traced_memory(self):
        with pytest.raises(ConfigurationError):
            NP.sort([(1,)], [[1]], mem_factory=TracedMemory)


# ---------------------------------------------------------------------------
# Compaction equivalence
# ---------------------------------------------------------------------------
_flagged = st.lists(
    st.tuples(st.integers(-100, 100), st.integers(0, 1)), max_size=60
)


class TestCompactEquivalence:
    @given(tagged=_flagged)
    @settings(max_examples=120, deadline=None)
    def test_matches_reference(self, tagged):
        items = [t[0] for t in tagged]
        flags = [t[1] for t in tagged]
        py_trace, np_trace = KernelTrace(), KernelTrace()
        py_out = PY.compact(list(items), list(flags), trace=py_trace)
        np_out = NP.compact(list(items), list(flags), trace=np_trace)
        assert py_out == np_out == ocompact(items, flags)
        assert py_trace == np_trace

    @pytest.mark.parametrize("flags", [[0, 0, 0, 0], [1, 1, 1, 1]])
    def test_all_dummy_and_all_real(self, flags):
        items = list("abcd")
        assert NP.compact(items, flags) == PY.compact(items, flags)

    def test_full_length_output(self):
        items, flags = [1, 2, 3, 4, 5], [0, 1, 0, 1, 0]
        assert NP.compact_full(items, flags)[:2] == [2, 4]
        assert len(NP.compact_full(items, flags)) == 5


# ---------------------------------------------------------------------------
# Scan equivalence
# ---------------------------------------------------------------------------
def _random_scan_case(rng, num_objects, num_slots, value_size=4, lookups=2):
    """A ScanTable + lookup rows honouring the real call-site contract.

    Objects are the *store* side (distinct keys, values always bytes);
    table slots are the *batch-entry* side (distinct keys among occupied
    slots, ``None`` values for reads); lookup rows hold distinct slot
    indices, as :meth:`TwoTierHashTable.bucket_slot_indices` guarantees.
    """
    pool = rng.sample(range(1, 500), num_slots + num_objects)
    slot_keys, extra_keys = pool[:num_slots], pool[num_slots:]
    occupied = [rng.randrange(2) for _ in range(num_slots)]
    table = ScanTable(
        keys=[k if occ else 0 for k, occ in zip(slot_keys, occupied)],
        occupied=occupied,
        is_write=[rng.randrange(2) if occ else 0 for occ in occupied],
        permitted=[rng.randrange(2) if occ else 0 for occ in occupied],
        values=[
            bytes(rng.randrange(256) for _ in range(value_size))
            if occ and rng.random() < 0.7
            else None
            for occ in occupied
        ],
    )
    # Object keys: a mix of batch-entry keys and keys no entry asked for.
    obj_keys = rng.sample(
        [k for k, occ in zip(slot_keys, occupied) if occ] + extra_keys,
        num_objects,
    )
    obj_values = [
        bytes(rng.randrange(256) for _ in range(value_size))
        for _ in range(num_objects)
    ]
    lookup = []
    for key in obj_keys:
        row = rng.sample(range(num_slots), min(lookups, num_slots))
        if rng.random() < 0.8 and key in table.keys:
            hit = table.keys.index(key)
            if hit not in row:
                row[rng.randrange(len(row))] = hit
        lookup.append(row)
    return obj_keys, obj_values, table, lookup


class TestScanEquivalence:
    def test_random_cases_match(self):
        rng = random.Random(0x5EED)
        for trial in range(60):
            num_slots = rng.randrange(2, 20)
            num_objects = rng.randrange(1, 8)
            obj_keys, obj_values, table, lookup = _random_scan_case(
                rng, num_objects, num_slots
            )
            t_py = copy.deepcopy(table)
            t_np = copy.deepcopy(table)
            py_trace, np_trace = KernelTrace(), KernelTrace()
            py = PY.scan(obj_keys, list(obj_values), 4, lookup, t_py,
                         trace=py_trace)
            np_ = NP.scan(obj_keys, list(obj_values), 4, lookup, t_np,
                          trace=np_trace)
            assert py == np_, trial
            assert t_py == t_np, trial
            assert py_trace == np_trace, trial

    def test_empty_batch(self):
        table = ScanTable(keys=[1], occupied=[1], is_write=[0],
                          permitted=[1], values=[b"abcd"])
        assert NP.scan([], [], 4, [], table) == PY.scan([], [], 4, [], table)


# ---------------------------------------------------------------------------
# resolve_kernel / configuration plumbing
# ---------------------------------------------------------------------------
class TestResolveKernel:
    def test_registry_shape(self):
        assert isinstance(KERNELS["python"], PythonKernel)
        assert isinstance(KERNELS["numpy"], NumpyKernel)
        assert not PY.vectorized and NP.vectorized

    def test_defaults_to_python(self):
        assert resolve_kernel(None) is PY

    def test_by_name_and_instance(self):
        assert resolve_kernel("numpy") is NP
        assert resolve_kernel(NP) is NP

    def test_mem_factory_forces_python(self):
        assert resolve_kernel("numpy", mem_factory=TracedMemory) is PY

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_kernel("fortran")
        with pytest.raises(ConfigurationError):
            SnoopyConfig(kernel="fortran")

    def test_missing_numpy_falls_back(self, monkeypatch):
        monkeypatch.setattr(soa, "HAS_NUMPY", False)
        with pytest.warns(RuntimeWarning):
            assert resolve_kernel("numpy") is PY

    def test_soa_import_error_message(self, monkeypatch):
        monkeypatch.setattr(soa, "HAS_NUMPY", False)
        with pytest.raises(ImportError, match="numpy"):
            soa.require_numpy()


# ---------------------------------------------------------------------------
# Load-balancer stages
# ---------------------------------------------------------------------------
KEY = b"\x07" * 32


def _requests(n, rng):
    out = []
    for i in range(n):
        if rng.random() < 0.5:
            out.append(Request(OpType.WRITE, rng.randrange(30),
                               bytes([i % 256]) * 4, seq=i))
        else:
            out.append(Request(OpType.READ, rng.randrange(30), seq=i))
    return out


class TestLoadBalancerStages:
    def test_generate_batches_equivalent(self, rng):
        requests = _requests(17, rng)
        py = generate_batches([r for r in requests], 3, KEY, 16,
                              kernel="python")
        np_ = generate_batches([r for r in requests], 3, KEY, 16,
                               kernel="numpy")
        assert [[e.__dict__ for e in b] for b in py[0]] == (
            [[e.__dict__ for e in b] for b in np_[0]]
        )

    def test_match_responses_equivalent(self, rng):
        requests = _requests(11, rng)
        batches, originals, _ = generate_batches(requests, 3, KEY, 16)
        responses = []
        for batch in batches:
            for entry in batch:
                answered = entry.copy()
                answered.value = bytes([entry.key % 256]) * 4
                responses.append(answered)
        py = match_responses(list(originals), list(responses),
                             kernel="python")
        np_ = match_responses(list(originals), list(responses),
                              kernel="numpy")
        assert [r.__dict__ for r in py] == [r.__dict__ for r in np_]


# ---------------------------------------------------------------------------
# SubORAM and full-system equivalence
# ---------------------------------------------------------------------------
def _batch(rng, keys):
    entries = []
    for key in keys:
        if rng.random() < 0.4:
            entries.append(BatchEntry(op=OpType.WRITE, key=key,
                                      value=bytes([key % 256]) * 4,
                                      is_dummy=False))
        else:
            entries.append(BatchEntry(op=OpType.READ, key=key,
                                      is_dummy=False))
    return entries


class TestSubOramEquivalence:
    def test_batches_equivalent(self, rng):
        results = {}
        for kernel in ("python", "numpy"):
            # Shared keychain: the hash-table layout (and so extract_real
            # order) is keyed, and must match across the two runs.
            suboram = SubOram(0, value_size=4,
                              keychain=KeyChain(master=b"k" * 32),
                              security_parameter=16, kernel=kernel)
            suboram.initialize({k: bytes([k]) * 4 for k in range(25)})
            local = random.Random(42)
            outs = []
            for _ in range(3):
                keys = local.sample(range(40), 9)  # includes absent keys
                outs.append([
                    (e.key, e.value)
                    for e in suboram.batch_access(_batch(local, keys))
                ])
            results[kernel] = outs
        assert results["python"] == results["numpy"]

    def test_store_sequence_matches_simulator(self):
        ideal = simulate_suboram_store_sequence(20, kernel="numpy")
        suboram = SubOram(0, value_size=4, security_parameter=16,
                          kernel="numpy")
        suboram.initialize({k: bytes([k]) * 4 for k in range(20)})
        log = []
        store = suboram.store
        orig_get, orig_put = store.get, store.put
        store.get = lambda slot, _o=orig_get: (
            log.append(("get", slot)), _o(slot))[1]
        store.put = lambda slot, key, value, _o=orig_put: (
            log.append(("put", slot)), _o(slot, key, value))[1]
        suboram.batch_access([
            BatchEntry(op=OpType.READ, key=k, is_dummy=False)
            for k in (3, 7, 11)
        ])
        assert log == ideal

    def test_state_token_advances(self):
        suboram = SubOram(0, value_size=4, security_parameter=16)
        before = suboram.state_token
        suboram.initialize({0: bytes(4)})
        mid = suboram.state_token
        suboram.batch_access([BatchEntry(op=OpType.READ, key=0,
                                         is_dummy=False)])
        assert before < mid < suboram.state_token


class TestFullSystemEquivalence:
    def _run(self, kernel):
        keychain = KeyChain(master=b"e" * 32)
        config = SnoopyConfig(num_load_balancers=2, num_suborams=3,
                              value_size=8, security_parameter=32,
                              kernel=kernel)
        rng = random.Random(11)
        epochs = []
        with Snoopy(config, keychain=keychain) as store:
            store.initialize({k: bytes([k % 256]) * 8 for k in range(40)})
            for _ in range(2):
                for _ in range(15):
                    key = rng.randrange(55)
                    if rng.random() < 0.5:
                        store.submit(Request(OpType.WRITE, key,
                                             bytes([key % 256]) * 8),
                                     load_balancer=rng.randrange(2))
                    else:
                        store.submit(Request(OpType.READ, key),
                                     load_balancer=rng.randrange(2))
                epochs.append([(r.key, r.value)
                               for r in store.run_epoch()])
            # Read-back epoch: proves the stored state is identical too.
            # Balancer choice is pinned — submit() without one draws from
            # a nondeterministically seeded RNG.
            for key in range(40):
                store.submit(Request(OpType.READ, key),
                             load_balancer=key % 2)
            epochs.append([(r.key, r.value) for r in store.run_epoch()])
        return epochs

    def test_responses_and_state_identical(self):
        assert self._run("python") == self._run("numpy")
