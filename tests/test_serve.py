"""Tests for the TCP front door: server, network client, workers, faults.

The acceptance bar for the service layer is *transport transparency*:
serving the deployment over real sockets must change nothing the client
can observe — responses are byte-identical to an in-process run of the
same workload (both kernels, pipelined and sequential), and the fault
machinery composes: dropped connections and crashed worker processes
leave tickets pending/requeued and the store identical to a fault-free
run.
"""

import socket
import struct
import threading

import pytest

from tests.harness import assert_equivalent, build_store, seeded_workload
from repro.core.client import SnoopyClient
from repro.core.wire import (
    HELLO_SIZE,
    SUPPORTED_WIRE_VERSIONS,
    WIRE_MAGIC,
    FrameKind,
    Role,
    decode_version_reject,
    encode_hello,
)
from repro.errors import (
    ConfigurationError,
    TaskTimeoutError,
    TransportError,
)
from repro.serve import (
    NetworkSnoopyClient,
    ServerThread,
    WorkerCluster,
    run_loadgen,
)
from repro.serve.protocol import recv_frame, send_all
from repro.types import OpType, Request

MASTER = b"serve-differential-master-key"
VALUE = 8


def small_objects(n=36, value_size=VALUE):
    return {k: bytes([k % 256]) * value_size for k in range(n)}


def make_store(**overrides):
    kwargs = dict(
        master=MASTER,
        objects=small_objects(),
        value_size=VALUE,
        num_suborams=2,
        security_parameter=16,
    )
    kwargs.update(overrides)
    backend = kwargs.pop("backend", "serial")
    return build_store(backend, **kwargs)


def connect(handle, **kwargs):
    """A client for ``handle``'s server, sharing its attested trust."""
    kwargs.setdefault("trust", handle.trust)
    return NetworkSnoopyClient("127.0.0.1", handle.port, **kwargs)


@pytest.fixture
def service():
    """A served deployment in deterministic (manual-epoch) mode."""
    store = make_store()
    with store, ServerThread(store, clock=False) as handle:
        handle.start()
        yield store, handle


class TestServiceBasics:
    def test_init_frame_reports_geometry(self, service):
        _store, handle = service
        with connect(handle,
                                 manual_epochs=True) as client:
            assert client.value_size == VALUE
            assert client.num_load_balancers == 2

    def test_read_write_round_trip(self, service):
        _store, handle = service
        with connect(handle,
                                 manual_epochs=True) as client:
            assert client.read(3) == bytes([3]) * VALUE
            assert client.write(3, b"ABCDEFGH") == bytes([3]) * VALUE
            assert client.read(3) == b"ABCDEFGH"

    def test_batch(self, service):
        _store, handle = service
        with connect(handle,
                                 manual_epochs=True) as client:
            responses = client.batch([
                Request(OpType.READ, k, client_id=9, seq=i)
                for i, k in enumerate((1, 2, 4))
            ])
            assert [r.value for r in responses] == [
                bytes([1]) * VALUE, bytes([2]) * VALUE, bytes([4]) * VALUE,
            ]

    def test_ping(self, service):
        _store, handle = service
        with connect(handle) as client:
            client.ping()

    def test_conforms_to_snoopy_client_protocol(self, service):
        _store, handle = service
        with connect(handle,
                                 manual_epochs=True) as client:
            assert isinstance(client, SnoopyClient)

    def test_two_clients_share_epochs(self, service):
        _store, handle = service
        with connect(handle) as alice, \
                connect(handle) as bob:
            ta = alice.submit(Request(OpType.READ, 5, client_id=1))
            tb = bob.submit(Request(OpType.READ, 6, client_id=2))
            alice.close_epoch()
            assert ta.result(10).value == bytes([5]) * VALUE
            assert tb.result(10).value == bytes([6]) * VALUE

    def test_ticket_coordinates_settle_with_response(self, service):
        _store, handle = service
        with connect(handle) as client:
            ticket = client.submit(Request(OpType.READ, 1), load_balancer=1)
            assert ticket.load_balancer is None  # unresolved: no coords yet
            client.close_epoch()
            ticket.result(10)
            assert ticket.load_balancer == 1
            assert ticket.arrival == 0
            assert ticket.epoch is not None

    def test_done_callback_fires(self, service):
        _store, handle = service
        fired = threading.Event()
        with connect(handle) as client:
            ticket = client.submit(Request(OpType.READ, 2))
            ticket.add_done_callback(lambda t: fired.set())
            client.close_epoch()
            assert fired.wait(10)

    def test_tiny_backpressure_window_still_serves(self):
        store = make_store()
        with store, ServerThread(store, clock=False,
                                 max_pending_per_connection=1) as handle:
            handle.start()
            with connect(handle,
                                     manual_epochs=True) as client:
                for key in (1, 2, 3):
                    assert client.read(key) == bytes([key]) * VALUE


class TestCoalescedSealing:
    """The async transport seals one record per flush, not per frame."""

    @staticmethod
    def _pairs():
        import os

        from repro.serve.secure import derive_channel_pair

        share_a, share_b = os.urandom(32), os.urandom(32)
        acceptor = derive_channel_pair(share_a, share_b, initiator=False)
        initiator = derive_channel_pair(share_b, share_a, initiator=True)
        return acceptor, initiator

    def test_async_sends_coalesce_and_blocking_recv_splits(self):
        import asyncio

        from repro.serve.secure import AsyncFrameTransport, FrameTransport

        acceptor, initiator = self._pairs()
        server_sock, client_sock = socket.socketpair()
        payloads = [bytes([i]) * (10 + i) for i in range(5)]

        async def serve_side():
            reader, writer = await asyncio.open_connection(sock=server_sock)
            tx = AsyncFrameTransport(reader, writer, acceptor)
            for payload in payloads:
                tx.send(FrameKind.RESPONSE, payload)
            # Nothing sealed yet: the flush is scheduled, not run.
            assert tx.sealed_flushes == 0
            await tx.drain()
            assert tx.sealed_flushes == 1
            assert tx.sealed_frames == len(payloads)
            tx.close()

        try:
            asyncio.run(serve_side())
            rx = FrameTransport(client_sock, initiator)
            for expected in payloads:
                kind, payload = rx.recv()
                assert kind == FrameKind.RESPONSE
                assert payload == expected
        finally:
            client_sock.close()

    def test_record_budget_splits_into_multiple_records(self, monkeypatch):
        import asyncio

        from repro.serve import secure

        acceptor, initiator = self._pairs()
        server_sock, client_sock = socket.socketpair()
        # Shrink the budget so three 40-byte frames need two records.
        monkeypatch.setattr(secure, "_RECORD_BUDGET", 100)
        payloads = [bytes([i]) * 40 for i in range(3)]

        async def serve_side():
            reader, writer = await asyncio.open_connection(sock=server_sock)
            tx = secure.AsyncFrameTransport(reader, writer, acceptor)
            for payload in payloads:
                tx.send(FrameKind.RESPONSE, payload)
            await tx.drain()
            assert tx.sealed_flushes == 2
            assert tx.sealed_frames == 3
            tx.close()

        try:
            asyncio.run(serve_side())
            rx = secure.FrameTransport(client_sock, initiator)
            received = [rx.recv()[1] for _ in payloads]
            assert received == payloads
        finally:
            client_sock.close()

    def test_async_recv_splits_coalesced_records(self):
        import asyncio

        from repro.core.wire import encode_frame
        from repro.serve.secure import _SEAL_LEN, AsyncFrameTransport

        acceptor, initiator = self._pairs()
        server_sock, client_sock = socket.socketpair()
        # Hand-seal one record carrying two inner frames, as the peer's
        # coalescing sender would.
        record = encode_frame(FrameKind.RESPONSE, b"first") + encode_frame(
            FrameKind.RESPONSE, b"second"
        )
        nonce, sealed = initiator.tx.send(record)
        client_sock.sendall(nonce + _SEAL_LEN.pack(len(sealed)) + sealed)

        async def serve_side():
            reader, writer = await asyncio.open_connection(sock=server_sock)
            rx = AsyncFrameTransport(reader, writer, acceptor)
            first = await rx.recv()
            second = await rx.recv()
            assert first == (FrameKind.RESPONSE, b"first")
            assert second == (FrameKind.RESPONSE, b"second")
            writer.close()

        try:
            asyncio.run(serve_side())
        finally:
            client_sock.close()

    def test_trailing_garbage_in_record_rejected(self):
        from repro.core.wire import WireError, encode_frame
        from repro.serve.secure import _SEAL_LEN, FrameTransport

        acceptor, initiator = self._pairs()
        server_sock, client_sock = socket.socketpair()
        try:
            record = encode_frame(FrameKind.RESPONSE, b"ok") + b"\x01\x02"
            nonce, sealed = initiator.tx.send(record)
            client_sock.sendall(nonce + _SEAL_LEN.pack(len(sealed)) + sealed)
            rx = FrameTransport(server_sock, acceptor)
            with pytest.raises(WireError):
                rx.recv()
        finally:
            client_sock.close()
            server_sock.close()


class TestServerConfiguration:
    def test_process_backend_rejected(self):
        store = make_store(backend="process:2")
        with store:
            with pytest.raises(ConfigurationError):
                ServerThread(store, clock=False).start()

    def test_nonpositive_window_rejected(self):
        store = make_store()
        with store:
            with pytest.raises(ConfigurationError):
                ServerThread(
                    store, clock=False, max_pending_per_connection=0
                ).start()


class TestWireVersioning:
    """Integration side of the satellite: the handshake gates the service."""

    def _raw_hello(self, port, hello):
        sock = socket.create_connection(("127.0.0.1", port), timeout=10)
        try:
            server_hello = b""
            while len(server_hello) < HELLO_SIZE:
                chunk = sock.recv(HELLO_SIZE - len(server_hello))
                assert chunk, "server closed before sending its hello"
                server_hello += chunk
            send_all(sock, hello)
            return server_hello, recv_frame(sock)
        finally:
            sock.close()

    def test_server_hello_is_versioned_and_fixed_size(self, service):
        _store, handle = service
        server_hello, _ = self._raw_hello(
            handle.port, encode_hello(Role.CLIENT)
        )
        assert len(server_hello) == HELLO_SIZE
        assert server_hello.startswith(WIRE_MAGIC)

    def test_version_skew_answered_with_reject_frame(self, service):
        """The reject is structured: offered *and* supported versions."""
        store, handle = service
        bad = struct.pack(">4sBB10x", WIRE_MAGIC, 99, Role.CLIENT)
        _, (kind, payload) = self._raw_hello(handle.port, bad)
        assert kind == FrameKind.VERSION_REJECT
        offered, supported = decode_version_reject(payload)
        assert offered == 99
        assert supported == SUPPORTED_WIRE_VERSIONS
        assert handle.server.stats["version_mismatches"] == 1

    def test_wrong_role_rejected(self, service):
        _store, handle = service
        _, (kind, payload) = self._raw_hello(
            handle.port, encode_hello(Role.WORKER)
        )
        assert kind == FrameKind.ERROR
        assert b"role" in payload.lower()


class TestServiceDifferential:
    """Service-mode responses are byte-identical to in-process runs."""

    @pytest.mark.parametrize("kernel", ["python", "numpy"])
    def test_service_matches_in_process(self, kernel):
        workload = seeded_workload(
            4, 9, seed=21, num_keys=36, value_size=VALUE
        )
        objects = small_objects()

        def in_process(pipelined):
            from tests.harness import run_workload

            store = make_store(kernel=kernel, objects=dict(objects))
            with store:
                responses, _ = run_workload(
                    store, workload, pipelined=pipelined
                )
            return responses

        sequential = in_process(pipelined=False)
        pipelined = in_process(pipelined=True)
        assert sequential == pipelined

        store = make_store(kernel=kernel, objects=dict(objects))
        with store, ServerThread(store, clock=False) as handle:
            handle.start()
            with connect(handle,
                                     timeout=30) as client:
                epoch_tickets = []
                for requests in workload:
                    epoch_tickets.append([
                        client.submit(request, load_balancer=balancer)
                        for request, balancer in requests
                    ])
                    client.close_epoch()
                served = []
                for batch in epoch_tickets:
                    for ticket in batch:  # settle: coords arrive with it
                        ticket.result(30)
                    served.append([
                        ticket._response
                        for ticket in sorted(
                            batch,
                            key=lambda t: (t.load_balancer, t.arrival),
                        )
                    ])
        assert served == sequential, (
            f"service-mode responses diverge from in-process ({kernel})"
        )


class TestConnectionDrop:
    def test_drop_mid_epoch_executes_accepted_requests(self):
        """A vanished client's accepted requests still run exactly once.

        The connection is public state; dropping it must not change what
        the epoch pipeline executes (dropping requests on disconnect
        would break the paper's no-drop guarantee and make epoch batch
        composition depend on connection lifetime).  The store must end
        byte-identical to a run where the same requests arrived over a
        connection that stayed up.
        """
        writes = [(5, b"AAAAAAAA"), (11, b"BBBBBBBB"), (23, b"CCCCCCCC")]

        # Reference: same requests, connection survives.
        reference = make_store()
        with reference:
            for i, (key, value) in enumerate(writes):
                reference.submit(
                    Request(OpType.WRITE, key, value, client_id=1, seq=i),
                    load_balancer=i % 2,
                )
            reference.run_epoch()
            expected = {
                k: reference.read(k) for k in small_objects()
            }

        store = make_store()
        with store, ServerThread(store, clock=False) as handle:
            handle.start()
            dropped = connect(handle)
            tickets = [
                dropped.submit(
                    Request(OpType.WRITE, key, value, client_id=1, seq=i),
                    load_balancer=i % 2,
                )
                for i, (key, value) in enumerate(writes)
            ]
            # Drop the connection mid-epoch: requests are queued in the
            # balancers, the epoch has not closed.
            dropped.close()
            for ticket in tickets:
                with pytest.raises(TransportError):
                    ticket.result(5)

            with connect(handle,
                                     manual_epochs=True) as client:
                client.close_epoch(flush=True)
                observed = {k: client.read(k) for k in small_objects()}
        assert observed == expected

    def test_server_survives_drop_and_keeps_serving(self, service):
        _store, handle = service
        victim = connect(handle, resume=False)
        victim.submit(Request(OpType.READ, 1))
        victim._transport.close()  # abrupt, no shutdown handshake
        with connect(handle,
                                 manual_epochs=True) as client:
            assert client.read(2) == bytes([2]) * VALUE


class TestClientTimeout:
    def test_timeout_leaves_ticket_pending_then_resolves(self, service):
        _store, handle = service
        with connect(handle) as client:
            ticket = client.submit(Request(OpType.READ, 7))
            with pytest.raises(TaskTimeoutError):
                ticket.result(timeout=0.2)  # no epoch closed yet
            assert not ticket.done()  # still pending, not dropped
            client.close_epoch()
            assert ticket.result(10).value == bytes([7]) * VALUE


class TestWorkerCluster:
    def test_factory_validates_index_and_value_size(self):
        with WorkerCluster(2, value_size=VALUE, security_parameter=16) \
                as cluster:
            cluster.start()
            with pytest.raises(ConfigurationError):
                cluster.factory(5)
            from repro.core.config import SnoopyConfig

            config = SnoopyConfig(
                num_load_balancers=2, num_suborams=2,
                value_size=VALUE, security_parameter=16,
            )
            cluster.factory(0, config)

            class Wrong:
                value_size = VALUE + 1

            with pytest.raises(ConfigurationError):
                cluster.factory(0, Wrong())

    def test_remote_suborams_serve_a_deployment(self):
        with WorkerCluster(2, value_size=VALUE, security_parameter=16) \
                as cluster:
            cluster.start()
            store = make_store(suboram_factory=cluster.factory)
            with store:
                assert store.num_objects == len(small_objects())
                assert store.read(4) == bytes([4]) * VALUE
                store.write(4, b"REWRITE!")

    def test_transparent_respawn_between_epochs(self):
        with WorkerCluster(2, value_size=VALUE, security_parameter=16) \
                as cluster:
            cluster.start()
            store = make_store(suboram_factory=cluster.factory)
            with store:
                assert store.write(3, b"VVVVVVVV") == bytes([3]) * VALUE
                cluster.kill_worker(0)
                cluster.kill_worker(1)
                # Next epoch respawns both workers from sealed state.
                assert store.read(3) == b"VVVVVVVV"

    def test_ping_reports_liveness(self):
        with WorkerCluster(1, value_size=VALUE, security_parameter=16) \
                as cluster:
            cluster.start()
            assert cluster.ping(0)


class TestWorkerCrashDifferential:
    """Crash-during-execute composes with atomic retry, byte-identically."""

    def run_workload_over_cluster(self, crash_plan, max_attempts):
        workload = seeded_workload(
            3, 8, seed=13, num_keys=36, value_size=VALUE
        )
        with WorkerCluster(2, value_size=VALUE, security_parameter=16,
                           crash_plan=crash_plan) as cluster:
            cluster.start()
            store = make_store(
                suboram_factory=cluster.factory,
                max_attempts=max_attempts,
            )
            with store:
                responses = []
                for requests in workload:
                    for request, balancer in requests:
                        store.submit(request, load_balancer=balancer)
                    responses.append(store.run_epoch())
                final = {k: store.read(k) for k in small_objects()}
        return responses, final

    def test_mid_execute_crash_is_invisible_with_retry(self):
        baseline = self.run_workload_over_cluster(None, max_attempts=1)
        # Worker 0 dies after applying its second batch, *before*
        # replying — the balancer cannot tell whether it landed and must
        # retry the epoch on a fresh clone of the committed state.
        chaotic = self.run_workload_over_cluster({0: 2}, max_attempts=3)
        assert chaotic == baseline

    def test_crash_without_retry_requeues_then_recovers(self):
        workload_requests = [
            (Request(OpType.WRITE, 5, b"XXXXXXXX", seq=0), 0),
            (Request(OpType.READ, 9, None, 0, 1), 1),
        ]
        with WorkerCluster(2, value_size=VALUE, security_parameter=16,
                           crash_plan={0: 1}) as cluster:
            cluster.start()
            store = make_store(
                suboram_factory=cluster.factory, max_attempts=1
            )
            with store:
                tickets = [
                    store.submit(request, load_balancer=balancer)
                    for request, balancer in workload_requests
                ]
                with pytest.raises(TransportError):
                    store.run_epoch()
                # Rolled back: tickets pending, requests requeued.
                assert all(not t.done for t in tickets)
                responses = store.run_epoch()
                assert len(responses) == len(tickets)
                assert all(t.done for t in tickets)
                assert store.read(5) == b"XXXXXXXX"

    def test_service_over_crashing_cluster(self):
        """The full stack: TCP clients, pipeline, worker crash, retry."""
        with WorkerCluster(2, value_size=VALUE, security_parameter=16,
                           crash_plan={1: 1}) as cluster:
            cluster.start()
            store = make_store(
                suboram_factory=cluster.factory, max_attempts=3
            )
            with store, ServerThread(store, clock=False) as handle:
                handle.start()
                with connect(handle,
                                         manual_epochs=True,
                                         timeout=60) as client:
                    assert client.read(3) == bytes([3]) * VALUE
                    client.write(3, b"ZZZZZZZZ")
                    assert client.read(3) == b"ZZZZZZZZ"


class TestLoadgen:
    def test_loadgen_over_clocked_server(self):
        store = make_store(backend="thread:2", objects=small_objects(64))
        with store, ServerThread(store, clock=True,
                                 epoch_duration=0.01) as handle:
            handle.start()
            stats = run_loadgen(
                "127.0.0.1", handle.port,
                requests=300, connections=2, window=32,
                num_keys=64, seed=11, trust=handle.trust,
            )
        assert stats["requests"] == 300
        assert stats["rps"] > 0
        assert stats["latency_p99_ms"] >= stats["latency_p50_ms"] > 0
        assert handle.server.stats["responses"] == 300


class TestDifferentialHarnessStillHolds:
    """The serve changes must not disturb the core equivalence matrix."""

    def test_serial_thread_kernels_equivalent(self):
        from tests.harness import differential_run

        workload = seeded_workload(2, 8, seed=3, num_keys=36,
                                   value_size=VALUE)
        runs = differential_run(
            workload,
            small_objects(),
            master=MASTER,
            backends=("serial", "thread:2"),
            kernels=("python", "numpy"),
            num_suborams=2,
        )
        assert_equivalent(runs)
