"""Unit tests for TracedMemory / AccessTrace."""

import pytest

from repro.oblivious.memory import AccessTrace, TracedMemory


class TestTracedMemory:
    def test_reads_are_logged(self):
        mem = TracedMemory([10, 20, 30])
        _ = mem[1]
        _ = mem[2]
        assert mem.trace.events == [("R", 1), ("R", 2)]

    def test_writes_are_logged(self):
        mem = TracedMemory([10, 20])
        mem[0] = 99
        assert mem.trace.events == [("W", 0)]
        assert mem.to_list() == [99, 20]

    def test_negative_indices_normalized(self):
        mem = TracedMemory([10, 20, 30])
        assert mem[-1] == 30
        assert mem.trace.events == [("R", 2)]

    def test_slicing_rejected(self):
        mem = TracedMemory([1, 2, 3])
        with pytest.raises(TypeError):
            _ = mem[0:2]

    def test_append_logged(self):
        mem = TracedMemory([1])
        mem.append(2)
        assert mem.trace.events == [("W", 1)]
        assert len(mem) == 2

    def test_iteration_traces_each_read(self):
        mem = TracedMemory([1, 2, 3])
        assert list(mem) == [1, 2, 3]
        assert mem.trace.reads() == [0, 1, 2]

    def test_shared_trace(self):
        trace = AccessTrace()
        a = TracedMemory([1], trace=trace)
        b = TracedMemory([2], trace=trace)
        _ = a[0]
        _ = b[0]
        assert len(trace) == 2


class TestAccessTrace:
    def test_equality(self):
        t1, t2 = AccessTrace(), AccessTrace()
        t1.record("R", 0)
        t2.record("R", 0)
        assert t1 == t2
        t2.record("W", 1)
        assert t1 != t2

    def test_reads_writes_split(self):
        t = AccessTrace()
        t.record("R", 1)
        t.record("W", 2)
        assert t.reads() == [1]
        assert t.writes() == [2]

    def test_clear(self):
        t = AccessTrace()
        t.record("R", 1)
        t.clear()
        assert len(t) == 0

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(AccessTrace())
