"""Atomic epoch failure, rollback/requeue, and the retry policy."""

import random

import pytest

from repro.core.client import Client
from repro.core.config import SnoopyConfig
from repro.core.epoch import EpochDriver
from repro.core.faults import FaultEvent, FaultInjector, FaultPlan
from repro.core.linearizability import History, check_snoopy_history
from repro.core.resilience import EpochRetryController, RetryPolicy
from repro.core.snoopy import Snoopy
from repro.crypto.keys import KeyChain
from repro.errors import (
    ConfigurationError,
    EpochFailedError,
    IntegrityError,
    TaskTimeoutError,
    TicketPendingError,
    WorkerCrashError,
)
from repro.exec import SerialBackend, make_backend
from repro.loadbalancer.balancer import LoadBalancer
from repro.suboram.suboram import SubOram
from repro.types import OpType, Request

MASTER = b"epoch-retry-test-master-key-0123"[:32]


def build_store(**config_overrides):
    defaults = dict(
        num_load_balancers=2,
        num_suborams=2,
        value_size=4,
        security_parameter=16,
    )
    defaults.update(config_overrides)
    fault_plan = defaults.pop("fault_plan", None)
    store = Snoopy(
        SnoopyConfig(**defaults),
        keychain=KeyChain(master=MASTER),
        rng=random.Random(1),
        fault_plan=fault_plan,
    )
    store.initialize({k: bytes([k]) * 4 for k in range(20)})
    return store


def crash_plan(epoch=1, unit=0, kind="worker_crash"):
    return FaultPlan([FaultEvent(epoch=epoch, kind=kind, unit=unit)])


class TestEpochFailedError:
    def test_carries_stage_unit_and_cause(self):
        store = build_store(fault_plan=crash_plan(unit=1))
        ticket = store.submit(Request(OpType.READ, 3))
        with pytest.raises(WorkerCrashError) as excinfo:
            store.run_epoch()
        failure = excinfo.value.__cause__
        assert isinstance(failure, EpochFailedError)
        assert failure.stage == "execute"
        assert failure.unit == 1
        assert isinstance(failure.cause, WorkerCrashError)
        assert failure.retryable
        assert not ticket.done
        store.close()

    def test_security_abort_is_not_retryable(self):
        err = EpochFailedError("execute", 0, IntegrityError("tampered"))
        assert not err.retryable
        assert EpochFailedError(
            "execute", 0, TaskTimeoutError("slow")
        ).retryable


class TestRollbackAndRequeue:
    def test_failed_epoch_requeues_requests_in_order(self):
        store = build_store(fault_plan=crash_plan())
        t1 = store.submit(Request(OpType.WRITE, 3, b"aaaa"), load_balancer=0)
        t2 = store.submit(Request(OpType.READ, 3), load_balancer=0)
        with pytest.raises(WorkerCrashError):
            store.run_epoch()
        # Requests back in their balancer, arrival order preserved;
        # tickets still pending.
        assert store.load_balancers[0].pending == 2
        assert not t1.done and not t2.done
        with pytest.raises(TicketPendingError):
            t1.result()
        # The next epoch serves them (plan's only event was consumed).
        store.run_epoch()
        assert t1.result().value == bytes([3]) * 4  # write: prior value
        # Batch semantics: same-epoch requests observe the pre-epoch
        # value; the write is visible from the next epoch on.
        assert t2.result().value == bytes([3]) * 4
        assert store.read(3) == b"aaaa"
        store.close()

    def test_failed_epoch_does_not_mutate_suboram_state(self):
        store = build_store(fault_plan=crash_plan())
        before = [s.state_token for s in store.suborams]
        store.submit(Request(OpType.WRITE, 5, b"zzzz"))
        with pytest.raises(WorkerCrashError):
            store.run_epoch()
        assert [s.state_token for s in store.suborams] == before
        store.close()

    def test_requeue_rolls_back_the_epoch_counter(self):
        balancer = LoadBalancer(0, 2, b"k" * 16, security_parameter=16)
        balancer.submit(Request(OpType.READ, 1))
        drained = balancer.drain()
        assert balancer.epochs_processed == 1
        balancer.requeue(drained)
        assert balancer.epochs_processed == 0
        assert balancer.pending == 1

    def test_requeued_requests_go_ahead_of_new_submissions(self):
        balancer = LoadBalancer(0, 2, b"k" * 16, security_parameter=16)
        balancer.submit(Request(OpType.READ, 1, seq=1))
        drained = balancer.drain()
        balancer.submit(Request(OpType.READ, 2, seq=2))
        balancer.requeue(drained)
        redrained = balancer.drain()
        assert [r.seq for r in redrained] == [1, 2]


class TestRetryLoop:
    def test_retry_succeeds_within_budget(self):
        store = build_store(
            fault_plan=crash_plan(), epoch_max_attempts=2
        )
        ticket = store.submit(Request(OpType.READ, 4))
        store.run_epoch()
        assert ticket.result().value == bytes([4]) * 4
        assert store.fault_stats["epochs_failed"] == 1
        assert store.fault_stats["epochs_retried"] == 1
        store.close()

    def test_exhausted_retries_reraise_the_original_cause(self):
        # Two crash events on the same (epoch, unit) coordinate: the
        # retried attempt consumes the duplicate and fails again,
        # exhausting the 2-attempt budget.
        plan = FaultPlan([
            FaultEvent(epoch=1, kind="worker_crash", unit=0),
            FaultEvent(epoch=1, kind="worker_crash", unit=0),
        ])
        store = build_store(fault_plan=plan, epoch_max_attempts=2)
        ticket = store.submit(Request(OpType.READ, 4))
        with pytest.raises(WorkerCrashError):
            store.run_epoch()
        assert not ticket.done
        # The requests survived both failures; a later epoch serves them.
        store.run_epoch()
        assert ticket.result().value == bytes([4]) * 4
        store.close()

    def test_retried_attempt_does_not_replay_consumed_faults(self):
        injector = FaultInjector(crash_plan())
        injector.begin_epoch(1)
        assert injector.stage_fault(0) == "worker_crash"
        assert injector.stage_fault(0) is None  # consumed exactly once
        assert injector.stats["worker_crashes"] == 1

    def test_backoff_sleeps_follow_the_seeded_schedule(self):
        policy = RetryPolicy(max_attempts=3, backoff_base=0.5, seed=9)
        slept = []
        controller = EpochRetryController(policy, sleep=slept.append)
        calls = {"n": 0}

        def attempt():
            calls["n"] += 1
            raise EpochFailedError(
                "execute", 0, WorkerCrashError("injected")
            )

        with pytest.raises(WorkerCrashError):
            controller.run_with_retry(attempt)
        assert calls["n"] == 3
        assert slept == [policy.delay(1), policy.delay(2)]
        assert slept[1] > slept[0]  # exponential

    def test_non_retryable_failure_stops_immediately(self):
        controller = EpochRetryController(RetryPolicy(max_attempts=5))
        calls = {"n": 0}

        def attempt():
            calls["n"] += 1
            raise EpochFailedError("execute", 0, IntegrityError("tampered"))

        with pytest.raises(IntegrityError):
            controller.run_with_retry(attempt)
        assert calls["n"] == 1


class TestRetryPolicy:
    def test_delay_is_deterministic_per_seed(self):
        a = RetryPolicy(max_attempts=4, backoff_base=0.1, seed=7)
        b = RetryPolicy(max_attempts=4, backoff_base=0.1, seed=7)
        assert [a.delay(i) for i in (1, 2, 3)] == [
            b.delay(i) for i in (1, 2, 3)
        ]
        c = RetryPolicy(max_attempts=4, backoff_base=0.1, seed=8)
        assert [a.delay(i) for i in (1, 2, 3)] != [
            c.delay(i) for i in (1, 2, 3)
        ]

    def test_delay_grows_exponentially_within_jitter(self):
        policy = RetryPolicy(
            max_attempts=5, backoff_base=1.0, backoff_factor=2.0,
            jitter=0.1, seed=0,
        )
        for i in (1, 2, 3):
            assert 2 ** (i - 1) <= policy.delay(i) <= 2 ** (i - 1) * 1.1

    def test_zero_base_never_sleeps(self):
        policy = RetryPolicy(max_attempts=3, backoff_base=0.0)
        assert policy.delay(1) == 0.0

    def test_from_config_reads_the_epoch_fields(self):
        config = SnoopyConfig(
            epoch_max_attempts=3, epoch_backoff_base=0.25,
            epoch_backoff_factor=3.0, epoch_backoff_jitter=0.2,
            epoch_retry_seed=42,
        )
        policy = RetryPolicy.from_config(config)
        assert policy == RetryPolicy(
            max_attempts=3, backoff_base=0.25, backoff_factor=3.0,
            jitter=0.2, seed=42,
        )

    def test_config_validates_retry_fields(self):
        with pytest.raises(Exception):
            SnoopyConfig(epoch_max_attempts=0)
        with pytest.raises(Exception):
            SnoopyConfig(epoch_backoff_base=-1.0)
        with pytest.raises(Exception):
            SnoopyConfig(replication=(0, 0))
        with pytest.raises(Exception):
            SnoopyConfig(replication=(1,))


class TestTransportConfigurationError:
    def test_names_namespace_and_lists_backends_dynamically(self):
        driver = EpochDriver(make_backend("process:1"))
        balancer = LoadBalancer(0, 1, b"k" * 16, security_parameter=16)
        balancer.submit(Request(OpType.READ, 1))
        suboram = SubOram(0, 4, KeyChain(master=MASTER), 16)
        suboram.initialize({1: b"aaaa"})
        with pytest.raises(ConfigurationError) as excinfo:
            driver.run(
                [balancer], [suboram],
                transport=lambda *a: [],
                state_ns="my-deployment-7",
            )
        message = str(excinfo.value)
        assert "my-deployment-7" in message
        # The supported list comes from the registry, not a hardcoded
        # string, and only names shared-state backends.
        assert "shared-state backends: 'serial', 'thread'" in message


class TestLinearizabilityAcrossRetriedEpochs:
    def test_history_with_a_failed_and_retried_epoch_is_linearizable(self):
        """Appendix C must survive an epoch that fails and is retried."""
        rng = random.Random(13)
        plan = FaultPlan([
            FaultEvent(epoch=2, kind="worker_crash", unit=0),
            FaultEvent(epoch=4, kind="task_timeout", unit=1),
        ])
        store = build_store(
            num_load_balancers=3,
            num_suborams=2,
            fault_plan=plan,
            epoch_max_attempts=3,
            execution_backend="thread:4",
        )
        initial = {k: bytes([k]) * 4 for k in range(20)}
        clients = [Client(store, client_id=i) for i in range(4)]
        for _ in range(6):
            for client in clients:
                for _ in range(rng.randrange(3)):
                    key = rng.randrange(20)
                    if rng.random() < 0.5:
                        client.submit_write(
                            key, bytes([rng.randrange(256)]) * 4
                        )
                    else:
                        client.submit_read(key)
            responses = store.run_epoch()
            for client in clients:
                client.complete(responses)
        assert store.fault_stats["epochs_failed"] == 2
        operations = [o for c in clients for o in c.history]
        assert operations, "history should be non-empty"
        check_snoopy_history(History(initial=initial, operations=operations))
        store.close()
