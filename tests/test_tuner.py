"""Tests for the replay-driven tuner (:mod:`repro.workloads.tuner`).

The determinism contract: same trace + same sweep ⇒ byte-identical
best-config JSON, because selection is purely model-based.  The value
contract: the winner must beat the library-default configuration on the
trace it was tuned for, replay-verified — and re-replaying an emitted
config must reproduce the reported measurement (the CLI enforces the
10% bar; the unit test uses a looser bound to stay robust on loaded CI
machines, while asserting the response digest matches exactly).
"""

import json

import pytest

from repro.oblivious import soa
from repro.workloads import (
    DEFAULT_CANDIDATE,
    CandidateConfig,
    TunerSweep,
    WorkloadSpec,
    record_trace,
    replay_trace,
    tune,
    verify_reproduction,
)

SPEC = WorkloadSpec(
    distribution="zipf", num_keys=72, zipf_exponent=1.1,
    write_fraction=0.5, value_size=16,
)

#: Small sweep so measured tests stay fast; still spans every axis the
#: tuner differentiates on (duration, depth, backend).
SWEEP = TunerSweep(
    epoch_durations=(0.1, 0.2),
    pipeline_depths=(1, 2),
    kernels=("python",),
    backends=("serial", "thread:2"),
)


#: Store/sweep scale where the tuned config's advantage is physical,
#: not modelled: the numpy kernel releases the GIL so thread backends
#: genuinely parallelize, and a 1024-object store makes per-epoch work
#: dominate fixed dispatch overhead.  The pure-python kernel is
#: GIL-bound, so a python-only sweep can never beat serial by much.
MEASURED_SPEC = WorkloadSpec(
    distribution="zipf", num_keys=1024, zipf_exponent=1.1,
    write_fraction=0.5, value_size=64,
)

MEASURED_SWEEP = TunerSweep(
    epoch_durations=(0.1, 0.2),
    pipeline_depths=(1, 2),
    kernels=("python", "numpy"),
    backends=("serial", "thread:2"),
)


def small_trace(seed=31, count=90):
    return record_trace(SPEC, count, seed, rate=1500.0)


def measured_trace(seed=31, count=300):
    """A trace long enough to cover several epochs at every swept
    ``epoch_duration`` — single-epoch traces make replay wall-clock
    pure noise and pipelining unmeasurable."""
    return record_trace(MEASURED_SPEC, count, seed, rate=800.0)


class TestTunerDeterminism:
    def test_same_trace_same_seed_identical_best_config_json(self):
        a = tune(small_trace(), sweep=SWEEP, measure=False)
        b = tune(small_trace(), sweep=SWEEP, measure=False)
        assert a.best_config_json() == b.best_config_json()
        assert a.best == b.best
        assert a.scores == b.scores

    def test_best_config_json_is_canonical(self):
        result = tune(small_trace(), sweep=SWEEP, measure=False)
        text = result.best_config_json()
        parsed = json.loads(text)
        assert text == json.dumps(
            parsed, sort_keys=True, separators=(",", ":")
        ) + "\n"
        assert parsed["trace_checksum"] == small_trace().checksum()
        assert parsed["tuner_version"] == 1

    def test_different_trace_changes_checksum_not_validity(self):
        a = tune(small_trace(seed=31), sweep=SWEEP, measure=False)
        b = tune(small_trace(seed=32), sweep=SWEEP, measure=False)
        assert json.loads(a.best_config_json())["trace_checksum"] != \
            json.loads(b.best_config_json())["trace_checksum"]

    def test_measurement_does_not_change_the_choice(self):
        modelled = tune(small_trace(), sweep=SWEEP, measure=False)
        measured = tune(small_trace(), sweep=SWEEP, measure=True, repeats=1)
        assert modelled.best_config_json() == measured.best_config_json()
        assert measured.measured is not None

    def test_candidate_config_round_trips(self):
        candidate = CandidateConfig(
            epoch_duration=0.05, pipeline_depth=2, kernel="python",
            backend="thread:4", replication=(1, 0),
        )
        assert CandidateConfig.from_dict(candidate.to_dict()) == candidate

    def test_feasible_candidates_rank_first(self):
        result = tune(small_trace(), sweep=SWEEP, measure=False)
        best_score = next(
            s for s in result.scores
            if s["config"] == result.best.to_dict()
        )
        if any(s["feasible"] for s in result.scores):
            assert best_score["feasible"]
        assert all(
            best_score["modelled_rps"] >= s["modelled_rps"]
            for s in result.scores
            if s["feasible"] == best_score["feasible"]
        )


class TestTunerBeatsDefault:
    @pytest.mark.skipif(
        not soa.HAS_NUMPY, reason="speedup needs the GIL-free numpy kernel"
    )
    def test_winner_beats_default_on_its_own_trace(self):
        """Replay-verified: the tuned config out-serves the default.

        The default (serial, python, depth 1, 200 ms epochs) leaves
        the numpy kernel, pipelining, and batch-level parallelism on
        the table, so the winner clears it ~3x here; the bound
        tolerates CI-machine noise without letting a regression
        through.
        """
        result = tune(
            measured_trace(), sweep=MEASURED_SWEEP, measure=True, repeats=2
        )
        measured = result.measured
        assert measured is not None
        assert result.best != DEFAULT_CANDIDATE
        assert measured["best_rps"] > 0
        assert measured["speedup_over_default"] >= 1.5
        # The model must agree with the direction of the measurement:
        # the winner's modelled rps beats the default's modelled rps.
        by_config = {
            json.dumps(s["config"], sort_keys=True): s["modelled_rps"]
            for s in result.scores
        }
        best_key = json.dumps(result.best.to_dict(), sort_keys=True)
        default_key = json.dumps(
            DEFAULT_CANDIDATE.to_dict(), sort_keys=True
        )
        if default_key in by_config:
            assert by_config[best_key] > by_config[default_key]


class TestReproduction:
    def test_verify_reproduction_digest_and_tolerance(self):
        trace = measured_trace(count=180)
        result = tune(trace, sweep=SWEEP, measure=True, repeats=2)
        verdict = verify_reproduction(
            trace, result, repeats=2, tolerance=0.5
        )
        assert verdict["digest_matches"]
        assert verdict["within_tolerance"], verdict
        assert verdict["replayed_rps"] > 0

    def test_replay_is_response_deterministic(self):
        trace = small_trace(count=40)
        candidate = CandidateConfig(
            epoch_duration=0.1, pipeline_depth=2, kernel="python",
            backend="thread:2",
        )
        a = replay_trace(trace, candidate)
        b = replay_trace(trace, candidate)
        assert a.response_digest == b.response_digest
        assert a.requests == b.requests == len(trace)
        assert a.epochs == b.epochs

    def test_pipelined_and_sequential_serve_identical_bytes(self):
        trace = small_trace(count=40)
        deep = replay_trace(trace, CandidateConfig(
            epoch_duration=0.1, pipeline_depth=2, backend="thread:2",
        ))
        flat = replay_trace(trace, CandidateConfig(
            epoch_duration=0.1, pipeline_depth=1, backend="serial",
        ))
        assert deep.response_digest == flat.response_digest

    def test_verify_requires_measurement(self):
        trace = small_trace(count=20)
        result = tune(trace, sweep=SWEEP, measure=False)
        with pytest.raises(ValueError):
            verify_reproduction(trace, result)


class TestTunerCli:
    def run_cli(self, argv):
        from repro.tools.cli import main

        return main(argv)

    def test_tune_emits_deterministic_best_config(self, tmp_path, capsys):
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        base = [
            "tune", "--workload", "zipf:1.1", "--requests", "60",
            "--keys", "48", "--no-measure", "--seed", "7",
            "--epoch-durations", "0.1,0.2", "--backends", "serial,thread:2",
        ]
        assert self.run_cli(base + ["--out", str(out_a)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert self.run_cli(base + ["--out", str(out_b)]) == 0
        assert out_a.read_text() == out_b.read_text()
        best = json.loads(out_a.read_text())
        assert best["best"] == report["best"]
        assert best["trace_checksum"] == report["trace_checksum"]

    def test_tune_from_trace_file_and_report_out(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        report_path = tmp_path / "report.json"
        assert self.run_cli([
            "tune", "--workload", "uniform", "--requests", "40",
            "--keys", "32", "--no-measure",
            "--trace-out", str(trace_path),
        ]) == 0
        first = json.loads(capsys.readouterr().out)
        assert self.run_cli([
            "tune", "--trace", str(trace_path), "--no-measure",
            "--report-out", str(report_path),
        ]) == 0
        second = json.loads(capsys.readouterr().out)
        assert first["best"] == second["best"]
        assert first["trace_checksum"] == second["trace_checksum"]
        assert json.loads(report_path.read_text())["best"] == second["best"]
