"""Tests for the §D access-control extension."""

import pytest

from repro.core.access_control import AccessControlledStore, acl_key
from repro.core.config import SnoopyConfig
from repro.types import OpType, Request


def make_store(default_permit=False):
    store = AccessControlledStore(
        SnoopyConfig(num_suborams=2, value_size=4, security_parameter=16),
        default_permit=default_permit,
    )
    store.initialize(
        {k: bytes([k]) * 4 for k in range(10)},
        grants=[
            (1, 3, OpType.READ),
            (1, 3, OpType.WRITE),
            (2, 3, OpType.READ),
        ],
    )
    return store


class TestAclKey:
    def test_distinct_per_triple(self):
        keys = {
            acl_key(1, 3, OpType.READ),
            acl_key(1, 3, OpType.WRITE),
            acl_key(2, 3, OpType.READ),
            acl_key(1, 4, OpType.READ),
        }
        assert len(keys) == 4

    def test_non_negative(self):
        assert acl_key(0, 0, OpType.READ) >= 0

    def test_bounds_enforced(self):
        with pytest.raises(ValueError):
            acl_key(1, 2**50, OpType.READ)
        with pytest.raises(ValueError):
            acl_key(2**30, 1, OpType.READ)


class TestEnforcement:
    def test_permitted_read(self):
        store = make_store()
        store.submit(Request(OpType.READ, 3, client_id=1, seq=1))
        [resp] = store.run_epoch()
        assert resp.ok and resp.value == bytes([3]) * 4

    def test_denied_read_nulled(self):
        store = make_store()
        store.submit(Request(OpType.READ, 5, client_id=1, seq=1))
        [resp] = store.run_epoch()
        assert not resp.ok and resp.value is None

    def test_denied_write_not_applied(self):
        store = make_store()
        store.submit(Request(OpType.WRITE, 3, b"EVIL", client_id=2, seq=1))
        [resp] = store.run_epoch()
        assert not resp.ok
        # Verify via a permitted reader that the object is unchanged.
        store.submit(Request(OpType.READ, 3, client_id=1, seq=2))
        [check] = store.run_epoch()
        assert check.value == bytes([3]) * 4

    def test_permitted_write_applies(self):
        store = make_store()
        store.submit(Request(OpType.WRITE, 3, b"GOOD", client_id=1, seq=1))
        store.run_epoch()
        store.submit(Request(OpType.READ, 3, client_id=1, seq=2))
        [check] = store.run_epoch()
        assert check.value == b"GOOD"

    def test_mixed_privilege_duplicates(self):
        """Two clients read the same object; only the granted one sees it."""
        store = make_store()
        store.submit(Request(OpType.READ, 3, client_id=1, seq=1))
        store.submit(Request(OpType.READ, 3, client_id=7, seq=1))  # no grant
        responses = {(r.client_id, r.seq): r for r in store.run_epoch()}
        assert responses[(1, 1)].value == bytes([3]) * 4
        assert responses[(7, 1)].value is None

    def test_default_permit_mode(self):
        store = make_store(default_permit=True)
        store.submit(Request(OpType.READ, 9, client_id=99, seq=1))
        [resp] = store.run_epoch()
        assert resp.ok and resp.value == bytes([9]) * 4


class TestGrantRevoke:
    def test_revoke_takes_effect(self):
        store = make_store()
        store.revoke(1, 3, OpType.READ)
        store.submit(Request(OpType.READ, 3, client_id=1, seq=1))
        [resp] = store.run_epoch()
        assert not resp.ok

    def test_grant_takes_effect(self):
        store = make_store()
        store.grant(2, 5, OpType.READ)
        store.submit(Request(OpType.READ, 5, client_id=2, seq=1))
        [resp] = store.run_epoch()
        assert resp.ok and resp.value == bytes([5]) * 4

    def test_empty_epoch(self):
        store = make_store()
        assert store.run_epoch() == []


class TestMultiBalancerAccessControl:
    def test_acl_enforced_across_balancers(self):
        store = AccessControlledStore(
            SnoopyConfig(num_load_balancers=2, num_suborams=2, value_size=4,
                         security_parameter=16)
        )
        store.initialize(
            {k: bytes([k]) * 4 for k in range(10)},
            grants=[(1, 3, OpType.READ)],
        )
        store.submit(Request(OpType.READ, 3, client_id=1, seq=1))
        store.submit(Request(OpType.READ, 3, client_id=9, seq=1))
        responses = {(r.client_id, r.seq): r for r in store.run_epoch()}
        assert responses[(1, 1)].ok
        assert not responses[(9, 1)].ok
