"""Tests for the SnoopyClient protocol, Client wrapper, and history recording."""

import random

import pytest

from repro.core.client import Client, SnoopyClient
from repro.core.config import SnoopyConfig
from repro.core.deployment import DistributedSnoopy
from repro.core.snoopy import Snoopy
from repro.types import OpType


@pytest.fixture
def store():
    s = Snoopy(
        SnoopyConfig(num_load_balancers=2, num_suborams=2, value_size=4,
                     security_parameter=16),
        rng=random.Random(1),
    )
    s.initialize({k: bytes([k]) * 4 for k in range(20)})
    return s


class TestSnoopyClientProtocol:
    def test_snoopy_conforms(self, store):
        assert isinstance(store, SnoopyClient)

    def test_distributed_snoopy_conforms(self):
        config = SnoopyConfig(
            num_load_balancers=2, num_suborams=2, value_size=4,
            security_parameter=16,
        )
        with DistributedSnoopy(config, rng=random.Random(0)) as dist:
            assert isinstance(dist, SnoopyClient)

    def test_network_client_conforms_structurally(self):
        from repro.serve.netclient import NetworkSnoopyClient

        # Structural check without a live server: the protocol is about
        # method presence, which isinstance on an instance would also
        # verify — assert the class defines the full surface.
        for name in ("submit", "read", "write", "batch", "close",
                     "__enter__", "__exit__"):
            assert callable(getattr(NetworkSnoopyClient, name))

    def test_plain_object_does_not_conform(self):
        assert not isinstance(object(), SnoopyClient)

    def test_protocol_is_transport_agnostic(self, store):
        def exercise(client: SnoopyClient) -> bytes:
            with client:
                prior = client.write(5, b"QRST")
                assert prior == bytes([5]) * 4
                return client.read(5)

        assert exercise(store) == b"QRST"


class TestSyncApi:
    def test_read(self, store):
        client = Client(store)
        assert client.read(3) == bytes([3]) * 4

    def test_write_returns_prior(self, store):
        client = Client(store)
        assert client.write(3, b"abcd") == bytes([3]) * 4
        assert client.read(3) == b"abcd"


class TestHistoryRecording:
    def test_operations_recorded_with_epochs(self, store):
        client = Client(store)
        client.read(1)
        client.write(2, b"abcd")
        assert len(client.history) == 2
        read_op, write_op = client.history
        assert read_op.op is OpType.READ
        assert write_op.op is OpType.WRITE
        assert write_op.written == b"abcd"
        assert read_op.start_epoch < read_op.end_epoch

    def test_balancer_and_arrival_recorded(self, store):
        client = Client(store)
        client.submit_read(1, load_balancer=1)
        client.complete(store.run_epoch())
        [op] = client.history
        assert op.load_balancer == 1
        assert op.arrival == 0

    def test_complete_ignores_other_clients(self, store):
        alice = Client(store, client_id=100)
        bob = Client(store, client_id=200)
        alice.submit_read(1)
        bob.submit_read(2)
        responses = store.run_epoch()
        alice.complete(responses)
        bob.complete(responses)
        assert len(alice.history) == 1
        assert alice.history[0].key == 1
        assert len(bob.history) == 1
        assert bob.history[0].key == 2

    def test_complete_ignores_unknown_seq(self, store):
        client = Client(store, client_id=5)
        from repro.types import Response

        client.complete([Response(key=1, value=b"x", client_id=5, seq=999)])
        assert client.history == []

    def test_client_ids_unique_by_default(self, store):
        a, b = Client(store), Client(store)
        assert a.client_id != b.client_id

    def test_pending_cleared_after_completion(self, store):
        client = Client(store)
        seq = client.submit_read(1)
        assert seq in client._pending
        client.complete(store.run_epoch())
        assert seq not in client._pending
