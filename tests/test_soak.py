"""Soak test: a multi-epoch, multi-client, multi-balancer campaign.

One sustained scenario exercising most of the stack at once: bursty
arrivals, duplicate-heavy workloads, interleaved reads/writes from four
clients over two balancers and three subORAMs, with a full
linearizability check and a final state audit at the end.
"""

import random
import time

from repro.core.client import Client
from repro.core.config import SnoopyConfig
from repro.core.linearizability import History, check_snoopy_history
from repro.core.snoopy import Snoopy
from repro.types import OpType, Request


def test_soak_campaign():
    rng = random.Random(0xDECAF)
    config = SnoopyConfig(
        num_load_balancers=2,
        num_suborams=3,
        value_size=4,
        security_parameter=16,
    )
    store = Snoopy(config, rng=random.Random(1))
    initial = {k: bytes([k % 256]) * 4 for k in range(60)}
    store.initialize(dict(initial))
    clients = [Client(store, client_id=i) for i in range(4)]

    expected = dict(initial)
    for epoch in range(12):
        # Bursty epochs: some quiet, some heavy and duplicate-ridden.
        burst = rng.choice([0, 1, 2, 6])
        epoch_writes = {}
        for client in clients:
            for _ in range(burst):
                key = rng.randrange(20) if rng.random() < 0.7 else rng.randrange(60)
                if rng.random() < 0.4:
                    value = bytes([epoch, client.client_id, 0, 0])
                    client.submit_write(key, value)
                else:
                    client.submit_read(key)
        responses = store.run_epoch()
        for client in clients:
            client.complete(responses)

    operations = [op for client in clients for op in client.history]
    check_snoopy_history(History(initial=initial, operations=operations))

    # Final state audit: replay the history's writes in linearization
    # order and compare against direct reads.
    from repro.core.linearizability import snoopy_linearization_order

    state = dict(initial)
    for op in snoopy_linearization_order(operations):
        if op.op is OpType.WRITE:
            state[op.key] = op.written
    for key in range(60):
        assert store.read(key) == state[key], key


def test_workload_insensitivity_wall_clock():
    """§8: the request distribution cannot affect performance.  The
    *functional* epoch cost for R uniform requests and R identical
    requests is the same work (same batch shapes), so wall-clock times
    match within noise."""
    def epoch_seconds(keys):
        store = Snoopy(
            SnoopyConfig(num_suborams=2, value_size=4, security_parameter=32),
            rng=random.Random(2),
        )
        store.initialize({k: bytes(4) for k in range(80)})
        requests = [Request(OpType.READ, k, seq=i) for i, k in enumerate(keys)]
        start = time.perf_counter()
        store.batch(requests)
        return time.perf_counter() - start

    rng = random.Random(3)
    uniform = min(epoch_seconds(rng.sample(range(80), 24)) for _ in range(3))
    skewed = min(epoch_seconds([7] * 24) for _ in range(3))
    ratio = max(uniform, skewed) / min(uniform, skewed)
    assert ratio < 2.0, f"distribution changed epoch cost by {ratio:.2f}x"
