"""Tests for the Pancake-lite frequency-smoothing baseline."""

import random

import pytest

from repro.baselines.pancake import PancakeProxy
from repro.errors import ConfigurationError


def zipf_distribution(num_keys: int, exponent: float = 1.2):
    weights = [1.0 / (rank**exponent) for rank in range(1, num_keys + 1)]
    total = sum(weights)
    return {key: weights[key] / total for key in range(num_keys)}


def make_proxy(num_keys=32, seed=1, **kwargs):
    objects = {k: bytes([k]) for k in range(num_keys)}
    return PancakeProxy(
        objects,
        zipf_distribution(num_keys),
        rng=random.Random(seed),
        **kwargs,
    )


class TestCorrectness:
    def test_read(self):
        proxy = make_proxy()
        assert proxy.read(5) == bytes([5])

    def test_write_returns_prior_and_updates(self):
        proxy = make_proxy()
        assert proxy.write(5, b"x") == bytes([5])
        for _ in range(10):  # all replicas must agree
            assert proxy.read(5) == b"x"

    def test_randomized_against_model(self):
        rng = random.Random(2)
        proxy = make_proxy(seed=3)
        model = {k: bytes([k]) for k in range(32)}
        for _ in range(300):
            key = rng.randrange(32)
            if rng.random() < 0.4:
                value = bytes([rng.randrange(256)])
                assert proxy.write(key, value) == model[key]
                model[key] = value
            else:
                assert proxy.read(key) == model[key]


class TestReplication:
    def test_popular_keys_replicated_more(self):
        proxy = make_proxy()
        assert proxy.replica_count(0) > proxy.replica_count(31)

    def test_every_key_has_a_replica(self):
        proxy = make_proxy()
        assert all(proxy.replica_count(k) >= 1 for k in range(32))

    def test_replica_budget_respected(self):
        proxy = make_proxy()
        assert proxy.num_replicas < 4 * 32

    def test_distribution_must_match_keys(self):
        with pytest.raises(ConfigurationError):
            PancakeProxy({1: b"x"}, {2: 1.0})

    def test_distribution_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            PancakeProxy({1: b"x"}, {1: 0.5})


class TestSmoothing:
    def test_skewed_workload_looks_uniform_at_server(self):
        """The §10 claim: server-visible accesses are smoothed even when
        the client workload is extremely skewed."""
        rng = random.Random(4)
        proxy = make_proxy(seed=5)
        distribution = zipf_distribution(32)
        keys = list(range(32))
        weights = [distribution[k] for k in keys]
        for _ in range(4000):
            [key] = rng.choices(keys, weights=weights)
            proxy.read(key)
        # Without smoothing, the hottest key (~27% of accesses over a
        # couple of slots) would dominate; smoothed, the max/mean ratio
        # across replicas stays small.
        assert proxy.smoothness() < 2.5, proxy.smoothness()

    def test_batch_of_b_accesses_per_request(self):
        proxy = make_proxy(batch_size=3)
        proxy.read(1)
        assert len(proxy.access_log) == 3
        proxy.write(2, b"v")
        assert len(proxy.access_log) == 6

    def test_contrast_unsmoothed_histogram(self):
        """Sanity for the test above: raw access counts per *key* are
        wildly skewed, so flat replica counts demonstrate real smoothing."""
        distribution = zipf_distribution(32)
        assert distribution[0] / distribution[31] > 20
