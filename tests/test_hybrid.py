"""Tests for the pluggable subORAM factory and the functional
Snoopy-Oblix hybrid (the Fig. 10 system, running for real)."""

import random

import pytest

from repro.baselines.oblix import OblixSubOram
from repro.core.config import SnoopyConfig
from repro.core.snoopy import Snoopy
from repro.types import OpType, Request


def make_hybrid(seed=1, **config_kwargs):
    config = SnoopyConfig(
        num_load_balancers=1,
        num_suborams=2,
        value_size=4,
        security_parameter=16,
        **config_kwargs,
    )
    store = Snoopy(
        config,
        rng=random.Random(seed),
        suboram_factory=lambda s, cfg, kc: OblixSubOram(
            s, rng=random.Random(seed + s)
        ),
    )
    store.initialize({k: bytes([k]) * 4 for k in range(40)})
    return store


class TestHybridFunctional:
    def test_read_write(self):
        store = make_hybrid()
        assert store.read(5) == bytes([5]) * 4
        assert store.write(5, b"zzzz") == bytes([5]) * 4
        assert store.read(5) == b"zzzz"

    def test_batch_with_duplicates(self):
        store = make_hybrid()
        responses = store.batch(
            [Request(OpType.READ, k % 10, seq=i) for i, k in enumerate(range(25))]
        )
        assert len(responses) == 25
        assert all(r.value == bytes([r.key]) * 4 for r in responses)

    def test_randomized_against_model(self):
        rng = random.Random(7)
        store = make_hybrid(seed=8)
        model = {k: bytes([k]) * 4 for k in range(40)}
        for _ in range(8):
            keys = rng.sample(range(40), 5)
            requests, writes = [], {}
            for i, k in enumerate(keys):
                if rng.random() < 0.5:
                    v = bytes([rng.randrange(256)]) * 4
                    requests.append(Request(OpType.WRITE, k, v, seq=i))
                    writes[k] = v
                else:
                    requests.append(Request(OpType.READ, k, seq=i))
            for r in store.batch(requests):
                assert r.value == model[r.key]
            model.update(writes)

    def test_partition_sizes_exposed(self):
        store = make_hybrid()
        assert sum(store.partition_sizes) == 40

    def test_hybrid_does_more_oram_work_than_native(self):
        """Each hybrid batch costs B full ORAM accesses per subORAM."""
        store = make_hybrid()
        accesses_before = [s._map.data_oram.accesses for s in store.suborams]
        store.batch([Request(OpType.READ, k, seq=k) for k in range(10)])
        accesses_after = [s._map.data_oram.accesses for s in store.suborams]
        total = sum(a - b for a, b in zip(accesses_after, accesses_before))
        # Every batch slot (real + dummy) triggers a data-ORAM access.
        assert total >= 10


class TestFactoryContract:
    def test_default_factory_used_when_none(self):
        from repro.suboram.suboram import SubOram

        store = Snoopy(SnoopyConfig(value_size=4, security_parameter=16))
        assert all(isinstance(s, SubOram) for s in store.suborams)

    def test_factory_receives_ids_in_order(self):
        seen = []

        def factory(suboram_id, config, keychain):
            seen.append(suboram_id)
            return OblixSubOram(suboram_id)

        Snoopy(
            SnoopyConfig(num_suborams=3, value_size=4, security_parameter=16),
            suboram_factory=factory,
        )
        assert seen == [0, 1, 2]
