"""Tests for the ticket front-door API (repro.core.tickets)."""

import random

import pytest

from repro.core.config import SnoopyConfig
from repro.core.deployment import DistributedSnoopy
from repro.core.snoopy import Snoopy
from repro.core.tickets import Ticket, TicketBook
from repro.errors import TicketPendingError
from repro.types import OpType, Request, Response


@pytest.fixture
def store():
    config = SnoopyConfig(
        num_load_balancers=2, num_suborams=2, value_size=4,
        security_parameter=16,
    )
    s = Snoopy(config, rng=random.Random(0))
    s.initialize({k: bytes([k]) * 4 for k in range(20)})
    return s


class TestTicket:
    def test_submit_returns_ticket(self, store):
        ticket = store.submit(Request(OpType.READ, 3), load_balancer=1)
        assert isinstance(ticket, Ticket)
        assert ticket.load_balancer == 1
        assert ticket.arrival == 0
        assert ticket.request.key == 3

    def test_pending_before_epoch(self, store):
        ticket = store.submit(Request(OpType.READ, 3))
        assert not ticket.done
        assert ticket.epoch is None
        with pytest.raises(TicketPendingError):
            ticket.result()

    def test_resolves_at_epoch_close(self, store):
        ticket = store.submit(Request(OpType.READ, 5), load_balancer=0)
        store.run_epoch()
        assert ticket.done
        assert ticket.epoch == store.counter.value
        response = ticket.result()
        assert response.key == 5
        assert response.value == bytes([5]) * 4

    def test_write_ticket_returns_prior_value(self, store):
        ticket = store.submit(
            Request(OpType.WRITE, 4, b"NEWV"), load_balancer=0
        )
        store.run_epoch()
        assert ticket.result().value == bytes([4]) * 4  # prior contents
        assert store.read(4) == b"NEWV"

    def test_each_ticket_gets_its_own_response(self, store):
        tickets = [
            store.submit(Request(OpType.READ, k, seq=k)) for k in range(8)
        ]
        store.run_epoch()
        for k, ticket in enumerate(tickets):
            assert ticket.result().key == k

    def test_arrival_indices_are_per_balancer(self, store):
        t0 = store.submit(Request(OpType.READ, 1), load_balancer=0)
        t1 = store.submit(Request(OpType.READ, 2), load_balancer=1)
        t2 = store.submit(Request(OpType.READ, 3), load_balancer=0)
        assert (t0.load_balancer, t0.arrival) == (0, 0)
        assert (t1.load_balancer, t1.arrival) == (1, 0)
        assert (t2.load_balancer, t2.arrival) == (0, 1)

    def test_repr_shows_state(self, store):
        ticket = store.submit(Request(OpType.READ, 1), load_balancer=0)
        assert "pending" in repr(ticket)
        store.run_epoch()
        assert "done" in repr(ticket)

    def test_tuple_unpacking_shim_removed(self, store):
        ticket = store.submit(Request(OpType.READ, 1), load_balancer=1)
        with pytest.raises(TypeError):
            balancer, arrival = ticket

    def test_tickets_survive_multiple_epochs(self, store):
        first = store.submit(Request(OpType.READ, 1))
        store.run_epoch()
        second = store.submit(Request(OpType.READ, 2))
        store.run_epoch()
        assert first.epoch == 1
        assert second.epoch == 2
        assert first.result().key == 1
        assert second.result().key == 2


class TestDoneCallbacks:
    def test_callback_after_resolve_fires_immediately(self, store):
        ticket = store.submit(Request(OpType.READ, 2), load_balancer=0)
        store.run_epoch()
        seen = []
        ticket.add_done_callback(seen.append)
        assert seen == [ticket]

    def test_callback_before_resolve_fires_once_at_epoch(self, store):
        ticket = store.submit(Request(OpType.READ, 2), load_balancer=0)
        seen = []
        ticket.add_done_callback(seen.append)
        assert seen == []
        store.run_epoch()
        assert seen == [ticket]
        assert seen[0].result().key == 2

    def test_multiple_callbacks_fire_in_registration_order(self, store):
        ticket = store.submit(Request(OpType.READ, 3), load_balancer=0)
        order = []
        ticket.add_done_callback(lambda t: order.append("a"))
        ticket.add_done_callback(lambda t: order.append("b"))
        store.run_epoch()
        assert order == ["a", "b"]

    def test_callback_sees_resolved_ticket(self):
        ticket = Ticket(0, 0, Request(OpType.READ, 9))
        captured = {}

        def on_done(t):
            captured["done"] = t.done
            captured["epoch"] = t.epoch

        ticket.add_done_callback(on_done)
        ticket._resolve(Response(key=9, value=b"v"), epoch=4)
        assert captured == {"done": True, "epoch": 4}

    def test_callbacks_under_pipelined_resolution(self):
        """Callbacks registered on the submitting thread fire for tickets
        resolved by the pipeline's match thread."""
        config = SnoopyConfig(
            num_load_balancers=2, num_suborams=2, value_size=4,
            security_parameter=16,
        )
        with Snoopy(config, rng=random.Random(0)) as s:
            s.initialize({k: bytes([k]) * 4 for k in range(16)})
            with s.start_pipeline(depth=2, clock=False) as pipe:
                seen = []
                tickets = [
                    s.submit(Request(OpType.READ, k, seq=k)) for k in range(8)
                ]
                for ticket in tickets:
                    ticket.add_done_callback(seen.append)
                pipe.close_epoch(wait=True)
                pipe.flush()
            assert sorted(t.request.key for t in seen) == list(range(8))
            assert all(t.done for t in seen)


class TestTicketBook:
    def test_issue_and_pending_counts(self):
        book = TicketBook(2)
        book.issue(0, 0)
        book.issue(0, 1)
        book.issue(1, 0)
        assert book.pending(0) == 2
        assert book.pending(1) == 1

    def test_resolve_clears_pending(self):
        book = TicketBook(1)
        ticket = book.issue(0, 0)
        book.resolve(0, [Response(key=1, value=b"x")], epoch=3)
        assert book.pending(0) == 0
        assert ticket.result().key == 1
        assert ticket.epoch == 3

    def test_resolve_length_mismatch_raises(self):
        book = TicketBook(1)
        book.issue(0, 0)
        with pytest.raises(AssertionError):
            book.resolve(0, [], epoch=1)


class TestDistributedTickets:
    def test_distributed_submit_returns_resolving_ticket(self):
        config = SnoopyConfig(
            num_load_balancers=2, num_suborams=2, value_size=4,
            security_parameter=16,
        )
        with DistributedSnoopy(config, rng=random.Random(0)) as store:
            store.initialize({k: bytes([k]) * 4 for k in range(10)})
            ticket = store.submit(Request(OpType.READ, 7), load_balancer=0)
            assert not ticket.done
            store.run_epoch()
            assert ticket.result().value == bytes([7]) * 4
