"""Tests for workload generators."""

import random

import pytest

from repro.sim.workload import (
    ZipfSampler,
    bursty_arrivals,
    poisson_arrivals,
    uniform_requests,
    zipf_requests,
)
from repro.types import OpType


class TestUniform:
    def test_count_and_bounds(self):
        requests = uniform_requests(100, 50, rng=random.Random(1))
        assert len(requests) == 100
        assert all(0 <= r.key < 50 for r in requests)

    def test_write_fraction(self):
        requests = uniform_requests(
            400, 50, write_fraction=0.25, rng=random.Random(2)
        )
        writes = sum(1 for r in requests if r.op is OpType.WRITE)
        assert 50 < writes < 150

    def test_writes_carry_values_of_right_size(self):
        requests = uniform_requests(
            50, 10, write_fraction=1.0, value_size=16, rng=random.Random(3)
        )
        assert all(len(r.value) == 16 for r in requests)

    def test_seq_assigned(self):
        requests = uniform_requests(10, 5, rng=random.Random(4))
        assert [r.seq for r in requests] == list(range(10))


class TestZipf:
    def test_skew_concentrates_on_low_ranks(self):
        sampler = ZipfSampler(1000, exponent=1.2, rng=random.Random(5))
        samples = [sampler.sample() for _ in range(2000)]
        top_10 = sum(1 for s in samples if s < 10)
        assert top_10 > 400  # heavy head

    def test_bounds(self):
        sampler = ZipfSampler(100, rng=random.Random(6))
        assert all(0 <= sampler.sample() < 100 for _ in range(500))

    def test_requests_wrapper(self):
        requests = zipf_requests(50, 100, rng=random.Random(7))
        assert len(requests) == 50

    def test_rejects_empty_keyspace(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)


class TestArrivals:
    def test_poisson_rate(self):
        times = list(poisson_arrivals(1000, 10.0, random.Random(8)))
        assert 9000 < len(times) < 11000
        assert all(0 <= t < 10.0 for t in times)
        assert times == sorted(times)

    def test_bursty_has_higher_peak_rate(self):
        times = list(
            bursty_arrivals(100, 5000, 10.0, rng=random.Random(9))
        )
        # Count arrivals inside vs outside burst windows.
        in_burst = sum(1 for t in times if (t % 1.0) < 0.2)
        out_burst = len(times) - in_burst
        assert in_burst > 3 * out_burst
