"""Property tests for the vectorized counter-mode AEAD kernel.

:class:`~repro.crypto.vector.VectorAead` is the crypto layer's answer to
the execute-stage bottleneck: one nonce-derived keystream and one
vectorized polynomial MAC per batch instead of one HMAC pipeline per
slot.  That only helps if it is *the same cipher* under both backends,
so the tests here pin:

* bit-identical NumPy vs pure-Python output across value sizes, keys,
  nonces, lane bases, and AAD;
* lane interoperability — sealing one lane scalar-style produces the
  exact bytes of that lane's slice of a batch seal (the store mixes the
  two freely);
* authentication: tamper, truncation, and lane-splice rejection;
* the keystream-reuse invariant's observable — every batch derives a
  fresh keystream from a fresh nonce, never reusing (key, nonce) across
  epochs (see SECURITY.md);
* store integration for ``crypto_kernel="vector"`` including pickle
  round-trips and mixed scalar/batch states.
"""

import os
import pickle

import pytest

from repro.crypto.aead import NONCE_LEN, TAG_LEN
from repro.crypto.vector import (
    CRYPTO_KERNELS,
    VectorAead,
    resolve_crypto_kernel,
)
from repro.errors import IntegrityError
from repro.oblivious import soa
from repro.suboram.store import EncryptedStore

KEY = b"vector-aead-test-key-0123456789ab"[:32]

needs_numpy = pytest.mark.skipif(
    not soa.HAS_NUMPY, reason="NumPy is not installed"
)


def nonce_for(i: int) -> bytes:
    return bytes([i % 256]) * NONCE_LEN


def lane_plain(size: int, lane: int, salt: int = 0) -> bytes:
    return bytes((lane * 31 + j * 7 + salt) % 256 for j in range(size))


class TestSelector:
    def test_kernel_names(self):
        assert CRYPTO_KERNELS == ("hmac", "vector")
        assert resolve_crypto_kernel(None) == "hmac"
        assert resolve_crypto_kernel("vector") == "vector"
        with pytest.raises(ValueError):
            resolve_crypto_kernel("chacha")


class TestBackendBitIdentity:
    """The NumPy fast path and the pure-Python reference are one cipher."""

    @needs_numpy
    @pytest.mark.parametrize("plain_size", [1, 7, 8, 16, 33, 1024])
    @pytest.mark.parametrize("count", [1, 3, 17])
    def test_seal_identical_across_backends(self, plain_size, count):
        fast = VectorAead(KEY, backend="numpy")
        slow = VectorAead(KEY, backend="py")
        nonce = nonce_for(plain_size + count)
        plain = b"".join(lane_plain(plain_size, i) for i in range(count))
        sealed_fast = bytes(fast.seal_lanes(nonce, plain, count, plain_size))
        sealed_slow = bytes(slow.seal_lanes(nonce, plain, count, plain_size))
        assert sealed_fast == sealed_slow
        assert len(sealed_fast) == count * (plain_size + TAG_LEN)
        # And both backends open each other's output.
        assert bytes(
            slow.open_lanes(nonce, sealed_fast, count, plain_size)
        ) == plain
        assert bytes(
            fast.open_lanes(nonce, sealed_slow, count, plain_size)
        ) == plain

    @needs_numpy
    @pytest.mark.parametrize("lane_base", [0, 5, 1 << 33])
    def test_lane_base_and_aad_identical(self, lane_base):
        fast = VectorAead(KEY, backend="numpy")
        slow = VectorAead(KEY, backend="py")
        nonce = nonce_for(9)
        plain = b"".join(lane_plain(24, i) for i in range(4))
        for aad in (b"", b"slot-aad"):
            a = bytes(fast.seal_lanes(
                nonce, plain, 4, 24, lane_base=lane_base, aad=aad
            ))
            b = bytes(slow.seal_lanes(
                nonce, plain, 4, 24, lane_base=lane_base, aad=aad
            ))
            assert a == b

    @needs_numpy
    def test_different_keys_and_nonces_differ(self):
        plain = lane_plain(64, 0)
        base = bytes(
            VectorAead(KEY).seal_lanes(nonce_for(1), plain, 1, 64)
        )
        other_key = bytes(
            VectorAead(os.urandom(32)).seal_lanes(nonce_for(1), plain, 1, 64)
        )
        other_nonce = bytes(
            VectorAead(KEY).seal_lanes(nonce_for(2), plain, 1, 64)
        )
        assert base != other_key
        assert base != other_nonce

    def test_empty_batch(self):
        aead = VectorAead(KEY, backend="py")
        nonce = nonce_for(0)
        assert bytes(aead.seal_lanes(nonce, b"", 0, 16)) == b""
        assert bytes(aead.open_lanes(nonce, b"", 0, 16)) == b""


class TestLaneInterop:
    """Scalar seal_one/open_one interoperate with whole-batch lanes."""

    @needs_numpy
    def test_seal_one_matches_batch_slice(self):
        aead = VectorAead(KEY)
        nonce = nonce_for(3)
        count, size = 6, 40
        plain = b"".join(lane_plain(size, i) for i in range(count))
        sealed = bytes(aead.seal_lanes(nonce, plain, count, size))
        slot = size + TAG_LEN
        for lane in range(count):
            single = bytes(aead.seal_one(
                nonce, lane_plain(size, lane), lane=lane
            ))
            assert single == sealed[lane * slot:(lane + 1) * slot]
            assert bytes(aead.open_one(nonce, single, lane=lane)) == (
                lane_plain(size, lane)
            )

    @needs_numpy
    def test_lane_splice_rejected(self):
        """A blob sealed for lane i must not open at lane j."""
        aead = VectorAead(KEY)
        nonce = nonce_for(4)
        blob = bytes(aead.seal_one(nonce, lane_plain(32, 0), lane=0))
        with pytest.raises(IntegrityError):
            aead.open_one(nonce, blob, lane=1)


class TestAuthentication:
    @pytest.mark.parametrize("backend", ["numpy", "py"])
    def test_tamper_rejected_every_byte_region(self, backend):
        if backend == "numpy" and not soa.HAS_NUMPY:
            pytest.skip("NumPy is not installed")
        aead = VectorAead(KEY, backend=backend)
        nonce = nonce_for(5)
        sealed = bytearray(aead.seal_lanes(
            nonce, lane_plain(48, 0) + lane_plain(48, 1), 2, 48
        ))
        slot = 48 + TAG_LEN
        for offset in (0, 47, 48, slot - 1, slot, 2 * slot - 1):
            broken = bytearray(sealed)
            broken[offset] ^= 0x01
            with pytest.raises(IntegrityError):
                aead.open_lanes(nonce, bytes(broken), 2, 48)

    @pytest.mark.parametrize("backend", ["numpy", "py"])
    def test_truncation_rejected(self, backend):
        if backend == "numpy" and not soa.HAS_NUMPY:
            pytest.skip("NumPy is not installed")
        aead = VectorAead(KEY, backend=backend)
        nonce = nonce_for(6)
        sealed = bytes(aead.seal_lanes(nonce, lane_plain(32, 0), 1, 32))
        with pytest.raises(IntegrityError):
            aead.open_lanes(nonce, sealed[:-1], 1, 32)
        with pytest.raises(IntegrityError):
            aead.open_one(nonce, sealed[:TAG_LEN], lane=0)

    def test_wrong_aad_rejected(self):
        aead = VectorAead(KEY, backend="py")
        nonce = nonce_for(7)
        sealed = bytes(aead.seal_lanes(
            nonce, lane_plain(16, 0), 1, 16, aad=b"right"
        ))
        with pytest.raises(IntegrityError):
            aead.open_lanes(nonce, sealed, 1, 16, aad=b"wrong")


class TestKeystreamUniqueness:
    """One fresh keystream per batch — the SECURITY.md invariant."""

    @needs_numpy
    def test_store_derives_one_keystream_per_batch_with_fresh_nonces(self):
        store = EncryptedStore(
            KEY, num_slots=32, value_size=24, crypto_kernel="vector"
        )
        values = [lane_plain(24, i) for i in range(32)]
        seen_nonces = set()
        for epoch in range(5):
            before = store._vec.keystream_derivations
            store.put_batch(list(range(32)), values)
            # Exactly one seal keystream derivation for the whole batch
            # (plus nothing per slot).
            assert store._vec.keystream_derivations - before <= 2
            nonce = bytes(store._host_nonces[:NONCE_LEN])
            assert nonce not in seen_nonces, "nonce reused across epochs"
            seen_nonces.add(nonce)
        assert len(seen_nonces) == 5

    @needs_numpy
    def test_batch_nonce_replicated_per_slot(self):
        """All slots of one batch share the batch nonce (lane-separated)."""
        store = EncryptedStore(
            KEY, num_slots=8, value_size=16, crypto_kernel="vector"
        )
        store.put_batch(
            list(range(8)), [lane_plain(16, i) for i in range(8)]
        )
        nonces = {
            bytes(store._host_nonces[i * NONCE_LEN:(i + 1) * NONCE_LEN])
            for i in range(8)
        }
        assert len(nonces) == 1


class TestPickling:
    def test_aead_roundtrip_is_equivalent(self):
        aead = VectorAead(KEY, backend="py")
        clone = pickle.loads(pickle.dumps(aead))
        nonce = nonce_for(8)
        plain = lane_plain(20, 0)
        assert bytes(clone.seal_lanes(nonce, plain, 1, 20)) == bytes(
            aead.seal_lanes(nonce, plain, 1, 20)
        )

    @needs_numpy
    def test_vector_store_roundtrip(self):
        store = EncryptedStore(
            KEY, num_slots=16, value_size=32, crypto_kernel="vector"
        )
        store.put_batch(
            list(range(16)), [lane_plain(32, i) for i in range(16)]
        )
        clone = pickle.loads(pickle.dumps(store))
        assert clone.crypto_kernel == "vector"
        for slot in (0, 7, 15):
            assert clone.get(slot) == store.get(slot)
        # The clone keeps working in both batch and scalar modes.
        clone.put(3, key=3, value=b"\x99" * 32)
        assert clone.get(3) == (3, b"\x99" * 32)


class TestStoreIntegration:
    @needs_numpy
    def test_mixed_scalar_and_batch_state(self):
        store = EncryptedStore(
            KEY, num_slots=12, value_size=16, crypto_kernel="vector"
        )
        store.put_batch(
            list(range(12)), [lane_plain(16, i) for i in range(12)]
        )
        # Scalar overwrite gives slot 4 its own nonce; the next batch
        # read must take the mixed (per-slot) open path and still agree.
        store.put(4, key=4, value=b"\x42" * 16)
        keys, values = store.get_batch()
        assert bytes(values[4]) == b"\x42" * 16
        assert bytes(values[0]) == lane_plain(16, 0)
        assert list(keys) == list(range(12))

    @needs_numpy
    def test_store_tamper_detected(self):
        store = EncryptedStore(
            KEY, num_slots=4, value_size=16, crypto_kernel="vector"
        )
        store.put_batch(list(range(4)), [lane_plain(16, i) for i in range(4)])
        store._host_blobs[3] ^= 0x01
        with pytest.raises(IntegrityError):
            store.get_batch()
