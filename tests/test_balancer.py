"""Tests for the LoadBalancer entity."""

import pytest

from repro.errors import ConfigurationError
from repro.loadbalancer.balancer import LoadBalancer
from repro.suboram.suboram import SubOram
from repro.types import OpType, Request

KEY = b"sharding-key-0123456789abcdef..."


def make_deployment(num_suborams=2, num_objects=30):
    suborams = [
        SubOram(suboram_id=s, value_size=4, security_parameter=16)
        for s in range(num_suborams)
    ]
    from repro.crypto.prf import suboram_of

    partitions = [{} for _ in range(num_suborams)]
    for k in range(num_objects):
        partitions[suboram_of(KEY, k, num_suborams)][k] = bytes([k % 256]) * 4
    for so, part in zip(suborams, partitions):
        so.initialize(part)
    balancer = LoadBalancer(0, num_suborams, KEY, security_parameter=16)
    return balancer, suborams


class TestEpochs:
    def test_empty_epoch(self):
        balancer, suborams = make_deployment()
        result = balancer.run_epoch(lambda s, b: suborams[s].batch_access(b))
        assert result == []
        assert balancer.epochs_processed == 1

    def test_queue_drained_each_epoch(self):
        balancer, suborams = make_deployment()
        balancer.submit(Request(OpType.READ, 1, seq=0))
        assert balancer.pending == 1
        balancer.run_epoch(lambda s, b: suborams[s].batch_access(b))
        assert balancer.pending == 0

    def test_submit_returns_arrival_index(self):
        balancer, _ = make_deployment()
        assert balancer.submit(Request(OpType.READ, 1)) == 0
        assert balancer.submit(Request(OpType.READ, 2)) == 1

    def test_read_write_cycle(self):
        balancer, suborams = make_deployment()
        send = lambda s, b: suborams[s].batch_access(b)

        balancer.submit(Request(OpType.WRITE, 5, b"abcd", seq=0))
        [w] = balancer.run_epoch(send)
        assert w.value == bytes([5]) * 4

        balancer.submit(Request(OpType.READ, 5, seq=1))
        [r] = balancer.run_epoch(send)
        assert r.value == b"abcd"

    def test_many_requests_one_epoch(self, rng):
        balancer, suborams = make_deployment(num_suborams=3)
        send = lambda s, b: suborams[s].batch_access(b)
        keys = [rng.randrange(30) for _ in range(25)]
        for i, k in enumerate(keys):
            balancer.submit(Request(OpType.READ, k, seq=i))
        results = balancer.run_epoch(send)
        assert [r.key for r in results] == keys
        assert all(r.value == bytes([r.key % 256]) * 4 for r in results)

    def test_rejects_zero_suborams(self):
        with pytest.raises(ConfigurationError):
            LoadBalancer(0, 0, KEY)
