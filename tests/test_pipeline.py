"""The pipelined epoch scheduler: equivalence, linearizability, rollback.

The pipeline overlaps build/execute/match across epochs, so its proof
obligations are exactly the sequential scheduler's plus ordering: every
configuration cell must serve byte-identical responses to the sequential
reference, retried mid-pipeline epochs must preserve Appendix C's
linearization, and a fatally failed epoch must roll every in-flight
successor back without reordering the balancer queues.
"""

import threading
import time

import pytest

from repro.core.client import Client
from repro.core.faults import FaultEvent, FaultPlan
from repro.core.linearizability import History, check_snoopy_history
from repro.core.tickets import TicketBook
from repro.errors import ConfigurationError, TicketPendingError, WorkerCrashError
from repro.sim.latency import latency_suboram_factory
from repro.telemetry.overlap import (
    StageInterval,
    StageIntervalRecorder,
    occupancy_table,
    overlap_seconds,
)
from repro.types import OpType, Request, Response

from tests.harness import (
    assert_equivalent,
    build_store,
    differential_run,
    run_workload,
    seeded_workload,
)

MASTER = b"pipeline-test-master-key-0123456"[:32]
NUM_KEYS = 40
WORKLOAD = seeded_workload(5, 8, seed=31, num_keys=NUM_KEYS, num_balancers=3)
OBJECTS = {k: bytes([k % 256]) * 8 for k in range(NUM_KEYS)}

#: Stage-➋ chaos hitting two distinct mid-pipeline epochs.
CHAOS_PLAN = FaultPlan([
    FaultEvent(epoch=2, kind="worker_crash", unit=1),
    FaultEvent(epoch=4, kind="task_timeout", unit=0),
])


def _plan():
    return FaultPlan(CHAOS_PLAN.events)


# ---------------------------------------------------------------------------
# Differential matrix: pipelined == sequential, cell by cell
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def sequential_reference():
    """The fault-free serial/python sequential cell every run must match."""
    runs = differential_run(
        WORKLOAD, OBJECTS, master=MASTER,
        backends=("serial",), kernels=("python",),
        num_load_balancers=3,
    )
    return runs[0]


@pytest.fixture(scope="module")
def pipelined_matrix():
    """Every (backend, kernel, plan) cell driven through the pipeline."""
    return differential_run(
        WORKLOAD, OBJECTS, master=MASTER,
        backends=("serial", "thread:4", "process:2"),
        kernels=("python", "numpy"),
        fault_plans=(("fault-free", None), ("chaos", _plan)),
        num_load_balancers=3,
        pipelined=True,
    )


class TestPipelinedDifferentialMatrix:
    def test_matrix_covers_every_cell(self, pipelined_matrix):
        assert len({run.key for run in pipelined_matrix}) == 12

    def test_every_cell_matches_the_sequential_reference(
        self, pipelined_matrix, sequential_reference
    ):
        """Responses, ticket results, and invariant metrics all match."""
        assert_equivalent(
            list(pipelined_matrix) + [sequential_reference],
            reference=sequential_reference,
        )

    def test_chaos_cells_actually_injected_faults(self, pipelined_matrix):
        for run in pipelined_matrix:
            if run.plan_name != "chaos":
                continue
            assert run.fault_stats["worker_crashes"] == 1, run.key
            assert run.fault_stats["tasks_timed_out"] == 1, run.key
            assert run.fault_stats["epochs_failed"] == 2, run.key

    def test_depth_does_not_change_served_bytes(self, sequential_reference):
        for depth in (1, 3):
            store = build_store(
                "thread:4", master=MASTER, objects=dict(OBJECTS),
                num_load_balancers=3,
            )
            try:
                responses, _ = run_workload(
                    store, WORKLOAD, pipelined=True, pipeline_depth=depth
                )
                assert responses == sequential_reference.responses
            finally:
                store.close()


# ---------------------------------------------------------------------------
# Linearizability of a retried mid-pipeline epoch
# ---------------------------------------------------------------------------
class TestLinearizabilityOfRetriedMidPipelineEpoch:
    def test_history_with_retried_epochs_is_linearizable(self):
        """Appendix C survives an epoch retried while successors queue.

        Clients submit across six pipelined epochs while the chaos plan
        fails two of them mid-pipeline; completion goes through
        :meth:`Client.complete_ticket`, whose ``end_epoch`` is the exact
        epoch each ticket resolved in (the trusted counter has already
        advanced past it under pipelining).
        """
        import random

        rng = random.Random(13)
        initial = {k: bytes([k]) * 8 for k in range(20)}
        store = build_store(
            "thread:4", master=MASTER, objects=dict(initial),
            num_load_balancers=3, num_suborams=2,
            plan=_plan(), max_attempts=3,
        )
        clients = [Client(store, client_id=i) for i in range(4)]
        issued = []
        original_submit = store.submit

        def recording_submit(request, load_balancer=None):
            ticket = original_submit(request, load_balancer)
            issued.append(ticket)
            return ticket

        store.submit = recording_submit
        pipeline = store.start_pipeline(clock=False)
        try:
            for _ in range(6):
                for client in clients:
                    for _ in range(rng.randrange(3)):
                        key = rng.randrange(20)
                        if rng.random() < 0.5:
                            client.submit_write(
                                key, bytes([rng.randrange(256)]) * 8
                            )
                        else:
                            client.submit_read(key)
                pipeline.close_epoch()
            pipeline.flush()
        finally:
            pipeline.stop()
            store.close()
        assert store.fault_stats["epochs_failed"] == 2
        for ticket in issued:
            assert ticket.done
            for client in clients:
                client.complete_ticket(ticket)
        operations = [o for c in clients for o in c.history]
        assert operations, "history should be non-empty"
        assert len(operations) == len(issued)
        check_snoopy_history(History(initial=initial, operations=operations))


# ---------------------------------------------------------------------------
# Clock-driven pipelining
# ---------------------------------------------------------------------------
class TestEpochClock:
    def test_clock_closes_epochs_without_manual_pacing(self):
        store = build_store(
            "thread:4", master=MASTER, objects=dict(OBJECTS),
            num_load_balancers=3,
        )
        try:
            pipeline = store.start_pipeline(epoch_duration=0.02)
            tickets = [
                store.submit(Request(OpType.READ, key))
                for key in (1, 5, 9, 13)
            ]
            deadline = time.monotonic() + 10.0
            while (
                any(not t.done for t in tickets)
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            pipeline.stop()
            for ticket in tickets:
                response = ticket.result()
                assert response.value == OBJECTS[response.key]
            assert store.counter.value >= 1
        finally:
            store.close()

    def test_config_epoch_duration_is_the_default_period(self):
        store = build_store(
            "serial", master=MASTER, objects=dict(OBJECTS),
            num_load_balancers=3,
        )
        try:
            pipeline = store.start_pipeline(epoch_duration=0.015)
            assert pipeline.clock_period == 0.015
            pipeline.stop()
        finally:
            store.close()


# ---------------------------------------------------------------------------
# Backpressure, poisoning, and rollback
# ---------------------------------------------------------------------------
class TestBackpressureAndRollback:
    def test_nonblocking_close_skips_when_depth_exhausted(self):
        store = build_store(
            "thread:4", master=MASTER, objects=dict(OBJECTS),
            num_load_balancers=3,
            suboram_factory=latency_suboram_factory(0.15),
        )
        try:
            pipeline = store.start_pipeline(depth=1, clock=False)
            store.submit(Request(OpType.READ, 1))
            assert pipeline.close_epoch(wait=False) is not None
            store.submit(Request(OpType.READ, 2))
            # The single slot is still held by the in-flight epoch.
            assert pipeline.close_epoch(wait=False) is None
            pipeline.flush()
            pipeline.stop()
        finally:
            store.close()

    def test_empty_close_returns_none_and_preserves_epoch_counters(self):
        store = build_store(
            "serial", master=MASTER, objects=dict(OBJECTS),
            num_load_balancers=3,
        )
        try:
            pipeline = store.start_pipeline(clock=False)
            assert pipeline.close_epoch() is None
            assert store.counter.value == 0
            assert all(
                b.epochs_processed == 0 for b in store.load_balancers
            )
            pipeline.stop()
        finally:
            store.close()

    def test_fatal_failure_poisons_and_rolls_back_all_inflight_epochs(self):
        """Exhausted retries roll back the failed epoch AND successors."""
        plan = FaultPlan([
            FaultEvent(epoch=1, kind="worker_crash", unit=0),
        ])
        store = build_store(
            "serial", master=MASTER, objects=dict(OBJECTS),
            num_load_balancers=2, plan=plan, max_attempts=1,
        )
        try:
            pipeline = store.start_pipeline(depth=3, clock=False)
            first = [
                store.submit(Request(OpType.READ, k, seq=i))
                for i, k in enumerate((1, 3, 5))
            ]
            pipeline.close_epoch()
            second = [
                store.submit(Request(OpType.READ, k, seq=i))
                for i, k in enumerate((2, 4))
            ]
            pipeline.close_epoch()
            with pytest.raises(WorkerCrashError):
                pipeline.flush()
            assert isinstance(pipeline.error, WorkerCrashError)
            # Poisoned: new submissions and closes re-raise.
            with pytest.raises(WorkerCrashError):
                store.submit(Request(OpType.READ, 7))
            with pytest.raises(WorkerCrashError):
                pipeline.close_epoch()
            for ticket in first + second:
                assert not ticket.done
            pipeline.stop()
            assert not pipeline.active
            # Requests were requeued in close order; the sequential
            # scheduler now serves them exactly once, oldest first.
            assert sum(b.pending for b in store.load_balancers) == 5
            responses = store.run_epoch()
            assert len(responses) == 5
            for ticket in first + second:
                assert ticket.result().value == OBJECTS[
                    ticket.result().key
                ]
        finally:
            store.close()

    def test_stop_is_idempotent_and_context_manager_stops(self):
        store = build_store(
            "serial", master=MASTER, objects=dict(OBJECTS),
            num_load_balancers=3,
        )
        try:
            with store.start_pipeline(clock=False) as pipeline:
                store.submit(Request(OpType.READ, 1))
            assert not pipeline.active
            pipeline.stop()  # second stop is a no-op
            # The context-manager exit flushed the queued request.
            assert store.counter.value == 1
        finally:
            store.close()

    def test_run_epoch_is_guarded_while_pipeline_is_active(self):
        store = build_store(
            "serial", master=MASTER, objects=dict(OBJECTS),
            num_load_balancers=3,
        )
        try:
            pipeline = store.start_pipeline(clock=False)
            with pytest.raises(ConfigurationError):
                store.run_epoch()
            with pytest.raises(ConfigurationError):
                store.start_pipeline(clock=False)
            pipeline.stop()
            # After stop the sequential path works again.
            store.submit(Request(OpType.READ, 2))
            assert len(store.run_epoch()) == 1
        finally:
            store.close()

    def test_stats_and_occupancy_report_real_overlap_shape(self):
        store = build_store(
            "thread:4", master=MASTER, objects=dict(OBJECTS),
            num_load_balancers=3,
        )
        try:
            responses, _ = run_workload(store, WORKLOAD, pipelined=True)
            pipeline = store.pipeline
            stats = pipeline.stats
            assert stats["epochs_completed"] == len(WORKLOAD)
            assert stats["inflight"] == 0
            assert 1 <= stats["max_inflight"] <= stats["depth"]
            rows = {row["stage"]: row for row in pipeline.occupancy()}
            assert set(rows) == {"build", "execute", "match"}
            for row in rows.values():
                assert row["count"] == len(WORKLOAD)
                assert row["busy_s"] > 0
                assert row["span_s"] >= row["busy_s"] - 1e-9
        finally:
            store.close()


# ---------------------------------------------------------------------------
# Ticket cuts
# ---------------------------------------------------------------------------
class TestTicketCuts:
    def test_cut_snapshots_and_clears_pending(self):
        book = TicketBook(2)
        t0 = book.issue(0, 0)
        t1 = book.issue(1, 0)
        cut = book.cut()
        assert cut == [[t0], [t1]]
        # New issues land in a fresh pending epoch.
        t2 = book.issue(0, 0)
        second = book.cut()
        assert second == [[t2], []]

    def test_resolve_cut_resolves_only_the_cut_epoch(self):
        book = TicketBook(2)
        t0 = book.issue(0, 0)
        cut = book.cut()
        t1 = book.issue(0, 0)  # next epoch's ticket stays pending
        resolved = TicketBook.resolve_cut(
            cut, [[Response(key=1, value=b"x")], []], epoch=7
        )
        assert resolved == 1
        assert t0.done and t0.epoch == 7
        assert not t1.done
        with pytest.raises(TicketPendingError):
            t1.result()

    def test_restore_prepends_cut_before_newer_tickets(self):
        book = TicketBook(1)
        t0 = book.issue(0, 0)
        cut = book.cut()
        t1 = book.issue(0, 0)
        book.restore(cut)
        # A later resolve sees the restored ticket first (arrival order).
        resolved = TicketBook.resolve_cut(
            book.cut(),
            [[Response(key=1, value=b"a"), Response(key=2, value=b"b")]],
            epoch=3,
        )
        assert resolved == 2
        assert t0.result().value == b"a"
        assert t1.result().value == b"b"


# ---------------------------------------------------------------------------
# Overlap/occupancy pure functions
# ---------------------------------------------------------------------------
class TestOverlapMetrics:
    def test_overlap_requires_later_epoch_by_default(self):
        intervals = [
            StageInterval("execute", epoch=1, start=0.0, end=1.0),
            StageInterval("build", epoch=2, start=0.5, end=1.5),
        ]
        assert overlap_seconds(intervals, "build", "execute") == (
            pytest.approx(0.5)
        )
        # Same-epoch concurrency does not count as pipelining.
        same = [
            StageInterval("execute", epoch=1, start=0.0, end=1.0),
            StageInterval("build", epoch=1, start=0.5, end=1.5),
        ]
        assert overlap_seconds(same, "build", "execute") == 0.0
        assert overlap_seconds(
            same, "build", "execute", require_later_epoch=False
        ) == pytest.approx(0.5)

    def test_occupancy_table_uses_common_span(self):
        intervals = [
            StageInterval("build", epoch=1, start=0.0, end=1.0),
            StageInterval("execute", epoch=1, start=1.0, end=4.0),
        ]
        rows = {r["stage"]: r for r in occupancy_table(intervals)}
        assert rows["build"]["span_s"] == pytest.approx(4.0)
        assert rows["build"]["occupancy"] == pytest.approx(0.25)
        assert rows["execute"]["occupancy"] == pytest.approx(0.75)

    def test_empty_recorder_reports_zero_rows(self):
        recorder = StageIntervalRecorder()
        assert recorder.intervals == []
        rows = occupancy_table([], stages=("build",))
        assert rows == [{
            "stage": "build", "count": 0.0, "busy_s": 0.0,
            "span_s": 0.0, "occupancy": 0.0,
        }]

    def test_recorder_is_thread_safe_and_feeds_telemetry(self):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        recorder = StageIntervalRecorder(telemetry=telemetry)

        def record_many(stage):
            for i in range(50):
                recorder.record(stage, i, float(i), float(i) + 0.5)

        threads = [
            threading.Thread(target=record_many, args=(stage,))
            for stage in ("build", "execute")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(recorder.intervals) == 100
        # Busy time is wall-clock-valued, so it is *not* in the public
        # snapshot; read the counter directly.
        busy = telemetry.registry.counter(
            "pipeline_stage_busy_seconds_total", stage="build"
        ).value
        assert busy == pytest.approx(25.0)
