"""Tests for the epoch-level discrete-event simulator."""

import random

import pytest

from repro.sim.events import EpochSimConfig, EpochSimulator
from repro.sim.workload import poisson_arrivals


def simulate(rate=1000, duration=5.0, epoch_duration=0.2, **config_kwargs):
    config = EpochSimConfig(
        num_suborams=4,
        num_objects=200_000,
        epoch_duration=epoch_duration,
        **config_kwargs,
    )
    sim = EpochSimulator(config)
    return sim.run(poisson_arrivals(rate, duration, random.Random(1)))


class TestSimulation:
    def test_all_requests_complete(self):
        stats = simulate(rate=500, duration=2.0)
        assert 800 < stats.count < 1200  # ~ rate * duration

    def test_empty_arrivals(self):
        sim = EpochSimulator(EpochSimConfig())
        assert sim.run([]).count == 0

    def test_latency_at_least_wait_plus_processing(self):
        stats = simulate()
        assert stats.mean > 0.05  # at least some epoch waiting

    def test_eq2_bound_under_sustainable_load(self):
        """Eq. (2): mean latency <= 5T/2 when the pipeline keeps up."""
        stats = simulate(rate=1000, duration=5.0)
        assert stats.mean <= 5 * 0.2 / 2

    def test_overload_blows_the_bound(self):
        """Offered load beyond capacity queues up and violates Eq. (2)."""
        stats = simulate(rate=120_000, duration=3.0)
        assert stats.mean > 5 * 0.2 / 2

    def test_longer_epochs_raise_latency(self):
        short = simulate(epoch_duration=0.1)
        # replace default epoch via kwargs trick: EpochSimConfig epoch set
        long = EpochSimulator(
            EpochSimConfig(num_suborams=4, num_objects=200_000, epoch_duration=0.8)
        ).run(poisson_arrivals(1000, 5.0, random.Random(1)))
        assert long.mean > short.mean

    def test_percentiles_ordered(self):
        stats = simulate()
        assert stats.p50 <= stats.p95 <= stats.p99 <= stats.maximum


class TestMetrics:
    def test_latency_stats(self):
        from repro.sim.metrics import LatencyStats, throughput

        stats = LatencyStats()
        stats.extend([0.1, 0.2, 0.3, 0.4])
        assert stats.mean == pytest.approx(0.25)
        assert stats.p50 == 0.2
        assert stats.maximum == 0.4
        assert throughput(100, 2.0) == 50.0
        assert throughput(100, 0) == 0.0

    def test_empty_stats(self):
        from repro.sim.metrics import LatencyStats

        stats = LatencyStats()
        assert stats.mean == 0.0
        assert stats.p95 == 0.0
        assert stats.maximum == 0.0
