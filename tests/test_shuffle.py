"""Tests for the oblivious shuffle."""

import random

import pytest

from repro.oblivious.memory import AccessTrace, TracedMemory
from repro.oblivious.shuffle import oblivious_shuffle, permutation_of


class TestShuffle:
    def test_is_permutation(self):
        items = list(range(50))
        shuffled = oblivious_shuffle(items, key=b"k" * 32)
        assert sorted(shuffled) == items

    def test_deterministic_for_key(self):
        items = list(range(30))
        assert oblivious_shuffle(items, key=b"a" * 32) == oblivious_shuffle(
            items, key=b"a" * 32
        )

    def test_key_changes_permutation(self):
        items = list(range(64))
        assert oblivious_shuffle(items, key=b"a" * 32) != oblivious_shuffle(
            items, key=b"b" * 32
        )

    def test_fresh_key_by_default(self):
        items = list(range(64))
        # Two unkeyed shuffles almost surely differ.
        assert oblivious_shuffle(items) != oblivious_shuffle(items) or True
        assert sorted(oblivious_shuffle(items)) == items

    def test_empty_and_single(self):
        assert oblivious_shuffle([]) == []
        assert oblivious_shuffle([9]) == [9]

    def test_roughly_uniform_positions(self):
        """Element 0 lands everywhere across many keys."""
        rng = random.Random(1)
        n = 16
        landing = set()
        for _ in range(100):
            key = bytes(rng.getrandbits(8) for _ in range(32))
            landing.add(permutation_of(n, key).index(0))
        assert len(landing) > n / 2

    def test_trace_independent_of_key_and_data(self):
        traces = []

        def factory(items):
            mem = TracedMemory(items, trace=trace)
            return mem

        for key, payload in ((b"a" * 32, list(range(20))),
                             (b"b" * 32, list(range(100, 120)))):
            trace = AccessTrace()
            oblivious_shuffle(payload, key=key, mem_factory=factory)
            traces.append(trace)
        assert traces[0] == traces[1]
