"""Differential-equivalence harness: one driver for every configuration axis.

The repo's strongest guarantee is *configuration transparency*: execution
backend, oblivious kernel, and injected fault plans change wall-clock —
never what the system serves, never its public shape.  Before this
module, ``test_chaos.py`` and ``test_parallel_equivalence.py`` each
carried a private copy of the same drivers (tracing stores, seeded
workloads, store builders).  They now share this harness, and the
matrix test (``test_harness.py``) runs the full cross product

    {serial, thread, process} x {python, numpy}
        x {scalar, batched, vector} x {fault-free, FaultPlan}

asserting byte-identical responses and identical workload-invariant
public telemetry for every cell.  The crypto axis is the store-crypto
selector of :class:`~repro.core.config.SnoopyConfig`: ``"scalar"`` seals
one slot per AEAD call (the audited oracle), ``"batched"`` re-encrypts
the whole store in one vectorized HMAC pass per epoch, and ``"vector"``
swaps in the counter-mode :class:`~repro.crypto.vector.VectorAead`
kernel (one keystream + one polynomial-MAC pass per batch) — the matrix
proves all three serve identical bytes on every backend.

Key pieces:

* :class:`TracingStore` / :class:`TracingSubOram` / :func:`tracing_factory`
  — slot-access-logging subORAMs (the access-pattern witness; the log
  rides on the instance so process backends ship it back with the state);
* :func:`seeded_workload` — a deterministic multi-epoch (request,
  balancer) schedule, parameterized so both historical test suites'
  schedules are instances of it;
* :func:`build_store` — one fixed-key deployment for any (backend,
  kernel, plan, replication) cell, with an optional telemetry handle;
* :func:`run_workload` — drive a store through the schedule;
* :func:`differential_run` / :func:`assert_equivalent` — execute a cell
  matrix and check every cell against the reference cell (serial,
  python, fault-free by construction: the first cell).

**Which metrics must match across cells.**  Only metrics that are pure
functions of the workload shape are compared across *different*
configurations: :data:`INVARIANT_METRICS` (request/epoch/response
counts).  Everything else is honestly configuration-dependent — backends
record different ``exec_*`` series, fault plans add ``fault_*``/
``retry_*`` counters, kernels differ in level counts — and the
*same-configuration* obliviousness guarantee (identical metrics for
same-shape different-content workloads) is asserted separately in
``test_telemetry_obliviousness.py``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import SnoopyConfig
from repro.core.snoopy import Snoopy
from repro.crypto.keys import KeyChain
from repro.suboram.store import EncryptedStore
from repro.suboram.suboram import SubOram
from repro.telemetry import Telemetry
from repro.types import OpType, Request

#: Telemetry series that must be identical across *all* configurations
#: of the same workload: pure functions of the request schedule.
INVARIANT_METRICS = (
    "snoopy_requests_total",
    "snoopy_epochs_total",
    "snoopy_responses_total",
)


class TracingStore(EncryptedStore):
    """An encrypted store that logs every slot access.

    The log rides on the instance, so under a process backend it is
    pickled to the worker, extended there, and shipped back with the
    subORAM — making traces comparable across all backends.
    """

    def __init__(self, encryption_key, num_slots, value_size):
        super().__init__(encryption_key, num_slots, value_size)
        self.access_log = []

    def get(self, slot):
        """Log a read access, then delegate."""
        self.access_log.append(("R", slot))
        return super().get(slot)

    def put(self, slot, key, value):
        """Log a write access, then delegate."""
        self.access_log.append(("W", slot))
        super().put(slot, key, value)


class TracingSubOram(SubOram):
    """A subORAM whose encrypted store records its slot-access trace."""

    def initialize(self, objects):
        """Load the partition into a tracing store (log starts empty)."""
        super().initialize(objects)
        tracing = TracingStore(
            self._keychain.subkey(f"suboram/{self.suboram_id}/storage"),
            num_slots=self._store.num_slots,
            value_size=self.value_size,
        )
        for slot in range(self._store.num_slots):
            key, value = self._store.get(slot)
            tracing.put(slot, key, value)
        tracing.access_log.clear()
        self._store = tracing


def tracing_factory(suboram_id, config, keychain):
    """suboram_factory building trace-recording subORAMs."""
    return TracingSubOram(
        suboram_id=suboram_id,
        value_size=config.value_size,
        keychain=keychain,
        security_parameter=config.security_parameter,
    )


def access_traces(store) -> List[list]:
    """The per-subORAM slot-access logs of a tracing deployment."""
    return [list(s.store.access_log) for s in store.suborams]


def seeded_workload(
    num_epochs: int,
    per_epoch: int,
    seed: int,
    *,
    num_keys: int,
    value_size: int = 8,
    num_balancers: int = 2,
    value_offset: int = 0,
) -> List[List[Tuple[Request, int]]]:
    """A deterministic multi-epoch schedule of (request, balancer) pairs.

    Roughly half the requests are writes of ``bytes([i + value_offset]) *
    value_size`` (``i`` the within-epoch index), half reads, keys and
    balancers drawn from ``random.Random(seed)``.  Both historical test
    schedules are instances: equivalence used ``(3, 12, seed=99,
    num_keys=60)``, chaos used ``(10, 6, seed=7, num_keys=48,
    value_offset=1)``.
    """
    rng = random.Random(seed)
    epochs = []
    for _ in range(num_epochs):
        requests = []
        for i in range(per_epoch):
            key = rng.randrange(num_keys)
            balancer = rng.randrange(num_balancers)
            if rng.random() < 0.5:
                requests.append((
                    Request(
                        OpType.WRITE, key,
                        bytes([(i + value_offset) % 256]) * value_size,
                        seq=i,
                    ),
                    balancer,
                ))
            else:
                requests.append((Request(OpType.READ, key, seq=i), balancer))
        epochs.append(requests)
    return epochs


def workload_schedule(
    spec,
    num_epochs: int,
    per_epoch: int,
    seed: int,
    *,
    num_balancers: int = 2,
) -> List[List[Tuple[Request, int]]]:
    """A harness-shaped schedule drawn from a :mod:`repro.workloads` spec.

    ``spec`` is a :class:`repro.workloads.WorkloadSpec` or a CLI
    shorthand string (``"uniform"``, ``"zipf:1.2"``, ...).  The
    schedule comes from :func:`repro.workloads.generate_schedule`, so
    the shape/key RNG split holds: two specs differing only in key
    distribution yield schedules identical in ops, values, and balancer
    assignment for the same ``seed`` — the pair every skew differential
    feeds to :func:`differential_run`.
    """
    from repro.workloads import generate_schedule, parse_workload_spec

    if isinstance(spec, str):
        spec = parse_workload_spec(spec)
    return generate_schedule(
        spec, num_epochs, per_epoch, seed, num_balancers=num_balancers
    )


def build_store(
    backend: str = "serial",
    *,
    master: bytes,
    objects: Dict[int, bytes],
    kernel: str = "python",
    crypto: str = "batched",
    plan=None,
    replication=None,
    max_attempts: int = 1,
    suboram_factory=None,
    value_size: int = 8,
    num_load_balancers: int = 2,
    num_suborams: int = 3,
    security_parameter: int = 16,
    rng_seed: int = 5,
    telemetry=None,
) -> Snoopy:
    """One initialized deployment with fixed keys and a fixed client RNG.

    Identical arguments produce behaviourally identical deployments no
    matter the (backend, kernel, plan) cell — the property every
    differential test in this suite leans on.
    """
    config = SnoopyConfig(
        num_load_balancers=num_load_balancers,
        num_suborams=num_suborams,
        value_size=value_size,
        security_parameter=security_parameter,
        execution_backend=backend,
        kernel=kernel,
        crypto=crypto,
        epoch_max_attempts=max_attempts,
        replication=replication,
        telemetry=telemetry,
    )
    store = Snoopy(
        config,
        keychain=KeyChain(master=master),
        rng=random.Random(rng_seed),
        fault_plan=plan,
        suboram_factory=suboram_factory,
    )
    store.initialize(objects)
    return store


def run_workload(
    store, epochs, *, pipelined: bool = False, pipeline_depth: Optional[int] = None
) -> Tuple[list, list]:
    """Drive the schedule; returns (responses per epoch, tickets).

    With ``pipelined=True`` the same schedule runs through the epoch
    pipeline instead of ``run_epoch``: one ``close_epoch()`` per
    schedule epoch (no wall-clock timer — tests stay deterministic),
    then ``flush()``.  Per-epoch response lists are rebuilt from the
    resolved tickets sorted by ``(load_balancer, arrival)``, which is
    exactly ``run_epoch``'s flattened balancer-then-arrival order — so
    pipelined and sequential runs are directly comparable.
    """
    if not pipelined:
        responses, tickets = [], []
        for requests in epochs:
            for request, balancer in requests:
                tickets.append(store.submit(request, load_balancer=balancer))
            responses.append(store.run_epoch())
        return responses, tickets

    pipeline = store.start_pipeline(depth=pipeline_depth, clock=False)
    epoch_tickets: List[list] = []
    try:
        for requests in epochs:
            batch = [
                store.submit(request, load_balancer=balancer)
                for request, balancer in requests
            ]
            epoch_tickets.append(batch)
            pipeline.close_epoch()
        pipeline.flush()
    finally:
        pipeline.stop()
    responses = [
        [
            ticket.result()
            for ticket in sorted(
                batch, key=lambda t: (t.load_balancer, t.arrival)
            )
        ]
        for batch in epoch_tickets
    ]
    tickets = [ticket for batch in epoch_tickets for ticket in batch]
    return responses, tickets


@dataclass
class RunResult:
    """Everything one matrix cell produced, ready for comparison.

    Attributes:
        backend: the execution-backend spec of this cell.
        kernel: the oblivious-kernel name of this cell.
        crypto: the store-crypto mode (``"scalar"``, ``"batched"``, or
            ``"vector"``).
        plan_name: the fault-plan label (``"fault-free"`` or a label the
            caller chose).
        responses: per-epoch response lists, in epoch order.
        results: every ticket's resolved response, in submission order.
        invariant_metrics: rendered-series -> value for
            :data:`INVARIANT_METRICS` (must match across all cells).
        public_metrics: the full public snapshot (counter/gauge values
            and histogram counts) of this cell's registry.
        fault_stats: the deployment's fault counters.
    """

    backend: str
    kernel: str
    crypto: str
    plan_name: str
    responses: list
    results: list
    invariant_metrics: Dict[str, float]
    public_metrics: Dict[str, float]
    fault_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def key(self) -> Tuple[str, str, str, str]:
        """The cell's (backend, kernel, crypto, plan_name) coordinate."""
        return (self.backend, self.kernel, self.crypto, self.plan_name)


def _invariant_subset(public: Dict[str, float]) -> Dict[str, float]:
    """The workload-invariant slice of a public metrics snapshot."""
    return {
        series: value
        for series, value in public.items()
        if series.split("{")[0].split("#")[0] in INVARIANT_METRICS
    }


def differential_run(
    workload,
    objects: Dict[int, bytes],
    *,
    master: bytes,
    backends: Sequence[str] = ("serial", "thread:4", "process:2"),
    kernels: Sequence[str] = ("python", "numpy"),
    cryptos: Sequence[str] = ("batched",),
    fault_plans: Sequence[Tuple[str, object]] = (("fault-free", None),),
    replication=None,
    fault_max_attempts: int = 4,
    value_size: int = 8,
    pipelined: bool = False,
    pipeline_depth: Optional[int] = None,
    **build_kwargs,
) -> List[RunResult]:
    """Execute the configuration matrix over one workload.

    Each cell gets a fresh deployment (same master key, same client RNG
    seed, same objects) and a fresh :class:`~repro.telemetry.Telemetry`
    handle.  Fault-plan objects are built per cell by calling the given
    value when it is callable (each cell must consume its own injector
    cursor), or used as-is when it is a plain plan/None.  With
    ``pipelined=True`` every cell runs through the epoch pipeline (see
    :func:`run_workload`); cell results remain directly comparable to a
    sequential run's.

    Returns the cells in matrix order — plans outermost, then cryptos,
    then kernels, then backends — so ``results[0]`` is the fault-free
    reference cell when the axes keep their defaults, and the scalar
    (oracle-crypto) cells come first when ``cryptos=("scalar",
    "batched")``.
    """
    cells = [
        (plan_name, plan_spec, crypto, kernel, backend)
        for plan_name, plan_spec in fault_plans
        for crypto in cryptos
        for kernel in kernels
        for backend in backends
    ]
    results = []
    for plan_name, plan_spec, crypto, kernel, backend in cells:
        plan = plan_spec() if callable(plan_spec) else plan_spec
        telemetry = Telemetry()
        store = build_store(
            backend,
            master=master,
            objects=dict(objects),
            kernel=kernel,
            crypto=crypto,
            plan=plan,
            replication=replication if plan is not None else None,
            max_attempts=fault_max_attempts if plan is not None else 1,
            value_size=value_size,
            telemetry=telemetry,
            **build_kwargs,
        )
        try:
            responses, tickets = run_workload(
                store,
                workload,
                pipelined=pipelined,
                pipeline_depth=pipeline_depth,
            )
            public = telemetry.registry.public_snapshot()
            results.append(RunResult(
                backend=backend,
                kernel=kernel,
                crypto=crypto,
                plan_name=plan_name,
                responses=responses,
                results=[ticket.result() for ticket in tickets],
                invariant_metrics=_invariant_subset(public),
                public_metrics=public,
                fault_stats=dict(store.fault_stats),
            ))
        finally:
            store.close()
    return results


def assert_equivalent(
    runs: Sequence[RunResult], reference: Optional[RunResult] = None
) -> None:
    """Every run must serve exactly what the reference run served.

    Asserts, for each cell against the reference (default: the first
    cell): byte-identical per-epoch responses, byte-identical resolved
    ticket results, and identical workload-invariant public metrics.
    """
    assert runs, "differential_run produced no cells"
    reference = reference if reference is not None else runs[0]
    for run in runs:
        assert run.responses == reference.responses, (
            f"{run.key}: responses diverge from {reference.key}"
        )
        assert run.results == reference.results, (
            f"{run.key}: ticket results diverge from {reference.key}"
        )
        assert run.invariant_metrics == reference.invariant_metrics, (
            f"{run.key}: invariant telemetry diverges from "
            f"{reference.key}: {run.invariant_metrics} != "
            f"{reference.invariant_metrics}"
        )
