"""Tests for the Figure 23 oblivious sharding pipeline."""

from repro.crypto.prf import suboram_of
from repro.loadbalancer.initialization import oblivious_shard, partition_sizes
from repro.oblivious.memory import AccessTrace, TracedMemory

KEY = b"init-sharding-key-0123456789abcd"


class TestSharding:
    def test_every_object_placed_once(self, rng):
        objects = {k: bytes([k % 256]) for k in rng.sample(range(10**6), 50)}
        partitions = oblivious_shard(objects, 4, KEY)
        placed = {}
        for partition in partitions:
            for key, value in partition.items():
                assert key not in placed
                placed[key] = value
        assert placed == objects

    def test_placement_matches_keyed_hash(self, rng):
        objects = {k: b"\x00" for k in rng.sample(range(10**6), 40)}
        partitions = oblivious_shard(objects, 5, KEY)
        for suboram, partition in enumerate(partitions):
            for key in partition:
                assert suboram_of(KEY, key, 5) == suboram

    def test_single_suboram(self):
        objects = {k: b"\x00" for k in range(10)}
        [partition] = oblivious_shard(objects, 1, KEY)
        assert partition == objects

    def test_empty_store(self):
        assert oblivious_shard({}, 3, KEY) == [{}, {}, {}]

    def test_partition_sizes_helper(self, rng):
        keys = rng.sample(range(10**6), 60)
        objects = {k: b"\x00" for k in keys}
        partitions = oblivious_shard(objects, 4, KEY)
        assert partition_sizes(keys, 4, KEY) == [len(p) for p in partitions]

    def test_roughly_balanced(self, rng):
        keys = rng.sample(range(10**6), 400)
        sizes = partition_sizes(keys, 4, KEY)
        assert all(60 < size < 140 for size in sizes), sizes


class TestObliviousness:
    def test_sort_trace_independent_of_keys(self, rng):
        """The sharding sort's trace depends only on the store size."""
        traces = []
        for _ in range(2):
            trace = AccessTrace()
            objects = {k: b"\x00" for k in rng.sample(range(10**6), 30)}
            oblivious_shard(
                objects,
                3,
                KEY,
                mem_factory=lambda items, t=trace: TracedMemory(items, trace=t),
            )
            traces.append(trace)
        assert traces[0] == traces[1]
        assert len(traces[0]) > 0
