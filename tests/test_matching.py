"""Tests for oblivious response matching (Figure 6 / Figure 26)."""

from repro.loadbalancer.batching import generate_batches
from repro.loadbalancer.matching import match_responses
from repro.types import OpType, Request

KEY = b"sharding-key-0123456789abcdef..."


def run_pipeline(requests, num_suborams=3, store=None):
    """Generate batches, answer them from a dict 'store', then match."""
    store = store if store is not None else {}
    batches, originals, _ = generate_batches(requests, num_suborams, KEY, 16)
    responses = []
    for batch in batches:
        for entry in batch:
            answered = entry.copy()
            answered.value = store.get(entry.key)
            responses.append(answered)
    return match_responses(originals, responses)


class TestMatching:
    def test_simple_reads(self):
        store = {1: b"one", 2: b"two"}
        results = run_pipeline(
            [Request(OpType.READ, 1, seq=0), Request(OpType.READ, 2, seq=1)],
            store=store,
        )
        assert [r.value for r in results] == [b"one", b"two"]

    def test_arrival_order_preserved(self):
        store = {k: bytes([k]) for k in range(10)}
        requests = [Request(OpType.READ, k, seq=k) for k in (5, 2, 9, 0, 7)]
        results = run_pipeline(requests, store=store)
        assert [r.key for r in results] == [5, 2, 9, 0, 7]

    def test_duplicates_all_receive_value(self):
        store = {4: b"four"}
        requests = [Request(OpType.READ, 4, seq=i) for i in range(5)]
        results = run_pipeline(requests, store=store)
        assert len(results) == 5
        assert all(r.value == b"four" for r in results)

    def test_dummy_responses_discarded(self):
        store = {1: b"one"}
        results = run_pipeline([Request(OpType.READ, 1, seq=0)], store=store)
        assert len(results) == 1

    def test_missing_key_yields_none(self):
        results = run_pipeline([Request(OpType.READ, 42, seq=0)], store={})
        assert results[0].value is None

    def test_client_routing_metadata_preserved(self):
        store = {1: b"one"}
        results = run_pipeline(
            [Request(OpType.READ, 1, client_id=77, seq=13)], store=store
        )
        assert results[0].client_id == 77
        assert results[0].seq == 13

    def test_denied_request_masked(self):
        """§D: permitted=0 originals get a null value and ok=False."""
        batches, originals, _ = generate_batches(
            [Request(OpType.READ, 1, client_id=1, seq=0)],
            2,
            KEY,
            16,
            permissions={(1, 0): 0},
        )
        responses = []
        for batch in batches:
            for entry in batch:
                answered = entry.copy()
                answered.value = b"secret"
                responses.append(answered)
        [result] = match_responses(originals, responses)
        assert result.value is None
        assert result.ok is False

    def test_mixed_duplicates_and_distinct(self, rng):
        store = {k: bytes([k]) for k in range(30)}
        keys = [rng.randrange(30) for _ in range(40)]
        requests = [Request(OpType.READ, k, seq=i) for i, k in enumerate(keys)]
        results = run_pipeline(requests, store=store)
        assert [r.key for r in results] == keys
        assert all(r.value == bytes([r.key]) for r in results)
