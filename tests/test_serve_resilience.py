"""Tests for the hardened serve layer: attestation, resilience, chaos.

Four claims from the distributed-robustness PR, machine-checked:

* **Attested channels fail closed.**  A client with the wrong trust
  secret, or the wrong channel mode (plaintext vs attested, either
  direction), never gets a usable connection — and never silently
  downgrades.
* **Client resilience is deterministic and typed.**  Reconnect backoff
  is a pure function of its seed; the circuit breaker walks
  closed → open → half-open → closed; deadlines, BUSY shedding, and
  SHUTTING_DOWN notices surface as their own exception types.
* **Exactly-once across drops.**  Killing the connection mid-batch
  loses no ticket and double-applies no write: every ticket resolves
  exactly once with the same answer a fault-free run produces.
* **Network chaos changes nothing.**  The seeded chaos soak — real
  sockets, injected drops/partitions/truncations — matches the
  fault-free in-process oracle byte-for-byte, with every scheduled
  fault accounted for.
"""

import threading
import time

import pytest

from tests.harness import build_store
from repro.core.faults import NET_FAULT_KINDS
from repro.errors import (
    AttestationError,
    DeadlineExceededError,
    ServerBusyError,
    ServerShuttingDownError,
    TransportError,
)
from repro.core.wire import WireError
from repro.serve import NetworkSnoopyClient, ServerThread, WorkerCluster
from repro.serve.chaos import (
    WORKER_FAULT_KINDS,
    build_soak_plan,
    build_workload,
    run_network_soak,
)
from repro.serve.netclient import CircuitBreaker, ReconnectPolicy
from repro.serve.secure import ServeTrust
from repro.types import OpType, Request

MASTER = b"serve-resilience-master-key"
VALUE = 8


def small_objects(n=36, value_size=VALUE):
    return {k: bytes([k % 256]) * value_size for k in range(n)}


def make_store(**overrides):
    kwargs = dict(
        master=MASTER,
        objects=small_objects(),
        value_size=VALUE,
        num_suborams=2,
        security_parameter=16,
    )
    kwargs.update(overrides)
    backend = kwargs.pop("backend", "serial")
    return build_store(backend, **kwargs)


class TestAttestedChannels:
    def test_attested_round_trip(self):
        store = make_store()
        trust = ServeTrust(b"resilience-test-trust-secret")
        with store, ServerThread(store, clock=False, trust=trust) as handle:
            handle.start()
            with NetworkSnoopyClient(
                "127.0.0.1", handle.port, trust=trust, manual_epochs=True
            ) as client:
                assert client.attested
                assert client.write(3, b"attested"[:VALUE]) is not None
                assert client.read(3) == b"attested"[:VALUE]

    def test_wrong_trust_secret_rejected(self):
        store = make_store()
        trust = ServeTrust(b"resilience-test-trust-secret")
        rogue = ServeTrust(b"a-completely-different-secret")
        with store, ServerThread(store, clock=False, trust=trust) as handle:
            handle.start()
            # The client verifies the server's quote against *its* trust
            # root and refuses the channel; the server never learns the
            # difference (clients present a bare share, not a quote).
            with pytest.raises(AttestationError):
                NetworkSnoopyClient(
                    "127.0.0.1", handle.port, trust=rogue, timeout=5.0,
                    resume=False,
                )
            assert handle.server.stats["requests"] == 0

    def test_plaintext_client_vs_attested_server_fails_closed(self):
        store = make_store()
        with store, ServerThread(store, clock=False) as handle:
            handle.start()
            assert handle.trust is not None
            with pytest.raises((WireError, TransportError)):
                NetworkSnoopyClient(
                    "127.0.0.1", handle.port, timeout=5.0, resume=False,
                )

    def test_attested_client_vs_plaintext_server_fails_closed(self):
        store = make_store()
        with store, ServerThread(
            store, clock=False, attested=False
        ) as handle:
            handle.start()
            with pytest.raises((WireError, TransportError)):
                NetworkSnoopyClient(
                    "127.0.0.1", handle.port,
                    trust=ServeTrust(b"resilience-test-trust-secret"),
                    timeout=5.0, resume=False,
                )


class TestReconnectPolicy:
    def test_delays_are_seed_deterministic(self):
        policy = ReconnectPolicy(seed=42, max_attempts=6)
        assert list(policy.delays()) == list(policy.delays())
        other = ReconnectPolicy(seed=43, max_attempts=6)
        assert list(policy.delays()) != list(other.delays())

    def test_delays_are_bounded_and_counted(self):
        policy = ReconnectPolicy(
            seed=7, max_attempts=9, base_delay_s=0.01,
            multiplier=3.0, max_delay_s=0.5, jitter=0.5,
        )
        delays = list(policy.delays())
        assert len(delays) == 9
        ceiling = policy.max_delay_s * (1.0 + policy.jitter)
        for delay in delays:
            assert 0.0 <= delay <= ceiling + 1e-9


class TestCircuitBreaker:
    def test_full_state_walk(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=3, reset_after_s=10.0,
            clock=lambda: clock[0],
        )
        assert breaker.state == "closed" and breaker.allow()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert not breaker.probe()
        clock[0] = 10.5  # cooldown elapsed
        assert breaker.allow()
        assert breaker.probe()
        assert breaker.state == "half-open"
        assert not breaker.probe()  # only one probe in flight
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_half_open_failure_reopens(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after_s=5.0,
            clock=lambda: clock[0],
        )
        breaker.record_failure()
        clock[0] = 6.0
        assert breaker.probe()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.probe()  # a fresh cooldown started


class TestRequestDeadlines:
    def test_deadline_fires_while_epoch_stays_open(self):
        store = make_store()
        with store, ServerThread(store, clock=False) as handle:
            handle.start()
            with NetworkSnoopyClient(
                "127.0.0.1", handle.port, trust=handle.trust,
                request_timeout=0.2,
            ) as client:
                ticket = client.submit(
                    Request(OpType.READ, 1, client_id=1, seq=0)
                )
                with pytest.raises(DeadlineExceededError):
                    ticket.result(5.0)
                # The request is still queued; closing the epoch
                # resolves the ticket normally for late inspection.
                client.close_epoch(flush=True)
                assert ticket.wait(5.0)


class TestExactlyOnceResume:
    def test_kill_mid_batch_resolves_every_ticket_once(self):
        store = make_store()
        with store, ServerThread(store, clock=False) as handle:
            handle.start()
            with NetworkSnoopyClient(
                "127.0.0.1", handle.port, trust=handle.trust,
                reconnect=ReconnectPolicy(seed=11),
            ) as client:
                written = {}
                tickets = []
                settled = []
                for i in range(12):
                    value = bytes([i + 1]) * VALUE
                    written[i] = value
                    ticket = client.submit(Request(
                        OpType.WRITE, i, value, client_id=1, seq=i,
                    ))
                    ticket.add_done_callback(
                        lambda t: settled.append(t.req_id)
                    )
                    tickets.append(ticket)
                    if i == 5:
                        client.kill_connection()
                client.close_epoch(flush=True)
                for ticket in tickets:
                    assert ticket.result(10.0).ok
                assert client.stats["reconnects"] >= 1
                # Exactly once: every ticket settled a single time.
                assert sorted(settled) == [t.req_id for t in tickets]

                # The writes landed exactly once: read each key back.
                reads = [
                    client.submit(Request(
                        OpType.READ, key, client_id=1, seq=100 + key,
                    ))
                    for key in written
                ]
                client.close_epoch(flush=True)
                for key, ticket in zip(written, reads):
                    assert ticket.result(10.0).value == written[key]
            assert handle.server.stats["session_resumes"] >= 1


class TestGracefulDegradation:
    def test_busy_shedding_is_typed_and_bounded(self):
        store = make_store()
        with store, ServerThread(
            store, clock=False, max_open_tickets=4
        ) as handle:
            handle.start()
            with NetworkSnoopyClient(
                "127.0.0.1", handle.port, trust=handle.trust,
            ) as client:
                tickets = [
                    client.submit(Request(
                        OpType.READ, i, client_id=1, seq=i,
                    ))
                    for i in range(8)
                ]
                # The shed tickets settle with ServerBusyError before
                # any epoch closes.
                outcomes = {"busy": 0, "pending": 0}
                deadline = time.monotonic() + 5.0
                while (
                    sum(t.done() for t in tickets) < 4
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.01)
                client.close_epoch(flush=True)
                for ticket in tickets:
                    try:
                        assert ticket.result(10.0).ok
                        outcomes["pending"] += 1
                    except ServerBusyError:
                        outcomes["busy"] += 1
                assert outcomes == {"busy": 4, "pending": 4}
                assert client.stats["busy_rejections"] == 4
            assert handle.server.stats["busy_rejections"] == 4

    def test_drain_flushes_accepted_then_notifies(self):
        store = make_store()
        handle = ServerThread(store, clock=False)
        with store:
            handle.start()
            client = NetworkSnoopyClient(
                "127.0.0.1", handle.port, trust=handle.trust,
            )
            try:
                tickets = [
                    client.submit(Request(
                        OpType.WRITE, i, bytes([i + 1]) * VALUE,
                        client_id=1, seq=i,
                    ))
                    for i in range(4)
                ]
                deadline = time.monotonic() + 5.0
                while (
                    handle.server.stats["requests"] < len(tickets)
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.01)
                stopper = threading.Thread(target=handle.stop)
                stopper.start()
                # Drain: every accepted ticket resolves with a real
                # response even though no CLOSE_EPOCH was ever sent.
                for ticket in tickets:
                    assert ticket.result(15.0).ok
                stopper.join(timeout=15)
                # The farewell broadcast surfaced as a typed notice,
                # not a retry loop.
                deadline = time.monotonic() + 5.0
                while (
                    client.stats["shutdown_notices"] == 0
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.01)
                assert client.stats["shutdown_notices"] >= 1
                with pytest.raises(
                    (ServerShuttingDownError, TransportError)
                ):
                    client.submit(Request(
                        OpType.READ, 0, client_id=1, seq=99,
                    ))
                assert client.stats["reconnects"] == 0
            finally:
                client.close()
                handle.stop()


class TestWorkerHealth:
    def test_health_classifies_ok_slow_dead(self):
        with WorkerCluster(1, value_size=VALUE, security_parameter=16) \
                as cluster:
            cluster.start()
            suboram = cluster.factory(0)
            suboram.initialize(small_objects(8))
            assert cluster.check_health(0) == "ok"
            # A worker stalling past the ping deadline is *slow*, not
            # dead: no respawn, in-memory state retained.
            with pytest.raises(TransportError):
                cluster.timed_ping(0, timeout=0.05, echo_delay_ms=400)
            assert cluster.check_health(0, timeout=2.0) == "ok"
            cluster.kill_worker(0)
            assert cluster.check_health(0) == "dead"

    def test_remote_snapshot_survives_total_disk_loss(self):
        with WorkerCluster(
            1, value_size=VALUE, security_parameter=16,
            remote_snapshots=True,
        ) as cluster:
            cluster.start()
            suboram = cluster.factory(0)
            objects = small_objects(8)
            suboram.initialize(objects)
            # Machine-is-gone: process killed AND its snapshot deleted.
            # Only the wire-mirrored sealed blob can restore state.
            cluster.kill_worker(0, lose_disk=True)
            assert suboram.num_objects == len(objects)


class TestChaosPlanShapes:
    def test_workload_and_plan_are_seed_deterministic(self):
        a = build_workload(5, 4, 6, 32, VALUE, 2)
        b = build_workload(5, 4, 6, 32, VALUE, 2)
        assert a == b
        plan_a = build_soak_plan(5, 4, 6, 2, worker_links=True)
        plan_b = build_soak_plan(5, 4, 6, 2, worker_links=True)
        assert plan_a.events == plan_b.events

    def test_worker_kinds_exclude_frame_duplicate(self):
        # A duplicated frame is a replay to the receiving worker, which
        # correctly fails closed rather than retrying — so the soak
        # must not schedule it on worker links.
        assert "frame_duplicate" not in WORKER_FAULT_KINDS
        assert set(WORKER_FAULT_KINDS) < set(NET_FAULT_KINDS)
        plan = build_soak_plan(3, 6, 8, 2, worker_links=True)
        for event in plan.events:
            if event.link.startswith("worker-"):
                assert event.kind != "frame_duplicate"


class TestNetworkChaosDifferential:
    def test_client_link_chaos_matches_oracle(self):
        report = run_network_soak(
            seed=1, epochs=6, requests_per_epoch=6, objects=48,
            timeout=30.0,
        )
        assert report["matched"], report
        assert report["responses_matched"] and report["faults_matched"]
        assert report["fault_stats"] == report["expected_fault_stats"]
        assert sum(report["fault_stats"].values()) == \
            report["scheduled_faults"]

    def test_worker_link_chaos_matches_oracle(self):
        report = run_network_soak(
            seed=2, epochs=5, requests_per_epoch=6, objects=48,
            worker_processes=True, timeout=45.0,
        )
        assert report["matched"], report
        assert any(
            link.startswith("net_") for link in report["fault_stats"]
        )


class TestServedSkewInsensitivity:
    """Hot keys stay invisible across the attested wire (loadgen path).

    The in-process skew differential lives in
    ``test_telemetry_obliviousness.py``; this one drives the same
    uniform-vs-Zipf shape-identical pair through the real TCP stack —
    attested handshake, sealed frames, the server's epoch loop — and
    requires byte-identical public telemetry and identical server
    stats.
    """

    EPOCHS = 3
    PER_EPOCH = 8

    def served_skew_view(self, spec):
        from repro.telemetry import Telemetry
        from tests.harness import workload_schedule

        telemetry = Telemetry()
        trust = ServeTrust(b"resilience-skew-trust-secret")
        store = make_store(telemetry=telemetry)
        with store, ServerThread(store, clock=False, trust=trust) as handle:
            handle.start()
            with NetworkSnoopyClient(
                "127.0.0.1", handle.port, trust=trust, client_id=1,
            ) as client:
                tickets = []
                for requests in workload_schedule(
                    spec, self.EPOCHS, self.PER_EPOCH, seed=23
                ):
                    for request, balancer in requests:
                        tickets.append(
                            client.submit(request, load_balancer=balancer)
                        )
                    client.close_epoch(flush=True)
                for ticket in tickets:
                    ticket.result(30.0)
            server_stats = dict(handle.server.stats)
        return (
            telemetry.registry.prometheus_text(public_only=True),
            server_stats,
        )

    def test_hot_key_vs_uniform_identical_over_the_wire(self):
        from repro.workloads import WorkloadSpec

        uniform = WorkloadSpec(
            distribution="uniform", num_keys=36, value_size=VALUE
        )
        hot = WorkloadSpec(
            distribution="zipf", num_keys=36, value_size=VALUE,
            zipf_exponent=1.2,
        )
        export_u, stats_u = self.served_skew_view(uniform)
        export_z, stats_z = self.served_skew_view(hot)
        assert export_u == export_z
        assert stats_u == stats_z
        assert "serve_connections_total" in export_u
        assert stats_u["responses"] == self.EPOCHS * self.PER_EPOCH
