"""Tests for the abstract enclave model, attestation, and rollback defense."""

import pytest

from repro.enclave.attestation import AttestationService, establish_channel_key
from repro.enclave.model import Enclave, EpcModel
from repro.enclave.sealed import MonotonicCounter, SealedStore
from repro.errors import AttestationError, RollbackError


class TestEpcModel:
    def test_resident_cheaper_than_paged(self):
        epc = EpcModel(epc_bytes=1000)
        resident = epc.scan_seconds(500, 500)
        paged = epc.scan_seconds(5000, 500)
        assert resident < paged

    def test_scales_with_bytes(self):
        epc = EpcModel()
        assert epc.scan_seconds(100, 200) == pytest.approx(
            2 * epc.scan_seconds(100, 100)
        )


class TestEnclave:
    def test_heap_traces(self):
        enclave = Enclave("suboram-0")
        heap = enclave.heap([1, 2, 3])
        _ = heap[0]
        heap[1] = 9
        assert enclave.trace.events == [("R", 0), ("W", 1)]

    def test_measurement_deterministic_per_program(self):
        assert Enclave("lb").measurement == Enclave("lb").measurement
        assert Enclave("lb").measurement != Enclave("so").measurement


class TestAttestation:
    def test_trusted_quote_verifies(self):
        service = AttestationService(b"sign" * 8)
        enclave = Enclave("lb-0")
        service.trust(enclave.measurement)
        quote = service.quote(enclave, b"share" * 6 + b"xx")
        assert service.verify(quote) == b"share" * 6 + b"xx"

    def test_unknown_measurement_rejected(self):
        service = AttestationService(b"sign" * 8)
        rogue = Enclave("malware")
        quote = service.quote(rogue, b"s" * 32)
        with pytest.raises(AttestationError, match="not a trusted"):
            service.verify(quote)

    def test_tampered_quote_rejected(self):
        service = AttestationService(b"sign" * 8)
        enclave = Enclave("lb-0")
        service.trust(enclave.measurement)
        quote = service.quote(enclave, b"s" * 32)
        forged = type(quote)(
            quote.enclave_name, quote.measurement, b"x" * 32, quote.signature
        )
        with pytest.raises(AttestationError, match="signature"):
            service.verify(forged)

    def test_channel_key_established(self):
        service = AttestationService(b"sign" * 8)
        enclave = Enclave("lb-0")
        service.trust(enclave.measurement)
        key = establish_channel_key(service, enclave, b"client-share")
        assert len(key) == 32


class TestRollbackDefense:
    def test_seal_unseal_roundtrip(self):
        store = SealedStore(b"seal" * 8)
        nonce, blob = store.seal(b"state-v1")
        assert store.unseal(nonce, blob) == b"state-v1"

    def test_stale_blob_rejected(self):
        store = SealedStore(b"seal" * 8)
        old_nonce, old_blob = store.seal(b"state-v1")
        store.seal(b"state-v2")  # counter bumps
        with pytest.raises(RollbackError):
            store.unseal(old_nonce, old_blob)

    def test_counter_monotone(self):
        counter = MonotonicCounter()
        values = [counter.increment() for _ in range(5)]
        assert values == [1, 2, 3, 4, 5]

    def test_snoopy_bumps_counter_per_epoch(self, small_store):
        start = small_store.counter.value
        small_store.read(1)
        small_store.read(2)
        assert small_store.counter.value == start + 2
