"""Documentation gate: every public item in the library has a docstring.

"Doc comments on every public item" is a deliverable; this test keeps it
true as the library evolves.
"""

import importlib
import inspect
import pkgutil

import repro


def _public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.ismodule(member):
            continue
        # Only report members defined in this package (not re-exports of
        # stdlib/third-party objects).
        origin = getattr(member, "__module__", None)
        if origin is None or not origin.startswith("repro"):
            continue
        if origin != module.__name__:
            continue  # re-export; checked at its home module
        yield name, member


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, "repro."):
        yield importlib.import_module(info.name)


def test_every_module_documented():
    undocumented = [
        module.__name__
        for module in _walk_modules()
        if not (module.__doc__ or "").strip()
    ]
    assert not undocumented, f"modules without docstrings: {undocumented}"


def test_every_public_class_and_function_documented():
    missing = []
    for module in _walk_modules():
        for name, member in _public_members(module):
            if inspect.isclass(member) or inspect.isfunction(member):
                if not (inspect.getdoc(member) or "").strip():
                    missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented public items: {missing}"


def test_public_methods_documented():
    missing = []
    for module in _walk_modules():
        for name, member in _public_members(module):
            if not inspect.isclass(member):
                continue
            for method_name, method in vars(member).items():
                if method_name.startswith("_"):
                    continue
                if not (inspect.isfunction(method) or isinstance(method, property)):
                    continue
                target = method.fget if isinstance(method, property) else method
                if target is None:
                    continue
                if not (inspect.getdoc(target) or "").strip():
                    missing.append(f"{module.__name__}.{name}.{method_name}")
    assert not missing, f"undocumented public methods: {missing}"
