"""Telemetry must be oblivious: same-shape workloads, identical exports.

SECURITY.md's "Telemetry is public information" claim, machine-checked:
every exported quantity is a function of the *public* configuration and
batch shape only.  Two workloads that agree on shape — same object
count, same epochs, same per-epoch request count, same read/write
sequence — but access *different keys* and write *different values*
must produce

* byte-identical public Prometheus exports
  (``prometheus_text(public_only=True)``: counters, gauges, histogram
  counts — no timing values), and
* identical span name counts,

on both oblivious kernels under all three execution backends.  A timing
side-channel through the metric *values* is out of scope here (the
paper's §2.1 treats observable timing as public); what this test pins
down is that no *count or series* ever depends on which records were
touched.
"""

import random

import pytest

from repro.core.config import SnoopyConfig
from repro.core.snoopy import Snoopy
from repro.crypto.keys import KeyChain
from repro.telemetry import Telemetry
from repro.types import OpType, Request

MASTER = b"obliviousness-telemetry-key-....."[:32]
NUM_KEYS = 36
EPOCHS = 3
PER_EPOCH = 8

BACKENDS = ["serial", "thread:3", "process:2"]
KERNELS = ["python", "numpy"]


def shaped_workload(key_seed: int, value_seed: int):
    """A schedule with FIXED shape and seed-dependent content.

    The shape — epoch count, requests per epoch, the read/write flag and
    target balancer of each slot — is a constant; only the accessed keys
    and written values derive from the seeds.  Two calls with different
    seeds are exactly "different access patterns of the same shape".
    """
    key_rng = random.Random(key_seed)
    value_rng = random.Random(value_seed)
    epochs = []
    for _ in range(EPOCHS):
        requests = []
        for i in range(PER_EPOCH):
            key = key_rng.randrange(NUM_KEYS)
            balancer = i % 2
            if i % 3 == 0:  # shape-fixed write slots
                value = bytes([value_rng.randrange(256)]) * 8
                requests.append(
                    (Request(OpType.WRITE, key, value, seq=i), balancer)
                )
            else:
                requests.append((Request(OpType.READ, key, seq=i), balancer))
        epochs.append(requests)
    return epochs


def public_view(backend: str, kernel: str, key_seed: int, value_seed: int):
    """(public Prometheus text, span name counts) for one workload run."""
    telemetry = Telemetry()
    config = SnoopyConfig(
        num_load_balancers=2,
        num_suborams=3,
        value_size=8,
        security_parameter=16,
        execution_backend=backend,
        kernel=kernel,
        telemetry=telemetry,
    )
    with Snoopy(
        config, keychain=KeyChain(master=MASTER), rng=random.Random(2)
    ) as store:
        # Identical initial key set in every run: the *stored* keys are
        # part of the deployment shape; the *accessed* keys are not.
        store.initialize({k: bytes([k]) * 8 for k in range(NUM_KEYS)})
        for requests in shaped_workload(key_seed, value_seed):
            for request, balancer in requests:
                store.submit(request, load_balancer=balancer)
            store.run_epoch()
    return (
        telemetry.registry.prometheus_text(public_only=True),
        dict(telemetry.tracer.name_counts()),
    )


class TestMetricObliviousness:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_same_shape_different_content_identical_exports(
        self, backend, kernel
    ):
        export_a, spans_a = public_view(backend, kernel, 101, 201)
        export_b, spans_b = public_view(backend, kernel, 0xDEAD, 0xBEEF)
        assert export_a == export_b
        assert spans_a == spans_b
        # The comparison is non-trivial: real series and spans exist.
        assert "snoopy_epoch_stage_seconds_count" in export_a
        assert spans_a["epoch"] == EPOCHS

    def test_exports_do_depend_on_shape(self):
        """Sanity: the equality above is not vacuous — changing the
        *shape* (request count) does change the public export."""
        export_a, _ = public_view("serial", "python", 101, 201)
        telemetry = Telemetry()
        config = SnoopyConfig(
            num_load_balancers=2,
            num_suborams=3,
            value_size=8,
            security_parameter=16,
            telemetry=telemetry,
        )
        with Snoopy(
            config, keychain=KeyChain(master=MASTER), rng=random.Random(2)
        ) as store:
            store.initialize({k: bytes([k]) * 8 for k in range(NUM_KEYS)})
            store.submit(Request(OpType.READ, 0))  # one lonely request
            store.run_epoch()
        export_small = telemetry.registry.prometheus_text(public_only=True)
        assert export_small != export_a

    def test_public_export_contains_no_timing_values(self):
        export, _ = public_view("serial", "python", 101, 201)
        assert "quantile" not in export
        assert "_sum" not in export


def served_public_view(key_seed: int, value_seed: int):
    """Public telemetry for one workload served over the real TCP stack.

    The serve layer adds its own metric families (connections, frames,
    sessions, shed counters) on top of the core's — all of which must
    stay functions of the workload *shape* only, even though the bytes
    on the wire now include sealed frames of content-derived data.
    """
    from repro.serve import NetworkSnoopyClient, ServerThread

    telemetry = Telemetry()
    config = SnoopyConfig(
        num_load_balancers=2,
        num_suborams=3,
        value_size=8,
        security_parameter=16,
        telemetry=telemetry,
    )
    with Snoopy(
        config, keychain=KeyChain(master=MASTER), rng=random.Random(2)
    ) as store:
        store.initialize({k: bytes([k]) * 8 for k in range(NUM_KEYS)})
        with ServerThread(store, clock=False) as handle:
            handle.start()
            with NetworkSnoopyClient(
                "127.0.0.1", handle.port, trust=handle.trust,
                client_id=1,
            ) as client:
                tickets = []
                for requests in shaped_workload(key_seed, value_seed):
                    for request, balancer in requests:
                        tickets.append(
                            client.submit(request, load_balancer=balancer)
                        )
                    client.close_epoch(flush=True)
                for ticket in tickets:
                    ticket.result(30.0)
            server_stats = dict(handle.server.stats)
    return (
        telemetry.registry.prometheus_text(public_only=True),
        server_stats,
    )


class TestServeLayerObliviousness:
    def test_served_same_shape_identical_public_telemetry(self):
        export_a, stats_a = served_public_view(101, 201)
        export_b, stats_b = served_public_view(0xDEAD, 0xBEEF)
        assert export_a == export_b
        assert stats_a == stats_b
        # Non-vacuous: the serve layer really contributed series.
        assert "serve_connections_total" in export_a
        assert stats_a["responses"] == EPOCHS * PER_EPOCH


# ---------------------------------------------------------------------------
# Skew insensitivity: hot-key vs uniform workloads of identical shape
# ---------------------------------------------------------------------------
from repro.workloads import WorkloadSpec  # noqa: E402
from tests.harness import (  # noqa: E402
    access_traces,
    tracing_factory,
    workload_schedule,
)

SKEW_SEED = 17
UNIFORM_SPEC = WorkloadSpec(
    distribution="uniform", num_keys=NUM_KEYS, value_size=8
)
HOT_KEY_SPEC = WorkloadSpec(
    distribution="zipf", num_keys=NUM_KEYS, value_size=8, zipf_exponent=1.2
)


def skew_view(backend: str, kernel: str, spec: WorkloadSpec):
    """(public export, span counts, slot-access traces) for one spec.

    The schedules come from :func:`workload_schedule`, whose shape/key
    RNG split makes the uniform and hot-key runs identical in every
    public coordinate by construction — the test then checks the
    *system* holds that line all the way down to the slot level.
    """
    telemetry = Telemetry()
    config = SnoopyConfig(
        num_load_balancers=2,
        num_suborams=3,
        value_size=8,
        security_parameter=16,
        execution_backend=backend,
        kernel=kernel,
        telemetry=telemetry,
    )
    with Snoopy(
        config, keychain=KeyChain(master=MASTER), rng=random.Random(2),
        suboram_factory=tracing_factory,
    ) as store:
        store.initialize({k: bytes([k]) * 8 for k in range(NUM_KEYS)})
        for requests in workload_schedule(
            spec, EPOCHS, PER_EPOCH, seed=SKEW_SEED
        ):
            for request, balancer in requests:
                store.submit(request, load_balancer=balancer)
            store.run_epoch()
        traces = access_traces(store)
    return (
        telemetry.registry.prometheus_text(public_only=True),
        dict(telemetry.tracer.name_counts()),
        traces,
    )


class TestSkewInsensitivity:
    """Zipf s=1.2 hot keys must be invisible in every public signal.

    The §4.1 deduplication and fixed f(R,S,λ) batch padding are exactly
    the mechanisms that make a hot-key workload indistinguishable from
    a uniform one; this pins the claim to byte-identical telemetry AND
    identical epoch batch-access traces (which slots, in which order)
    across both kernels and all three execution backends.
    """

    def test_workloads_differ_only_in_keys(self):
        uniform = workload_schedule(
            UNIFORM_SPEC, EPOCHS, PER_EPOCH, seed=SKEW_SEED
        )
        hot = workload_schedule(
            HOT_KEY_SPEC, EPOCHS, PER_EPOCH, seed=SKEW_SEED
        )
        shape = lambda sched: [  # noqa: E731
            [(r.op, r.value, lb) for r, lb in epoch] for epoch in sched
        ]
        keys = lambda sched: [  # noqa: E731
            [r.key for r, _ in epoch] for epoch in sched
        ]
        assert shape(uniform) == shape(hot)
        assert keys(uniform) != keys(hot)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_hot_key_vs_uniform_identical_public_signals(
        self, backend, kernel
    ):
        export_u, spans_u, traces_u = skew_view(backend, kernel, UNIFORM_SPEC)
        export_z, spans_z, traces_z = skew_view(backend, kernel, HOT_KEY_SPEC)
        assert export_u == export_z
        assert spans_u == spans_z
        assert traces_u == traces_z
        # Non-vacuous: epochs ran and slots were really touched.
        assert spans_u["epoch"] == EPOCHS
        assert sum(len(t) for t in traces_u) > 0
