"""Tests for adaptive mode switching (the paper's §1 future work)."""

import pytest

from repro.extensions.adaptive import AdaptivePolicy, Mode


@pytest.fixture
def policy():
    return AdaptivePolicy(
        num_load_balancers=1,
        num_suborams=4,
        num_objects=500_000,
    )


class TestModeSpecs:
    def test_latency_mode_has_lower_idle_latency(self, policy):
        assert (
            policy.latency_mode.idle_latency
            < policy.throughput_mode.idle_latency
        )

    def test_throughput_mode_has_higher_capacity(self, policy):
        assert (
            policy.throughput_mode.capacity > 3 * policy.latency_mode.capacity
        )

    def test_starts_in_latency_mode(self, policy):
        assert policy.mode is Mode.LATENCY


class TestSwitching:
    def test_low_load_stays_latency(self, policy):
        for _ in range(10):
            policy.observe(requests=10, window=1.0)
        assert policy.mode is Mode.LATENCY
        assert policy.switches == []

    def test_high_load_switches_to_throughput(self, policy):
        heavy = int(policy.latency_mode.capacity * 3)
        for _ in range(10):
            policy.observe(requests=heavy, window=1.0)
        assert policy.mode is Mode.THROUGHPUT
        assert len(policy.switches) == 1

    def test_switches_back_after_sustained_lull(self, policy):
        heavy = int(policy.latency_mode.capacity * 3)
        for _ in range(10):
            policy.observe(requests=heavy, window=1.0)
        for _ in range(30):
            policy.observe(requests=1, window=1.0)
        assert policy.mode is Mode.LATENCY

    def test_hysteresis_prevents_flapping(self, policy):
        """A rate between the down and up thresholds never causes a
        switch in either direction."""
        up = policy.headroom * policy.latency_mode.capacity
        middle = int(up * 0.7)  # above down (0.5*up), below up
        for _ in range(50):
            policy.observe(requests=middle, window=1.0)
        assert policy.mode is Mode.LATENCY
        # Force into throughput mode, then feed the same middle rate.
        for _ in range(10):
            policy.observe(requests=int(up * 3), window=1.0)
        assert policy.mode is Mode.THROUGHPUT
        for _ in range(50):
            policy.observe(requests=middle, window=1.0)
        assert policy.mode is Mode.THROUGHPUT  # stays put
        assert len(policy.switches) == 1

    def test_ewma_smooths_spikes(self, policy):
        """One spiky window does not flip the mode."""
        spike = int(policy.latency_mode.capacity * 5)
        policy.observe(requests=spike, window=1.0)
        # One observation moves the EWMA only by `smoothing` fraction.
        if policy.smoothing * spike <= policy.headroom * policy.latency_mode.capacity:
            assert policy.mode is Mode.LATENCY


class TestPredictions:
    def test_overload_predicts_inf(self, policy):
        rate = policy.latency_mode.capacity * 2
        assert policy.predicted_latency(rate, Mode.LATENCY) == float("inf")
        assert policy.predicted_latency(rate, Mode.THROUGHPUT) < float("inf")

    def test_latency_mode_faster_when_feasible(self, policy):
        rate = policy.latency_mode.capacity * 0.1
        assert policy.predicted_latency(rate, Mode.LATENCY) < (
            policy.predicted_latency(rate, Mode.THROUGHPUT)
        )

    def test_decision_matches_optimal_mode(self, policy):
        """The policy picks whichever mode predicts lower latency."""
        low = policy.latency_mode.capacity * 0.2
        high = policy.latency_mode.capacity * 2
        assert policy.decide(low) is Mode.LATENCY
        policy.mode = Mode.LATENCY
        assert policy.decide(high) is Mode.THROUGHPUT


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(Exception):
            AdaptivePolicy(1, 1, 100, headroom=0)
        with pytest.raises(Exception):
            AdaptivePolicy(1, 1, 100, hysteresis=1.5)
