"""Tests for the virtual-clock runtime."""

import random

import pytest

from repro.core.config import SnoopyConfig
from repro.core.snoopy import Snoopy
from repro.sim.runtime import SnoopyRuntime
from repro.sim.workload import poisson_arrivals
from repro.types import OpType, Request


@pytest.fixture
def runtime():
    store = Snoopy(
        SnoopyConfig(
            num_load_balancers=1,
            num_suborams=2,
            value_size=4,
            security_parameter=16,
            epoch_duration=0.2,
        ),
        rng=random.Random(1),
    )
    store.initialize({k: bytes([k]) * 4 for k in range(30)})
    return SnoopyRuntime(store)


def timed_workload(rate, duration, num_keys=30, seed=2):
    rng = random.Random(seed)
    timed = []
    for seq, arrival in enumerate(poisson_arrivals(rate, duration, rng)):
        key = rng.randrange(num_keys)
        if rng.random() < 0.3:
            request = Request(OpType.WRITE, key, bytes([seq % 256]) * 4, seq=seq)
        else:
            request = Request(OpType.READ, key, seq=seq)
        timed.append((arrival, request))
    return timed


class TestRuntime:
    def test_all_requests_answered_with_real_values(self, runtime):
        workload = timed_workload(rate=40, duration=1.0)
        result = runtime.run(workload)
        assert len(result.responses) == len(workload)
        for response in result.responses:
            assert response.value is not None

    def test_latency_positive_and_bounded(self, runtime):
        result = runtime.run(timed_workload(rate=40, duration=1.0))
        assert result.latency.count == result.latency.count
        assert result.latency.mean > 0
        # Under light load, Eq. (2)'s 5T/2 envelope holds.
        assert result.latency.mean <= 5 * 0.2 / 2

    def test_empty_workload(self, runtime):
        result = runtime.run([])
        assert result.responses == []
        assert result.epochs == 0

    def test_epoch_count(self, runtime):
        # Arrivals only in the first two epochs.
        workload = [
            (0.05, Request(OpType.READ, 1, seq=0)),
            (0.15, Request(OpType.READ, 2, seq=1)),
            (0.25, Request(OpType.READ, 3, seq=2)),
        ]
        result = runtime.run(workload)
        assert result.epochs == 2
        assert len(result.responses) == 3

    def test_throughput_accounting(self, runtime):
        result = runtime.run(timed_workload(rate=50, duration=2.0))
        assert result.throughput > 0
        assert result.virtual_duration >= 2.0

    def test_values_consistent_with_semantics(self, runtime):
        """Writes land; later epochs read them back through the runtime."""
        workload = [
            (0.05, Request(OpType.WRITE, 5, b"abcd", seq=0)),
            (0.45, Request(OpType.READ, 5, seq=1)),
        ]
        result = runtime.run(workload)
        by_seq = {r.seq: r.value for r in result.responses}
        assert by_seq[0] == bytes([5]) * 4  # prior value
        assert by_seq[1] == b"abcd"
