"""Shared fixtures for the Snoopy reproduction test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.config import SnoopyConfig
from repro.core.snoopy import Snoopy


@pytest.fixture
def rng():
    """A deterministically seeded RNG; reseed per test for reproducibility."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def small_store():
    """A small 2-LB / 3-subORAM deployment over 100 8-byte objects."""
    config = SnoopyConfig(
        num_load_balancers=2,
        num_suborams=3,
        value_size=8,
        security_parameter=32,
    )
    store = Snoopy(config, rng=random.Random(7))
    store.initialize({key: key.to_bytes(8, "big") for key in range(100)})
    return store


def value_of(key: int, size: int = 8) -> bytes:
    """The initial value convention used by small_store."""
    return key.to_bytes(size, "big")
