"""Cross-module integration tests: full-stack scenarios and failure
injection."""

import random

import pytest

from repro.apps.contact_discovery import ContactDiscoveryService
from repro.apps.key_transparency import KeyTransparencyLog
from repro.core.client import Client
from repro.core.config import SnoopyConfig
from repro.core.linearizability import History, check_snoopy_history
from repro.core.snoopy import Snoopy
from repro.errors import IntegrityError
from repro.sim.workload import uniform_requests, zipf_requests
from repro.types import OpType, Request


class TestWorkloadsEndToEnd:
    def test_uniform_workload_epochs(self):
        rng = random.Random(1)
        store = Snoopy(
            SnoopyConfig(num_load_balancers=2, num_suborams=3, value_size=16,
                         security_parameter=32),
            rng=random.Random(2),
        )
        store.initialize({k: bytes(16) for k in range(200)})
        for _ in range(5):
            requests = uniform_requests(30, 200, value_size=16, rng=rng)
            responses = store.batch(requests)
            assert len(responses) == 30

    def test_zipf_workload_epochs(self):
        """Heavy skew: dedup must absorb it, nothing may drop."""
        rng = random.Random(3)
        store = Snoopy(
            SnoopyConfig(num_load_balancers=1, num_suborams=4, value_size=16,
                         security_parameter=32),
            rng=random.Random(4),
        )
        store.initialize({k: bytes(16) for k in range(100)})
        for _ in range(5):
            requests = zipf_requests(
                40, 100, exponent=1.5, value_size=16, rng=rng
            )
            responses = store.batch(requests)
            assert len(responses) == 40

    def test_write_read_consistency_across_many_epochs(self):
        rng = random.Random(5)
        store = Snoopy(
            SnoopyConfig(num_load_balancers=2, num_suborams=2, value_size=4,
                         security_parameter=16),
            rng=random.Random(6),
        )
        model = {k: bytes([k]) * 4 for k in range(30)}
        store.initialize(dict(model))
        client = Client(store)
        for round_number in range(20):
            key = rng.randrange(30)
            if rng.random() < 0.5:
                value = bytes([round_number]) * 4
                assert client.write(key, value) == model[key]
                model[key] = value
            else:
                assert client.read(key) == model[key]
        check_snoopy_history(
            History(
                initial={k: bytes([k]) * 4 for k in range(30)},
                operations=client.history,
            )
        )


class TestFailureInjection:
    def test_host_tampering_surfaces_through_stack(self):
        """Flipping a ciphertext bit in a subORAM store fails the epoch."""
        store = Snoopy(
            SnoopyConfig(num_suborams=2, value_size=8, security_parameter=16),
            rng=random.Random(7),
        )
        store.initialize({k: bytes(8) for k in range(20)})
        victim = store.suborams[0].store
        _, blob = victim.host_ciphertext(0)
        victim.host_tamper(0, blob[:-1] + bytes([blob[-1] ^ 1]))
        with pytest.raises(IntegrityError):
            store.batch([Request(OpType.READ, k, seq=k) for k in range(20)])

    def test_host_rollback_of_object_detected(self):
        store = Snoopy(
            SnoopyConfig(num_suborams=1, value_size=8, security_parameter=16),
            rng=random.Random(8),
        )
        store.initialize({k: bytes(8) for k in range(5)})
        victim = store.suborams[0].store
        old = victim.host_ciphertext(2)
        store.write(store.suborams[0]._keys[2], b"newvalue")
        victim.host_rollback(2, old)
        with pytest.raises(IntegrityError):
            store.read(0)  # any epoch scans every slot

    def test_recovery_after_failed_epoch_not_silent(self):
        """After an integrity failure, the error repeats (no silent heal)."""
        store = Snoopy(
            SnoopyConfig(num_suborams=1, value_size=8, security_parameter=16),
            rng=random.Random(9),
        )
        store.initialize({k: bytes(8) for k in range(5)})
        victim = store.suborams[0].store
        _, blob = victim.host_ciphertext(1)
        victim.host_tamper(1, b"\x00" * len(blob))
        for _ in range(2):
            with pytest.raises(IntegrityError):
                store.read(0)


class TestApplicationsOnSharedDeployments:
    def test_kt_on_multi_balancer_deployment(self):
        users = {u: bytes([u % 256]) * 32 for u in range(1, 60)}
        log = KeyTransparencyLog(
            users,
            config=SnoopyConfig(
                num_load_balancers=2,
                num_suborams=3,
                value_size=32,
                security_parameter=32,
            ),
        )
        for user in (1, 17, 59):
            assert log.verify_lookup(log.lookup(user))

    def test_contact_discovery_interleaved_with_updates(self):
        service = ContactDiscoveryService(
            key_space=512,
            config=SnoopyConfig(num_suborams=2, value_size=16,
                                security_parameter=32),
        )
        service.initialize(["+100", "+200"])
        assert service.discover(["+100", "+300"]) == {
            "+100": True,
            "+300": False,
        }
        service.register("+300")
        service.unregister("+100")
        assert service.discover(["+100", "+200", "+300"]) == {
            "+100": False,
            "+200": True,
            "+300": True,
        }

    def test_kt_lookup_count_grows_logarithmically(self):
        small = KeyTransparencyLog(
            {u: bytes(32) for u in range(1, 17)},
            config=SnoopyConfig(value_size=32, security_parameter=16),
        )
        large = KeyTransparencyLog(
            {u: bytes(32) for u in range(1, 257)},
            config=SnoopyConfig(value_size=32, security_parameter=16),
        )
        assert large.accesses_per_lookup() == small.accesses_per_lookup() + 4


class TestDifferentialAgainstPlaintext:
    def test_snoopy_matches_plaintext_store(self):
        """Differential testing: identical random workloads produce
        identical results on Snoopy and on the plaintext baseline."""
        from repro.baselines.plaintext import PlaintextStore

        rng = random.Random(99)
        objects = {k: bytes([k]) * 4 for k in range(50)}
        snoopy = Snoopy(
            SnoopyConfig(num_load_balancers=1, num_suborams=3, value_size=4,
                         security_parameter=16),
            rng=random.Random(1),
        )
        snoopy.initialize(dict(objects))
        plaintext = PlaintextStore(4)
        plaintext.initialize(dict(objects))

        for _ in range(8):
            requests = []
            seen_keys = set()
            for i in range(rng.randrange(1, 8)):
                # Distinct keys per epoch so plaintext's sequential
                # semantics match Snoopy's batch semantics exactly.
                key = rng.randrange(50)
                while key in seen_keys:
                    key = rng.randrange(50)
                seen_keys.add(key)
                if rng.random() < 0.5:
                    requests.append(
                        Request(OpType.WRITE, key,
                                bytes([rng.randrange(256)]) * 4, seq=i)
                    )
                else:
                    requests.append(Request(OpType.READ, key, seq=i))
            snoopy_values = {r.seq: r.value for r in snoopy.batch(list(requests))}
            plain_values = {r.seq: r.value for r in plaintext.batch(list(requests))}
            assert snoopy_values == plain_values
