"""End-to-end tests for the assembled Snoopy system."""

import random

import pytest

from repro.core.config import SnoopyConfig
from repro.core.snoopy import Snoopy
from repro.errors import ConfigurationError, NotInitializedError
from repro.types import OpType, Request


class TestConfig:
    def test_defaults(self):
        config = SnoopyConfig()
        assert config.num_machines == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_load_balancers": 0},
            {"num_suborams": 0},
            {"value_size": 0},
            {"security_parameter": -1},
            {"epoch_duration": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SnoopyConfig(**kwargs)


class TestBasicOperations:
    def test_read_initial_value(self, small_store):
        assert small_store.read(42) == (42).to_bytes(8, "big")

    def test_write_returns_prior(self, small_store):
        prior = small_store.write(10, b"AAAAAAAA")
        assert prior == (10).to_bytes(8, "big")
        assert small_store.read(10) == b"AAAAAAAA"

    def test_read_missing_key(self, small_store):
        assert small_store.read(10**9) is None

    def test_num_objects(self, small_store):
        assert small_store.num_objects == 100

    def test_counter_bumped_once_per_epoch(self, small_store):
        before = small_store.counter.value
        small_store.read(1)
        assert small_store.counter.value == before + 1

    def test_requires_initialization(self):
        store = Snoopy(SnoopyConfig(value_size=8))
        with pytest.raises(NotInitializedError):
            store.run_epoch()

    def test_not_initialized_error_is_still_a_runtime_error(self):
        """Deprecation-cycle compatibility for legacy except clauses."""
        store = Snoopy(SnoopyConfig(value_size=8))
        with pytest.raises(RuntimeError):
            store.run_epoch()

    def test_negative_keys_rejected(self):
        store = Snoopy(SnoopyConfig(value_size=8))
        with pytest.raises(ConfigurationError):
            store.initialize({-1: bytes(8)})


class TestBatchSemantics:
    def test_batch_returns_all(self, small_store, rng):
        keys = [rng.randrange(100) for _ in range(30)]
        requests = [Request(OpType.READ, k, seq=i) for i, k in enumerate(keys)]
        responses = small_store.batch(requests)
        assert len(responses) == 30

    def test_reads_in_epoch_see_pre_epoch_state(self, small_store):
        responses = small_store.batch(
            [
                Request(OpType.WRITE, 5, b"XXXXXXXX", seq=0),
                Request(OpType.READ, 5, seq=1),
            ]
        )
        by_seq = {r.seq: r for r in responses}
        # Same-balancer requests see batch-start values...
        # (both may land on different balancers; either way values are
        # pre-write because reads order before writes).
        assert by_seq[1].value in ((5).to_bytes(8, "big"), b"XXXXXXXX")
        # ...and the write definitely applied afterwards.
        assert small_store.read(5) == b"XXXXXXXX"

    def test_heavy_skew_is_fine(self, small_store):
        requests = [Request(OpType.READ, 7, seq=i) for i in range(50)]
        responses = small_store.batch(requests)
        assert all(r.value == (7).to_bytes(8, "big") for r in responses)

    def test_explicit_balancer_routing(self, small_store):
        small_store.submit(Request(OpType.READ, 1, seq=0), load_balancer=0)
        small_store.submit(Request(OpType.READ, 2, seq=1), load_balancer=1)
        assert small_store.load_balancers[0].pending == 1
        assert small_store.load_balancers[1].pending == 1
        responses = small_store.run_epoch()
        assert len(responses) == 2


class TestAgainstReferenceModel:
    @pytest.mark.parametrize("balancers,suborams", [(1, 1), (1, 4), (3, 2)])
    def test_randomized_equivalence(self, balancers, suborams):
        """Snoopy behaves like a dict under single-balancer epochs."""
        rng = random.Random(balancers * 10 + suborams)
        config = SnoopyConfig(
            num_load_balancers=balancers,
            num_suborams=suborams,
            value_size=4,
            security_parameter=16,
        )
        store = Snoopy(config, rng=random.Random(1))
        model = {k: bytes([k]) * 4 for k in range(40)}
        store.initialize(dict(model))

        for _ in range(12):
            # One balancer per epoch so epoch-ordering is deterministic.
            balancer = rng.randrange(balancers)
            keys = rng.sample(range(40), rng.randrange(1, 8))
            requests, writes = [], {}
            for i, k in enumerate(keys):
                if rng.random() < 0.5:
                    value = bytes([rng.randrange(256)]) * 4
                    requests.append(Request(OpType.WRITE, k, value, seq=i))
                    writes[k] = value
                else:
                    requests.append(Request(OpType.READ, k, seq=i))
            for request in requests:
                store.submit(request, load_balancer=balancer)
            responses = store.run_epoch()
            for response in responses:
                assert response.value == model[response.key]
            model.update(writes)

        for k in range(40):
            assert store.read(k) == model[k]


class TestObliviousShape:
    def test_suboram_load_independent_of_distribution(self, rng):
        """Each subORAM receives exactly B entries whatever the workload."""
        config = SnoopyConfig(
            num_load_balancers=1, num_suborams=3, value_size=4,
            security_parameter=32,
        )
        seen_sizes = []
        for workload in ("uniform", "skewed"):
            store = Snoopy(config, rng=random.Random(2))
            store.initialize({k: bytes(4) for k in range(50)})
            sizes = []
            original = {
                s.suboram_id: s.batch_access for s in store.suborams
            }

            def spy(suboram):
                def call(batch):
                    sizes.append(len(batch))
                    return original[suboram.suboram_id](batch)

                return call

            for s in store.suborams:
                s.batch_access = spy(s)
            keys = (
                [rng.randrange(50) for _ in range(20)]
                if workload == "uniform"
                else [3] * 20
            )
            store.batch([Request(OpType.READ, k, seq=i) for i, k in enumerate(keys)])
            seen_sizes.append(sizes)
        assert seen_sizes[0] == seen_sizes[1]


class TestOverflowSurfacing:
    def test_overflow_aborts_loudly_at_system_level(self):
        """With lambda=0 the batch bound is exactly ceil(R/S); hashing
        imbalance then overflows some epoch, and the system must raise
        (never silently drop and retry — that would leak, §4.1)."""
        from repro.errors import BatchOverflowError

        rng = random.Random(17)
        store = Snoopy(
            SnoopyConfig(num_suborams=2, value_size=4, security_parameter=0),
            rng=random.Random(18),
        )
        store.initialize({k: bytes(4) for k in range(200)})
        with pytest.raises(BatchOverflowError):
            for _ in range(60):
                keys = rng.sample(range(200), 9)
                store.batch(
                    [Request(OpType.READ, k, seq=i) for i, k in enumerate(keys)]
                )
