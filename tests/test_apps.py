"""Tests for the §3.2 applications: Merkle trees, key transparency,
contact discovery."""

import pytest

from repro.apps.contact_discovery import ContactDiscoveryService
from repro.apps.key_transparency import KeyTransparencyLog
from repro.apps.merkle import MerkleTree
from repro.core.config import SnoopyConfig


class TestMerkleTree:
    def test_root_changes_with_leaves(self):
        a = MerkleTree([b"a", b"b"])
        b = MerkleTree([b"a", b"c"])
        assert a.root != b.root

    def test_proof_verifies(self):
        leaves = [bytes([i]) * 4 for i in range(10)]
        tree = MerkleTree(leaves)
        for position in range(10):
            siblings = [tree.nodes[i] for i in tree.proof_node_indices(position)]
            assert MerkleTree.verify(leaves[position], position, siblings, tree.root)

    def test_wrong_leaf_fails(self):
        leaves = [bytes([i]) * 4 for i in range(8)]
        tree = MerkleTree(leaves)
        siblings = [tree.nodes[i] for i in tree.proof_node_indices(3)]
        assert not MerkleTree.verify(b"forged", 3, siblings, tree.root)

    def test_wrong_position_fails(self):
        leaves = [bytes([i]) * 4 for i in range(8)]
        tree = MerkleTree(leaves)
        siblings = [tree.nodes[i] for i in tree.proof_node_indices(3)]
        assert not MerkleTree.verify(leaves[3], 4, siblings, tree.root)

    def test_proof_length_is_height(self):
        tree = MerkleTree([b"x"] * 10)  # pads to 16 slots
        assert tree.height == 4
        assert len(tree.proof_node_indices(0)) == 4

    def test_object_map_complete(self):
        tree = MerkleTree([b"x"] * 4)
        objects = tree.as_objects()
        assert len(objects) == 2 * tree.num_slots - 1
        assert objects[1] == tree.root

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MerkleTree([])


class TestKeyTransparency:
    @pytest.fixture
    def log(self):
        users = {u: bytes([u % 256]) * 32 for u in range(1, 30)}
        return KeyTransparencyLog(users)

    def test_lookup_returns_correct_key(self, log):
        proof = log.lookup(7)
        assert proof.public_key == bytes([7]) * 32

    def test_proof_verifies(self, log):
        assert log.verify_lookup(log.lookup(12))

    def test_accesses_per_lookup_matches_fig9b_formula(self, log):
        """log2(n slots) + 1 accesses per lookup."""
        proof = log.lookup(3)
        assert proof.accesses() == log.accesses_per_lookup()
        assert log.accesses_per_lookup() == log.tree.height + 1

    def test_unknown_user_rejected(self, log):
        with pytest.raises(KeyError):
            log.lookup(999)

    def test_forged_root_fails(self, log):
        proof = log.lookup(5)
        forged = type(proof)(
            user_id=proof.user_id,
            public_key=proof.public_key,
            siblings=proof.siblings,
            root=proof.root,
            signature=b"\x00" * 32,
        )
        assert not log.verify_lookup(forged)

    def test_forged_key_fails(self, log):
        proof = log.lookup(5)
        forged = type(proof)(
            user_id=proof.user_id,
            public_key=b"\xff" * 32,
            siblings=proof.siblings,
            root=proof.root,
            signature=proof.signature,
        )
        assert not log.verify_lookup(forged)

    def test_rejects_bad_key_size(self):
        with pytest.raises(ValueError):
            KeyTransparencyLog({1: b"short"})

    def test_rejects_wrong_config_value_size(self):
        with pytest.raises(ValueError):
            KeyTransparencyLog(
                {1: bytes(32)},
                config=SnoopyConfig(value_size=16),
            )


class TestContactDiscovery:
    @pytest.fixture
    def service(self):
        svc = ContactDiscoveryService(key_space=128)
        svc.initialize(["+15551111", "+15552222"])
        return svc

    def test_discovery(self, service):
        result = service.discover(["+15551111", "+15553333"])
        assert result["+15551111"] is True
        assert result["+15553333"] is False

    def test_duplicates_in_contact_list(self, service):
        result = service.discover(["+15551111"] * 5 + ["+15559999"])
        assert result["+15551111"] is True
        assert result["+15559999"] is False

    def test_register_unregister(self, service):
        service.register("+15554444")
        assert service.discover(["+15554444"])["+15554444"] is True
        service.unregister("+15554444")
        assert service.discover(["+15554444"])["+15554444"] is False

    def test_requires_initialization(self):
        svc = ContactDiscoveryService(key_space=16)
        with pytest.raises(RuntimeError):
            svc.discover(["+1555"])

    def test_rejects_wrong_value_size(self):
        with pytest.raises(ValueError):
            ContactDiscoveryService(config=SnoopyConfig(value_size=4))
