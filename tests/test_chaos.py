"""Chaos tests: seeded fault plans must never change what the system serves.

The acceptance bar for the fault-tolerance layer: a deterministic
`FaultPlan` injecting worker crashes, task timeouts, and replica
crash+rollback events across a 10-epoch run must yield **byte-identical
responses** to the fault-free serial run — no request dropped, every
ticket resolved — on the thread and process backends with both oblivious
kernels, and `fault_stats` must report the injected events exactly.

Failure handling is public information (SECURITY.md): the slot-access
trace of the state the deployment *keeps* is also asserted identical to
the fault-free run, because failed atomic attempts execute on discarded
copies.

The drivers (tracing subORAMs, seeded workload, store builder) are the
shared ones from :mod:`tests.harness`.
"""

import random

import pytest

from repro.core.config import SnoopyConfig
from repro.core.deployment import DistributedSnoopy
from repro.core.faults import FaultEvent, FaultPlan
from repro.crypto.keys import KeyChain

from tests.harness import (
    access_traces,
    build_store as harness_build_store,
    run_workload,
    seeded_workload,
    tracing_factory,
)

MASTER = b"chaos-test-master-key-0123456789"[:32]
EPOCHS = 10
NUM_KEYS = 48
VALUE = 8

#: The acceptance-criteria schedule: one worker crash, one task timeout,
#: one replica crash, one replica rollback, spread over a 10-epoch run.
ACCEPTANCE_PLAN = FaultPlan([
    FaultEvent(epoch=2, kind="worker_crash", unit=1),
    FaultEvent(epoch=3, kind="replica_crash", unit=2, replica=1),
    FaultEvent(epoch=5, kind="task_timeout", unit=0),
    FaultEvent(epoch=6, kind="replica_rollback", unit=1, replica=0),
])

#: Backend-seam-only schedule for deployments without replica groups.
BACKEND_PLAN = FaultPlan([
    FaultEvent(epoch=2, kind="worker_crash", unit=1),
    FaultEvent(epoch=5, kind="task_timeout", unit=0),
])

WORKLOAD = seeded_workload(
    EPOCHS, 6, seed=7, num_keys=NUM_KEYS, value_size=VALUE, value_offset=1
)


def build_store(backend, kernel="python", plan=None, replication=None,
                max_attempts=4, suboram_factory=None):
    """The chaos-suite deployment: 2 LB x 3 subORAMs over 48 objects."""
    return harness_build_store(
        backend,
        master=MASTER,
        objects={k: bytes([k % 251]) * VALUE for k in range(NUM_KEYS)},
        kernel=kernel,
        plan=plan,
        replication=replication,
        max_attempts=max_attempts,
        suboram_factory=suboram_factory,
        value_size=VALUE,
    )


@pytest.fixture(scope="module")
def baseline():
    """The fault-free, unreplicated, legacy-config serial run."""
    store = build_store("serial", max_attempts=1)
    responses, tickets = run_workload(store, WORKLOAD)
    results = [ticket.result() for ticket in tickets]
    store.close()
    return responses, results


class TestAcceptance:
    """The ISSUE's acceptance criteria, verbatim."""

    @pytest.mark.parametrize("backend", ["thread:4", "process:2"])
    @pytest.mark.parametrize("kernel", ["python", "numpy"])
    def test_fault_plan_is_byte_identical_to_fault_free_serial(
        self, baseline, backend, kernel
    ):
        baseline_responses, baseline_results = baseline
        store = build_store(
            backend, kernel=kernel, plan=ACCEPTANCE_PLAN, replication=(1, 1)
        )
        responses, tickets = run_workload(store, WORKLOAD)

        # Byte-identical responses, epoch by epoch: no request dropped.
        assert responses == baseline_responses
        # Every ticket resolves, with the same response the fault-free
        # run produced.
        results = [ticket.result() for ticket in tickets]
        assert results == baseline_results

        # fault_stats reports the injected events exactly.
        stats = store.fault_stats
        assert stats["worker_crashes"] == 1
        assert stats["tasks_timed_out"] == 1
        assert stats["replica_crashes"] == 1
        assert stats["replica_rollbacks"] == 1
        assert stats["transport_errors"] == 0
        # The crash and the timeout each failed (and retried) one epoch;
        # the crashed and the rolled-back replica were each healed at the
        # next epoch boundary.
        assert stats["epochs_failed"] == 2
        assert stats["epochs_retried"] == 2
        assert stats["replicas_recovered"] == 2
        store.close()

    def test_injector_consumed_every_scheduled_event(self):
        store = build_store("serial", plan=ACCEPTANCE_PLAN,
                            replication=(1, 1))
        run_workload(store, WORKLOAD)
        assert store._injector.pending == []
        store.close()


class TestGeneratedPlans:
    def test_generate_is_deterministic(self):
        a = FaultPlan.generate(seed=11, epochs=10, num_suborams=3,
                               num_replicas=3)
        b = FaultPlan.generate(seed=11, epochs=10, num_suborams=3,
                               num_replicas=3)
        assert a.events == b.events
        c = FaultPlan.generate(seed=12, epochs=10, num_suborams=3,
                               num_replicas=3)
        assert a.events != c.events

    def test_generated_plan_runs_clean(self):
        plan = FaultPlan.generate(seed=11, epochs=EPOCHS, num_suborams=3,
                                  num_replicas=3)
        assert len(plan) == 4  # crash, timeout, replica crash + rollback
        store = build_store("thread:4", plan=plan, replication=(1, 1))
        responses, tickets = run_workload(store, WORKLOAD)
        for ticket in tickets:
            ticket.result()  # every ticket resolves
        # Every scheduled event fired and was counted.
        fired = {
            kind: store.fault_stats[counter]
            for kind, counter in (
                ("worker_crash", "worker_crashes"),
                ("task_timeout", "tasks_timed_out"),
                ("replica_crash", "replica_crashes"),
                ("replica_rollback", "replica_rollbacks"),
                ("transport_error", "transport_errors"),
            )
        }
        assert fired == plan.counts()
        store.close()

    def test_unreplicated_plans_skip_replica_faults(self):
        plan = FaultPlan.generate(seed=3, epochs=5, num_suborams=2)
        assert all(not e.kind.startswith("replica") for e in plan)
        assert all(e.kind != "transport_error" for e in plan)


class TestTraceUnderFaults:
    """Obliviousness under faults: the kept state's access trace is the
    fault-free trace — failed atomic attempts ran on discarded copies."""

    def test_kept_trace_matches_fault_free_run(self):
        quiet = build_store("serial", max_attempts=1,
                            suboram_factory=tracing_factory)
        quiet_responses, _ = run_workload(quiet, WORKLOAD)
        quiet_traces = access_traces(quiet)
        quiet.close()

        chaotic = build_store("thread:4", plan=BACKEND_PLAN,
                              suboram_factory=tracing_factory)
        chaotic_responses, _ = run_workload(chaotic, WORKLOAD)
        chaotic_traces = access_traces(chaotic)
        chaotic.close()

        assert chaotic_responses == quiet_responses
        assert chaotic_traces == quiet_traces
        assert all(len(trace) > 0 for trace in quiet_traces)


class TestDistributedChaos:
    def test_transport_faults_are_retried_transparently(self):
        def build(plan, max_attempts):
            config = SnoopyConfig(
                num_load_balancers=2,
                num_suborams=3,
                value_size=VALUE,
                security_parameter=16,
                execution_backend="serial",
                epoch_max_attempts=max_attempts,
            )
            store = DistributedSnoopy(
                config, keychain=KeyChain(master=MASTER),
                rng=random.Random(5), fault_plan=plan,
            )
            store.initialize(
                {k: bytes([k % 251]) * VALUE for k in range(NUM_KEYS)}
            )
            return store

        quiet = build(plan=None, max_attempts=1)
        quiet_responses, _ = run_workload(quiet, WORKLOAD)
        quiet.close()

        plan = FaultPlan([
            FaultEvent(epoch=2, kind="transport_error", unit=1),
            FaultEvent(epoch=7, kind="transport_error", unit=0),
        ])
        chaotic = build(plan=plan, max_attempts=3)
        chaotic_responses, tickets = run_workload(chaotic, WORKLOAD)
        assert chaotic_responses == quiet_responses
        for ticket in tickets:
            ticket.result()
        assert chaotic.fault_stats["transport_errors"] == 2
        assert chaotic.fault_stats["epochs_failed"] == 2
        assert chaotic.fault_stats["epochs_retried"] == 2
        chaotic.close()

    def test_distributed_replication_with_replica_faults(self):
        config = SnoopyConfig(
            num_load_balancers=2,
            num_suborams=3,
            value_size=VALUE,
            security_parameter=16,
            execution_backend="thread:4",
            epoch_max_attempts=3,
            replication=(1, 1),
        )
        plan = FaultPlan([
            FaultEvent(epoch=2, kind="replica_crash", unit=0, replica=2),
            FaultEvent(epoch=4, kind="replica_rollback", unit=1, replica=1),
        ])
        store = DistributedSnoopy(
            config, keychain=KeyChain(master=MASTER),
            rng=random.Random(5), fault_plan=plan,
        )
        store.initialize(
            {k: bytes([k % 251]) * VALUE for k in range(NUM_KEYS)}
        )
        responses, tickets = run_workload(store, WORKLOAD)
        assert [r for epoch in responses for r in epoch]  # served requests
        for ticket in tickets:
            ticket.result()
        assert store.fault_stats["replica_crashes"] == 1
        assert store.fault_stats["replica_rollbacks"] == 1
        assert store.fault_stats["replicas_recovered"] == 2
        store.close()


class TestFaultStatsSurface:
    def test_fault_free_run_reports_zero_everywhere(self):
        store = build_store("serial", max_attempts=1)
        run_workload(store, WORKLOAD)
        assert store.fault_stats == {
            "epochs_failed": 0,
            "epochs_retried": 0,
            "replicas_recovered": 0,
        }
        store.close()

    def test_plan_without_faults_extends_stats_with_injector_counters(self):
        store = build_store("serial", plan=FaultPlan())
        run_workload(store, WORKLOAD)
        assert store.fault_stats == {
            "epochs_failed": 0,
            "epochs_retried": 0,
            "replicas_recovered": 0,
            "worker_crashes": 0,
            "tasks_timed_out": 0,
            "replica_crashes": 0,
            "replica_rollbacks": 0,
            "transport_errors": 0,
        }
        store.close()
