"""Tests for the §6 planner."""

import pytest

from repro.errors import PlannerError
from repro.planner.planner import Plan, Planner
from repro.planner.pricing import DEFAULT_PRICES, PriceTable
from repro.sim.costmodel import max_throughput


class TestPricing:
    def test_eq3(self):
        prices = PriceTable(load_balancer=100.0, suboram=50.0)
        assert prices.monthly_cost(2, 3) == 350.0

    def test_default_prices_symmetric(self):
        assert DEFAULT_PRICES.load_balancer == DEFAULT_PRICES.suboram


class TestPlanner:
    def test_plan_meets_throughput(self):
        planner = Planner(100_000)
        plan = planner.plan(min_throughput=10_000, max_latency=1.0)
        achieved = max_throughput(
            plan.num_load_balancers, plan.num_suborams, 100_000, 1.0
        )
        assert achieved >= 10_000

    def test_plan_meets_latency(self):
        planner = Planner(100_000)
        plan = planner.plan(min_throughput=10_000, max_latency=1.0)
        assert plan.predicted_latency <= 1.0

    def test_cost_minimal_among_candidates(self):
        planner = Planner(100_000)
        plan = planner.plan(min_throughput=10_000, max_latency=1.0)
        # No strictly smaller configuration meets the throughput target.
        for balancers in range(1, plan.num_load_balancers + 1):
            for suborams in range(1, plan.num_suborams + 1):
                if (balancers, suborams) == (
                    plan.num_load_balancers,
                    plan.num_suborams,
                ):
                    continue
                if (
                    DEFAULT_PRICES.monthly_cost(balancers, suborams)
                    < plan.monthly_cost
                ):
                    assert (
                        max_throughput(balancers, suborams, 100_000, 1.0)
                        < 10_000
                    )

    def test_higher_throughput_costs_more(self):
        """Fig. 14b: cost grows with the throughput requirement."""
        planner = Planner(1_000_000)
        cheap = planner.plan(min_throughput=5_000, max_latency=1.0)
        dear = planner.plan(min_throughput=60_000, max_latency=1.0)
        assert dear.monthly_cost >= cheap.monthly_cost
        assert dear.num_machines >= cheap.num_machines

    def test_larger_data_favors_more_suborams(self):
        """Fig. 14a: big stores need a higher subORAM:LB ratio."""
        small = Planner(10_000).plan(min_throughput=50_000, max_latency=1.0)
        large = Planner(1_000_000).plan(min_throughput=50_000, max_latency=1.0)
        assert large.num_suborams >= small.num_suborams

    def test_small_data_cheaper_at_same_throughput(self):
        """Fig. 14b: 10K objects cost less than 1M at equal throughput."""
        small = Planner(10_000).plan(min_throughput=40_000, max_latency=1.0)
        large = Planner(1_000_000).plan(min_throughput=40_000, max_latency=1.0)
        assert small.monthly_cost <= large.monthly_cost

    def test_impossible_target_raises(self):
        planner = Planner(2_000_000, max_machines_per_role=2)
        with pytest.raises(PlannerError):
            planner.plan(min_throughput=10**7, max_latency=0.3)

    def test_sweep_returns_none_for_impossible(self):
        planner = Planner(1_000_000, max_machines_per_role=3)
        plans = planner.sweep([1_000, 10**9], max_latency=1.0)
        assert plans[0] is not None
        assert plans[1] is None

    def test_plan_machines_property(self):
        plan = Plan(2, 3, 1460.0, 50_000, 0.5)
        assert plan.num_machines == 5


class TestMinLatencyExtension:
    def test_min_latency_within_budget(self):
        planner = Planner(500_000)
        plan = planner.plan_min_latency(
            min_throughput=10_000, max_monthly_cost=3_000
        )
        assert plan.monthly_cost <= 3_000
        assert plan.predicted_latency < float("inf")

    def test_bigger_budget_never_hurts_latency(self):
        planner = Planner(500_000)
        small = planner.plan_min_latency(10_000, 2_000)
        large = planner.plan_min_latency(10_000, 6_000)
        assert large.predicted_latency <= small.predicted_latency

    def test_impossible_budget_raises(self):
        planner = Planner(2_000_000)
        with pytest.raises(PlannerError):
            planner.plan_min_latency(10**7, 600.0)  # one machine's worth


class TestParetoFrontier:
    def test_frontier_sorted_and_nondominated(self):
        planner = Planner(200_000, max_machines_per_role=12)
        frontier = planner.pareto_frontier(max_latency=1.0, max_machines=10)
        assert frontier, "frontier must be non-empty"
        costs = [p.monthly_cost for p in frontier]
        throughputs = [p.predicted_throughput for p in frontier]
        assert costs == sorted(costs)
        assert throughputs == sorted(throughputs)
        # Strictly increasing throughput along the frontier.
        assert all(b > a for a, b in zip(throughputs, throughputs[1:]))

    def test_frontier_contains_the_min_cost_plan(self):
        planner = Planner(200_000, max_machines_per_role=12)
        frontier = planner.pareto_frontier(max_latency=1.0, max_machines=10)
        plan = planner.plan(min_throughput=frontier[0].predicted_throughput * 0.9,
                            max_latency=1.0)
        assert plan.monthly_cost <= frontier[0].monthly_cost + 1e-9
