"""Tests for quorum-replicated subORAMs with rollback detection (§9)."""

import random

import pytest

from repro.core.config import SnoopyConfig
from repro.core.deployment import DistributedSnoopy
from repro.core.snoopy import Snoopy
from repro.crypto.keys import KeyChain
from repro.errors import RollbackError
from repro.exec import ProcessPoolBackend
from repro.extensions.replication import (
    ReplicaUnavailableError,
    ReplicatedSubOram,
)
from repro.types import BatchEntry, OpType, Request


def make_group(f=1, r=1):
    group = ReplicatedSubOram(
        suboram_id=0, value_size=4, crash_tolerance=f, rollback_tolerance=r
    )
    group.initialize({k: bytes([k]) * 4 for k in range(20)})
    return group


def read(key):
    return BatchEntry(op=OpType.READ, key=key, is_dummy=False)


def write(key, value):
    return BatchEntry(op=OpType.WRITE, key=key, value=value, is_dummy=False)


class TestHappyPath:
    def test_group_size(self):
        assert make_group(f=1, r=1).group_size == 3
        assert make_group(f=2, r=0).group_size == 3
        assert make_group(f=0, r=0).group_size == 1

    def test_reads_and_writes(self):
        group = make_group()
        [r1] = group.batch_access([read(3)])
        assert r1.value == bytes([3]) * 4
        group.batch_access([write(3, b"zzzz")])
        [r2] = group.batch_access([read(3)])
        assert r2.value == b"zzzz"

    def test_counter_once_per_batch(self):
        group = make_group()
        group.batch_access([read(1)])
        group.batch_access([read(2)])
        assert group.counter.value == 2

    def test_replicas_stay_in_sync(self):
        group = make_group()
        group.batch_access([write(5, b"aaaa")])
        for replica in group.replicas:
            assert replica.suboram.peek(5) == b"aaaa"


class TestCrashes:
    def test_survives_f_crashes(self):
        group = make_group(f=2, r=0)
        group.crash(0)
        group.crash(1)
        [resp] = group.batch_access([read(4)])
        assert resp.value == bytes([4]) * 4

    def test_all_crashed_raises(self):
        group = make_group(f=1, r=0)
        group.crash(0)
        group.crash(1)
        with pytest.raises(ReplicaUnavailableError):
            group.batch_access([read(1)])

    def test_recovery_catches_up(self):
        group = make_group(f=1, r=0)
        group.crash(0)
        group.batch_access([write(7, b"new!")])
        group.recover_from_peer(0)
        assert group.replicas[0].suboram.peek(7) == b"new!"
        assert group.replicas[0].epoch == group.replicas[1].epoch
        # Recovered replica serves correctly afterwards.
        [resp] = group.batch_access([read(7)])
        assert resp.value == b"new!"


class TestRollbacks:
    def test_rollback_of_one_replica_tolerated(self):
        """Stale replica's reply is identified and ignored."""
        group = make_group(f=0, r=1)
        snapshot = group.snapshot(0)
        group.batch_access([write(3, b"v2v2")])
        group.rollback(0, snapshot)
        [resp] = group.batch_access([read(3)])
        assert resp.value == b"v2v2", "must come from the fresh replica"

    def test_rollback_beyond_tolerance_detected(self):
        """Rolling back every replica trips the trusted counter."""
        group = make_group(f=0, r=1)
        snapshots = [group.snapshot(i) for i in range(group.group_size)]
        group.batch_access([write(3, b"v2v2")])
        for i, snapshot in enumerate(snapshots):
            group.rollback(i, snapshot)
        with pytest.raises(RollbackError):
            group.batch_access([read(3)])

    def test_rollback_plus_crash_combined(self):
        group = make_group(f=1, r=1)  # 3 replicas
        snapshot = group.snapshot(0)
        group.batch_access([write(9, b"good")])
        group.rollback(0, snapshot)
        group.crash(1)
        [resp] = group.batch_access([read(9)])
        assert resp.value == b"good"


class TestCounterStaysAligned:
    """The trusted counter must only advance when a batch is served."""

    def test_all_crashed_does_not_advance_counter(self):
        group = make_group(f=1, r=0)
        group.batch_access([read(1)])
        group.crash(0)
        group.crash(1)
        with pytest.raises(ReplicaUnavailableError):
            group.batch_access([read(1)])
        assert group.counter.value == 1, (
            "a batch no replica served must not bump the counter"
        )

    def test_group_recovers_after_total_crash(self):
        """Post-recovery batches serve correctly: epochs stay in sync."""
        group = make_group(f=1, r=0)
        group.batch_access([write(2, b"keep")])
        # recover_from_peer needs a live peer, so re-open one replica the
        # way an operator restarting the process would, then heal the
        # other from it.
        group.crash(0)
        group.crash(1)
        with pytest.raises(ReplicaUnavailableError):
            group.batch_access([read(2)])
        group.replicas[0].crashed = False
        group.recover_from_peer(1)
        [resp] = group.batch_access([read(2)])
        assert resp.value == b"keep"
        assert group.counter.value == 2

    def test_rollback_detection_still_works_after_crash_epoch(self):
        group = make_group(f=1, r=0)
        group.crash(0)
        group.crash(1)
        with pytest.raises(ReplicaUnavailableError):
            group.batch_access([read(1)])
        group.replicas[0].crashed = False
        group.replicas[1].crashed = False
        snapshots = [group.snapshot(i) for i in range(group.group_size)]
        group.batch_access([write(3, b"newv")])
        for i, snapshot in enumerate(snapshots):
            group.rollback(i, snapshot)
        with pytest.raises(RollbackError):
            group.batch_access([read(3)])


class TestStateToken:
    def test_token_changes_with_state_and_membership(self):
        group = make_group()
        t0 = group.state_token
        assert group.state_token == t0  # stable while nothing changes
        group.batch_access([write(1, b"aaaa")])
        t1 = group.state_token
        assert t1 != t0
        group.crash(0)
        t2 = group.state_token
        assert t2 != t1
        group.recover_from_peer(0)
        assert group.state_token != t2

    def test_group_works_under_process_backend_state_cache(self):
        """Replica groups ride map_stateful's cross-epoch cache."""
        def run_batches(group, backend):
            token = lambda g: g.state_token
            for key in (3, 4):
                [(group, [resp])] = backend.map_stateful(
                    _group_batch, [("group", group, [read(key)])],
                    token=token,
                )
                assert resp.value == bytes([key]) * 4
            return group

        with ProcessPoolBackend(max_workers=1) as backend:
            group = run_batches(make_group(), backend)
            # Second call probed the worker-side cached copy.
            assert backend.state_cache_stats["hits"] == 1
            assert group.counter.value == 2


def _group_batch(group, batch):
    """Module-level stateful unit executing one batch on a replica group."""
    return group, group.batch_access(batch)


MASTER = b"replication-test-master-key-0123"[:32]


def _workload(num_epochs=5, per_epoch=5, seed=17):
    rng = random.Random(seed)
    epochs = []
    for _ in range(num_epochs):
        requests = []
        for i in range(per_epoch):
            key = rng.randrange(30)
            if rng.random() < 0.5:
                requests.append(
                    Request(OpType.WRITE, key, bytes([i + 1]) * 4, seq=i)
                )
            else:
                requests.append(Request(OpType.READ, key, seq=i))
        epochs.append(requests)
    return epochs


def _drive(store, epochs):
    responses, tickets = [], []
    for requests in epochs:
        for i, request in enumerate(requests):
            tickets.append(store.submit(request, load_balancer=i % 2))
        responses.append(store.run_epoch())
    return responses, [t.result() for t in tickets]


class TestDeploymentIntegration:
    """config.replication=(f, r) drops replica groups into deployments."""

    def _config(self, backend="serial", replication=(1, 1)):
        return SnoopyConfig(
            num_load_balancers=2,
            num_suborams=2,
            value_size=4,
            security_parameter=16,
            execution_backend=backend,
            replication=replication,
        )

    def _build(self, cls, **kwargs):
        store = cls(
            self._config(**kwargs),
            keychain=KeyChain(master=MASTER),
            rng=random.Random(2),
        )
        store.initialize({k: bytes([k]) * 4 for k in range(30)})
        return store

    @pytest.fixture(scope="class")
    def unreplicated_serial(self):
        store = self._build(Snoopy, replication=None)
        responses, results = _drive(store, _workload())
        store.close()
        return responses, results

    def test_snoopy_builds_replica_groups(self):
        store = self._build(Snoopy)
        assert all(
            isinstance(s, ReplicatedSubOram) and s.group_size == 3
            for s in store.suborams
        )
        store.close()

    @pytest.mark.parametrize("backend", ["serial", "thread:4", "process:2"])
    def test_replicated_run_matches_unreplicated_serial(
        self, unreplicated_serial, backend
    ):
        store = self._build(Snoopy, backend=backend)
        responses, results = _drive(store, _workload())
        assert (responses, results) == unreplicated_serial
        store.close()

    @pytest.mark.parametrize("backend", ["serial", "process:2"])
    def test_crash_mid_run_recovers_and_stays_byte_identical(
        self, unreplicated_serial, backend
    ):
        store = self._build(Snoopy, backend=backend)
        epochs = _workload()
        responses, tickets = [], []
        for index, requests in enumerate(epochs):
            if index == 2:  # crash a replica mid-run
                store.suborams[0].crash(1)
            for i, request in enumerate(requests):
                tickets.append(store.submit(request, load_balancer=i % 2))
            responses.append(store.run_epoch())
            if index == 2:  # operator heals it before the next epoch
                store.suborams[0].recover_from_peer(1)
        results = [t.result() for t in tickets]
        assert (responses, results) == unreplicated_serial
        # The recovered replica is fully caught up.
        group = store.suborams[0]
        assert group.replicas[1].epoch == group.replicas[0].epoch
        store.close()

    def test_distributed_snoopy_with_replication(self, unreplicated_serial):
        store = self._build(DistributedSnoopy)
        responses, results = _drive(store, _workload())
        assert (responses, results) == unreplicated_serial
        store.close()

    def test_custom_factory_conflicts_with_replication(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            Snoopy(self._config(), suboram_factory=lambda s, c, k: None)
