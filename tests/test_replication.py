"""Tests for quorum-replicated subORAMs with rollback detection (§9)."""

import pytest

from repro.errors import RollbackError
from repro.extensions.replication import (
    ReplicaUnavailableError,
    ReplicatedSubOram,
)
from repro.types import BatchEntry, OpType


def make_group(f=1, r=1):
    group = ReplicatedSubOram(
        suboram_id=0, value_size=4, crash_tolerance=f, rollback_tolerance=r
    )
    group.initialize({k: bytes([k]) * 4 for k in range(20)})
    return group


def read(key):
    return BatchEntry(op=OpType.READ, key=key, is_dummy=False)


def write(key, value):
    return BatchEntry(op=OpType.WRITE, key=key, value=value, is_dummy=False)


class TestHappyPath:
    def test_group_size(self):
        assert make_group(f=1, r=1).group_size == 3
        assert make_group(f=2, r=0).group_size == 3
        assert make_group(f=0, r=0).group_size == 1

    def test_reads_and_writes(self):
        group = make_group()
        [r1] = group.batch_access([read(3)])
        assert r1.value == bytes([3]) * 4
        group.batch_access([write(3, b"zzzz")])
        [r2] = group.batch_access([read(3)])
        assert r2.value == b"zzzz"

    def test_counter_once_per_batch(self):
        group = make_group()
        group.batch_access([read(1)])
        group.batch_access([read(2)])
        assert group.counter.value == 2

    def test_replicas_stay_in_sync(self):
        group = make_group()
        group.batch_access([write(5, b"aaaa")])
        for replica in group.replicas:
            assert replica.suboram.peek(5) == b"aaaa"


class TestCrashes:
    def test_survives_f_crashes(self):
        group = make_group(f=2, r=0)
        group.crash(0)
        group.crash(1)
        [resp] = group.batch_access([read(4)])
        assert resp.value == bytes([4]) * 4

    def test_all_crashed_raises(self):
        group = make_group(f=1, r=0)
        group.crash(0)
        group.crash(1)
        with pytest.raises(ReplicaUnavailableError):
            group.batch_access([read(1)])

    def test_recovery_catches_up(self):
        group = make_group(f=1, r=0)
        group.crash(0)
        group.batch_access([write(7, b"new!")])
        group.recover_from_peer(0)
        assert group.replicas[0].suboram.peek(7) == b"new!"
        assert group.replicas[0].epoch == group.replicas[1].epoch
        # Recovered replica serves correctly afterwards.
        [resp] = group.batch_access([read(7)])
        assert resp.value == b"new!"


class TestRollbacks:
    def test_rollback_of_one_replica_tolerated(self):
        """Stale replica's reply is identified and ignored."""
        group = make_group(f=0, r=1)
        snapshot = group.snapshot(0)
        group.batch_access([write(3, b"v2v2")])
        group.rollback(0, snapshot)
        [resp] = group.batch_access([read(3)])
        assert resp.value == b"v2v2", "must come from the fresh replica"

    def test_rollback_beyond_tolerance_detected(self):
        """Rolling back every replica trips the trusted counter."""
        group = make_group(f=0, r=1)
        snapshots = [group.snapshot(i) for i in range(group.group_size)]
        group.batch_access([write(3, b"v2v2")])
        for i, snapshot in enumerate(snapshots):
            group.rollback(i, snapshot)
        with pytest.raises(RollbackError):
            group.batch_access([read(3)])

    def test_rollback_plus_crash_combined(self):
        group = make_group(f=1, r=1)  # 3 replicas
        snapshot = group.snapshot(0)
        group.batch_access([write(9, b"good")])
        group.rollback(0, snapshot)
        group.crash(1)
        [resp] = group.batch_access([read(9)])
        assert resp.value == b"good"
