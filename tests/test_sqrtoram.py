"""Tests for the square-root ORAM baseline."""

import random

import pytest

from repro.baselines.sqrtoram import SqrtOram


class TestBasics:
    def test_write_then_read(self):
        oram = SqrtOram(16, rng=random.Random(1))
        oram.write(3, b"x")
        assert oram.read(3) == b"x"

    def test_write_returns_prior(self):
        oram = SqrtOram(16, rng=random.Random(1))
        assert oram.write(3, b"a") is None
        assert oram.write(3, b"b") == b"a"

    def test_initialize_bulk(self):
        oram = SqrtOram(25, rng=random.Random(2))
        oram.initialize({k: bytes([k]) for k in range(25)})
        for k in range(25):
            assert oram.read(k) == bytes([k])

    def test_out_of_range_key(self):
        oram = SqrtOram(8, rng=random.Random(3))
        with pytest.raises(KeyError):
            oram.read(8)


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("capacity", [4, 16, 100])
    def test_matches_dict(self, capacity):
        rng = random.Random(capacity)
        oram = SqrtOram(capacity, rng=random.Random(capacity + 1))
        model = {}
        for _ in range(1000):
            key = rng.randrange(capacity)
            if rng.random() < 0.5:
                value = bytes([rng.randrange(256)])
                assert oram.write(key, value) == model.get(key)
                model[key] = value
            else:
                assert oram.read(key) == model.get(key)


class TestStructure:
    def test_reshuffle_every_sqrt_accesses(self):
        oram = SqrtOram(100, rng=random.Random(5))
        start = oram.reshuffles
        for i in range(oram.shelter_size):
            oram.read(i % 100)
        assert oram.reshuffles == start + 1

    def test_shelter_bounded(self):
        rng = random.Random(6)
        oram = SqrtOram(64, rng=random.Random(7))
        for _ in range(500):
            oram.read(rng.randrange(64))
            assert len(oram._shelter) <= oram.shelter_size

    def test_repeated_access_consumes_dummies(self):
        """Accessing the same key repeatedly touches dummy slots, not the
        real slot again — the core hierarchical-ORAM trick."""
        oram = SqrtOram(49, rng=random.Random(8))
        oram.read(5)
        before = oram._next_dummy
        oram.read(5)  # sheltered now -> dummy touched
        assert oram._next_dummy == (before + 1) % oram.num_dummies

    def test_amortized_work_superlinear_in_sqrt(self):
        small = SqrtOram(64, rng=random.Random(9))
        large = SqrtOram(4096, rng=random.Random(10))
        assert (
            large.amortized_work_per_access()
            > 4 * small.amortized_work_per_access()
        )
