"""Tests for bitonic sort: correctness, obliviousness, network metrics."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oblivious.memory import TracedMemory
from repro.oblivious.sort import (
    bitonic_sort,
    bitonic_sort_depth,
    bitonic_sort_network_size,
    comparator_schedule,
)


class TestCorrectness:
    def test_empty(self):
        assert bitonic_sort([]) == []

    def test_single(self):
        assert bitonic_sort([5]) == [5]

    def test_sorted_input(self):
        assert bitonic_sort([1, 2, 3, 4]) == [1, 2, 3, 4]

    def test_reverse_input(self):
        assert bitonic_sort([4, 3, 2, 1]) == [1, 2, 3, 4]

    def test_duplicates(self):
        assert bitonic_sort([2, 1, 2, 1, 2]) == [1, 1, 2, 2, 2]

    @pytest.mark.parametrize("n", [2, 3, 5, 7, 8, 15, 16, 17, 33, 100])
    def test_random_lengths(self, n, rng):
        data = [rng.randrange(1000) for _ in range(n)]
        assert bitonic_sort(data) == sorted(data)

    def test_key_function(self):
        data = [(1, "a"), (0, "b"), (2, "c")]
        assert bitonic_sort(data, key=lambda t: t[0]) == [
            (0, "b"),
            (1, "a"),
            (2, "c"),
        ]

    def test_compound_key_like_load_balancer(self, rng):
        # The load balancer sorts by (suboram, dummy, key) tuples.
        data = [
            (rng.randrange(3), rng.randrange(2), rng.randrange(10))
            for _ in range(50)
        ]
        assert bitonic_sort(data) == sorted(data)

    def test_input_not_modified(self):
        data = [3, 1, 2]
        bitonic_sort(data)
        assert data == [3, 1, 2]

    @given(st.lists(st.integers(), max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_property_matches_sorted(self, data):
        assert bitonic_sort(data) == sorted(data)


class TestObliviousness:
    def test_schedule_depends_only_on_size(self):
        assert list(comparator_schedule(16)) == list(comparator_schedule(16))

    def test_trace_independent_of_data(self, rng):
        n = 20
        a = [rng.randrange(100) for _ in range(n)]
        b = [rng.randrange(100) for _ in range(n)]
        ta, tb = [], []

        def factory_collect(sink):
            def factory(items):
                mem = TracedMemory(items)
                sink.append(mem.trace)
                return mem

            return factory

        bitonic_sort(a, mem_factory=factory_collect(ta))
        bitonic_sort(b, mem_factory=factory_collect(tb))
        assert ta[0] == tb[0]
        assert len(ta[0]) > 0


class TestNetworkMetrics:
    def test_size_matches_schedule(self):
        for n in (2, 4, 8, 16, 64):
            assert bitonic_sort_network_size(n) == len(list(comparator_schedule(n)))

    def test_depth_formula(self):
        # depth = log(n) * (log(n) + 1) / 2 for power-of-two n
        assert bitonic_sort_depth(16) == 4 * 5 // 2
        assert bitonic_sort_depth(1) == 0

    def test_padding_rounds_up(self):
        assert bitonic_sort_network_size(9) == bitonic_sort_network_size(16)
