"""Unit tests for repro.crypto: PRF, AEAD, channels, key chain."""

import random

import pytest

from repro.crypto.aead import AeadKey, NONCE_LEN, SecureChannel, digest
from repro.crypto.keys import KeyChain, derive_key, random_key
from repro.crypto.prf import Prf, suboram_of
from repro.errors import IntegrityError, ReplayError


class TestPrf:
    def test_deterministic(self):
        prf = Prf(b"k" * 32)
        assert prf.value(42) == prf.value(42)

    def test_key_separation(self):
        assert Prf(b"a" * 32).value(1) != Prf(b"b" * 32).value(1)

    def test_range_bounds(self):
        prf = Prf(b"k" * 32)
        for x in range(200):
            assert 0 <= prf.range(x, 7) < 7

    def test_range_roughly_uniform(self):
        prf = Prf(b"k" * 32)
        counts = [0] * 4
        for x in range(4000):
            counts[prf.range(x, 4)] += 1
        for c in counts:
            assert 800 < c < 1200

    def test_negative_inputs_ok(self):
        prf = Prf(b"k" * 32)
        assert prf.range(-5, 10) != prf.range(5, 10) or True  # no crash
        assert 0 <= prf.range(-(2**61), 10) < 10

    def test_rejects_bad_key(self):
        with pytest.raises(ValueError):
            Prf(b"")

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            Prf(b"k" * 32).range(1, 0)

    def test_suboram_of_consistent(self):
        key = b"s" * 32
        assert suboram_of(key, 99, 5) == suboram_of(key, 99, 5)
        assert 0 <= suboram_of(key, 99, 5) < 5


class TestAead:
    def test_roundtrip(self):
        key = AeadKey(b"k" * 32)
        nonce = bytes(NONCE_LEN)
        ct = key.seal(nonce, b"hello", aad=b"ctx")
        assert key.open(nonce, ct, aad=b"ctx") == b"hello"

    def test_empty_plaintext(self):
        key = AeadKey(b"k" * 32)
        nonce = bytes(NONCE_LEN)
        assert key.open(nonce, key.seal(nonce, b"")) == b""

    def test_tamper_detected(self):
        key = AeadKey(b"k" * 32)
        nonce = bytes(NONCE_LEN)
        ct = bytearray(key.seal(nonce, b"hello"))
        ct[0] ^= 1
        with pytest.raises(IntegrityError):
            key.open(nonce, bytes(ct))

    def test_wrong_aad_detected(self):
        key = AeadKey(b"k" * 32)
        nonce = bytes(NONCE_LEN)
        ct = key.seal(nonce, b"hello", aad=b"a")
        with pytest.raises(IntegrityError):
            key.open(nonce, ct, aad=b"b")

    def test_wrong_nonce_detected(self):
        key = AeadKey(b"k" * 32)
        ct = key.seal(bytes(NONCE_LEN), b"hello")
        with pytest.raises(IntegrityError):
            key.open(b"\x01" * NONCE_LEN, ct)

    def test_ciphertext_differs_across_nonces(self):
        key = AeadKey(b"k" * 32)
        c1 = key.seal(bytes(NONCE_LEN), b"hello")
        c2 = key.seal(b"\x01" * NONCE_LEN, b"hello")
        assert c1 != c2

    def test_rejects_short_key(self):
        with pytest.raises(ValueError):
            AeadKey(b"short")

    def test_rejects_truncated_ciphertext(self):
        key = AeadKey(b"k" * 32)
        with pytest.raises(IntegrityError):
            key.open(bytes(NONCE_LEN), b"tiny")


class TestSecureChannel:
    def test_roundtrip(self):
        a = SecureChannel(b"k" * 32, "ab")
        b = SecureChannel(b"k" * 32, "ab")
        nonce, ct = a.send(b"msg")
        assert b.receive(nonce, ct) == b"msg"

    def test_replay_rejected(self):
        a = SecureChannel(b"k" * 32, "ab")
        b = SecureChannel(b"k" * 32, "ab")
        nonce, ct = a.send(b"msg")
        b.receive(nonce, ct)
        with pytest.raises(ReplayError):
            b.receive(nonce, ct)

    def test_forgery_does_not_burn_nonce(self):
        a = SecureChannel(b"k" * 32, "ab")
        b = SecureChannel(b"k" * 32, "ab")
        nonce, ct = a.send(b"msg")
        with pytest.raises(IntegrityError):
            b.receive(nonce, ct[:-1] + bytes([ct[-1] ^ 1]))
        assert b.receive(nonce, ct) == b"msg"

    def test_channel_name_binds(self):
        a = SecureChannel(b"k" * 32, "ab")
        c = SecureChannel(b"k" * 32, "other")
        nonce, ct = a.send(b"msg")
        with pytest.raises(IntegrityError):
            c.receive(nonce, ct)


class TestKeyChain:
    def test_subkeys_stable(self):
        chain = KeyChain(b"m" * 32)
        assert chain.subkey("x") == chain.subkey("x")

    def test_subkeys_independent(self):
        chain = KeyChain(b"m" * 32)
        assert chain.subkey("x") != chain.subkey("y")

    def test_channel_key_symmetric(self):
        chain = KeyChain(b"m" * 32)
        assert chain.channel_key("lb0", "so1") == chain.channel_key("so1", "lb0")

    def test_batch_keys_fresh_per_epoch(self):
        chain = KeyChain(b"m" * 32)
        assert chain.batch_key(0, 1) != chain.batch_key(0, 2)
        assert chain.batch_key(0, 1) != chain.batch_key(1, 1)

    def test_random_key_deterministic_with_rng(self):
        assert random_key(random.Random(1)) == random_key(random.Random(1))
        assert random_key(random.Random(1)) != random_key(random.Random(2))

    def test_derive_key_depends_on_label(self):
        assert derive_key(b"m" * 32, "a") != derive_key(b"m" * 32, "b")


def test_digest_is_sha256_stable():
    assert digest(b"abc") == digest(b"abc")
    assert digest(b"abc") != digest(b"abd")
    assert len(digest(b"")) == 32
