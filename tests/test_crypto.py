"""Unit tests for repro.crypto: PRF, AEAD, channels, key chain."""

import random

import pytest

from repro.crypto.aead import AeadKey, NONCE_LEN, SecureChannel, digest
from repro.crypto.keys import KeyChain, derive_key, random_key
from repro.crypto.prf import Prf, suboram_of
from repro.errors import IntegrityError, ReplayError


class TestPrf:
    def test_deterministic(self):
        prf = Prf(b"k" * 32)
        assert prf.value(42) == prf.value(42)

    def test_key_separation(self):
        assert Prf(b"a" * 32).value(1) != Prf(b"b" * 32).value(1)

    def test_range_bounds(self):
        prf = Prf(b"k" * 32)
        for x in range(200):
            assert 0 <= prf.range(x, 7) < 7

    def test_range_roughly_uniform(self):
        prf = Prf(b"k" * 32)
        counts = [0] * 4
        for x in range(4000):
            counts[prf.range(x, 4)] += 1
        for c in counts:
            assert 800 < c < 1200

    def test_negative_inputs_ok(self):
        prf = Prf(b"k" * 32)
        assert prf.range(-5, 10) != prf.range(5, 10) or True  # no crash
        assert 0 <= prf.range(-(2**61), 10) < 10

    def test_rejects_bad_key(self):
        with pytest.raises(ValueError):
            Prf(b"")

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            Prf(b"k" * 32).range(1, 0)

    def test_suboram_of_consistent(self):
        key = b"s" * 32
        assert suboram_of(key, 99, 5) == suboram_of(key, 99, 5)
        assert 0 <= suboram_of(key, 99, 5) < 5


class TestAead:
    def test_roundtrip(self):
        key = AeadKey(b"k" * 32)
        nonce = bytes(NONCE_LEN)
        ct = key.seal(nonce, b"hello", aad=b"ctx")
        assert key.open(nonce, ct, aad=b"ctx") == b"hello"

    def test_empty_plaintext(self):
        key = AeadKey(b"k" * 32)
        nonce = bytes(NONCE_LEN)
        assert key.open(nonce, key.seal(nonce, b"")) == b""

    def test_tamper_detected(self):
        key = AeadKey(b"k" * 32)
        nonce = bytes(NONCE_LEN)
        ct = bytearray(key.seal(nonce, b"hello"))
        ct[0] ^= 1
        with pytest.raises(IntegrityError):
            key.open(nonce, bytes(ct))

    def test_wrong_aad_detected(self):
        key = AeadKey(b"k" * 32)
        nonce = bytes(NONCE_LEN)
        ct = key.seal(nonce, b"hello", aad=b"a")
        with pytest.raises(IntegrityError):
            key.open(nonce, ct, aad=b"b")

    def test_wrong_nonce_detected(self):
        key = AeadKey(b"k" * 32)
        ct = key.seal(bytes(NONCE_LEN), b"hello")
        with pytest.raises(IntegrityError):
            key.open(b"\x01" * NONCE_LEN, ct)

    def test_ciphertext_differs_across_nonces(self):
        key = AeadKey(b"k" * 32)
        c1 = key.seal(bytes(NONCE_LEN), b"hello")
        c2 = key.seal(b"\x01" * NONCE_LEN, b"hello")
        assert c1 != c2

    def test_rejects_short_key(self):
        with pytest.raises(ValueError):
            AeadKey(b"short")

    def test_rejects_truncated_ciphertext(self):
        key = AeadKey(b"k" * 32)
        with pytest.raises(IntegrityError):
            key.open(bytes(NONCE_LEN), b"tiny")


class TestSecureChannel:
    def test_roundtrip(self):
        a = SecureChannel(b"k" * 32, "ab")
        b = SecureChannel(b"k" * 32, "ab")
        nonce, ct = a.send(b"msg")
        assert b.receive(nonce, ct) == b"msg"

    def test_replay_rejected(self):
        a = SecureChannel(b"k" * 32, "ab")
        b = SecureChannel(b"k" * 32, "ab")
        nonce, ct = a.send(b"msg")
        b.receive(nonce, ct)
        with pytest.raises(ReplayError):
            b.receive(nonce, ct)

    def test_forgery_does_not_burn_nonce(self):
        a = SecureChannel(b"k" * 32, "ab")
        b = SecureChannel(b"k" * 32, "ab")
        nonce, ct = a.send(b"msg")
        with pytest.raises(IntegrityError):
            b.receive(nonce, ct[:-1] + bytes([ct[-1] ^ 1]))
        assert b.receive(nonce, ct) == b"msg"

    def test_channel_name_binds(self):
        a = SecureChannel(b"k" * 32, "ab")
        c = SecureChannel(b"k" * 32, "other")
        nonce, ct = a.send(b"msg")
        with pytest.raises(IntegrityError):
            c.receive(nonce, ct)


class TestKeyChain:
    def test_subkeys_stable(self):
        chain = KeyChain(b"m" * 32)
        assert chain.subkey("x") == chain.subkey("x")

    def test_subkeys_independent(self):
        chain = KeyChain(b"m" * 32)
        assert chain.subkey("x") != chain.subkey("y")

    def test_channel_key_symmetric(self):
        chain = KeyChain(b"m" * 32)
        assert chain.channel_key("lb0", "so1") == chain.channel_key("so1", "lb0")

    def test_batch_keys_fresh_per_epoch(self):
        chain = KeyChain(b"m" * 32)
        assert chain.batch_key(0, 1) != chain.batch_key(0, 2)
        assert chain.batch_key(0, 1) != chain.batch_key(1, 1)

    def test_random_key_deterministic_with_rng(self):
        assert random_key(random.Random(1)) == random_key(random.Random(1))
        assert random_key(random.Random(1)) != random_key(random.Random(2))

    def test_derive_key_depends_on_label(self):
        assert derive_key(b"m" * 32, "a") != derive_key(b"m" * 32, "b")


def test_digest_is_sha256_stable():
    assert digest(b"abc") == digest(b"abc")
    assert digest(b"abc") != digest(b"abd")
    assert len(digest(b"")) == 32


class TestAeadBatch:
    """seal_batch/open_batch are byte-identical to the scalar oracle."""

    def _fixtures(self, count=7, size=29, seed=3):
        rng = random.Random(seed)
        key = AeadKey(b"batch-key-0123456789abcdef0123456789")
        nonces = [rng.randbytes(NONCE_LEN) for _ in range(count)]
        plaintexts = [rng.randbytes(size) for _ in range(count)]
        aads = [i.to_bytes(8, "big") for i in range(count)]
        return key, nonces, plaintexts, aads

    def test_seal_batch_matches_scalar_seal(self):
        key, nonces, plaintexts, aads = self._fixtures()
        batch = key.seal_batch(nonces, plaintexts, aads)
        scalar = [
            key.seal(n, pt, aad)
            for n, pt, aad in zip(nonces, plaintexts, aads)
        ]
        assert batch == scalar

    def test_seal_batch_matches_scalar_without_aads(self):
        key, nonces, plaintexts, _ = self._fixtures()
        assert key.seal_batch(nonces, plaintexts) == [
            key.seal(n, pt) for n, pt in zip(nonces, plaintexts)
        ]

    def test_multiblock_plaintexts_match_scalar(self):
        """Slots wider than one SHA-256 block exercise the slow lane."""
        key, nonces, _, aads = self._fixtures(count=4, size=100)
        plaintexts = [bytes([i]) * 100 for i in range(4)]
        assert key.seal_batch(nonces, plaintexts, aads) == [
            key.seal(n, pt, aad)
            for n, pt, aad in zip(nonces, plaintexts, aads)
        ]

    def test_open_batch_roundtrip_matches_scalar_open(self):
        key, nonces, plaintexts, aads = self._fixtures()
        sealed = key.seal_batch(nonces, plaintexts, aads)
        assert key.open_batch(nonces, sealed, aads) == plaintexts
        assert key.open_batch(nonces, sealed, aads) == [
            key.open(n, blob, aad)
            for n, blob, aad in zip(nonces, sealed, aads)
        ]

    def test_buffer_entry_points_match_list_entry_points(self):
        key, nonces, plaintexts, aads = self._fixtures(count=5, size=24)
        sealed_buf, slot_size = key.seal_batch_buffer(
            nonces, (b"".join(plaintexts), 24), aads
        )
        assert bytes(sealed_buf) == b"".join(
            key.seal_batch(nonces, plaintexts, aads)
        )
        plain_buf, plain_size = key.open_batch_buffer(
            nonces, (sealed_buf, slot_size), aads
        )
        assert plain_size == 24
        assert bytes(plain_buf) == b"".join(plaintexts)

    def test_tampering_any_single_slot_names_it(self):
        key, nonces, plaintexts, aads = self._fixtures(count=5)
        sealed = key.seal_batch(nonces, plaintexts, aads)
        for victim in range(5):
            broken = list(sealed)
            blob = broken[victim]
            broken[victim] = blob[:-1] + bytes([blob[-1] ^ 1])
            with pytest.raises(
                IntegrityError, match=f"batch slot {victim}$"
            ):
                key.open_batch(nonces, broken, aads)

    def test_wrong_aad_rejected(self):
        key, nonces, plaintexts, aads = self._fixtures()
        sealed = key.seal_batch(nonces, plaintexts, aads)
        swapped = [aads[-1]] + aads[1:]
        with pytest.raises(IntegrityError, match="batch slot 0"):
            key.open_batch(nonces, sealed, swapped)

    def test_non_uniform_lengths_rejected(self):
        key, nonces, plaintexts, _ = self._fixtures(count=3, size=8)
        with pytest.raises(ValueError):
            key.seal_batch(nonces, [plaintexts[0], b"xx", plaintexts[2]])
        sealed = key.seal_batch(nonces, plaintexts)
        with pytest.raises(ValueError):
            key.open_batch(nonces, [sealed[0], sealed[1] + b"x", sealed[2]])

    def test_count_mismatches_rejected(self):
        key, nonces, plaintexts, aads = self._fixtures()
        with pytest.raises(ValueError):
            key.seal_batch(nonces[:-1], plaintexts)
        with pytest.raises(ValueError):
            key.seal_batch(nonces, plaintexts, aads[:-1])

    def test_empty_batch(self):
        key, _, _, _ = self._fixtures()
        assert key.seal_batch([], []) == []
        assert key.open_batch([], []) == []

    def test_batch_survives_pickle(self):
        """A key that crossed a process boundary still seals identically."""
        import pickle

        key, nonces, plaintexts, aads = self._fixtures()
        clone = pickle.loads(pickle.dumps(key))
        assert clone.seal_batch(nonces, plaintexts, aads) == key.seal_batch(
            nonces, plaintexts, aads
        )


class TestReplayWindow:
    """The channel's replay state is O(1), not a grow-forever seen-set."""

    def _pair(self):
        key = b"window-key-0123456789abcdef01234"
        return SecureChannel(key, "w"), SecureChannel(key, "w")

    def test_memory_stays_bounded(self):
        from repro.crypto.aead import REPLAY_WINDOW

        sender, receiver = self._pair()
        for i in range(3 * REPLAY_WINDOW):
            nonce, sealed = sender.send(b"m%d" % i)
            receiver.receive(nonce, sealed)
        # The entire replay state is one int bitmap plus one watermark.
        assert receiver._recv_window.bit_length() <= REPLAY_WINDOW
        assert not hasattr(receiver, "_seen")

    def test_out_of_order_within_window_accepted(self):
        sender, receiver = self._pair()
        messages = [sender.send(b"m%d" % i) for i in range(6)]
        order = [5, 2, 4, 0, 3, 1]
        for i in order:
            nonce, sealed = messages[i]
            assert receiver.receive(nonce, sealed) == b"m%d" % i

    def test_replay_within_window_rejected(self):
        sender, receiver = self._pair()
        messages = [sender.send(b"m%d" % i) for i in range(4)]
        for nonce, sealed in messages:
            receiver.receive(nonce, sealed)
        with pytest.raises(ReplayError, match="replayed"):
            receiver.receive(*messages[1])

    def test_older_than_window_rejected(self):
        from repro.crypto.aead import REPLAY_WINDOW

        sender, receiver = self._pair()
        messages = [
            sender.send(b"x") for _ in range(REPLAY_WINDOW + 1)
        ]
        receiver.receive(*messages[-1])  # hwm jumps to REPLAY_WINDOW
        # Message 0 was never received, but it fell off the window: the
        # bounded tracker must fail closed rather than accept it.
        with pytest.raises(ReplayError, match="older than"):
            receiver.receive(*messages[0])
