"""Tests for the distributed deployment: attested, encrypted transport."""

import random

import pytest

from repro.core.config import SnoopyConfig
from repro.core.deployment import DistributedSnoopy
from repro.core.snoopy import Snoopy
from repro.enclave.model import Enclave
from repro.errors import (AttestationError, IntegrityError,
                          NotInitializedError, ReplayError)
from repro.types import OpType, Request


def make_deployment(seed=1, **config_kwargs):
    config = SnoopyConfig(
        num_load_balancers=2,
        num_suborams=2,
        value_size=8,
        security_parameter=16,
        **config_kwargs,
    )
    deployment = DistributedSnoopy(config, rng=random.Random(seed))
    deployment.initialize({k: bytes([k]) * 8 for k in range(40)})
    return deployment


class TestFunctionalEquivalence:
    def test_read_write(self):
        deployment = make_deployment()
        assert deployment.read(5) == bytes([5]) * 8
        prior = deployment.write(5, b"AAAAAAAA")
        assert prior == bytes([5]) * 8
        assert deployment.read(5) == b"AAAAAAAA"

    def test_batch(self):
        deployment = make_deployment()
        responses = deployment.batch(
            [Request(OpType.READ, k, seq=k) for k in range(15)]
        )
        assert len(responses) == 15
        assert all(r.value == bytes([r.key]) * 8 for r in responses)

    def test_matches_in_process_deployment(self):
        """Same requests, same results as the direct-call Snoopy."""
        requests = [
            Request(OpType.WRITE, 3, b"xxxxxxxx", seq=0),
            Request(OpType.READ, 7, seq=1),
            Request(OpType.READ, 3, seq=2),
        ]
        distributed = make_deployment(seed=2)
        local = Snoopy(
            SnoopyConfig(num_load_balancers=2, num_suborams=2, value_size=8,
                         security_parameter=16),
            keychain=distributed.keychain,
            rng=random.Random(2),
        )
        local.initialize({k: bytes([k]) * 8 for k in range(40)})

        d_responses = {r.seq: r.value for r in distributed.batch(list(requests))}
        l_responses = {r.seq: r.value for r in local.batch(list(requests))}
        assert d_responses == l_responses

    def test_requires_initialization(self):
        config = SnoopyConfig(value_size=8, security_parameter=16)
        deployment = DistributedSnoopy(config)
        with pytest.raises(NotInitializedError):
            deployment.run_epoch()


class TestTransportSecurity:
    def test_network_tampering_detected(self):
        deployment = make_deployment()

        def tamper(balancer, suboram, nonce, sealed):
            return nonce, sealed[:-1] + bytes([sealed[-1] ^ 1])

        deployment.network_hook = tamper
        with pytest.raises(IntegrityError):
            deployment.read(1)

    def test_network_replay_detected(self):
        deployment = make_deployment()
        captured = []

        def capture(balancer, suboram, nonce, sealed):
            captured.append((balancer, suboram, nonce, sealed))
            return nonce, sealed

        deployment.network_hook = capture
        deployment.read(1)
        # Replay the captured ciphertext straight into the subORAM side.
        balancer, suboram, nonce, sealed = captured[0]
        pair = deployment._channels[(balancer, suboram)]
        with pytest.raises(ReplayError):
            pair.so.rx.receive(nonce, sealed)

    def test_rogue_enclave_rejected(self):
        deployment = make_deployment()
        rogue = Enclave("not-snoopy")
        with pytest.raises(AttestationError):
            deployment._verify_peer(rogue)

    def test_message_size_public(self):
        """Sealed batch sizes depend only on (B, object size), not keys."""
        sizes = []
        for keys in ([1, 2, 3], [30, 31, 32]):
            deployment = make_deployment(seed=5)
            observed = []

            def record(balancer, suboram, nonce, sealed, _o=observed):
                _o.append(len(sealed))
                return nonce, sealed

            deployment.network_hook = record
            deployment.batch([Request(OpType.READ, k, seq=i)
                              for i, k in enumerate(keys)])
            sizes.append(sorted(observed))
        assert sizes[0] == sizes[1]


class TestRandomizedEquivalence:
    def test_random_workloads_match_local(self):
        """Distributed and in-process deployments agree over many epochs."""
        from repro.crypto.keys import KeyChain

        rng = random.Random(42)
        keychain = KeyChain(b"equivalence-master-key-012345678")
        config = SnoopyConfig(
            num_load_balancers=1, num_suborams=3, value_size=4,
            security_parameter=16,
        )
        objects = {k: bytes([k]) * 4 for k in range(30)}
        distributed = DistributedSnoopy(config, keychain=keychain,
                                        rng=random.Random(1))
        distributed.initialize(dict(objects))
        local = Snoopy(config, keychain=KeyChain(b"equivalence-master-key-012345678"),
                       rng=random.Random(1))
        local.initialize(dict(objects))

        for _ in range(6):
            requests = []
            for i in range(rng.randrange(1, 10)):
                key = rng.randrange(30)
                if rng.random() < 0.5:
                    requests.append(
                        Request(OpType.WRITE, key, bytes([rng.randrange(256)]) * 4, seq=i)
                    )
                else:
                    requests.append(Request(OpType.READ, key, seq=i))
            d = {r.seq: r.value for r in distributed.batch(list(requests))}
            l = {r.seq: r.value for r in local.batch(list(requests))}
            assert d == l
