"""Unit tests for repro.utils.bits."""

import pytest

from repro.utils.bits import ceil_log2, is_pow2, next_pow2


class TestIsPow2:
    def test_powers(self):
        for k in range(20):
            assert is_pow2(1 << k)

    def test_non_powers(self):
        for n in (0, 3, 5, 6, 7, 9, 12, 100, 1023):
            assert not is_pow2(n)

    def test_negative(self):
        assert not is_pow2(-4)


class TestNextPow2:
    def test_small(self):
        assert next_pow2(0) == 1
        assert next_pow2(1) == 1
        assert next_pow2(2) == 2
        assert next_pow2(3) == 4
        assert next_pow2(4) == 4
        assert next_pow2(5) == 8

    def test_idempotent_on_powers(self):
        for k in range(16):
            assert next_pow2(1 << k) == 1 << k

    def test_covers(self):
        for n in range(1, 1000):
            m = next_pow2(n)
            assert m >= n
            assert m < 2 * n or n == 1
            assert is_pow2(m)


class TestCeilLog2:
    def test_values(self):
        assert ceil_log2(1) == 0
        assert ceil_log2(2) == 1
        assert ceil_log2(3) == 2
        assert ceil_log2(8) == 3
        assert ceil_log2(9) == 4

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            ceil_log2(0)
