"""Tests for the cluster-level figure series (Figs. 9-11)."""

import pytest

from repro.sim.cluster import (
    latency_vs_suborams,
    max_objects_within_latency,
    snoopy_oblix_best_split,
    throughput_scaling_series,
)
from repro.sim.costmodel import oblix_throughput


class TestFig9Series:
    def test_series_structure(self):
        series = throughput_scaling_series([4, 8], 100_000, [0.5, 1.0])
        assert set(series) == {0.5, 1.0}
        for rows in series.values():
            assert len(rows) == 2
            machines, balancers, suborams, x = rows[0]
            assert machines == balancers + suborams
            assert x > 0

    def test_monotone_in_machines(self):
        series = throughput_scaling_series(
            list(range(4, 13, 2)), 500_000, [1.0]
        )
        xs = [row[3] for row in series[1.0]]
        assert all(b >= a for a, b in zip(xs, xs[1:]))

    def test_key_transparency_slower_per_op(self):
        """Fig. 9b: 24 accesses/op divides operation throughput."""
        plain = throughput_scaling_series([10], 1_000_000, [1.0])[1.0][0][3]
        kt = throughput_scaling_series(
            [10], 1_000_000, [1.0], object_size=32, accesses_per_op=24
        )[1.0][0][3]
        assert kt < plain / 10


class TestFig10:
    def test_hybrid_scales_past_vanilla(self):
        """Snoopy-Oblix at 17 machines is ~an order over 1-machine Oblix."""
        vanilla = oblix_throughput(2_000_000)
        _, _, hybrid = snoopy_oblix_best_split(17, 2_000_000, 0.5)
        assert hybrid / vanilla > 5

    def test_recursion_step_visible(self):
        """The Fig. 10 spike: a recursion level drops crossing ~8 machines."""
        per_machine = [
            snoopy_oblix_best_split(m, 2_000_000, 0.5)[2] for m in (5, 7, 10, 12)
        ]
        assert all(b >= a for a, b in zip(per_machine, per_machine[1:]))
        # Jump between 7 and 10 machines exceeds the 5->7 increment.
        assert (per_machine[2] - per_machine[1]) > (per_machine[1] - per_machine[0])

    def test_suboram_design_beats_oblix_suboram(self):
        """§8.2: the linear-scan subORAM outperforms Oblix-as-subORAM."""
        from repro.sim.costmodel import best_split

        _, _, native = best_split(17, 2_000_000, 0.5)
        _, _, hybrid = snoopy_oblix_best_split(17, 2_000_000, 0.5)
        assert native / hybrid > 2  # paper: 4.85x


class TestFig11:
    def test_capacity_linear_in_suborams(self):
        caps = [max_objects_within_latency(s) for s in (2, 6, 10)]
        assert caps[0] < caps[1] < caps[2]
        # Roughly linear: slope between consecutive points within 2x.
        slope_a = (caps[1] - caps[0]) / 4
        slope_b = (caps[2] - caps[1]) / 4
        assert 0.4 < slope_b / slope_a < 2.5

    def test_latency_decreases_with_diminishing_returns(self):
        rows = latency_vs_suborams([1, 3, 6, 9, 12, 15])
        latencies = [latency for _, latency in rows]
        assert all(b < a for a, b in zip(latencies, latencies[1:]))
        # Diminishing returns: the first tripling helps more than the last.
        assert (latencies[0] - latencies[1]) > (latencies[3] - latencies[5])
