"""Tests for the Oblix-lite baseline."""

import random

import pytest

from repro.baselines.oblix import OblixMap
from repro.types import BatchEntry, OpType


class TestBasics:
    def test_write_then_read(self):
        oblix = OblixMap(100, rng=random.Random(1))
        oblix.write(5, b"v")
        assert oblix.read(5) == b"v"

    def test_recursion_depth_grows_with_size(self):
        shallow = OblixMap(100, rng=random.Random(1))
        deep = OblixMap(2_000_000, rng=random.Random(1))
        assert shallow.recursion_depth == 1
        assert deep.recursion_depth > shallow.recursion_depth

    def test_recursion_step_at_pack_boundary(self):
        """The Fig. 10 step: sharding below pack^2*threshold drops a level."""
        full = OblixMap(2_000_000)
        shard = OblixMap(250_000)
        assert shard.recursion_depth == full.recursion_depth - 1

    def test_randomized_against_model(self):
        rng = random.Random(2)
        oblix = OblixMap(64, rng=random.Random(3))
        model = {}
        for _ in range(400):
            key = rng.randrange(64)
            if rng.random() < 0.5:
                value = bytes([rng.randrange(256)])
                assert oblix.write(key, value) == model.get(key)
                model[key] = value
            else:
                assert oblix.read(key) == model.get(key)


class TestSubOramAdapter:
    def test_batch_access_serves_snoopy_batches(self):
        oblix = OblixMap(64, rng=random.Random(4))
        oblix.initialize({k: bytes([k]) for k in range(64)})
        batch = [
            BatchEntry(op=OpType.READ, key=5, is_dummy=False),
            BatchEntry(op=OpType.WRITE, key=6, value=b"w", is_dummy=False),
            BatchEntry(op=OpType.READ, key=-(10**9), is_dummy=True),
        ]
        responses = oblix.batch_access(batch)
        assert len(responses) == 3
        by_key = {e.key: e for e in responses if not e.is_dummy}
        assert by_key[5].value == bytes([5])
        assert by_key[6].value == bytes([6])  # prior value
        assert oblix.read(6) == b"w"

    def test_dummy_requests_cost_real_accesses(self):
        oblix = OblixMap(64, rng=random.Random(5))
        oblix.initialize({k: bytes([k]) for k in range(64)})
        before = oblix.data_oram.accesses
        oblix.batch_access(
            [BatchEntry(op=OpType.READ, key=-(10**9 + i), is_dummy=True)
             for i in range(4)]
        )
        assert oblix.data_oram.accesses - before == 4
