"""Tests for the Waksman permutation network."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oblivious.memory import AccessTrace, TracedMemory
from repro.oblivious.permutation import (
    apply_permutation,
    network_size,
    route_permutation,
)


def expected(items, permutation):
    out = [None] * len(items)
    for i, p in enumerate(permutation):
        out[p] = items[i]
    return out


class TestCorrectness:
    def test_exhaustive_small(self):
        for n in range(1, 7):
            for perm in itertools.permutations(range(n)):
                items = list(range(n))
                assert apply_permutation(items, list(perm)) == expected(
                    items, perm
                ), (n, perm)

    @pytest.mark.parametrize("n", [8, 13, 33, 100])
    def test_random_large(self, n, rng):
        perm = list(range(n))
        rng.shuffle(perm)
        items = [f"item-{i}" for i in range(n)]
        assert apply_permutation(items, perm) == expected(items, perm)

    def test_identity(self):
        assert apply_permutation([1, 2, 3, 4], [0, 1, 2, 3]) == [1, 2, 3, 4]

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            apply_permutation([1, 2], [0, 0])

    @given(st.permutations(list(range(12))))
    @settings(max_examples=80, deadline=None)
    def test_property(self, perm):
        items = list(range(len(perm)))
        assert apply_permutation(items, perm) == expected(items, perm)


class TestObliviousness:
    def test_schedule_topology_fixed(self, rng):
        """Swap positions depend only on n, never on the permutation."""
        n = 24
        perms = []
        for _ in range(2):
            perm = list(range(n))
            rng.shuffle(perm)
            perms.append(perm)
        shapes = [
            [(i, j) for i, j, _ in route_permutation(perm)] for perm in perms
        ]
        assert shapes[0] == shapes[1]

    def test_trace_independent_of_permutation(self, rng):
        n = 20
        traces = []
        for _ in range(2):
            perm = list(range(n))
            rng.shuffle(perm)
            trace = AccessTrace()
            apply_permutation(
                list(range(n)),
                perm,
                mem_factory=lambda items, t=trace: TracedMemory(items, trace=t),
            )
            traces.append(trace)
        assert traces[0] == traces[1]
        assert len(traces[0]) > 0

    def test_network_size_nlogn(self):
        """O(n log n) switches — asymptotically below bitonic's n log^2 n."""
        assert network_size(2) == 1
        assert network_size(4) <= 6
        n = 256
        assert network_size(n) < n * 9  # ~ n log2(n) = 2048
