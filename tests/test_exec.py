"""Unit tests for the execution-backend layer (repro.exec)."""

import os
import pickle
import signal
import time

import pytest

from repro.core.config import SnoopyConfig
from repro.errors import ConfigurationError, TaskTimeoutError, WorkerCrashError
from repro.exec import (
    BACKENDS,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    make_backend,
    parse_spec,
)


def square(x):
    """Module-level so the process pool can pickle it."""
    return x * x


def boom(x):
    """Module-level failing task."""
    raise ValueError(f"boom {x}")


class TestParseSpec:
    def test_plain_names(self):
        assert parse_spec("serial") == (SerialBackend, None)
        assert parse_spec("thread") == (ThreadPoolBackend, None)
        assert parse_spec("process") == (ProcessPoolBackend, None)

    def test_worker_suffix(self):
        assert parse_spec("thread:8") == (ThreadPoolBackend, 8)
        assert parse_spec("process:2") == (ProcessPoolBackend, 2)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_spec("gpu")

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_spec("thread:lots")
        with pytest.raises(ConfigurationError):
            parse_spec("thread:0")
        with pytest.raises(ConfigurationError):
            parse_spec("thread:-3")

    def test_registry_covers_all_names(self):
        assert set(BACKENDS) == {"serial", "thread", "process"}


class TestMakeBackend:
    def test_default_is_serial(self):
        assert isinstance(make_backend(), SerialBackend)

    def test_instance_passthrough(self):
        backend = ThreadPoolBackend(max_workers=2)
        assert make_backend(backend) is backend
        backend.close()

    def test_spec_suffix_wins_over_max_workers(self):
        backend = make_backend("thread:3", max_workers=7)
        assert backend.max_workers == 3
        backend.close()

    def test_max_workers_used_without_suffix(self):
        backend = make_backend("thread", max_workers=5)
        assert backend.max_workers == 5
        backend.close()


class TestBackendsMap:
    @pytest.mark.parametrize("spec", ["serial", "thread:4", "process:2"])
    def test_map_preserves_order(self, spec):
        with make_backend(spec) as backend:
            assert backend.map(square, list(range(10))) == [
                x * x for x in range(10)
            ]

    @pytest.mark.parametrize("spec", ["serial", "thread:4", "process:2"])
    def test_map_empty(self, spec):
        with make_backend(spec) as backend:
            assert backend.map(square, []) == []

    @pytest.mark.parametrize("spec", ["serial", "thread:4"])
    def test_exceptions_propagate(self, spec):
        with make_backend(spec) as backend:
            with pytest.raises(ValueError, match="boom"):
                backend.map(boom, [1, 2, 3])

    def test_shared_state_flags(self):
        assert SerialBackend().supports_shared_state
        assert ThreadPoolBackend(max_workers=1).supports_shared_state
        assert not ProcessPoolBackend(max_workers=1).supports_shared_state

    def test_names(self):
        assert SerialBackend().name == "serial"
        assert ThreadPoolBackend(max_workers=1).name == "thread"
        assert ProcessPoolBackend(max_workers=1).name == "process"

    def test_pool_backend_survives_pickling(self):
        backend = ThreadPoolBackend(max_workers=2)
        backend.map(square, [1, 2, 3])  # force executor creation
        clone = pickle.loads(pickle.dumps(backend))
        assert clone.map(square, [4]) == [16]
        backend.close()
        clone.close()

    def test_interface_is_abstract(self):
        with pytest.raises(TypeError):
            ExecutionBackend()  # map() is abstract


class TestConfigIntegration:
    def test_config_accepts_backend_specs(self):
        config = SnoopyConfig(execution_backend="thread:4")
        assert config.execution_backend == "thread:4"

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            SnoopyConfig(execution_backend="quantum")

    def test_config_rejects_bad_max_workers(self):
        with pytest.raises(Exception):
            SnoopyConfig(max_workers=0)

    def test_config_defaults_serial(self):
        assert SnoopyConfig().execution_backend == "serial"


# ---------------------------------------------------------------------------
# map_stateful: the stateful-unit contract and the process backend's
# sticky-worker state cache
# ---------------------------------------------------------------------------
def bump(state, args):
    """Module-level stateful unit: count calls, echo args."""
    return state + 1, (state, args)


def version_of(state):
    """Token for integer states: the state itself."""
    return state


class TestMapStatefulContract:
    @pytest.mark.parametrize("backend_factory", [
        SerialBackend,
        lambda: ThreadPoolBackend(max_workers=2),
        lambda: ProcessPoolBackend(max_workers=2),
    ])
    def test_returns_state_result_pairs_in_order(self, backend_factory):
        with backend_factory() as backend:
            tasks = [(("ns", i), 10 * i, i) for i in range(4)]
            out = backend.map_stateful(bump, tasks, token=version_of)
            assert out == [(10 * i + 1, (10 * i, i)) for i in range(4)]

    def test_empty_tasks(self):
        assert SerialBackend().map_stateful(bump, []) == []

    def test_exception_propagates(self):
        with ProcessPoolBackend(max_workers=1) as backend:
            with pytest.raises(ValueError):
                backend.map_stateful(raise_stateful, [("k", 0, 1)])


def raise_stateful(state, args):
    """Module-level failing stateful unit."""
    raise ValueError(f"stateful boom {args}")


class TestProcessStateCache:
    def test_probe_hits_when_state_unchanged(self):
        with ProcessPoolBackend(max_workers=2) as backend:
            state = 5
            for round_index in range(3):
                [(state, _)] = backend.map_stateful(
                    bump, [("key", state, round_index)], token=version_of
                )
            stats = backend.state_cache_stats
            assert stats == {"hits": 2, "misses": 0, "full_ships": 1}

    def test_changed_state_forces_full_ship(self):
        with ProcessPoolBackend(max_workers=2) as backend:
            [(state, _)] = backend.map_stateful(
                bump, [("key", 0, "a")], token=version_of
            )
            # Replace the state object out-of-band: identity check fails,
            # so the backend must ship the new state rather than probe.
            [(state, result)] = backend.map_stateful(
                bump, [("key", 99, "b")], token=version_of
            )
            assert result == (99, "b")
            assert backend.state_cache_stats["full_ships"] == 2
            assert backend.state_cache_stats["hits"] == 0

    def test_no_token_always_ships(self):
        with ProcessPoolBackend(max_workers=2) as backend:
            state = 0
            for _ in range(3):
                [(state, _)] = backend.map_stateful(
                    bump, [("key", state, None)]
                )
            assert backend.state_cache_stats["hits"] == 0
            assert backend.state_cache_stats["full_ships"] == 3

    def test_results_match_serial(self):
        tasks = [(("so", i), 100 * i, ("args", i)) for i in range(5)]
        serial = SerialBackend().map_stateful(bump, list(tasks),
                                              token=version_of)
        with ProcessPoolBackend(max_workers=2) as backend:
            pooled = backend.map_stateful(bump, list(tasks),
                                          token=version_of)
        assert pooled == serial

    def test_close_is_idempotent(self):
        backend = ProcessPoolBackend(max_workers=1)
        backend.map_stateful(bump, [("key", 0, 0)], token=version_of)
        backend.close()
        backend.close()
        # A closed backend lazily respawns workers on the next call.
        assert backend.map_stateful(bump, [("key", 7, 1)],
                                    token=version_of) == [(8, (7, 1))]
        backend.close()

    def test_sticky_cache_dropped_on_pickle(self):
        backend = ProcessPoolBackend(max_workers=1)
        backend.map_stateful(bump, [("key", 0, 0)], token=version_of)
        clone = pickle.loads(pickle.dumps(backend))
        assert clone.state_cache_stats == {
            "hits": 0, "misses": 0, "full_ships": 0
        }
        assert clone.map_stateful(bump, [("key", 3, 1)],
                                  token=version_of) == [(4, (3, 1))]
        clone.close()
        backend.close()


# ---------------------------------------------------------------------------
# Fault surface: per-task timeouts and worker-crash detection
# ---------------------------------------------------------------------------
def sleepy(x):
    """Module-level task that hangs on negative inputs."""
    if x < 0:
        time.sleep(1.5)
    return x * x


def die(x):
    """Module-level task killing its own worker process (SIGKILL)."""
    os.kill(os.getpid(), signal.SIGKILL)


def sleepy_stateful(state, args):
    """Module-level stateful unit that hangs."""
    time.sleep(1.5)
    return state, args


def die_stateful(state, args):
    """Module-level stateful unit killing its sticky worker."""
    os.kill(os.getpid(), signal.SIGKILL)


class TestTaskTimeouts:
    def test_thread_timeout_raises_and_names_the_unit(self):
        with ThreadPoolBackend(max_workers=2, task_timeout=0.1) as backend:
            with pytest.raises(TaskTimeoutError) as excinfo:
                backend.map(sleepy, [1, -1, 2])
            assert excinfo.value.unit == 1
            # The abandoned pool is replaced; the backend stays usable.
            assert backend.map(sleepy, [2, 3]) == [4, 9]

    def test_process_timeout_raises(self):
        with ProcessPoolBackend(max_workers=2, task_timeout=0.2) as backend:
            with pytest.raises(TaskTimeoutError):
                backend.map(sleepy, [-1, 1, 2])
            assert backend.map(sleepy, [2, 3]) == [4, 9]

    def test_no_timeout_by_default(self):
        with ThreadPoolBackend(max_workers=2) as backend:
            assert backend.task_timeout is None
            assert backend.map(square, [1, 2, 3]) == [1, 4, 9]

    def test_make_backend_passes_task_timeout(self):
        backend = make_backend("thread:2", task_timeout=1.5)
        assert backend.task_timeout == 1.5
        backend.close()
        # Serial ignores it (inline execution cannot be bounded).
        assert make_backend("serial", task_timeout=1.5).name == "serial"

    def test_sticky_timeout_kills_worker_and_invalidates_cache(self):
        with ProcessPoolBackend(max_workers=1, task_timeout=0.2) as backend:
            [(state, _)] = backend.map_stateful(
                bump, [(("ns", 3), 0, "a")], token=version_of
            )
            with pytest.raises(TaskTimeoutError) as excinfo:
                backend.map_stateful(
                    sleepy_stateful, [(("ns", 3), state, "b")],
                    token=version_of,
                )
            assert excinfo.value.unit == 3  # from the (ns, index) key
            # The stuck worker was killed and the cache entry dropped:
            # the next call re-ships full state to a fresh worker.
            ships_before = backend.state_cache_stats["full_ships"]
            out = backend.map_stateful(
                bump, [(("ns", 3), 7, "c")], token=version_of
            )
            assert out == [(8, (7, "c"))]
            assert backend.state_cache_stats["full_ships"] == ships_before + 1


class TestWorkerCrashes:
    def test_process_pool_crash_raises_worker_crash_error(self):
        with ProcessPoolBackend(max_workers=2) as backend:
            with pytest.raises(WorkerCrashError):
                backend.map(die, [1, 2, 3])
            # Pool is rebuilt on the next call.
            assert backend.map(square, [2, 3]) == [4, 9]

    def test_sticky_worker_killed_once_recovers_transparently(self):
        with ProcessPoolBackend(max_workers=1) as backend:
            [(state, _)] = backend.map_stateful(
                bump, [("key", 0, 0)], token=version_of
            )
            backend._sticky[0].process.kill()
            backend._sticky[0].process.join(timeout=5)
            # One crash is absorbed: respawn + full re-ship, same result.
            out = backend.map_stateful(
                bump, [("key", state, 1)], token=version_of
            )
            assert out == [(2, (1, 1))]

    def test_sticky_worker_dying_twice_raises_worker_crash_error(self):
        with ProcessPoolBackend(max_workers=1) as backend:
            with pytest.raises(WorkerCrashError) as excinfo:
                backend.map_stateful(
                    die_stateful, [(("ns", 1), 0, 0)], token=version_of
                )
            assert excinfo.value.unit == 1
            # Even after a double crash the backend remains usable.
            assert backend.map_stateful(
                bump, [(("ns", 1), 5, "x")], token=version_of
            ) == [(6, (5, "x"))]
