"""Unit tests for the execution-backend layer (repro.exec)."""

import pickle

import pytest

from repro.core.config import SnoopyConfig
from repro.errors import ConfigurationError
from repro.exec import (
    BACKENDS,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    make_backend,
    parse_spec,
)


def square(x):
    """Module-level so the process pool can pickle it."""
    return x * x


def boom(x):
    """Module-level failing task."""
    raise ValueError(f"boom {x}")


class TestParseSpec:
    def test_plain_names(self):
        assert parse_spec("serial") == (SerialBackend, None)
        assert parse_spec("thread") == (ThreadPoolBackend, None)
        assert parse_spec("process") == (ProcessPoolBackend, None)

    def test_worker_suffix(self):
        assert parse_spec("thread:8") == (ThreadPoolBackend, 8)
        assert parse_spec("process:2") == (ProcessPoolBackend, 2)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_spec("gpu")

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_spec("thread:lots")
        with pytest.raises(ConfigurationError):
            parse_spec("thread:0")
        with pytest.raises(ConfigurationError):
            parse_spec("thread:-3")

    def test_registry_covers_all_names(self):
        assert set(BACKENDS) == {"serial", "thread", "process"}


class TestMakeBackend:
    def test_default_is_serial(self):
        assert isinstance(make_backend(), SerialBackend)

    def test_instance_passthrough(self):
        backend = ThreadPoolBackend(max_workers=2)
        assert make_backend(backend) is backend
        backend.close()

    def test_spec_suffix_wins_over_max_workers(self):
        backend = make_backend("thread:3", max_workers=7)
        assert backend.max_workers == 3
        backend.close()

    def test_max_workers_used_without_suffix(self):
        backend = make_backend("thread", max_workers=5)
        assert backend.max_workers == 5
        backend.close()


class TestBackendsMap:
    @pytest.mark.parametrize("spec", ["serial", "thread:4", "process:2"])
    def test_map_preserves_order(self, spec):
        with make_backend(spec) as backend:
            assert backend.map(square, list(range(10))) == [
                x * x for x in range(10)
            ]

    @pytest.mark.parametrize("spec", ["serial", "thread:4", "process:2"])
    def test_map_empty(self, spec):
        with make_backend(spec) as backend:
            assert backend.map(square, []) == []

    @pytest.mark.parametrize("spec", ["serial", "thread:4"])
    def test_exceptions_propagate(self, spec):
        with make_backend(spec) as backend:
            with pytest.raises(ValueError, match="boom"):
                backend.map(boom, [1, 2, 3])

    def test_shared_state_flags(self):
        assert SerialBackend().supports_shared_state
        assert ThreadPoolBackend(max_workers=1).supports_shared_state
        assert not ProcessPoolBackend(max_workers=1).supports_shared_state

    def test_names(self):
        assert SerialBackend().name == "serial"
        assert ThreadPoolBackend(max_workers=1).name == "thread"
        assert ProcessPoolBackend(max_workers=1).name == "process"

    def test_pool_backend_survives_pickling(self):
        backend = ThreadPoolBackend(max_workers=2)
        backend.map(square, [1, 2, 3])  # force executor creation
        clone = pickle.loads(pickle.dumps(backend))
        assert clone.map(square, [4]) == [16]
        backend.close()
        clone.close()

    def test_interface_is_abstract(self):
        with pytest.raises(TypeError):
            ExecutionBackend()  # map() is abstract


class TestConfigIntegration:
    def test_config_accepts_backend_specs(self):
        config = SnoopyConfig(execution_backend="thread:4")
        assert config.execution_backend == "thread:4"

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            SnoopyConfig(execution_backend="quantum")

    def test_config_rejects_bad_max_workers(self):
        with pytest.raises(Exception):
            SnoopyConfig(max_workers=0)

    def test_config_defaults_serial(self):
        assert SnoopyConfig().execution_backend == "serial"
