"""Tests for the PRO-ORAM-lite read-only baseline."""

import random

import pytest

from repro.baselines.prooram import ProOram, ReadOnlyViolation
from repro.errors import ReproError


def make_oram(num_keys=64, workers=4, seed=1):
    objects = {k: bytes([k % 256]) for k in range(num_keys)}
    return ProOram(objects, workers=workers, rng=random.Random(seed))


class TestReads:
    def test_read_correct(self):
        oram = make_oram()
        for k in range(64):
            assert oram.read(k) == bytes([k])

    def test_repeated_reads_stable(self):
        oram = make_oram()
        for _ in range(200):
            assert oram.read(7) == bytes([7])

    def test_unknown_key(self):
        oram = make_oram()
        with pytest.raises(KeyError):
            oram.read(9999)

    def test_batch_read(self):
        oram = make_oram()
        assert oram.batch_read([1, 2, 3]) == [bytes([1]), bytes([2]), bytes([3])]

    def test_empty_store_rejected(self):
        with pytest.raises(ReproError):
            ProOram({})


class TestReadOnly:
    def test_writes_rejected(self):
        oram = make_oram()
        with pytest.raises(ReadOnlyViolation):
            oram.write(1, b"x")


class TestIncrementalShuffle:
    def test_layout_refreshes_over_epochs(self):
        rng = random.Random(2)
        oram = make_oram(seed=3)
        start = oram.background_shuffles
        for _ in range(5 * oram.shelter_size):
            oram.read(rng.randrange(64))
        assert oram.background_shuffles > start

    def test_more_workers_smaller_quantum(self):
        slow = make_oram(workers=1)
        fast = make_oram(workers=4)
        assert fast.shuffle_quantum_per_access() < slow.shuffle_quantum_per_access()

    def test_shelter_never_exceeds_sqrt(self):
        rng = random.Random(4)
        oram = make_oram(seed=5)
        for _ in range(500):
            oram.read(rng.randrange(64))
            assert len(oram._sheltered) <= oram.shelter_size
