"""Tests for oblivious batch generation (Figure 5 / Figure 25)."""

import random

import pytest

from repro.analysis.balls_bins import batch_size
from repro.crypto.prf import Prf
from repro.errors import BatchOverflowError
from repro.loadbalancer.batching import dummy_key, generate_batches
from repro.types import OpType, Request

KEY = b"sharding-key-0123456789abcdef..."


def reads(keys, client=0):
    return [Request(OpType.READ, k, client_id=client, seq=i) for i, k in enumerate(keys)]


class TestBatchShape:
    def test_every_batch_exactly_b(self, rng):
        requests = reads(rng.sample(range(10_000), 40))
        batches, originals, size = generate_batches(requests, 4, KEY, 16)
        assert len(batches) == 4
        assert all(len(b) == size for b in batches)
        assert len(originals) == 40

    def test_batch_size_matches_theorem(self):
        requests = reads(range(100))
        _, _, size = generate_batches(requests, 5, KEY, 32)
        assert size == batch_size(100, 5, 32)

    def test_batch_size_public_across_contents(self, rng):
        """Same (R, S, lambda) -> same shape, any request contents."""
        a = generate_batches(reads(rng.sample(range(10**6), 30)), 3, KEY, 16)
        b = generate_batches(reads(rng.sample(range(10**6), 30)), 3, KEY, 16)
        assert a[2] == b[2]
        assert [len(x) for x in a[0]] == [len(x) for x in b[0]]

    def test_empty_epoch(self):
        batches, originals, size = generate_batches([], 3, KEY, 16)
        assert size == 0
        assert all(len(b) == 0 for b in batches)


class TestRouting:
    def test_requests_routed_to_hash_suboram(self, rng):
        prf = Prf(KEY)
        keys = rng.sample(range(10_000), 25)
        batches, _, _ = generate_batches(reads(keys), 4, KEY, 16)
        for s, batch in enumerate(batches):
            for entry in batch:
                if not entry.is_dummy:
                    assert prf.range(entry.key, 4) == s

    def test_no_request_dropped(self, rng):
        keys = rng.sample(range(10_000), 50)
        batches, _, _ = generate_batches(reads(keys), 4, KEY, 16)
        sent = {e.key for b in batches for e in b if not e.is_dummy}
        assert sent == set(keys)

    def test_dummies_fill_remainder(self):
        requests = reads([1, 2, 3])
        batches, _, size = generate_batches(requests, 2, KEY, 16)
        total_real = sum(1 for b in batches for e in b if not e.is_dummy)
        total_dummy = sum(1 for b in batches for e in b if e.is_dummy)
        assert total_real == 3
        assert total_dummy == 2 * size - 3

    def test_dummy_keys_unique(self):
        batches, _, _ = generate_batches(reads([1]), 3, KEY, 16)
        dummy_keys = [e.key for b in batches for e in b if e.is_dummy]
        assert len(set(dummy_keys)) == len(dummy_keys)
        assert all(k < 0 for k in dummy_keys)

    def test_batch_keys_distinct_within_suboram(self, rng):
        """Definition 2's precondition: every batch has distinct keys."""
        keys = [rng.randrange(20) for _ in range(60)]  # heavy duplication
        batches, _, _ = generate_batches(reads(keys), 3, KEY, 16)
        for batch in batches:
            batch_keys = [e.key for e in batch]
            assert len(set(batch_keys)) == len(batch_keys)


class TestDeduplication:
    def test_duplicate_reads_collapse(self):
        requests = reads([7, 7, 7, 7])
        batches, _, _ = generate_batches(requests, 2, KEY, 16)
        real = [e for b in batches for e in b if not e.is_dummy]
        assert len(real) == 1
        assert real[0].key == 7

    def test_last_write_wins(self):
        requests = [
            Request(OpType.WRITE, 7, b"first", seq=0),
            Request(OpType.WRITE, 7, b"second", seq=1),
        ]
        batches, _, _ = generate_batches(requests, 2, KEY, 16)
        [entry] = [e for b in batches for e in b if not e.is_dummy]
        assert entry.op is OpType.WRITE
        assert entry.value == b"second"

    def test_write_beats_read_in_representative(self):
        requests = [
            Request(OpType.WRITE, 7, b"w", seq=0),
            Request(OpType.READ, 7, seq=1),
        ]
        batches, _, _ = generate_batches(requests, 2, KEY, 16)
        [entry] = [e for b in batches for e in b if not e.is_dummy]
        assert entry.op is OpType.WRITE

    def test_skew_cannot_overflow(self, rng):
        """All requests for one object still fit (dedup absorbs skew)."""
        requests = reads([5] * 500)
        batches, _, size = generate_batches(requests, 10, KEY, 32)
        assert all(len(b) == size for b in batches)

    def test_permissions_attached(self):
        requests = [
            Request(OpType.READ, 1, client_id=9, seq=3),
            Request(OpType.READ, 2, client_id=9, seq=4),
        ]
        _, originals, _ = generate_batches(
            requests, 2, KEY, 16, permissions={(9, 3): 0}
        )
        perms = {(o.client_id, o.seq): o.permitted for o in originals}
        assert perms[(9, 3)] == 0
        assert perms[(9, 4)] == 1


class TestOverflow:
    def test_overflow_raises_not_drops(self):
        """Forcing lambda=0 (B = ceil(R/S)) makes skewed hashing overflow."""
        rng = random.Random(5)
        with pytest.raises(BatchOverflowError):
            for _ in range(50):  # some trial will unbalance a 2-way split
                keys = rng.sample(range(10**6), 9)
                generate_batches(reads(keys), 2, KEY, security_parameter=0)

    def test_dummy_key_space_disjoint(self):
        assert dummy_key(0, 0) != dummy_key(1, 0)
        assert dummy_key(0, 0) != dummy_key(0, 1)
        assert dummy_key(5, 9) < -(2**60)
