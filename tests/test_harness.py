"""The differential matrix: every configuration serves identical bytes.

Runs one seeded workload through the full cross product

    {serial, thread, process} x {python, numpy}
        x {scalar, batched, vector} x {fault-free, FaultPlan}

via :func:`tests.harness.differential_run` and asserts every cell's
responses, resolved tickets, and workload-invariant public telemetry
match the fault-free serial/python/scalar reference cell exactly.  The
scalar cells seal one slot per AEAD call (the audited oracle); the
batched cells re-encrypt the whole store in one vectorized HMAC pass;
the vector cells use the counter-mode :class:`~repro.crypto.vector.
VectorAead` kernel — so a matrix pass is a proof that each crypto mode
changed throughput, not bytes.
"""

import pytest

from repro.core.faults import FaultEvent, FaultPlan

from tests.harness import (
    INVARIANT_METRICS,
    assert_equivalent,
    differential_run,
    seeded_workload,
)

MASTER = b"harness-test-master-key-01234567"[:32]
NUM_KEYS = 40
EPOCHS = 4

WORKLOAD = seeded_workload(EPOCHS, 6, seed=21, num_keys=NUM_KEYS)
OBJECTS = {k: bytes([k % 256]) * 8 for k in range(NUM_KEYS)}

#: A backend-seam plan every backend (including serial) can absorb.
CHAOS_PLAN = FaultPlan([
    FaultEvent(epoch=2, kind="worker_crash", unit=1),
    FaultEvent(epoch=3, kind="task_timeout", unit=0),
])


@pytest.fixture(scope="module")
def matrix():
    """All 36 cells of the (backend, kernel, crypto, plan) cross product."""
    return differential_run(
        WORKLOAD,
        OBJECTS,
        master=MASTER,
        cryptos=("scalar", "batched", "vector"),
        fault_plans=(
            ("fault-free", None),
            # Callable: each cell consumes its own injector cursor.
            ("chaos", lambda: FaultPlan(CHAOS_PLAN.events)),
        ),
    )


def test_matrix_covers_every_cell(matrix):
    keys = {run.key for run in matrix}
    assert len(keys) == len(matrix) == 36
    backends = {backend for backend, _, _, _ in keys}
    kernels = {kernel for _, kernel, _, _ in keys}
    cryptos = {crypto for _, _, crypto, _ in keys}
    plans = {plan for _, _, _, plan in keys}
    assert backends == {"serial", "thread:4", "process:2"}
    assert kernels == {"python", "numpy"}
    assert cryptos == {"scalar", "batched", "vector"}
    assert plans == {"fault-free", "chaos"}


def test_all_cells_equivalent_to_reference(matrix):
    reference = matrix[0]
    assert reference.key == ("serial", "python", "scalar", "fault-free")
    assert_equivalent(matrix, reference)


def test_invariant_metrics_are_populated(matrix):
    """The compared metric slice is non-trivial in every cell."""
    expected_requests = sum(len(epoch) for epoch in WORKLOAD)
    for run in matrix:
        assert run.invariant_metrics["snoopy_requests_total"] == (
            expected_requests
        )
        assert run.invariant_metrics["snoopy_epochs_total"] == EPOCHS
        assert run.invariant_metrics["snoopy_responses_total"] == (
            expected_requests
        )
        # Every declared invariant series is present.
        bases = {s.split("{")[0] for s in run.invariant_metrics}
        assert bases == set(INVARIANT_METRICS)


def test_batched_cells_actually_batched(matrix):
    """The batched/vector cells of the matrix really used batch paths.

    Guards against the crypto axis silently collapsing to scalar (e.g. a
    ``supports_batch`` regression): every in-process batched or vector
    cell must have recorded batched seal passes, and no scalar cell may
    have any.  Vector cells must additionally have derived per-batch
    keystreams (each one a fresh-nonce derivation — the keystream-reuse
    invariant's observable).  Process-backend cells run their seals
    inside workers, whose telemetry handle is the pickled null — their
    counters legitimately stay zero.
    """

    def series_total(run, base):
        return sum(
            value
            for series, value in run.public_metrics.items()
            if series.split("{")[0].split("#")[0] == base
        )

    for run in matrix:
        seals = series_total(run, "snoopy_aead_seal_batch_total")
        keystreams = series_total(run, "snoopy_keystream_derivations_total")
        if run.crypto == "scalar":
            assert seals == 0, run.key
        elif not run.backend.startswith("process"):
            assert seals > 0, run.key
            if run.crypto == "vector":
                assert keystreams > 0, run.key
        if run.crypto != "vector":
            assert keystreams == 0, run.key


def test_chaos_cells_actually_injected_faults(matrix):
    """The chaos half of the matrix is not silently fault-free."""
    for run in matrix:
        if run.plan_name != "chaos":
            continue
        assert run.fault_stats["worker_crashes"] == 1, run.key
        assert run.fault_stats["tasks_timed_out"] == 1, run.key
        assert run.fault_stats["epochs_failed"] == 2, run.key


def test_divergence_is_detected(matrix):
    """assert_equivalent must fail loudly when a cell diverges."""
    import copy

    broken = copy.copy(matrix[1])
    broken.results = list(broken.results)
    broken.results[0] = None
    with pytest.raises(AssertionError, match="diverge"):
        assert_equivalent([matrix[0], broken])
