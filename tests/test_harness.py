"""The differential matrix: every configuration serves identical bytes.

Runs one seeded workload through the full cross product

    {serial, thread, process} x {python, numpy} x {fault-free, FaultPlan}

via :func:`tests.harness.differential_run` and asserts every cell's
responses, resolved tickets, and workload-invariant public telemetry
match the fault-free serial/python reference cell exactly.
"""

import pytest

from repro.core.faults import FaultEvent, FaultPlan

from tests.harness import (
    INVARIANT_METRICS,
    assert_equivalent,
    differential_run,
    seeded_workload,
)

MASTER = b"harness-test-master-key-01234567"[:32]
NUM_KEYS = 40
EPOCHS = 4

WORKLOAD = seeded_workload(EPOCHS, 6, seed=21, num_keys=NUM_KEYS)
OBJECTS = {k: bytes([k % 256]) * 8 for k in range(NUM_KEYS)}

#: A backend-seam plan every backend (including serial) can absorb.
CHAOS_PLAN = FaultPlan([
    FaultEvent(epoch=2, kind="worker_crash", unit=1),
    FaultEvent(epoch=3, kind="task_timeout", unit=0),
])


@pytest.fixture(scope="module")
def matrix():
    """All 12 cells of the (backend, kernel, plan) cross product."""
    return differential_run(
        WORKLOAD,
        OBJECTS,
        master=MASTER,
        fault_plans=(
            ("fault-free", None),
            # Callable: each cell consumes its own injector cursor.
            ("chaos", lambda: FaultPlan(CHAOS_PLAN.events)),
        ),
    )


def test_matrix_covers_every_cell(matrix):
    keys = {run.key for run in matrix}
    assert len(keys) == len(matrix) == 12
    backends = {backend for backend, _, _ in keys}
    kernels = {kernel for _, kernel, _ in keys}
    plans = {plan for _, _, plan in keys}
    assert backends == {"serial", "thread:4", "process:2"}
    assert kernels == {"python", "numpy"}
    assert plans == {"fault-free", "chaos"}


def test_all_cells_equivalent_to_reference(matrix):
    reference = matrix[0]
    assert reference.key == ("serial", "python", "fault-free")
    assert_equivalent(matrix, reference)


def test_invariant_metrics_are_populated(matrix):
    """The compared metric slice is non-trivial in every cell."""
    expected_requests = sum(len(epoch) for epoch in WORKLOAD)
    for run in matrix:
        assert run.invariant_metrics["snoopy_requests_total"] == (
            expected_requests
        )
        assert run.invariant_metrics["snoopy_epochs_total"] == EPOCHS
        assert run.invariant_metrics["snoopy_responses_total"] == (
            expected_requests
        )
        # Every declared invariant series is present.
        bases = {s.split("{")[0] for s in run.invariant_metrics}
        assert bases == set(INVARIANT_METRICS)


def test_chaos_cells_actually_injected_faults(matrix):
    """The chaos half of the matrix is not silently fault-free."""
    for run in matrix:
        if run.plan_name != "chaos":
            continue
        assert run.fault_stats["worker_crashes"] == 1, run.key
        assert run.fault_stats["tasks_timed_out"] == 1, run.key
        assert run.fault_stats["epochs_failed"] == 2, run.key


def test_divergence_is_detected(matrix):
    """assert_equivalent must fail loudly when a cell diverges."""
    import copy

    broken = copy.copy(matrix[1])
    broken.results = list(broken.results)
    broken.results[0] = None
    with pytest.raises(AssertionError, match="diverge"):
        assert_equivalent([matrix[0], broken])
