"""Tests for the alternative balls-into-bins bounds (§10)."""

import math
import random

import pytest

from repro.analysis.balls_bins import batch_size, security_bits
from repro.analysis.bounds import (
    berenbrink_bound,
    bound_comparison,
    exact_batch_size,
    exact_union_bound,
    raab_steger_bound,
)


class TestPolynomialBounds:
    def test_berenbrink_above_mean(self):
        assert berenbrink_bound(10_000, 10) > 1_000

    def test_raab_steger_above_mean(self):
        assert raab_steger_bound(10_000, 10) > 1_000

    def test_zero_requests(self):
        assert berenbrink_bound(0, 5) == 0
        assert raab_steger_bound(0, 5) == 0

    def test_polynomial_bounds_below_theorem3(self):
        """Their failure probability is only n^-alpha, so the bounds are
        smaller than a 2^-128 bound — the paper's point: they don't give
        cryptographic security at comparable size."""
        for r, s in [(10_000, 10), (50_000, 20)]:
            t3 = batch_size(r, s, 128)
            assert berenbrink_bound(r, s, 1.0) < t3
            assert raab_steger_bound(r, s, 1.0) < t3

    def test_polynomial_bounds_insufficient_security(self):
        """At alpha=1 the capacity gives far fewer than 128 security bits."""
        r, s = 10_000, 10
        for bound in (berenbrink_bound(r, s), raab_steger_bound(r, s)):
            assert security_bits(r, s, bound) < 64


class TestExactBound:
    def test_exact_tail_matches_known_value(self):
        # Pr[Bin(10, 0.5) >= 5] = 0.623...
        log_tail = exact_union_bound(10, 2, 4)  # n=2 bins adds log(2)
        # union bound = 2 * Pr[Bin(10,1/2) >= 5]
        assert math.exp(log_tail) == pytest.approx(2 * 0.623, rel=0.01) or (
            log_tail == 0.0
        )

    def test_exact_never_exceeds_theorem3(self):
        """The closed form is an upper bound on the exact requirement."""
        for r, s in [(1_000, 4), (10_000, 10), (50_000, 20)]:
            assert exact_batch_size(r, s, 128) <= batch_size(r, s, 128)

    def test_theorem3_not_wildly_loose(self):
        """Closed form within ~15% of the exact requirement at scale."""
        for r, s in [(10_000, 10), (100_000, 16)]:
            exact = exact_batch_size(r, s, 128)
            closed = batch_size(r, s, 128)
            assert closed / exact < 1.25

    def test_exact_bound_reaches_high_lambda(self):
        """Log-space evaluation clears the paper's lambda~44 float wall."""
        b = exact_batch_size(10_000, 10, 128)
        assert exact_union_bound(10_000, 10, b) <= -128 * math.log(2)

    def test_capacity_at_or_above_requests_is_safe(self):
        assert exact_union_bound(100, 4, 100) == float("-inf")

    def test_empirical_validation(self):
        """The exact bound also never overflows empirically."""
        rng = random.Random(0)
        r, s = 2_000, 8
        b = exact_batch_size(r, s, 40)
        for _ in range(100):
            counts = [0] * s
            for _ in range(r):
                counts[rng.randrange(s)] += 1
            assert max(counts) <= b


class TestComparison:
    def test_comparison_table(self):
        table = bound_comparison(10_000, 10)
        assert set(table) == {
            "theorem3",
            "exact",
            "berenbrink(alpha=1)",
            "raab_steger(alpha=1)",
        }
        assert table["exact"] <= table["theorem3"]
