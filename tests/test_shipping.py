"""Shared-memory state shipping: envelopes, segments, backend integration.

Covers :mod:`repro.exec.shipping` directly (encode/decode envelopes,
segment growth, kill switches) and through
:class:`~repro.exec.pools.ProcessPoolBackend` (byte-identical results
with shipping on and off, telemetry transport counters, no leaked
``/dev/shm`` segments after close, reply-segment growth).
"""

import os
import pickle

import pytest

from repro.exec import shipping
from repro.exec.pools import ProcessPoolBackend
from repro.suboram.store import EncryptedStore
from repro.telemetry import Telemetry

pytestmark = pytest.mark.skipif(
    not shipping.shm_available(), reason="no multiprocessing.shared_memory"
)

STORE_KEY = b"shipping-test-key-0123456789abcdef"


def make_store(num_slots=1024, value_size=48):
    """A populated store whose contiguous buffers clear SHM_MIN_BYTES."""
    store = EncryptedStore(
        STORE_KEY, num_slots=num_slots, value_size=value_size
    )
    store.put_batch(
        list(range(num_slots)),
        [bytes([slot % 256]) * value_size for slot in range(num_slots)],
    )
    return store


def stamp(store, args):
    """Stateful unit: write the epoch number into slot 0."""
    store.put(0, key=args, value=bytes([args % 256]) * store.value_size)
    return store, store.get(0)


def grow(store, args):
    """Stateful unit whose new state is a (possibly larger) fresh store."""
    return make_store(num_slots=args), args


class TestEnvelopes:
    def test_small_messages_ride_the_pipe(self):
        pool = shipping.RegionPool()
        shipped = []
        try:
            message = ("tiny", EncryptedStore(STORE_KEY, 4, 8))
            out = shipping.encode(
                message, pool.ensure, on_ship=lambda t, n: shipped.append(t)
            )
            # Below the threshold the already-paid pickling pass rides
            # the pipe as a PipeShipment — never a second full pickle.
            assert isinstance(out, shipping.PipeShipment)
            assert shipped == ["pipe"]
            # Round-trip exactly as Connection.send/recv would (the
            # PickleBuffers serialize in-band at protocol 5).
            wire = pickle.loads(pickle.dumps(out, protocol=5))
            tag, clone = shipping.decode(wire)
            assert tag == "tiny"
            assert clone.num_slots == 4
        finally:
            pool.close()

    def test_large_store_round_trips_through_a_segment(self):
        pool = shipping.RegionPool()
        try:
            store = make_store()
            shipped = []
            out = shipping.encode(
                ("msg", store),
                pool.ensure,
                on_ship=lambda t, n: shipped.append((t, n)),
            )
            assert isinstance(out, shipping.ShmShipment)
            assert shipped[0][0] == "shm"
            assert shipped[0][1] >= store.num_slots * store.slot_size
            # The receiver maps the segment by name, exactly as a worker
            # in another process would.
            cache = shipping.AttachCache()
            try:
                # The envelope crosses the pipe pickled; round-trip it.
                wire = pickle.loads(pickle.dumps(out))
                tag, clone = shipping.decode(wire, cache.get)
            finally:
                cache.close()
            assert tag == "msg"
            for slot in (0, 1, store.num_slots - 1):
                assert clone.get(slot) == store.get(slot)
        finally:
            pool.close()

    def test_encode_reply_degrades_to_grow_hint(self):
        store = make_store()
        out = shipping.encode_reply(("ok", store, None), attachment=None)
        assert isinstance(out, shipping.GrowHint)
        assert out.need_bytes >= store.num_slots * store.slot_size
        # The inline fallback is a pipe shipment, not a second pickle.
        assert isinstance(out.message, shipping.PipeShipment)
        status, clone, _ = shipping.decode(out.message)
        assert status == "ok"
        assert clone.get(0) == store.get(0)

    def test_encode_reply_uses_a_fitting_attachment(self):
        store = make_store()
        region = shipping.Region.create(4 * store.num_slots * store.slot_size)
        try:
            out = shipping.encode_reply(("ok", store, None), region)
            assert isinstance(out, shipping.ShmShipment)
            assert out.name == region.name
        finally:
            region.close()

    def test_missing_provider_falls_back_to_pipe(self):
        message = ("msg", make_store())
        out = shipping.encode(message, lambda n: None)
        assert isinstance(out, shipping.PipeShipment)
        tag, clone = shipping.decode(out)
        assert tag == "msg"
        assert clone.get(3) == message[1].get(3)

    def test_min_bytes_resolution(self, monkeypatch):
        assert shipping.resolve_min_bytes() == shipping.SHM_MIN_BYTES
        assert shipping.resolve_min_bytes(512) == 512
        monkeypatch.setenv("SNOOPY_SHM_MIN_BYTES", "2048")
        assert shipping.resolve_min_bytes() == 2048
        assert shipping.resolve_min_bytes(64) == 64  # explicit wins
        monkeypatch.setenv("SNOOPY_SHM_MIN_BYTES", "not-a-number")
        assert shipping.resolve_min_bytes() == shipping.SHM_MIN_BYTES
        with pytest.raises(ValueError):
            shipping.resolve_min_bytes(-1)

    def test_threshold_routes_between_shm_and_pipe(self):
        pool = shipping.RegionPool()
        try:
            message = ("msg", make_store())
            big = shipping.encode(message, pool.ensure, min_bytes=1)
            assert isinstance(big, shipping.ShmShipment)
            small = shipping.encode(
                message, pool.ensure, min_bytes=1 << 30
            )
            assert isinstance(small, shipping.PipeShipment)
        finally:
            pool.close()


class TestSegments:
    def test_region_pool_grows_by_replace_and_unlink(self):
        pool = shipping.RegionPool()
        try:
            first = pool.ensure(100)
            assert first.size >= shipping.SHM_MIN_BYTES
            old_name = first.name
            second = pool.ensure(first.size * 3)
            assert second.size >= first.size * 3
            assert second.name != old_name
            with pytest.raises(FileNotFoundError):
                shipping.Region.attach(old_name)
        finally:
            pool.close()

    def test_close_unlinks(self):
        pool = shipping.RegionPool()
        name = pool.ensure(1).name
        pool.close()
        with pytest.raises(FileNotFoundError):
            shipping.Region.attach(name)
        pool.close()  # idempotent

    def test_attach_cache_drops_superseded_segments(self):
        pool = shipping.RegionPool()
        cache = shipping.AttachCache()
        try:
            region = pool.ensure(1)
            attached = cache.get(region.name)
            assert attached.size == region.size
            grown = pool.ensure(region.size * 2)
            assert cache.get(grown.name).size == grown.size
            assert len(cache._regions) == 1  # the stale mapping is gone
        finally:
            cache.close()
            pool.close()


class TestKillSwitches:
    def test_flag_wins(self):
        assert shipping.shipping_enabled(False) is False
        assert shipping.shipping_enabled(True) is True

    def test_env_disables(self, monkeypatch):
        monkeypatch.setenv("SNOOPY_NO_SHM", "1")
        assert shipping.shipping_enabled() is False
        assert shipping.shipping_enabled(None) is False

    def test_backend_honours_env(self, monkeypatch):
        monkeypatch.setenv("SNOOPY_NO_SHM", "1")
        with ProcessPoolBackend(max_workers=1) as backend:
            assert backend.shm_state is False

    def test_backend_honours_flag(self):
        with ProcessPoolBackend(max_workers=1, shm_state=False) as backend:
            assert backend.shm_state is False


class TestBackendIntegration:
    def _run_epochs(self, shm_state, epochs=3):
        with ProcessPoolBackend(
            max_workers=1, shm_state=shm_state
        ) as backend:
            telemetry = Telemetry()
            backend.attach_telemetry(telemetry)
            state = make_store()
            results = []
            for epoch in range(epochs):
                [(state, result)] = backend.map_stateful(
                    stamp, [("store", state, epoch)]
                )
                results.append(result)
            contents = [state.get(slot) for slot in range(state.num_slots)]
            metrics = {
                (m.name, m.labels): m.value
                for m in telemetry.registry.metrics()
                if hasattr(m, "value")  # counters/gauges, not histograms
            }
        return results, contents, metrics

    def test_results_identical_with_and_without_shm(self):
        with_shm = self._run_epochs(shm_state=True)
        without = self._run_epochs(shm_state=False)
        assert with_shm[0] == without[0]
        assert with_shm[1] == without[1]

    def test_shm_transport_is_recorded(self):
        _, _, metrics = self._run_epochs(shm_state=True)
        ships = {
            labels: value
            for (name, labels), value in metrics.items()
            if name == "exec_state_ships_total"
        }
        shm_ships = sum(
            value
            for labels, value in ships.items()
            if ("transport", "shm") in labels
        )
        assert shm_ships > 0
        shm_bytes = sum(
            value
            for (name, labels), value in metrics.items()
            if name == "exec_state_bytes_total"
            and ("transport", "shm") in labels
        )
        assert shm_bytes >= 1024 * (16 + 48 + 32)

    def test_no_shm_run_never_touches_segments(self):
        _, _, metrics = self._run_epochs(shm_state=False)
        assert not any(
            ("transport", "shm") in labels
            for (name, labels) in metrics
            if name.startswith("exec_state_")
        )

    def test_segments_cleaned_up_after_close(self):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm to observe")
        before = set(os.listdir("/dev/shm"))
        self._run_epochs(shm_state=True)
        leaked = set(os.listdir("/dev/shm")) - before
        assert leaked == set()

    def test_reply_growth_is_transparent(self):
        """A reply that outgrows its segment degrades, grows, and recovers."""
        with ProcessPoolBackend(max_workers=1, shm_state=True) as backend:
            state = make_store(num_slots=1024)
            # The new state is ~4x the shipped one: the reply cannot fit
            # the segment sized from the request and must take the
            # GrowHint path without changing any bytes.
            [(state, result)] = backend.map_stateful(
                grow, [("store", state, 4096)]
            )
            assert result == 4096
            assert state.num_slots == 4096
            # Next epoch the grown segment carries the big reply in shm.
            [(state, result)] = backend.map_stateful(
                grow, [("store", state, 4096)]
            )
            assert result == 4096
            expected = make_store(num_slots=4096)
            assert state.get(17) == expected.get(17)
