"""Access-pattern obliviousness tests — the mechanical analogue of §B.

Each test runs one oblivious component twice with identical *public*
parameters but different *secret* inputs (request contents, object ids,
flags) and asserts the recorded address traces are identical.  This is the
checkable core of the simulation argument: a simulator knowing only public
information could replay the trace.
"""

import random

import pytest

from repro.loadbalancer.batching import generate_batches
from repro.loadbalancer.matching import match_responses
from repro.oblivious.compact import goodrich_compact
from repro.oblivious.memory import AccessTrace, TracedMemory
from repro.oblivious.sort import bitonic_sort
from repro.types import OpType, Request

KEY = b"sharding-key-0123456789abcdef..."


class TraceCollector:
    """A mem_factory that accumulates all accesses onto a single trace."""

    def __init__(self):
        self.trace = AccessTrace()

    def __call__(self, items):
        return TracedMemory(items, trace=self.trace)


def batching_trace(requests, num_suborams=3):
    collector = TraceCollector()
    generate_batches(
        requests, num_suborams, KEY, security_parameter=16,
        mem_factory=collector,
    )
    return collector.trace


def matching_trace(requests, num_suborams=3):
    batches, originals, _ = generate_batches(
        requests, num_suborams, KEY, security_parameter=16
    )
    responses = []
    for batch in batches:
        for entry in batch:
            answered = entry.copy()
            answered.value = b"vvvv"
            responses.append(answered)
    collector = TraceCollector()
    match_responses(originals, responses, mem_factory=collector)
    return collector.trace


class TestPrimitiveTraces:
    def test_sort_trace_data_independent(self, rng):
        n = 30
        runs = []
        for _ in range(2):
            collector = TraceCollector()
            bitonic_sort(
                [rng.randrange(10**6) for _ in range(n)],
                mem_factory=collector,
            )
            runs.append(collector.trace)
        assert runs[0] == runs[1]

    def test_compact_trace_flag_independent(self, rng):
        n = 30
        runs = []
        for _ in range(2):
            collector = TraceCollector()
            goodrich_compact(
                list(range(n)),
                [rng.randrange(2) for _ in range(n)],
                mem_factory=collector,
            )
            runs.append(collector.trace)
        assert runs[0] == runs[1]


class TestLoadBalancerTraces:
    def test_batching_trace_independent_of_keys(self, rng):
        """Same R, S: different requested objects leave the same trace."""
        t1 = batching_trace(
            [Request(OpType.READ, k, seq=i) for i, k in
             enumerate(rng.sample(range(10**6), 20))]
        )
        t2 = batching_trace(
            [Request(OpType.READ, k, seq=i) for i, k in
             enumerate(rng.sample(range(10**6), 20))]
        )
        assert t1 == t2
        assert len(t1) > 0

    def test_batching_trace_independent_of_ops(self, rng):
        keys = rng.sample(range(10**6), 15)
        t_reads = batching_trace(
            [Request(OpType.READ, k, seq=i) for i, k in enumerate(keys)]
        )
        t_writes = batching_trace(
            [Request(OpType.WRITE, k, b"v", seq=i) for i, k in enumerate(keys)]
        )
        assert t_reads == t_writes

    def test_batching_trace_independent_of_skew(self, rng):
        uniform = [
            Request(OpType.READ, k, seq=i)
            for i, k in enumerate(rng.sample(range(10**6), 20))
        ]
        skewed = [Request(OpType.READ, 7, seq=i) for i in range(20)]
        assert batching_trace(uniform) == batching_trace(skewed)

    def test_matching_trace_independent_of_contents(self, rng):
        t1 = matching_trace(
            [Request(OpType.READ, k, seq=i) for i, k in
             enumerate(rng.sample(range(10**6), 12))]
        )
        t2 = matching_trace(
            [Request(OpType.READ, k, seq=i) for i, k in
             enumerate(rng.sample(range(10**6), 12))]
        )
        assert t1 == t2

    def test_trace_differs_for_different_public_params(self, rng):
        """Sanity: the trace is allowed to (and does) depend on R."""
        t_small = batching_trace(
            [Request(OpType.READ, 1, seq=0)]
        )
        t_large = batching_trace(
            [Request(OpType.READ, k, seq=i) for i, k in
             enumerate(rng.sample(range(10**6), 20))]
        )
        assert t_small != t_large


class TestHashTableLayout:
    def test_slot_layout_public(self, rng):
        """Table dimensions and slot count depend only on capacity."""
        from repro.oblivious.hashtable import TwoTierHashTable

        class Item:
            def __init__(self, key):
                self.key = key

        def build(keys):
            return TwoTierHashTable.build(
                [Item(k) for k in keys], lambda i: i.key, b"batch-key"
            )

        t1 = build(rng.sample(range(10**9), 50))
        t2 = build(rng.sample(range(10**9), 50))
        assert t1.params == t2.params
        assert len(t1.slots) == len(t2.slots)

    def test_lookup_touches_fixed_slot_count(self, rng):
        from repro.oblivious.hashtable import TwoTierHashTable

        class Item:
            def __init__(self, key):
                self.key = key

        keys = rng.sample(range(10**9), 40)
        table = TwoTierHashTable.build(
            [Item(k) for k in keys], lambda i: i.key, b"batch-key"
        )
        counts = {
            len(table.bucket_slot_indices(k))
            for k in list(keys) + [123456789, 42]
        }
        assert counts == {table.params.lookup_scan_slots}


class TestSubOramScanOrder:
    def test_store_access_sequence_fixed(self, rng):
        """The subORAM fetches and rewrites slots 0..N-1 in order, with
        identical (get, put) sequences for any batch contents."""
        from repro.suboram.suboram import SubOram
        from repro.types import BatchEntry, OpType

        sequences = []
        for trial in range(2):
            suboram = SubOram(0, value_size=4, security_parameter=16)
            suboram.initialize({k: bytes([k]) * 4 for k in range(25)})
            log = []
            store = suboram.store
            original_get, original_put = store.get, store.put

            def spy_get(slot, _orig=original_get, _log=log):
                _log.append(("get", slot))
                return _orig(slot)

            def spy_put(slot, key, value, _orig=original_put, _log=log):
                _log.append(("put", slot))
                return _orig(slot, key, value)

            store.get, store.put = spy_get, spy_put
            keys = rng.sample(range(25), 6)
            batch = [
                BatchEntry(
                    op=OpType.WRITE if i % 2 else OpType.READ,
                    key=k,
                    value=b"wwww" if i % 2 else None,
                    is_dummy=False,
                )
                for i, k in enumerate(keys)
            ]
            suboram.batch_access(batch)
            sequences.append(log)
        assert sequences[0] == sequences[1]
        # Strictly interleaved get/put over slots 0..N-1.
        expected = []
        for slot in range(25):
            expected.extend([("get", slot), ("put", slot)])
        assert sequences[0] == expected


class TestHashTableConstructionTrace:
    def test_construction_trace_data_independent(self, rng):
        """The full oblivious construction (both tiers) leaves the same
        trace for any set of 60 distinct keys."""
        from repro.oblivious.hashtable import TwoTierHashTable

        class Item:
            def __init__(self, key):
                self.key = key

        traces = []
        for _ in range(2):
            collector = TraceCollector()
            TwoTierHashTable.build(
                [Item(k) for k in rng.sample(range(10**9), 60)],
                lambda i: i.key,
                b"batch-key",
                mem_factory=collector,
            )
            traces.append(collector.trace)
        assert traces[0] == traces[1]
        assert len(traces[0]) > 0
