"""Tests for the Path ORAM baseline."""

import random

import pytest

from repro.baselines.pathoram import PathOram
from repro.errors import ConfigurationError


class TestBasics:
    def test_read_before_write_is_none(self):
        oram = PathOram(16, rng=random.Random(1))
        assert oram.read(3) is None

    def test_write_then_read(self):
        oram = PathOram(16, rng=random.Random(1))
        oram.write(3, b"x")
        assert oram.read(3) == b"x"

    def test_write_returns_prior(self):
        oram = PathOram(16, rng=random.Random(1))
        assert oram.write(3, b"a") is None
        assert oram.write(3, b"b") == b"a"

    def test_initialize_bulk(self):
        oram = PathOram(32, rng=random.Random(1))
        oram.initialize({k: bytes([k]) for k in range(32)})
        for k in range(32):
            assert oram.read(k) == bytes([k])

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            PathOram(0)


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("capacity", [8, 64, 200])
    def test_matches_dict(self, capacity):
        rng = random.Random(capacity)
        oram = PathOram(capacity, rng=random.Random(capacity + 1))
        model = {}
        for _ in range(1500):
            key = rng.randrange(capacity)
            if rng.random() < 0.5:
                value = bytes([rng.randrange(256)])
                assert oram.write(key, value) == model.get(key)
                model[key] = value
            else:
                assert oram.read(key) == model.get(key)


class TestStructuralInvariants:
    def test_stash_stays_bounded(self):
        """Z=4 keeps the stash tiny w.h.p. — the classic Path ORAM result."""
        rng = random.Random(9)
        oram = PathOram(256, rng=random.Random(10))
        oram.initialize({k: bytes([k % 256]) for k in range(256)})
        worst = 0
        for _ in range(3000):
            oram.access(rng.randrange(256))
            worst = max(worst, oram.stash_size)
        assert worst < 64, f"stash grew to {worst}"

    def test_bucket_capacity_respected(self):
        rng = random.Random(11)
        oram = PathOram(64, rng=random.Random(12))
        oram.initialize({k: bytes([k]) for k in range(64)})
        for _ in range(500):
            oram.access(rng.randrange(64))
        assert all(len(b) <= oram.bucket_size for b in oram._tree)

    def test_position_remapped_every_access(self):
        oram = PathOram(128, rng=random.Random(13))
        oram.write(5, b"v")
        positions = set()
        for _ in range(50):
            oram.read(5)
            positions.add(oram._position[5])
        assert len(positions) > 5, "positions should be re-randomized"

    def test_path_length_blocks(self):
        oram = PathOram(64)
        assert oram.path_length_blocks() == oram.bucket_size * (oram.height + 1)
