"""Tests for the Ring ORAM baseline."""

import random

import pytest

from repro.baselines.ringoram import RingOram


class TestBasics:
    def test_write_then_read(self):
        oram = RingOram(16, rng=random.Random(1))
        oram.write(3, b"x")
        assert oram.read(3) == b"x"

    def test_write_returns_prior(self):
        oram = RingOram(16, rng=random.Random(1))
        assert oram.write(3, b"a") is None
        assert oram.write(3, b"b") == b"a"

    def test_missing_key(self):
        oram = RingOram(16, rng=random.Random(1))
        assert oram.read(7) is None


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("capacity", [8, 64, 128])
    def test_matches_dict(self, capacity):
        rng = random.Random(capacity)
        oram = RingOram(capacity, rng=random.Random(capacity + 1))
        model = {}
        for _ in range(1500):
            key = rng.randrange(capacity)
            if rng.random() < 0.5:
                value = bytes([rng.randrange(256)])
                assert oram.write(key, value) == model.get(key)
                model[key] = value
            else:
                assert oram.read(key) == model.get(key)


class TestProtocolStructure:
    def test_evictions_follow_rate(self):
        oram = RingOram(64, eviction_rate=3, rng=random.Random(2))
        oram.initialize({k: bytes([k]) for k in range(30)})
        accesses = oram.accesses
        evictions = oram.evictions
        for _ in range(30):
            oram.read(5)
        assert oram.evictions - evictions == (oram.accesses - accesses + accesses % 3) // 3

    def test_reverse_lexicographic_cycle_covers_leaves(self):
        oram = RingOram(16, rng=random.Random(3))
        leaves = {
            oram._reverse_lexicographic_leaf(i) for i in range(oram.num_leaves)
        }
        assert leaves == set(range(oram.num_leaves))

    def test_stash_bounded(self):
        rng = random.Random(4)
        oram = RingOram(128, rng=random.Random(5))
        oram.initialize({k: bytes([k % 256]) for k in range(128)})
        worst = 0
        for _ in range(2000):
            oram.access(rng.randrange(128))
            worst = max(worst, oram.stash_size)
        assert worst < 80, f"stash grew to {worst}"

    def test_bucket_real_capacity_respected(self):
        rng = random.Random(6)
        oram = RingOram(64, rng=random.Random(7))
        oram.initialize({k: bytes([k]) for k in range(64)})
        for _ in range(300):
            oram.access(rng.randrange(64))
        assert all(len(b.blocks) <= oram.bucket_size for b in oram._buckets)

    def test_early_reshuffles_triggered_by_dummy_exhaustion(self):
        oram = RingOram(32, num_dummies=2, rng=random.Random(8))
        oram.initialize({k: bytes([k]) for k in range(32)})
        for _ in range(100):
            oram.read(0)
        assert oram.early_reshuffles > 0
