"""Tests for the plaintext baseline — including its insecurity."""

from repro.baselines.plaintext import PlaintextStore
from repro.types import OpType, Request


class TestFunctionality:
    def test_read_write(self):
        store = PlaintextStore(4)
        store.initialize({1: b"a"})
        assert store.read(1) == b"a"
        assert store.write(1, b"b") == b"a"
        assert store.read(1) == b"b"

    def test_batch(self):
        store = PlaintextStore(2)
        store.initialize({k: bytes([k]) for k in range(10)})
        responses = store.batch(
            [Request(OpType.READ, k, seq=k) for k in range(5)]
        )
        assert [r.value for r in responses] == [bytes([k]) for k in range(5)]

    def test_missing_key(self):
        store = PlaintextStore()
        store.initialize({})
        assert store.read(42) is None


class TestLeakage:
    def test_access_pattern_fully_visible(self):
        """The §3 'attempt #1' problem: sharding leaks which object is hit."""
        store = PlaintextStore(4)
        store.initialize({k: bytes([k]) for k in range(16)})
        store.read(3)
        store.read(3)
        store.read(9)
        log = store.access_log
        # The server can tell the first two requests were for the same
        # object and the third for a different one — exactly what an
        # oblivious store must hide.
        assert log[0] == log[1]
        assert log[2] != log[0]

    def test_shard_routing_visible(self):
        store = PlaintextStore(8)
        store.initialize({k: bytes([k]) for k in range(64)})
        store.read(5)
        shard, key, op = store.access_log[-1]
        assert shard == store._shard_of(5)
