"""Tests for the Theorem 3 batch-size bound."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.balls_bins import (
    batch_size,
    batch_size_cache_clear,
    batch_size_cache_info,
    log_overflow_probability,
    overflow_probability,
    security_bits,
)
from repro.errors import ConfigurationError


class TestBatchSize:
    def test_zero_requests(self):
        assert batch_size(0, 5) == 0

    def test_single_bin_is_exact(self):
        assert batch_size(1000, 1) == 1000

    def test_lambda_zero_is_mean(self):
        assert batch_size(1000, 10, security_parameter=0) == 100
        assert batch_size(1001, 10, security_parameter=0) == 101

    def test_never_exceeds_r(self):
        for r in (1, 10, 100, 1000):
            for s in (1, 2, 10, 20):
                assert batch_size(r, s) <= r

    def test_at_least_mean(self):
        for r in (100, 1000, 10000):
            for s in (2, 10, 20):
                assert batch_size(r, s) >= math.ceil(r / s)

    def test_monotone_in_requests(self):
        sizes = [batch_size(r, 10) for r in range(100, 20000, 500)]
        assert sizes == sorted(sizes)

    def test_monotone_in_lambda(self):
        for lam_lo, lam_hi in [(0, 80), (80, 128)]:
            assert batch_size(10000, 10, lam_lo) <= batch_size(10000, 10, lam_hi)

    def test_small_r_degenerates_to_r(self):
        # Tiny workloads can't beat the trivial bound.
        assert batch_size(5, 10, 128) == 5

    def test_paper_overhead_anchor(self):
        """Fig. 3: ~50% dummy overhead at R=10K, S=10, lambda=128."""
        b = batch_size(10_000, 10, 128)
        overhead = (10 * b - 10_000) / 10_000
        assert 0.3 < overhead < 0.7

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            batch_size(10, 0)
        with pytest.raises(ConfigurationError):
            batch_size(-1, 5)
        with pytest.raises(ConfigurationError):
            batch_size(10, 5, security_parameter=-1)


class TestBatchSizeCache:
    def test_repeat_calls_hit_the_cache(self):
        batch_size_cache_clear()
        assert batch_size(10_000, 10) == batch_size(10_000, 10)
        info = batch_size_cache_info()
        assert info.misses == 1
        assert info.hits == 1

    def test_default_and_explicit_lambda_share_an_entry(self):
        batch_size_cache_clear()
        batch_size(10_000, 10)
        batch_size(10_000, 10, 128)
        batch_size(10_000, 10, security_parameter=128)
        info = batch_size_cache_info()
        assert info.misses == 1
        assert info.hits == 2

    def test_validation_still_raises_after_a_cached_hit(self):
        batch_size_cache_clear()
        batch_size(10_000, 10)
        with pytest.raises(ConfigurationError):
            batch_size(-1, 10)
        with pytest.raises(ConfigurationError):
            batch_size(10_000, 0)

    def test_cache_clear_resets_counts(self):
        batch_size(10_000, 10)
        batch_size_cache_clear()
        info = batch_size_cache_info()
        assert info.hits == 0
        assert info.misses == 0
        assert info.currsize == 0


class TestOverflowProbability:
    def test_bound_holds_at_batch_size(self):
        """The defining property: P[overflow] <= 2^-lambda at B=f(R,S)."""
        for r, s, lam in [(10_000, 10, 128), (5_000, 20, 80), (100_000, 16, 128)]:
            b = batch_size(r, s, lam)
            if b < r:  # non-degenerate regime
                assert security_bits(r, s, b) >= lam

    def test_capacity_at_r_is_impossible_overflow(self):
        assert overflow_probability(100, 4, 100) == 0.0
        assert log_overflow_probability(100, 4, 100) == float("-inf")

    def test_capacity_at_mean_is_vacuous(self):
        assert log_overflow_probability(1000, 10, 100) == 0.0

    def test_monotone_decreasing_in_capacity(self):
        probs = [
            log_overflow_probability(10_000, 10, c) for c in range(1100, 2000, 100)
        ]
        assert probs == sorted(probs, reverse=True)

    def test_empirical_no_overflow(self):
        """Simulated balls-into-bins never exceeds f(R,S) at lambda=40."""
        rng = random.Random(123)
        r, s = 2000, 8
        b = batch_size(r, s, security_parameter=40)
        for _ in range(200):
            counts = [0] * s
            for _ in range(r):
                counts[rng.randrange(s)] += 1
            assert max(counts) <= b

    def test_empirical_quantile_below_bound(self):
        """f(R,S) sits above the empirical maximum with margin."""
        rng = random.Random(7)
        r, s = 5000, 10
        maxima = []
        for _ in range(100):
            counts = [0] * s
            for _ in range(r):
                counts[rng.randrange(s)] += 1
            maxima.append(max(counts))
        assert batch_size(r, s, 128) > max(maxima)
        # ...but is not absurdly loose: within 2.5x of the mean load.
        assert batch_size(r, s, 128) < 2.5 * (r / s)

    @given(
        st.integers(min_value=1, max_value=200_000),
        st.integers(min_value=1, max_value=50),
        st.sampled_from([0, 40, 80, 128]),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_bounds(self, r, s, lam):
        b = batch_size(r, s, lam)
        assert math.ceil(r / s) <= b <= r
