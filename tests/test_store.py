"""Tests for the encrypted, integrity-protected subORAM store."""

import pytest

from repro.errors import CapacityError, IntegrityError
from repro.suboram.store import EncryptedStore


@pytest.fixture
def store():
    s = EncryptedStore(b"storage-key-0123456789abcdef....", num_slots=8, value_size=4)
    for slot in range(8):
        s.put(slot, key=slot * 10, value=bytes([slot]) * 4)
    return s


class TestRoundtrip:
    def test_get_returns_put(self, store):
        for slot in range(8):
            key, value = store.get(slot)
            assert key == slot * 10
            assert value == bytes([slot]) * 4

    def test_overwrite(self, store):
        store.put(3, key=30, value=b"zzzz")
        assert store.get(3) == (30, b"zzzz")

    def test_negative_keys_roundtrip(self):
        s = EncryptedStore(b"k" * 32, num_slots=1, value_size=2)
        s.put(0, key=-(2**61), value=b"ab")
        assert s.get(0) == (-(2**61), b"ab")

    def test_wrong_value_size_rejected(self, store):
        with pytest.raises(CapacityError):
            store.put(0, key=1, value=b"too-long-value")

    def test_capacity_error_is_still_a_value_error(self, store):
        """Deprecation-cycle compatibility for legacy except clauses."""
        with pytest.raises(ValueError):
            store.put(0, key=1, value=b"x")

    def test_unwritten_slot_rejected(self):
        s = EncryptedStore(b"k" * 32, num_slots=2, value_size=4)
        with pytest.raises(IntegrityError):
            s.get(0)


class TestFreshness:
    def test_rewrites_produce_new_ciphertexts(self, store):
        """Unchanged plaintext re-encrypts differently — hides write sets."""
        before = store.host_ciphertext(0)
        key, value = store.get(0)
        store.put(0, key, value)
        assert store.host_ciphertext(0) != before


class TestTamperDetection:
    def test_bit_flip_detected(self, store):
        _, blob = store.host_ciphertext(2)
        store.host_tamper(2, blob[:-1] + bytes([blob[-1] ^ 1]))
        with pytest.raises(IntegrityError):
            store.get(2)

    def test_rollback_detected(self, store):
        old = store.host_ciphertext(4)
        key, value = store.get(4)
        store.put(4, key, b"newv")
        store.host_rollback(4, old)
        with pytest.raises(IntegrityError):
            store.get(4)

    def test_cross_slot_swap_detected(self, store):
        """Moving a valid ciphertext to another slot fails (slot-bound AAD)."""
        store.host_rollback(1, store.host_ciphertext(0))
        with pytest.raises(IntegrityError):
            store.get(1)
