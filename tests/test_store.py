"""Tests for the encrypted, integrity-protected subORAM store."""

import pytest

from repro.errors import CapacityError, IntegrityError
from repro.suboram.store import EncryptedStore


@pytest.fixture
def store():
    s = EncryptedStore(b"storage-key-0123456789abcdef....", num_slots=8, value_size=4)
    for slot in range(8):
        s.put(slot, key=slot * 10, value=bytes([slot]) * 4)
    return s


class TestRoundtrip:
    def test_get_returns_put(self, store):
        for slot in range(8):
            key, value = store.get(slot)
            assert key == slot * 10
            assert value == bytes([slot]) * 4

    def test_overwrite(self, store):
        store.put(3, key=30, value=b"zzzz")
        assert store.get(3) == (30, b"zzzz")

    def test_negative_keys_roundtrip(self):
        s = EncryptedStore(b"k" * 32, num_slots=1, value_size=2)
        s.put(0, key=-(2**61), value=b"ab")
        assert s.get(0) == (-(2**61), b"ab")

    def test_wrong_value_size_rejected(self, store):
        with pytest.raises(CapacityError):
            store.put(0, key=1, value=b"too-long-value")

    def test_capacity_error_is_still_a_value_error(self, store):
        """Deprecation-cycle compatibility for legacy except clauses."""
        with pytest.raises(ValueError):
            store.put(0, key=1, value=b"x")

    def test_unwritten_slot_rejected(self):
        s = EncryptedStore(b"k" * 32, num_slots=2, value_size=4)
        with pytest.raises(IntegrityError):
            s.get(0)


class TestFreshness:
    def test_rewrites_produce_new_ciphertexts(self, store):
        """Unchanged plaintext re-encrypts differently — hides write sets."""
        before = store.host_ciphertext(0)
        key, value = store.get(0)
        store.put(0, key, value)
        assert store.host_ciphertext(0) != before


class TestTamperDetection:
    def test_bit_flip_detected(self, store):
        _, blob = store.host_ciphertext(2)
        store.host_tamper(2, blob[:-1] + bytes([blob[-1] ^ 1]))
        with pytest.raises(IntegrityError):
            store.get(2)

    def test_rollback_detected(self, store):
        old = store.host_ciphertext(4)
        key, value = store.get(4)
        store.put(4, key, b"newv")
        store.host_rollback(4, old)
        with pytest.raises(IntegrityError):
            store.get(4)

    def test_cross_slot_swap_detected(self, store):
        """Moving a valid ciphertext to another slot fails (slot-bound AAD)."""
        store.host_rollback(1, store.host_ciphertext(0))
        with pytest.raises(IntegrityError):
            store.get(1)


class TestBatchPath:
    """put_batch/get_batch move the same bytes as the scalar oracle."""

    def test_roundtrip_matches_scalar_reads(self, store):
        keys = [slot * 100 for slot in range(8)]
        values = [bytes([slot + 1]) * 4 for slot in range(8)]
        store.put_batch(keys, values)
        got_keys, got_values = store.get_batch()
        assert got_keys.tolist() == keys
        assert [bytes(row) for row in got_values] == values
        # The scalar oracle reads the very same bytes back.
        for slot in range(8):
            assert store.get(slot) == (keys[slot], values[slot])

    def test_matrix_input_equals_list_input(self, store):
        import numpy as np

        keys = list(range(8))
        matrix = np.arange(32, dtype=np.uint8).reshape(8, 4)
        store.put_batch(keys, matrix)
        _, got = store.get_batch()
        assert (got == matrix).all()

    def test_scalar_writes_then_batch_read(self, store):
        """A batch read after scalar puts verifies per-slot digests."""
        store.put(3, key=77, value=b"mixd")
        keys, values = store.get_batch()
        assert keys[3] == 77
        assert bytes(values[3]) == b"mixd"

    def test_negative_keys_roundtrip(self):
        s = EncryptedStore(b"k" * 32, num_slots=2, value_size=2)
        s.put_batch([-(2**61), -1], [b"ab", b"cd"])
        keys, values = s.get_batch()
        assert keys.tolist() == [-(2**61), -1]
        assert s.get(0) == (-(2**61), b"ab")

    def test_rewrites_produce_new_ciphertexts(self, store):
        before = bytes(store._host_blobs)
        keys, values = store.get_batch()
        store.put_batch(keys.tolist(), values)
        assert bytes(store._host_blobs) != before

    def test_unwritten_slot_rejected(self):
        s = EncryptedStore(b"k" * 32, num_slots=3, value_size=4)
        s.put(0, key=1, value=b"aaaa")
        s.put(2, key=2, value=b"cccc")
        with pytest.raises(IntegrityError, match="slot 1"):
            s.get_batch()

    def test_bit_flip_detected(self, store):
        store.put_batch(list(range(8)), [b"vvvv"] * 8)
        _, blob = store.host_ciphertext(5)
        store.host_tamper(5, blob[:-1] + bytes([blob[-1] ^ 1]))
        with pytest.raises(IntegrityError, match="digest mismatch"):
            store.get_batch()

    def test_rollback_detected(self, store):
        old = store.host_ciphertext(4)
        store.put_batch(list(range(8)), [b"flip"] * 8)
        store.host_rollback(4, old)
        with pytest.raises(IntegrityError, match="pinned nonce"):
            store.get_batch()

    def test_odd_length_blob_detected(self, store):
        store.host_tamper(6, b"short")
        with pytest.raises(IntegrityError, match="uniform slot size"):
            store.get_batch()

    def test_wrong_shapes_rejected(self, store):
        with pytest.raises(ValueError):
            store.put_batch([1, 2], [b"aaaa", b"bbbb"])
        with pytest.raises(CapacityError):
            store.put_batch(list(range(8)), [b"xx"] * 8)

    def test_batch_telemetry_counters(self, store):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        store.telemetry = telemetry
        store.put_batch(list(range(8)), [b"tttt"] * 8)
        store.get_batch()
        values = {
            (m.name, m.labels): m.value
            for m in telemetry.registry.metrics()
        }
        moved = 8 * store.slot_size
        assert values[("snoopy_aead_seal_batch_total", ())] == 1
        assert values[("snoopy_aead_open_batch_total", ())] == 1
        assert values[
            ("snoopy_store_bytes_moved_total", (("op", "seal"),))
        ] == moved
        assert values[
            ("snoopy_store_bytes_moved_total", (("op", "open"),))
        ] == moved
        # The batch read verified the whole contiguous buffer in one pass.
        assert values[("snoopy_store_verified_bytes_total", ())] == moved


class TestOutOfBandPickle:
    """Protocol-5 pickling ships buffers out of band and copies on rebuild."""

    def test_roundtrip_preserves_contents(self, store):
        import pickle

        clone = pickle.loads(pickle.dumps(store, protocol=5))
        for slot in range(8):
            assert clone.get(slot) == store.get(slot)

    def test_out_of_band_buffers_are_emitted(self, store):
        import pickle

        buffers = []
        pickle.dumps(store, protocol=5, buffer_callback=buffers.append)
        raw = sum(b.raw().nbytes for b in buffers)
        assert raw >= 8 * store.slot_size  # blobs ride out of band

    def test_rebuilt_store_does_not_alias_transport_memory(self, store):
        import pickle

        buffers = []
        payload = pickle.dumps(
            store, protocol=5, buffer_callback=buffers.append
        )
        # A stand-in for a shared-memory segment: the transport's own
        # copies of the out-of-band buffers.
        segment = [bytearray(b.raw()) for b in buffers]
        views = [memoryview(chunk) for chunk in segment]
        clone = pickle.loads(payload, buffers=views)
        # Scribble over the transport buffers, as a sender reusing its
        # segment for the next message would; the clone must own copies.
        for view in views:
            view[:] = b"\x00" * view.nbytes
        for slot in range(8):
            assert clone.get(slot) == store.get(slot)

    def test_legacy_protocol_still_works(self, store):
        import pickle

        clone = pickle.loads(pickle.dumps(store, protocol=4))
        assert clone.get(3) == store.get(3)
