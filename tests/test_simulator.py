"""Real-vs-ideal experiments (Appendix B), run as tests.

The adversary's distinguishing game, mechanized: execute the real
protocol on adversarially chosen requests, execute the simulator on
public information only, compare the traces.  Equality means the
distinguishing advantage is zero for the access-pattern channel.
"""

import random

import pytest

from repro.loadbalancer.batching import generate_batches
from repro.loadbalancer.matching import match_responses
from repro.oblivious.memory import AccessTrace, TracedMemory
from repro.security.simulator import (
    simulate_batching_trace,
    simulate_matching_trace,
    simulate_suboram_store_sequence,
)
from repro.suboram.suboram import SubOram
from repro.types import BatchEntry, OpType, Request

KEY = b"sharding-key-0123456789abcdef..."


class _Collector:
    def __init__(self):
        self.trace = AccessTrace()

    def __call__(self, items):
        return TracedMemory(items, trace=self.trace)


def adversarial_workloads(rng):
    """A few 'adversarially chosen' request batches of equal size R=18."""
    uniform = [
        Request(OpType.READ, k, seq=i)
        for i, k in enumerate(rng.sample(range(10**6), 18))
    ]
    all_same = [Request(OpType.READ, 7, seq=i) for i in range(18)]
    writes = [
        Request(OpType.WRITE, k, b"w", seq=i)
        for i, k in enumerate(rng.sample(range(10**6), 18))
    ]
    return [uniform, all_same, writes]


class TestRealVsIdealLoadBalancer:
    def test_batching_real_equals_ideal(self, rng):
        ideal = simulate_batching_trace(18, 3, KEY, 16)
        for workload in adversarial_workloads(rng):
            collector = _Collector()
            generate_batches(workload, 3, KEY, 16, mem_factory=collector)
            assert collector.trace == ideal

    def test_matching_real_equals_ideal(self, rng):
        ideal = simulate_matching_trace(18, 3, KEY, 16)
        for workload in adversarial_workloads(rng):
            batches, originals, _ = generate_batches(workload, 3, KEY, 16)
            responses = []
            for batch in batches:
                for entry in batch:
                    answered = entry.copy()
                    answered.value = b"real-secret-data"
                    responses.append(answered)
            collector = _Collector()
            match_responses(originals, responses, mem_factory=collector)
            assert collector.trace == ideal

    def test_ideal_depends_only_on_public_params(self):
        assert simulate_batching_trace(18, 3, KEY, 16) == (
            simulate_batching_trace(18, 3, KEY, 16)
        )
        assert simulate_batching_trace(18, 3, KEY, 16) != (
            simulate_batching_trace(19, 3, KEY, 16)
        )


class TestRealVsIdealSubOram:
    def test_store_sequence_real_equals_ideal(self, rng):
        ideal = simulate_suboram_store_sequence(30)
        for trial in range(2):
            suboram = SubOram(0, value_size=4, security_parameter=16)
            suboram.initialize({k: bytes([k]) * 4 for k in range(30)})
            log = []
            store = suboram.store
            orig_get, orig_put = store.get, store.put
            store.get = lambda slot, _o=orig_get: (log.append(("get", slot)), _o(slot))[1]
            store.put = lambda slot, key, value, _o=orig_put: (
                log.append(("put", slot)),
                _o(slot, key, value),
            )[1]
            keys = rng.sample(range(30), 7)
            batch = [
                BatchEntry(op=OpType.READ, key=k, is_dummy=False) for k in keys
            ]
            suboram.batch_access(batch)
            assert log == ideal


class TestHonestClientAmongAdversaries:
    """§B.7: one honest client's requests among adversarial clients."""

    def test_trace_hides_honest_clients_key(self, rng):
        """Fix the adversary's 17 requests; vary only the honest client's
        single read — the trace is identical, so the adversary (who also
        controls the cloud) learns nothing about the honest key."""
        adversarial = [
            Request(OpType.READ, k, client_id=666, seq=i)
            for i, k in enumerate(rng.sample(range(10**6), 17))
        ]
        traces = []
        for honest_key in (5, 99999):
            workload = adversarial + [
                Request(OpType.READ, honest_key, client_id=1, seq=0)
            ]
            collector = _Collector()
            generate_batches(workload, 3, KEY, 16, mem_factory=collector)
            traces.append(collector.trace)
        assert traces[0] == traces[1]

    def test_responses_routed_to_correct_clients(self, rng):
        """The client-id/seq routing that §B.7's multi-client extension
        requires: every client gets exactly its own answers."""
        import random as _random

        from repro.core.config import SnoopyConfig
        from repro.core.snoopy import Snoopy

        store = Snoopy(
            SnoopyConfig(num_suborams=2, value_size=4, security_parameter=16),
            rng=_random.Random(1),
        )
        store.initialize({k: bytes([k]) * 4 for k in range(20)})
        for client in (1, 2, 3):
            store.submit(Request(OpType.READ, client, client_id=client, seq=7))
        responses = store.run_epoch()
        for response in responses:
            assert response.key == response.client_id  # own answer only
            assert response.seq == 7
