"""Tests for the operator CLI and ASCII rendering tools."""

import pytest

from repro.tools.ascii import bar_chart, series_table
from repro.tools.cli import build_parser, main


class TestAscii:
    def test_bar_chart_scales(self):
        out = bar_chart([("a", 10.0), ("b", 5.0)], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_bar_chart_empty(self):
        assert bar_chart([]) == "(no data)"

    def test_bar_chart_zero_values(self):
        out = bar_chart([("a", 0.0)])
        assert "a" in out

    def test_series_table_aligned(self):
        out = series_table(["x", "y"], [(1, 2.5), (10, 20.0)])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "2.5" in lines[2]


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "cost-model profile" in out

    def test_plan(self, capsys):
        assert main(["plan", "--objects", "100000", "--throughput", "10000"]) == 0
        out = capsys.readouterr().out
        assert "load balancers" in out
        assert "monthly cost" in out

    def test_plan_budget_mode(self, capsys):
        assert (
            main(
                [
                    "plan",
                    "--objects", "100000",
                    "--throughput", "5000",
                    "--budget", "3000",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "min-latency" in out

    def test_demo(self, capsys):
        assert main(["demo", "--objects", "60", "--requests", "10"]) == 0
        out = capsys.readouterr().out
        assert "1 epoch(s) served 10 requests" in out
        assert "fault_stats" not in out

    def test_demo_with_faults(self, capsys):
        assert main([
            "demo", "--objects", "60", "--requests", "12",
            "--epochs", "4", "--faults", "11",
        ]) == 0
        out = capsys.readouterr().out
        assert "fault plan (seed 11)" in out
        assert "4 epoch(s) served 12 requests" in out
        assert "fault_stats:" in out
        assert "epochs_retried" in out

    def test_figures_single(self, capsys):
        assert main(["figures", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "Fig 3" in out
        assert "Fig 9a" not in out

    def test_figures_fig11b(self, capsys):
        assert main(["figures", "fig11b", "--objects", "500000"]) == 0
        out = capsys.readouterr().out
        assert "S=15" in out


class TestConfigFile:
    def test_roundtrip(self, tmp_path):
        from repro.core.config import SnoopyConfig
        from repro.tools.config_file import dump_spec, load_spec

        config = SnoopyConfig(num_load_balancers=3, num_suborams=15,
                              value_size=160)
        slo = {"num_objects": 2_000_000, "min_throughput": 90_000,
               "max_latency": 0.5}
        path = tmp_path / "spec.json"
        path.write_text(dump_spec(config, slo))
        loaded_config, loaded_slo = load_spec(path)
        assert loaded_config == config
        assert loaded_slo == slo

    def test_slo_only(self, tmp_path):
        from repro.tools.config_file import load_spec

        path = tmp_path / "spec.json"
        path.write_text('{"slo": {"num_objects": 100, "min_throughput": 10}}')
        config, slo = load_spec(path)
        assert config is None
        assert slo["num_objects"] == 100

    def test_rejects_unknown_fields(self, tmp_path):
        from repro.errors import ConfigurationError
        from repro.tools.config_file import load_spec

        path = tmp_path / "spec.json"
        path.write_text('{"deployment": {"bogus": 1}}')
        with pytest.raises(ConfigurationError, match="bogus"):
            load_spec(path)

    def test_rejects_invalid_json(self, tmp_path):
        from repro.errors import ConfigurationError
        from repro.tools.config_file import load_spec

        path = tmp_path / "spec.json"
        path.write_text("{nope")
        with pytest.raises(ConfigurationError, match="invalid JSON"):
            load_spec(path)

    def test_rejects_invalid_values_via_config(self, tmp_path):
        from repro.errors import ConfigurationError
        from repro.tools.config_file import load_spec

        path = tmp_path / "spec.json"
        path.write_text('{"deployment": {"num_suborams": 0}}')
        with pytest.raises(ConfigurationError):
            load_spec(path)


class TestPlanSpec:
    def test_plan_from_spec_file(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(
            '{"slo": {"num_objects": 100000, "min_throughput": 10000,'
            ' "max_latency": 1.0}}'
        )
        assert main(["plan", "--spec", str(path)]) == 0
        out = capsys.readouterr().out
        assert "load balancers" in out

    def test_plan_missing_args_without_spec(self):
        with pytest.raises(SystemExit):
            main(["plan"])


class TestApiDocs:
    def test_generate_covers_core_modules(self):
        from repro.tools.apidocs import generate

        text = generate()
        for fragment in (
            "repro.core.snoopy",
            "repro.oblivious.sort",
            "repro.analysis.balls_bins",
            "class Snoopy",
            "def batch_size",
        ):
            assert fragment in text

    def test_checked_in_copy_is_current(self):
        """docs/API.md must match the generator's output (regenerate with
        `python -m repro.tools.apidocs > docs/API.md`)."""
        import pathlib

        from repro.tools.apidocs import generate

        checked_in = (
            pathlib.Path(__file__).resolve().parent.parent / "docs" / "API.md"
        )
        assert checked_in.read_text().strip() == generate().strip()


class TestTraceView:
    def test_heatmap_and_strip(self):
        from repro.oblivious.memory import AccessTrace
        from repro.tools.traceview import diff_summary, heatmap, shade_strip

        trace = AccessTrace()
        for i in range(100):
            trace.record("R", i % 10)
        art = heatmap(trace, buckets=5)
        assert "#" in art
        strip = shade_strip(trace)
        assert strip and strip != "(empty)"

    def test_empty_trace(self):
        from repro.oblivious.memory import AccessTrace
        from repro.tools.traceview import heatmap, shade_strip

        assert heatmap(AccessTrace()) == "(empty trace)"
        assert shade_strip(AccessTrace()) == "(empty)"

    def test_diff_summary(self):
        from repro.oblivious.memory import AccessTrace
        from repro.tools.traceview import diff_summary

        a, b = AccessTrace(), AccessTrace()
        a.record("R", 1)
        b.record("R", 1)
        equal, _ = diff_summary(a, b)
        assert equal
        b.record("W", 2)
        equal, message = diff_summary(a, b)
        assert not equal and "length" in message
        a.record("W", 3)
        equal, message = diff_summary(a, b)
        assert not equal and "diverge" in message
