"""Tests for the query-log coordinated ORAM baseline."""

import random

import pytest

from repro.baselines.querylog import QueryLogOram


def make_oram(capacity=32, commit_every=6, seed=1):
    oram = QueryLogOram(capacity, commit_every=commit_every,
                        rng=random.Random(seed))
    oram.initialize({k: bytes([k]) for k in range(capacity)})
    return oram


class TestSemantics:
    def test_read(self):
        oram = make_oram()
        assert oram.read(5) == bytes([5])

    def test_write_then_read_immediately(self):
        """The log serves later requests before the commit lands."""
        oram = make_oram(commit_every=100)
        assert oram.write(5, b"x") == bytes([5])
        assert oram.read(5) == b"x"
        # The write is still only in the log.
        assert oram.commits == 0

    def test_commit_applies_latest_write(self):
        oram = make_oram(commit_every=3)
        oram.write(5, b"a")
        oram.write(5, b"b")
        oram.read(1)  # triggers commit
        assert oram.commits == 1
        assert oram.oram.read(5) == b"b"

    def test_randomized_against_model(self):
        rng = random.Random(2)
        oram = make_oram(capacity=24, commit_every=5, seed=3)
        model = {k: bytes([k]) for k in range(24)}
        for _ in range(300):
            key = rng.randrange(24)
            if rng.random() < 0.5:
                value = bytes([rng.randrange(256)])
                assert oram.write(key, value) == model[key]
                model[key] = value
            else:
                assert oram.read(key) == model[key]


class TestBottleneckStructure:
    def test_every_access_scans_the_log(self):
        oram = make_oram()
        for _ in range(10):
            oram.read(1)
        assert oram.log_scans == 10
        assert oram.appends == 10

    def test_pending_queries_coalesce_path_fetches(self):
        """A second request for a logged key is served from the log."""
        oram = make_oram(commit_every=100)
        before = oram.oram.accesses
        oram.read(7)
        first_fetch = oram.oram.accesses - before
        oram.read(7)  # coalesced
        assert oram.oram.accesses - before == first_fetch

    def test_commit_interval(self):
        oram = make_oram(commit_every=4)
        for i in range(12):
            oram.read(i % 8)
        assert oram.commits == 3
