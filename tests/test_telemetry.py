"""Unit tests for the telemetry package and its pipeline instrumentation.

Covers the three layers directly (registry, spans, sinks), the handle
semantics that make instrumentation safe across process boundaries and
atomic epoch copies, the kernel-trace bridge, and the end-to-end
instrumentation each deployment layer records.
"""

import copy
import json
import pickle
import random
import threading

import pytest

from repro.core.config import SnoopyConfig
from repro.core.deployment import DistributedSnoopy
from repro.core.faults import FaultEvent, FaultPlan
from repro.core.snoopy import Snoopy
from repro.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    resolve_telemetry,
    stage_breakdown,
)
from repro.telemetry.kernelbridge import TimedKernelTrace, flush_kernel_trace
from repro.telemetry.registry import MetricsRegistry, nearest_rank_percentile
from repro.telemetry.sinks import InMemorySink, JsonLinesSink, PrometheusTextSink
from repro.telemetry.spans import Tracer
from repro.types import OpType, Request


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", route="a")
        counter.inc()
        counter.inc(2)
        assert counter.value == 3
        with pytest.raises(ValueError):
            counter.inc(-1)

        gauge = registry.gauge("depth")
        gauge.set(7)
        gauge.inc(-2)
        assert gauge.value == 5

        hist = registry.histogram("latency_seconds")
        for sample in (0.3, 0.1, 0.2):
            hist.observe(sample)
        assert hist.count == 3
        assert hist.sum == pytest.approx(0.6)
        assert hist.mean == pytest.approx(0.2)
        assert hist.p50 == 0.2

    def test_same_name_labels_returns_same_instance(self):
        registry = MetricsRegistry()
        a = registry.counter("hits_total", kind="x")
        b = registry.counter("hits_total", kind="x")
        assert a is b
        c = registry.counter("hits_total", kind="y")
        assert c is not a

    def test_one_name_one_kind(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError):
            registry.histogram("thing")

    def test_find_and_histograms(self):
        registry = MetricsRegistry()
        registry.histogram("stage_seconds", stage="build").observe(1.0)
        registry.histogram("stage_seconds", stage="match").observe(2.0)
        assert registry.find("stage_seconds", stage="match").count == 1
        assert registry.find("stage_seconds", stage="nope") is None
        assert len(registry.histograms("stage_seconds")) == 2

    def test_public_snapshot_exposes_counts_not_values(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(4)
        registry.histogram("h_seconds").observe(0.123)
        public = registry.public_snapshot()
        assert public["c_total"] == 4
        assert public["h_seconds#count"] == 1
        # No timing values leak into the public view.
        assert not any(v == 0.123 for v in public.values())

    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("ops_total", op="sort").inc(2)
        registry.histogram("dur_seconds").observe(0.5)
        text = registry.prometheus_text()
        assert '# TYPE ops_total counter' in text
        assert 'ops_total{op="sort"} 2' in text
        assert '# TYPE dur_seconds summary' in text
        assert 'dur_seconds{quantile="0.5"}' in text
        assert 'dur_seconds_count 1' in text
        public = registry.prometheus_text(public_only=True)
        assert 'quantile' not in public
        assert 'dur_seconds_sum' not in public
        assert 'dur_seconds_count 1' in public

    def test_merge_combines_registries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n_total").inc(1)
        b.counter("n_total").inc(2)
        b.histogram("t_seconds").observe(1.5)
        a.merge(b)
        assert a.find("n_total").value == 3
        assert a.find("t_seconds").count == 1

    def test_thread_safety_under_contention(self):
        registry = MetricsRegistry()

        def work():
            for _ in range(1000):
                registry.counter("contended_total").inc()
                registry.histogram("contended_seconds").observe(0.001)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.find("contended_total").value == 8000
        assert registry.find("contended_seconds").count == 8000


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------
class TestTracer:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("epoch", epoch=1):
            with tracer.span("stage", stage="build"):
                pass
            with tracer.span("stage", stage="execute"):
                pass
        [root] = tracer.roots
        assert root.name == "epoch"
        assert root.attrs == {"epoch": 1}
        assert [c.attrs["stage"] for c in root.children] == [
            "build", "execute",
        ]
        assert root.duration >= sum(c.duration for c in root.children) >= 0
        assert tracer.name_counts() == {"epoch": 1, "stage": 2}

    def test_per_thread_stacks(self):
        tracer = Tracer()

        def worker():
            with tracer.span("worker-span"):
                pass

        with tracer.span("main-span"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        names = sorted(root.name for root in tracer.roots)
        # The worker's span is a root of its own thread, not a child of
        # the main thread's open span.
        assert names == ["main-span", "worker-span"]

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.roots == []


# ---------------------------------------------------------------------------
# Sinks
# ---------------------------------------------------------------------------
class TestSinks:
    def test_in_memory_sink(self):
        telemetry = Telemetry(sinks=[InMemorySink()])
        telemetry.counter("a_total").inc()
        with telemetry.span("s"):
            pass
        telemetry.flush()
        [sink] = telemetry.sinks
        assert sink.flush_count == 1
        assert any(row["name"] == "a_total" for row in sink.metric_rows)
        assert [tree["name"] for tree in sink.span_trees] == ["s"]

    def test_json_lines_sink(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        telemetry = Telemetry(sinks=[JsonLinesSink(str(path))])
        telemetry.counter("a_total").inc(2)
        with telemetry.span("epoch", epoch=1):
            pass
        telemetry.flush()
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        kinds = {row["kind"] for row in rows}
        assert "counter" in kinds and "span" in kinds
        [span_row] = [r for r in rows if r["kind"] == "span"]
        assert span_row["name"] == "epoch"

    def test_prometheus_text_sink_replaces_file(self, tmp_path):
        path = tmp_path / "metrics.prom"
        telemetry = Telemetry(sinks=[PrometheusTextSink(str(path))])
        telemetry.counter("a_total").inc()
        telemetry.flush()
        first = path.read_text()
        assert "a_total 1" in first
        telemetry.counter("a_total").inc()
        telemetry.flush()
        assert "a_total 2" in path.read_text()  # replaced, not appended


# ---------------------------------------------------------------------------
# Handle semantics
# ---------------------------------------------------------------------------
class TestHandleSemantics:
    def test_resolve_telemetry(self):
        telemetry = Telemetry()
        assert resolve_telemetry(telemetry) is telemetry
        assert resolve_telemetry(None) is NULL_TELEMETRY

    def test_live_handle_pickles_to_null(self):
        telemetry = Telemetry()
        revived = pickle.loads(pickle.dumps(telemetry))
        assert revived is NULL_TELEMETRY

    def test_deepcopy_returns_same_handle(self):
        telemetry = Telemetry()
        assert copy.deepcopy(telemetry) is telemetry
        assert copy.deepcopy(NULL_TELEMETRY) is NULL_TELEMETRY

    def test_null_telemetry_is_inert(self):
        null = NullTelemetry()
        null.counter("x").inc()
        null.gauge("y").set(1)
        null.histogram("z").observe(1)
        with null.span("s"):
            with null.time("t"):
                pass
        null.add_sink(object())
        null.flush()
        assert null.counter("x") is null.histogram("z")
        assert not null.enabled

    def test_timer_records_elapsed(self):
        telemetry = Telemetry()
        with telemetry.time("t_seconds", stage="x") as timer:
            pass
        assert timer.elapsed >= 0
        assert telemetry.registry.find("t_seconds", stage="x").count == 1


# ---------------------------------------------------------------------------
# Kernel bridge
# ---------------------------------------------------------------------------
class TestKernelBridge:
    def test_flush_counts_ops_and_level_timings(self):
        trace = TimedKernelTrace()
        trace.record("sort", 8)
        trace.record("sort_level", 0)
        trace.record("sort_level", 1)
        trace.record("compact", 8)
        registry = MetricsRegistry()
        flush_kernel_trace(registry, trace, "numpy")
        assert registry.find(
            "kernel_ops_total", kernel="numpy", op="sort"
        ).value == 1
        assert registry.find(
            "kernel_ops_total", kernel="numpy", op="sort_level"
        ).value == 2
        # Inter-event deltas: one per level event.
        assert registry.find(
            "kernel_level_seconds", kernel="numpy", op="sort"
        ).count == 2


# ---------------------------------------------------------------------------
# Pipeline instrumentation, end to end
# ---------------------------------------------------------------------------
def _run_epochs(backend, *, kernel="python", epochs=2, plan=None,
                max_attempts=1, distributed=False):
    telemetry = Telemetry()
    config = SnoopyConfig(
        num_load_balancers=2,
        num_suborams=2,
        value_size=8,
        security_parameter=16,
        execution_backend=backend,
        kernel=kernel,
        epoch_max_attempts=max_attempts,
        telemetry=telemetry,
    )
    cls = DistributedSnoopy if distributed else Snoopy
    rng = random.Random(4)
    with cls(config, rng=random.Random(4), fault_plan=plan) as store:
        store.initialize({k: bytes([k]) * 8 for k in range(24)})
        for _ in range(epochs):
            for i in range(6):
                store.submit(Request(OpType.READ, rng.randrange(24), seq=i))
            store.run_epoch()
    return telemetry


class TestPipelineInstrumentation:
    @pytest.mark.parametrize("backend", ["serial", "thread:2", "process:2"])
    def test_epoch_stage_histograms(self, backend):
        telemetry = _run_epochs(backend)
        stages = {
            dict(h.labels)["stage"]: h.count
            for h in telemetry.registry.histograms(
                "snoopy_epoch_stage_seconds"
            )
        }
        assert stages == {
            "collect": 2, "build": 2, "execute": 2, "match": 2, "respond": 2,
        }
        assert telemetry.registry.find("snoopy_epoch_seconds").count == 2
        assert telemetry.tracer.name_counts()["epoch"] == 2

    def test_lb_stages_and_kernel_ops(self):
        telemetry = _run_epochs("serial", kernel="numpy")
        lb_stages = {
            dict(h.labels)["stage"]
            for h in telemetry.registry.histograms("snoopy_lb_stage_seconds")
        }
        assert lb_stages == {"route", "pad", "sort", "dedupe"}
        ops = {
            dict(c.labels)["op"]
            for c in telemetry.registry.metrics()
            if c.name == "kernel_ops_total"
        }
        assert {"sort", "compact", "scan"} <= ops
        assert telemetry.registry.find(
            "kernel_level_seconds", kernel="numpy", op="sort"
        ).count > 0

    def test_suboram_phases_on_shared_state_backends(self):
        telemetry = _run_epochs("thread:2")
        phases = {
            dict(h.labels)["phase"]: h.count
            for h in telemetry.registry.histograms(
                "snoopy_suboram_phase_seconds"
            )
        }
        # 2 subORAMs x 2 LB batches x 2 epochs = 8 per phase.
        assert phases == {"table": 8, "scan": 8, "extract": 8}

    def test_thread_backend_queue_and_run_timings(self):
        telemetry = _run_epochs("thread:2")
        queue = telemetry.registry.find(
            "exec_task_queue_seconds", backend="thread"
        )
        run = telemetry.registry.find(
            "exec_task_run_seconds", backend="thread"
        )
        assert queue is not None and run is not None
        assert queue.count == run.count > 0

    def test_process_backend_totals_and_state_cache(self):
        telemetry = _run_epochs("process:2")
        assert telemetry.registry.find(
            "exec_task_total_seconds", backend="process"
        ).count > 0
        cache = {
            dict(c.labels)["event"]: c.value
            for c in telemetry.registry.metrics()
            if c.name == "exec_state_cache_total"
        }
        # First epoch full-ships both subORAMs; the second hits the cache.
        assert cache["full_ship"] == 2
        assert cache["hit"] == 2

    def test_fault_and_retry_counters(self):
        plan = FaultPlan([
            FaultEvent(epoch=2, kind="worker_crash", unit=1),
        ])
        telemetry = _run_epochs("thread:2", plan=plan, max_attempts=3)
        registry = telemetry.registry
        assert registry.find(
            "fault_injected_total", kind="worker_crash"
        ).value == 1
        assert registry.find(
            "retry_epochs_failed_total", stage="execute"
        ).value == 1
        assert registry.find("retry_epochs_retried_total").value == 1

    def test_distributed_deployment_is_instrumented(self):
        telemetry = _run_epochs("serial", distributed=True)
        assert telemetry.registry.find("snoopy_epochs_total").value == 2
        assert telemetry.registry.find("snoopy_requests_total").value == 12
        assert telemetry.tracer.name_counts()["epoch"] == 2

    def test_stage_breakdown_rows(self):
        telemetry = _run_epochs("serial")
        rows = stage_breakdown(telemetry.registry)
        assert [row["stage"] for row in rows] == [
            "collect", "build", "execute", "match", "respond",
        ]
        for row in rows:
            assert row["count"] == 2
            assert row["total_s"] >= row["mean_s"] >= 0

    def test_telemetry_off_records_nothing(self):
        config = SnoopyConfig(
            num_load_balancers=1, num_suborams=2, value_size=8,
            security_parameter=16,
        )
        with Snoopy(config, rng=random.Random(0)) as store:
            store.initialize({k: bytes(8) for k in range(10)})
            store.submit(Request(OpType.READ, 3))
            store.run_epoch()
            assert store.telemetry is NULL_TELEMETRY


# ---------------------------------------------------------------------------
# sim.metrics unification
# ---------------------------------------------------------------------------
class TestLatencyStatsUnification:
    def test_latency_stats_and_histogram_agree(self):
        from repro.sim.metrics import LatencyStats

        rng = random.Random(17)
        samples = [rng.random() for _ in range(257)]
        stats = LatencyStats()
        stats.extend(samples)
        registry = MetricsRegistry()
        hist = registry.histogram("x_seconds")
        for sample in samples:
            hist.observe(sample)
        for p in (0, 1, 50, 90, 95, 99, 100):
            assert stats.percentile(p) == hist.percentile(p)
        assert stats.p50 == hist.p50
        assert stats.p95 == hist.p95
        assert stats.p99 == hist.p99

    def test_both_use_the_shared_nearest_rank(self):
        from repro.sim.metrics import LatencyStats

        stats = LatencyStats()
        stats.extend([3.0, 1.0, 2.0])
        assert stats.percentile(50) == nearest_rank_percentile(
            [1.0, 2.0, 3.0], 50
        )
        assert LatencyStats().percentile(95) == 0.0
