"""Parallel backends must be byte-for-byte equivalent to serial execution.

The tentpole guarantee of the execution engine: switching backends changes
wall-clock, never results.  These tests run identical seeded workloads
through ``serial``, ``thread``, and ``process`` backends and require

* identical responses (same order, same bytes),
* identical per-subORAM memory traces — each subORAM sees the same
  batches in the same fixed balancer order and touches its encrypted
  store's slots in the same sequence,
* linearizable histories under the thread backend (Appendix C survives
  real concurrency).

The drivers (tracing subORAMs, seeded workload, store builder) are the
shared ones from :mod:`tests.harness`.
"""

import random

import pytest

from repro.core.client import Client
from repro.core.config import SnoopyConfig
from repro.core.linearizability import History, check_snoopy_history
from repro.core.snoopy import Snoopy
from repro.crypto.keys import KeyChain

from tests.harness import (
    access_traces,
    build_store,
    run_workload,
    seeded_workload,
    tracing_factory,
)

MASTER = b"equivalence-test-master-key-....."[:32]
BACKENDS = ["serial", "thread:4", "process:2"]
NUM_KEYS = 60


def equivalence_store(backend_spec):
    """One deployment with fixed keys; identical across backend specs."""
    return build_store(
        backend_spec,
        master=MASTER,
        objects={k: bytes([k % 256]) * 8 for k in range(NUM_KEYS)},
        suboram_factory=tracing_factory,
        rng_seed=42,
    )


class TestBackendEquivalence:
    @pytest.fixture(scope="class")
    def runs(self):
        """The same workload executed once under each backend."""
        epochs = seeded_workload(3, 12, seed=99, num_keys=NUM_KEYS)
        results = {}
        for spec in BACKENDS:
            with equivalence_store(spec) as store:
                responses, tickets = run_workload(store, epochs)
                results[spec] = (responses, access_traces(store), tickets)
        return results

    @pytest.mark.parametrize("spec", BACKENDS[1:])
    def test_responses_identical(self, runs, spec):
        serial_responses = runs["serial"][0]
        assert runs[spec][0] == serial_responses

    @pytest.mark.parametrize("spec", BACKENDS[1:])
    def test_memory_traces_identical(self, runs, spec):
        serial_traces = runs["serial"][1]
        assert runs[spec][1] == serial_traces
        # Sanity: the traces are non-trivial.
        assert all(len(trace) > 0 for trace in serial_traces)

    @pytest.mark.parametrize("spec", BACKENDS)
    def test_tickets_resolve_with_matching_responses(self, runs, spec):
        responses_per_epoch, _, tickets = runs[spec]
        flat = [r for epoch in responses_per_epoch for r in epoch]
        assert len(tickets) == len(flat)
        for ticket in tickets:
            assert ticket.done
            assert ticket.result() in flat

    def test_process_backend_state_carries_across_epochs(self):
        """Writes applied in a worker process persist into later epochs."""
        config = SnoopyConfig(
            num_load_balancers=2,
            num_suborams=2,
            value_size=4,
            security_parameter=16,
            execution_backend="process:2",
        )
        with Snoopy(
            config, keychain=KeyChain(master=MASTER), rng=random.Random(1)
        ) as store:
            store.initialize({k: bytes(4) for k in range(20)})
            store.write(7, b"AAAA")
            assert store.read(7) == b"AAAA"


class TestLinearizabilityUnderThreads:
    @pytest.mark.parametrize("spec", ["thread:4", "process:2"])
    def test_random_history_linearizable(self, spec):
        """Appendix C's argument must survive a concurrent engine."""
        rng = random.Random(13)
        config = SnoopyConfig(
            num_load_balancers=3,
            num_suborams=3,
            value_size=4,
            security_parameter=16,
            execution_backend=spec,
        )
        with Snoopy(config, rng=random.Random(3)) as store:
            initial = {k: bytes([k]) * 4 for k in range(15)}
            store.initialize(dict(initial))
            clients = [Client(store, client_id=i) for i in range(4)]

            for _ in range(10):
                for client in clients:
                    for _ in range(rng.randrange(3)):
                        key = rng.randrange(15)
                        if rng.random() < 0.5:
                            client.submit_write(
                                key, bytes([rng.randrange(256)]) * 4
                            )
                        else:
                            client.submit_read(key)
                responses = store.run_epoch()
                for client in clients:
                    client.complete(responses)

            operations = [o for c in clients for o in c.history]
            assert operations, "history should be non-empty"
            check_snoopy_history(
                History(initial=initial, operations=operations)
            )
