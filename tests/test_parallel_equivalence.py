"""Parallel backends must be byte-for-byte equivalent to serial execution.

The tentpole guarantee of the execution engine: switching backends changes
wall-clock, never results.  These tests run identical seeded workloads
through ``serial``, ``thread``, and ``process`` backends and require

* identical responses (same order, same bytes),
* identical per-subORAM memory traces — each subORAM sees the same
  batches in the same fixed balancer order and touches its encrypted
  store's slots in the same sequence,
* linearizable histories under the thread backend (Appendix C survives
  real concurrency).
"""

import random

import pytest

from repro.core.client import Client
from repro.core.config import SnoopyConfig
from repro.core.linearizability import History, check_snoopy_history
from repro.core.snoopy import Snoopy
from repro.crypto.keys import KeyChain
from repro.suboram.store import EncryptedStore
from repro.suboram.suboram import SubOram
from repro.types import OpType, Request

MASTER = b"equivalence-test-master-key-....."[:32]
BACKENDS = ["serial", "thread:4", "process:2"]


class TracingStore(EncryptedStore):
    """An encrypted store that logs every slot access.

    The log rides on the instance, so under a process backend it is
    pickled to the worker, extended there, and shipped back with the
    subORAM — making traces comparable across all backends.
    """

    def __init__(self, encryption_key, num_slots, value_size):
        super().__init__(encryption_key, num_slots, value_size)
        self.access_log = []

    def get(self, slot):
        """Log a read access, then delegate."""
        self.access_log.append(("R", slot))
        return super().get(slot)

    def put(self, slot, key, value):
        """Log a write access, then delegate."""
        self.access_log.append(("W", slot))
        super().put(slot, key, value)


class TracingSubOram(SubOram):
    """A subORAM whose encrypted store records its slot-access trace."""

    def initialize(self, objects):
        """Load the partition into a tracing store (log starts empty)."""
        super().initialize(objects)
        tracing = TracingStore(
            self._keychain.subkey(f"suboram/{self.suboram_id}/storage"),
            num_slots=self._store.num_slots,
            value_size=self.value_size,
        )
        for slot in range(self._store.num_slots):
            key, value = self._store.get(slot)
            tracing.put(slot, key, value)
        tracing.access_log.clear()
        self._store = tracing


def tracing_factory(suboram_id, config, keychain):
    """suboram_factory building trace-recording subORAMs."""
    return TracingSubOram(
        suboram_id=suboram_id,
        value_size=config.value_size,
        keychain=keychain,
        security_parameter=config.security_parameter,
    )


def build_store(backend_spec):
    """One deployment with fixed keys; identical across backend specs."""
    config = SnoopyConfig(
        num_load_balancers=2,
        num_suborams=3,
        value_size=8,
        security_parameter=16,
        execution_backend=backend_spec,
    )
    store = Snoopy(
        config,
        keychain=KeyChain(master=MASTER),
        rng=random.Random(42),
        suboram_factory=tracing_factory,
    )
    store.initialize({k: bytes([k % 256]) * 8 for k in range(60)})
    return store


def seeded_workload(num_epochs=3, per_epoch=12, seed=99):
    """A deterministic multi-epoch schedule of reads and writes."""
    rng = random.Random(seed)
    epochs = []
    for _ in range(num_epochs):
        requests = []
        for i in range(per_epoch):
            key = rng.randrange(60)
            balancer = rng.randrange(2)
            if rng.random() < 0.5:
                requests.append(
                    (Request(OpType.WRITE, key, bytes([i]) * 8, seq=i), balancer)
                )
            else:
                requests.append((Request(OpType.READ, key, seq=i), balancer))
        epochs.append(requests)
    return epochs


def run_workload(store, epochs):
    """Drive the workload; returns (responses per epoch, traces, tickets)."""
    all_responses = []
    tickets = []
    for requests in epochs:
        for request, balancer in requests:
            tickets.append(store.submit(request, load_balancer=balancer))
        all_responses.append(store.run_epoch())
    traces = [list(s.store.access_log) for s in store.suborams]
    return all_responses, traces, tickets


class TestBackendEquivalence:
    @pytest.fixture(scope="class")
    def runs(self):
        """The same workload executed once under each backend."""
        epochs = seeded_workload()
        results = {}
        for spec in BACKENDS:
            with build_store(spec) as store:
                results[spec] = run_workload(store, epochs)
        return results

    @pytest.mark.parametrize("spec", BACKENDS[1:])
    def test_responses_identical(self, runs, spec):
        serial_responses = runs["serial"][0]
        assert runs[spec][0] == serial_responses

    @pytest.mark.parametrize("spec", BACKENDS[1:])
    def test_memory_traces_identical(self, runs, spec):
        serial_traces = runs["serial"][1]
        assert runs[spec][1] == serial_traces
        # Sanity: the traces are non-trivial.
        assert all(len(trace) > 0 for trace in serial_traces)

    @pytest.mark.parametrize("spec", BACKENDS)
    def test_tickets_resolve_with_matching_responses(self, runs, spec):
        responses_per_epoch, _, tickets = runs[spec]
        flat = [r for epoch in responses_per_epoch for r in epoch]
        assert len(tickets) == len(flat)
        for ticket in tickets:
            assert ticket.done
            assert ticket.result() in flat

    def test_process_backend_state_carries_across_epochs(self):
        """Writes applied in a worker process persist into later epochs."""
        config = SnoopyConfig(
            num_load_balancers=2,
            num_suborams=2,
            value_size=4,
            security_parameter=16,
            execution_backend="process:2",
        )
        with Snoopy(
            config, keychain=KeyChain(master=MASTER), rng=random.Random(1)
        ) as store:
            store.initialize({k: bytes(4) for k in range(20)})
            store.write(7, b"AAAA")
            assert store.read(7) == b"AAAA"


class TestLinearizabilityUnderThreads:
    @pytest.mark.parametrize("spec", ["thread:4", "process:2"])
    def test_random_history_linearizable(self, spec):
        """Appendix C's argument must survive a concurrent engine."""
        rng = random.Random(13)
        config = SnoopyConfig(
            num_load_balancers=3,
            num_suborams=3,
            value_size=4,
            security_parameter=16,
            execution_backend=spec,
        )
        with Snoopy(config, rng=random.Random(3)) as store:
            initial = {k: bytes([k]) * 4 for k in range(15)}
            store.initialize(dict(initial))
            clients = [Client(store, client_id=i) for i in range(4)]

            for _ in range(10):
                for client in clients:
                    for _ in range(rng.randrange(3)):
                        key = rng.randrange(15)
                        if rng.random() < 0.5:
                            client.submit_write(
                                key, bytes([rng.randrange(256)]) * 4
                            )
                        else:
                            client.submit_read(key)
                responses = store.run_epoch()
                for client in clients:
                    client.complete(responses)

            operations = [o for c in clients for o in c.history]
            assert operations, "history should be non-empty"
            check_snoopy_history(
                History(initial=initial, operations=operations)
            )
