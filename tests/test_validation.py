"""Unit tests for repro.utils.validation."""

import pytest

from repro.errors import ConfigurationError
from repro.utils.validation import require, require_positive


def test_require_passes():
    require(True, "never raised")


def test_require_raises_with_message():
    with pytest.raises(ConfigurationError, match="bad thing"):
        require(False, "bad thing")


def test_require_positive_accepts():
    require_positive(1, "x")
    require_positive(0.5, "x")


@pytest.mark.parametrize("value", [0, -1, -0.5])
def test_require_positive_rejects(value):
    with pytest.raises(ConfigurationError, match="x must be positive"):
        require_positive(value, "x")
