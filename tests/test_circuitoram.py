"""Tests for the Circuit ORAM baseline."""

import random

import pytest

from repro.baselines.circuitoram import CircuitOram


class TestBasics:
    def test_write_then_read(self):
        oram = CircuitOram(16, rng=random.Random(1))
        oram.write(3, b"x")
        assert oram.read(3) == b"x"

    def test_write_returns_prior(self):
        oram = CircuitOram(16, rng=random.Random(1))
        assert oram.write(3, b"a") is None
        assert oram.write(3, b"b") == b"a"

    def test_missing_key(self):
        oram = CircuitOram(16, rng=random.Random(1))
        assert oram.read(9) is None

    def test_initialize(self):
        oram = CircuitOram(32, rng=random.Random(2))
        oram.initialize({k: bytes([k]) for k in range(32)})
        for k in range(32):
            assert oram.read(k) == bytes([k])


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("capacity", [8, 64, 200])
    def test_matches_dict(self, capacity):
        rng = random.Random(capacity)
        oram = CircuitOram(capacity, rng=random.Random(capacity + 1))
        model = {}
        for _ in range(1500):
            key = rng.randrange(capacity)
            if rng.random() < 0.5:
                value = bytes([rng.randrange(256)])
                assert oram.write(key, value) == model.get(key)
                model[key] = value
            else:
                assert oram.read(key) == model.get(key)


class TestCircuitOramStructure:
    def test_two_evictions_per_access(self):
        oram = CircuitOram(64, rng=random.Random(3))
        oram.read(1)
        oram.read(2)
        assert oram.evictions == 4

    def test_constant_ish_stash(self):
        """Circuit ORAM's signature: O(1) stash occupancy w.h.p."""
        rng = random.Random(4)
        oram = CircuitOram(256, rng=random.Random(5))
        oram.initialize({k: bytes([k % 256]) for k in range(256)})
        worst = 0
        for _ in range(3000):
            oram.access(rng.randrange(256))
            worst = max(worst, oram.stash_size)
        assert worst <= 12, f"stash grew to {worst}"

    def test_bucket_capacity_respected(self):
        rng = random.Random(6)
        oram = CircuitOram(64, rng=random.Random(7))
        oram.initialize({k: bytes([k]) for k in range(64)})
        for _ in range(500):
            oram.access(rng.randrange(64))
        assert all(len(b) <= oram.bucket_size for b in oram._buckets)

    def test_eviction_order_deterministic(self):
        a = CircuitOram(32, rng=random.Random(8))
        b = CircuitOram(32, rng=random.Random(9))
        leaves_a = [a._reverse_lexicographic_leaf(i) for i in range(16)]
        leaves_b = [b._reverse_lexicographic_leaf(i) for i in range(16)]
        assert leaves_a == leaves_b  # public schedule, rng-independent
