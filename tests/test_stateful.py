"""Hypothesis stateful testing: Snoopy as a linearizable key-value store.

A RuleBasedStateMachine drives a live deployment with randomized
single-balancer epochs (reads, writes, mixed batches, duplicates) and
checks every response against a model dictionary.  Hypothesis shrinks any
failing command sequence to a minimal reproducer.
"""

import random

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core.config import SnoopyConfig
from repro.core.snoopy import Snoopy
from repro.types import OpType, Request

KEYS = st.integers(min_value=0, max_value=19)
VALUES = st.binary(min_size=4, max_size=4)


class SnoopyMachine(RuleBasedStateMachine):
    """Model-based test: every epoch must agree with a dict."""

    @initialize()
    def setup(self):
        self.store = Snoopy(
            SnoopyConfig(
                num_load_balancers=1,
                num_suborams=2,
                value_size=4,
                security_parameter=16,
            ),
            rng=random.Random(0),
        )
        self.model = {k: bytes([k]) * 4 for k in range(20)}
        self.store.initialize(dict(self.model))
        self.epochs = 0

    @rule(key=KEYS)
    def read(self, key):
        assert self.store.read(key) == self.model[key]
        self.epochs += 1

    @rule(key=KEYS, value=VALUES)
    def write(self, key, value):
        assert self.store.write(key, value) == self.model[key]
        self.model[key] = value
        self.epochs += 1

    @rule(ops=st.lists(st.tuples(KEYS, st.one_of(st.none(), VALUES)),
                       min_size=1, max_size=6))
    def mixed_epoch(self, ops):
        requests = []
        writes = {}
        for seq, (key, maybe_value) in enumerate(ops):
            if maybe_value is None:
                requests.append(Request(OpType.READ, key, seq=seq))
            else:
                requests.append(Request(OpType.WRITE, key, maybe_value, seq=seq))
                writes[key] = maybe_value  # later write wins
        responses = self.store.batch(requests)
        for response in responses:
            assert response.value == self.model[response.key]
        self.model.update(writes)
        self.epochs += 1

    @invariant()
    def counter_tracks_epochs(self):
        if hasattr(self, "store"):
            assert self.store.counter.value == self.epochs


TestSnoopyStateful = SnoopyMachine.TestCase
TestSnoopyStateful.settings = settings(
    max_examples=12, stateful_step_count=12, deadline=None
)
