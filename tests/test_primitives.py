"""Unit tests for the oblivious compare-and-set/swap operators."""

from repro.oblivious.memory import TracedMemory
from repro.oblivious.primitives import (
    and_bit,
    eq_bit,
    lt_bit,
    not_bit,
    o_counter_increment,
    o_select,
    ocmp_set,
    ocmp_set_value,
    ocmp_swap,
    or_bit,
)


class TestOSelect:
    def test_selects(self):
        assert o_select(0, "a", "b") == "a"
        assert o_select(1, "a", "b") == "b"

    def test_preserves_identity(self):
        x, y = object(), object()
        assert o_select(1, x, y) is y


class TestOcmpSwap:
    def test_swaps_when_set(self):
        mem = [1, 2]
        ocmp_swap(mem, 1, 0, 1)
        assert mem == [2, 1]

    def test_noop_when_clear(self):
        mem = [1, 2]
        ocmp_swap(mem, 0, 0, 1)
        assert mem == [1, 2]

    def test_trace_independent_of_condition(self):
        t0 = TracedMemory([1, 2])
        t1 = TracedMemory([1, 2])
        ocmp_swap(t0, 0, 0, 1)
        ocmp_swap(t1, 1, 0, 1)
        assert t0.trace == t1.trace


class TestOcmpSet:
    def test_sets_when_set(self):
        mem = [1, 2]
        ocmp_set(mem, 1, 0, 1)
        assert mem == [2, 2]

    def test_noop_when_clear(self):
        mem = [1, 2]
        ocmp_set(mem, 0, 0, 1)
        assert mem == [1, 2]

    def test_trace_independent_of_condition(self):
        t0 = TracedMemory([1, 2])
        t1 = TracedMemory([1, 2])
        ocmp_set(t0, 0, 0, 1)
        ocmp_set(t1, 1, 0, 1)
        assert t0.trace == t1.trace

    def test_set_value_variant(self):
        mem = [1]
        ocmp_set_value(mem, 1, 0, 9)
        assert mem == [9]
        ocmp_set_value(mem, 0, 0, 7)
        assert mem == [9]


class TestBitHelpers:
    def test_eq_bit(self):
        assert eq_bit(3, 3) == 1
        assert eq_bit(3, 4) == 0

    def test_lt_bit(self):
        assert lt_bit(1, 2) == 1
        assert lt_bit(2, 2) == 0

    def test_logic(self):
        assert and_bit(1, 1) == 1 and and_bit(1, 0) == 0
        assert or_bit(0, 1) == 1 and or_bit(0, 0) == 0
        assert not_bit(0) == 1 and not_bit(1) == 0

    def test_counter(self):
        assert o_counter_increment(5, 1) == 6
        assert o_counter_increment(5, 0) == 5
