"""Tests for the TaoStore-lite baseline."""

import random

import pytest

from repro.baselines.obladi import ObladiProxy
from repro.baselines.taostore import TaoStoreProxy
from repro.types import OpType, Request


def make_proxy(capacity=32, flush_every=8, seed=1):
    proxy = TaoStoreProxy(capacity, flush_every=flush_every,
                          rng=random.Random(seed))
    proxy.initialize({k: bytes([k]) for k in range(capacity)})
    return proxy


class TestSemantics:
    def test_read(self):
        proxy = make_proxy()
        assert proxy.read(5) == bytes([5])

    def test_write_returns_prior(self):
        proxy = make_proxy()
        assert proxy.write(5, b"a") == bytes([5])
        assert proxy.write(5, b"b") == b"a"

    def test_read_your_writes_immediately(self):
        """Unlike Obladi's delayed visibility, TaoStore requests see all
        earlier requests' effects (it processes immediately, §10)."""
        proxy = make_proxy(flush_every=100)  # no flush in between
        proxy.write(5, b"new")
        assert proxy.read(5) == b"new"

    def test_contrast_with_obladi_visibility(self):
        tao = make_proxy(flush_every=100)
        obladi = ObladiProxy(32, batch_size=4, rng=random.Random(2))
        obladi.initialize({k: bytes([k]) for k in range(32)})

        requests = [
            Request(OpType.WRITE, 5, b"new", seq=0),
            Request(OpType.READ, 5, seq=1),
        ]
        tao_read = tao.batch(list(requests))[1].value
        obladi_read = obladi.batch(list(requests))[1].value
        assert tao_read == b"new"  # immediate
        assert obladi_read == bytes([5])  # batch-start

    def test_randomized_against_model(self):
        rng = random.Random(3)
        proxy = make_proxy(capacity=24, flush_every=5, seed=4)
        model = {k: bytes([k]) for k in range(24)}
        for _ in range(300):
            key = rng.randrange(24)
            if rng.random() < 0.5:
                value = bytes([rng.randrange(256)])
                assert proxy.write(key, value) == model[key]
                model[key] = value
            else:
                assert proxy.read(key) == model[key]


class TestProxyStructure:
    def test_flush_writes_back(self):
        proxy = make_proxy(flush_every=3)
        proxy.write(1, b"x")
        proxy.write(2, b"y")
        proxy.write(3, b"z")  # triggers flush
        assert proxy._fresh == {}
        assert proxy.oram.read(1) == b"x"

    def test_paths_coalesced_for_hot_key(self):
        """Repeated requests between flushes reuse the cached subtree."""
        proxy = make_proxy(flush_every=100)
        proxy.read(7)
        fetched = proxy.paths_fetched
        proxy.read(7)  # same fresh entry? -- no, read moved the block.
        proxy.write(7, b"v")
        proxy.read(7)  # now fresh: no new fetch for the cached path
        assert proxy.paths_fetched <= fetched + 2

    def test_sequencer_counts_every_request(self):
        proxy = make_proxy()
        for _ in range(10):
            proxy.read(1)
        assert proxy.sequenced == 10
