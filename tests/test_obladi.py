"""Tests for the Obladi-lite trusted-proxy baseline."""

import random

import pytest

from repro.baselines.obladi import ObladiProxy
from repro.types import OpType, Request


def make_proxy(capacity=32, batch_size=10, seed=1):
    proxy = ObladiProxy(capacity, batch_size=batch_size, rng=random.Random(seed))
    proxy.initialize({k: bytes([k]) for k in range(capacity)})
    return proxy


class TestSemantics:
    def test_read(self):
        proxy = make_proxy()
        [resp] = proxy.batch([Request(OpType.READ, 5, seq=0)])
        assert resp.value == bytes([5])

    def test_write_visible_next_batch(self):
        proxy = make_proxy()
        proxy.batch([Request(OpType.WRITE, 5, b"z", seq=0)])
        [resp] = proxy.batch([Request(OpType.READ, 5, seq=0)])
        assert resp.value == b"z"

    def test_delayed_visibility_within_batch(self):
        """Reads in a batch see batch-start state (Obladi's semantics)."""
        proxy = make_proxy()
        responses = proxy.batch(
            [
                Request(OpType.WRITE, 5, b"z", seq=0),
                Request(OpType.READ, 5, seq=1),
            ]
        )
        assert all(r.value == bytes([5]) for r in responses)

    def test_last_write_wins(self):
        proxy = make_proxy()
        proxy.batch(
            [
                Request(OpType.WRITE, 5, b"a", seq=0),
                Request(OpType.WRITE, 5, b"b", seq=1),
            ]
        )
        [resp] = proxy.batch([Request(OpType.READ, 5, seq=0)])
        assert resp.value == b"b"

    def test_dedup_single_oram_access_per_key(self):
        proxy = make_proxy(batch_size=8)
        before = proxy.oram.accesses
        proxy.batch([Request(OpType.READ, 3, seq=i) for i in range(8)])
        # 1 distinct read + 7 dummy pads = exactly batch_size accesses
        # (plus zero winning writes).
        assert proxy.oram.accesses - before == 8


class TestBatchShape:
    def test_fixed_accesses_per_batch(self):
        """Every batch triggers exactly batch_size read accesses (padding)."""
        proxy = make_proxy(batch_size=10)
        before = proxy.oram.accesses
        proxy.batch([Request(OpType.READ, k, seq=k) for k in range(3)])
        assert proxy.oram.accesses - before == 10
        assert proxy.dummy_accesses == 7

    def test_queue_drains_in_multiple_batches(self):
        proxy = make_proxy(batch_size=4)
        responses = proxy.batch(
            [Request(OpType.READ, k % 32, seq=k) for k in range(10)]
        )
        assert len(responses) == 10
        assert proxy.batches_executed == 3

    def test_randomized_against_model(self):
        rng = random.Random(3)
        proxy = make_proxy(capacity=24, batch_size=6, seed=4)
        model = {k: bytes([k]) for k in range(24)}
        for _ in range(10):
            requests, writes = [], {}
            keys = rng.sample(range(24), 6)
            for i, k in enumerate(keys):
                if rng.random() < 0.5:
                    v = bytes([rng.randrange(256)])
                    requests.append(Request(OpType.WRITE, k, v, seq=i))
                    writes[k] = v
                else:
                    requests.append(Request(OpType.READ, k, seq=i))
            for r in proxy.batch(requests):
                assert r.value == model[r.key]
            model.update(writes)
