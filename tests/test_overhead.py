"""Tests for the Fig. 3 / Fig. 4 analysis helpers."""

from repro.analysis.overhead import (
    capacity_curve,
    dummy_overhead_percent,
    overhead_curve,
    real_request_capacity,
)
from repro.analysis.balls_bins import batch_size


class TestDummyOverhead:
    def test_decreases_with_requests(self):
        """Fig. 3: more real requests -> lower % overhead."""
        s = 10
        overheads = [
            dummy_overhead_percent(r, s) for r in (500, 2000, 5000, 10_000)
        ]
        assert overheads == sorted(overheads, reverse=True)

    def test_increases_with_suborams(self):
        """Fig. 3: more subORAMs -> higher % overhead at fixed R."""
        r = 10_000
        assert (
            dummy_overhead_percent(r, 2)
            < dummy_overhead_percent(r, 10)
            < dummy_overhead_percent(r, 20)
        )

    def test_zero_requests(self):
        assert dummy_overhead_percent(0, 10) == 0.0

    def test_curve_helper(self):
        curve = overhead_curve([100, 1000], 10)
        assert len(curve) == 2
        assert curve[0] > curve[1]


class TestCapacity:
    def test_capacity_definition(self):
        """Returned capacity is the largest R with f(R,S) within budget."""
        s, budget = 10, 1000
        r = real_request_capacity(s, budget)
        assert batch_size(r, s) <= budget
        assert batch_size(r + 1, s) > budget

    def test_capacity_grows_with_suborams(self):
        """Fig. 4: capacity increases with S..."""
        caps = [real_request_capacity(s) for s in (2, 5, 10, 20)]
        assert caps == sorted(caps)

    def test_security_costs_capacity(self):
        """...but lambda > 0 costs real capacity vs the insecure line."""
        s = 10
        assert real_request_capacity(s, security_parameter=128) < (
            real_request_capacity(s, security_parameter=0)
        )
        assert real_request_capacity(s, security_parameter=0) == 10_000

    def test_sublinear_scaling(self):
        """Fig. 4: secure capacity grows sublinearly in S."""
        c5 = real_request_capacity(5)
        c20 = real_request_capacity(20)
        assert c20 < 4 * c5

    def test_capacity_curve_shape(self):
        curves = capacity_curve(6)
        assert set(curves) == {0, 80, 128}
        for lam in (80, 128):
            assert all(
                a <= b for a, b in zip(curves[lam], curves[0])
            ), "secure capacity never beats insecure"
        assert curves[128][-1] <= curves[80][-1]
