"""Tests for Goodrich oblivious compaction."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oblivious.compact import goodrich_compact, ocompact
from repro.oblivious.memory import TracedMemory


class TestCorrectness:
    def test_empty(self):
        assert ocompact([], []) == []

    def test_all_kept(self):
        assert ocompact([1, 2, 3], [1, 1, 1]) == [1, 2, 3]

    def test_none_kept(self):
        assert ocompact([1, 2, 3], [0, 0, 0]) == []

    def test_order_preserved(self):
        items = list("abcdefg")
        flags = [0, 1, 0, 1, 1, 0, 1]
        assert ocompact(items, flags) == ["b", "d", "e", "g"]

    def test_exhaustive_small(self):
        """Every flag pattern up to n=10 — validates the routing network."""
        for n in range(1, 11):
            for bits in itertools.product([0, 1], repeat=n):
                out = ocompact(list(range(n)), list(bits))
                assert out == [i for i in range(n) if bits[i]], bits

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ocompact([1, 2], [1])

    def test_goodrich_returns_full_length(self):
        out = goodrich_compact([1, 2, 3, 4], [0, 1, 0, 1])
        assert len(out) == 4
        assert out[:2] == [2, 4]

    @given(
        st.lists(
            st.tuples(st.integers(), st.integers(min_value=0, max_value=1)),
            max_size=80,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_property_matches_filter(self, tagged):
        items = [t[0] for t in tagged]
        flags = [t[1] for t in tagged]
        assert ocompact(items, flags) == [
            item for item, flag in zip(items, flags) if flag
        ]


class TestObliviousness:
    def test_trace_independent_of_flags(self, rng):
        n = 24
        items = list(range(n))
        flags_a = [rng.randrange(2) for _ in range(n)]
        flags_b = [rng.randrange(2) for _ in range(n)]
        traces = []

        def factory(working):
            mem = TracedMemory(working)
            traces.append(mem.trace)
            return mem

        goodrich_compact(items, flags_a, mem_factory=factory)
        goodrich_compact(items, flags_b, mem_factory=factory)
        assert traces[0] == traces[1]
        assert len(traces[0]) > 0


class TestSortBasedOracle:
    def test_oracle_matches_filter(self, rng):
        from repro.oblivious.compact import ocompact_by_sort

        for _ in range(20):
            n = rng.randrange(0, 60)
            items = [rng.randrange(1000) for _ in range(n)]
            flags = [rng.randrange(2) for _ in range(n)]
            assert ocompact_by_sort(items, flags) == [
                item for item, flag in zip(items, flags) if flag
            ]

    def test_goodrich_agrees_with_oracle(self, rng):
        from repro.oblivious.compact import ocompact_by_sort

        for _ in range(30):
            n = rng.randrange(1, 100)
            items = list(range(n))
            flags = [rng.randrange(2) for _ in range(n)]
            assert ocompact(items, flags) == ocompact_by_sort(items, flags)

    def test_oracle_rejects_length_mismatch(self):
        from repro.oblivious.compact import ocompact_by_sort

        import pytest

        with pytest.raises(ValueError):
            ocompact_by_sort([1], [1, 0])
