"""Smoke tests: the example scripts run cleanly end to end.

The slower examples (capacity_planning, paper_figures) exercise the same
code paths as `tests/test_costmodel.py` / `tests/test_planner.py` and are
exercised by the benchmark suite, so only the fast, functional-system
examples are spawned here.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "key_transparency.py",
    "contact_discovery.py",
    "access_control.py",
    "distributed_deployment.py",
    "adaptive_switching.py",
    "pir_store.py",
    "obliviousness_demo.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script} produced no output"


def test_all_examples_exist():
    present = {p.name for p in EXAMPLES.glob("*.py")}
    for script in FAST_EXAMPLES + ["capacity_planning.py", "paper_figures.py"]:
        assert script in present
