"""Tests for the PIR extension (§9)."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.extensions.pir import PirServer, PirShardedStore, pir_fetch


class TestPirServer:
    def test_answer_is_xor(self):
        server = PirServer([b"\x01", b"\x02", b"\x04"], 1)
        assert server.answer(frozenset([0, 2])) == b"\x05"
        assert server.answer(frozenset()) == b"\x00"

    def test_rejects_bad_record_size(self):
        with pytest.raises(Exception):
            PirServer([b"xx", b"y"], 2)


class TestTwoServerProtocol:
    def test_fetch_correct(self):
        rng = random.Random(1)
        records = [bytes([i]) * 4 for i in range(16)]
        a, b = PirServer(records, 4), PirServer(records, 4)
        for index in range(16):
            assert pir_fetch(a, b, index, rng) == records[index]

    def test_single_server_view_uniform(self):
        """Server A's subsets are independent of the retrieved index."""
        records = [bytes([i]) for i in range(8)]
        counts = {i: 0 for i in range(8)}
        trials = 400
        rng = random.Random(2)
        a, b = PirServer(records, 1), PirServer(records, 1)
        for _ in range(trials):
            pir_fetch(a, b, 3, rng)  # always the same index
        for subset in a.query_log:
            for i in subset:
                counts[i] += 1
        # Every position (including 3) appears ~trials/2 times.
        for i in range(8):
            assert 0.35 * trials < counts[i] < 0.65 * trials


class TestShardedStore:
    @pytest.fixture
    def store(self):
        objects = {k: bytes([k % 256]) * 4 for k in range(60)}
        return PirShardedStore(
            objects, num_shards=3, record_size=4, rng=random.Random(3)
        )

    def test_batch_read_correct(self, store):
        results = store.batch_read([3, 17, 42])
        assert results == {
            3: bytes([3]) * 4,
            17: bytes([17]) * 4,
            42: bytes([42]) * 4,
        }

    def test_unknown_key_none(self, store):
        assert store.batch_read([9999])[9999] is None

    def test_duplicates_deduplicated(self, store):
        results = store.batch_read([5, 5, 5, 7])
        assert results[5] == bytes([5]) * 4
        assert results[7] == bytes([7]) * 4

    def test_shard_query_counts_public(self, store):
        """Each shard serves exactly 2*f(R,S) subset queries per batch
        (two servers), regardless of which keys were requested."""
        loads = []
        for keys in ([1, 2, 3, 4], [50, 51, 52, 53]):
            before = [
                len(a.query_log) + len(b.query_log) for a, b in store.servers
            ]
            store.batch_read(keys)
            after = [
                len(a.query_log) + len(b.query_log) for a, b in store.servers
            ]
            loads.append([x - y for x, y in zip(after, before)])
        assert loads[0] == loads[1]
        expected = 2 * store.queries_per_shard(4)
        assert all(load == expected for load in loads[0])

    def test_empty_batch(self, store):
        assert store.batch_read([]) == {}

    def test_rejects_empty_store(self):
        with pytest.raises(ConfigurationError):
            PirShardedStore({}, num_shards=2, record_size=4)

    def test_large_random_batches(self):
        rng = random.Random(4)
        objects = {k: bytes([k % 256]) * 8 for k in range(200)}
        store = PirShardedStore(
            objects, num_shards=4, record_size=8, rng=random.Random(5)
        )
        for _ in range(5):
            keys = rng.sample(range(200), 25)
            results = store.batch_read(keys)
            for key in keys:
                assert results[key] == objects[key]
