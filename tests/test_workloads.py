"""Property tests for the scenario factory (:mod:`repro.workloads`).

Four seeded properties the rest of the suite leans on:

* **Zipf rank-frequency monotonicity** — the exact weight table is
  strictly decreasing in rank, and large empirical samples respect the
  head ordering.
* **Arrival-process determinism** — every registered process replays
  the same timestamps for the same seed and diverges across seeds.
* **Trace round-trip byte-identity** — ``dumps(loads(dumps(t)))`` is
  the identity on bytes, checksums self-verify, and tampering fails
  loudly.
* **Tenant key-space disjointness** — tenants own disjoint ranges and
  every sampled key lands inside its owner's range.

Plus the structural property that makes the skew differentials
meaningful: same ``(count, seed)`` across distributions ⇒ identical
shape (ops, values, balancers), different keys.
"""

import math
import random

import pytest

from repro.types import OpType
from repro.workloads import (
    ARRIVAL_PROCESSES,
    TenantSpec,
    Trace,
    TraceFormatError,
    TraceRecord,
    WorkloadSpec,
    ZipfSampler,
    arrival_times,
    diurnal_arrivals,
    dumps_trace,
    flash_crowd_arrivals,
    generate_requests,
    generate_schedule,
    loads_trace,
    parse_workload_spec,
    record_trace,
    write_ratio_sweep,
)


class TestZipfMonotonicity:
    def test_weight_table_strictly_decreasing(self):
        sampler = ZipfSampler(200, 1.2, random.Random(0))
        weights = sampler.weights()
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_weights_match_power_law(self):
        sampler = ZipfSampler(50, 1.5, random.Random(0))
        weights = sampler.weights()
        for rank in (0, 7, 49):
            assert weights[rank] == pytest.approx((rank + 1) ** -1.5)

    def test_empirical_head_ordering(self):
        rng = random.Random(42)
        sampler = ZipfSampler(64, 1.2, rng)
        counts = [0] * 64
        for _ in range(20_000):
            counts[sampler.sample()] += 1
        # The head must dominate: each of the first few ranks beats the
        # tail average by a wide margin.
        tail_mean = sum(counts[8:]) / len(counts[8:])
        assert counts[0] > counts[1] > tail_mean
        assert counts[0] > 4 * tail_mean

    def test_higher_exponent_is_hotter(self):
        def head_share(exponent):
            sampler = ZipfSampler(64, exponent, random.Random(7))
            hits = sum(1 for _ in range(5000) if sampler.sample() < 4)
            return hits / 5000

        assert head_share(1.6) > head_share(1.0) > head_share(0.5)


class TestArrivalDeterminism:
    @pytest.mark.parametrize("process", sorted(ARRIVAL_PROCESSES))
    def test_same_seed_same_times(self, process):
        a = arrival_times(process, 500.0, seed=11, count=200)
        b = arrival_times(process, 500.0, seed=11, count=200)
        assert a == b
        assert len(a) == 200

    @pytest.mark.parametrize("process", sorted(ARRIVAL_PROCESSES))
    def test_different_seed_different_times(self, process):
        a = arrival_times(process, 500.0, seed=11, count=200)
        b = arrival_times(process, 500.0, seed=12, count=200)
        assert a != b

    @pytest.mark.parametrize("process", sorted(ARRIVAL_PROCESSES))
    def test_times_are_increasing(self, process):
        times = arrival_times(process, 500.0, seed=3, count=300)
        assert all(s < t for s, t in zip(times, times[1:]))

    def test_flash_crowd_spikes(self):
        rng = random.Random(5)
        times = list(flash_crowd_arrivals(
            100.0, 4.0, spike_factor=10.0, spike_at=2.0, spike_length=1.0,
            rng=rng,
        ))
        in_spike = sum(1 for t in times if 2.0 <= t < 3.0)
        before = sum(1 for t in times if 1.0 <= t < 2.0)
        assert in_spike > 4 * before

    def test_diurnal_modulation(self):
        rng = random.Random(9)
        period = 4.0
        times = list(diurnal_arrivals(
            200.0, period * 2, amplitude=0.9, period=period, rng=rng,
        ))
        # Peak half-cycles must out-arrive trough half-cycles.
        peak = sum(
            1 for t in times if math.sin(2 * math.pi * t / period) > 0
        )
        trough = len(times) - peak
        assert peak > 1.5 * trough


class TestTraceRoundTrip:
    def spec(self):
        return WorkloadSpec(
            distribution="zipf", num_keys=96, zipf_exponent=1.3,
            value_size=12, write_fraction=0.4,
        )

    def test_dumps_loads_byte_identity(self):
        trace = record_trace(self.spec(), 64, seed=21, rate=800.0)
        text = dumps_trace(trace)
        again = dumps_trace(loads_trace(text))
        assert text == again

    def test_rerecording_is_identical(self):
        a = dumps_trace(record_trace(self.spec(), 64, seed=21))
        b = dumps_trace(record_trace(self.spec(), 64, seed=21))
        assert a == b
        c = dumps_trace(record_trace(self.spec(), 64, seed=22))
        assert a != c

    def test_round_trip_preserves_semantics(self):
        trace = record_trace(self.spec(), 48, seed=4)
        loaded = loads_trace(dumps_trace(trace))
        assert loaded.records == trace.records
        assert loaded.spec == trace.spec
        assert loaded.seed == trace.seed
        assert loaded.checksum() == trace.checksum()
        assert [r.to_request() for r in loaded] == trace.requests()

    def test_tampered_record_fails_checksum(self):
        trace = record_trace(self.spec(), 16, seed=4)
        lines = dumps_trace(trace).splitlines()
        for index in range(1, len(lines)):
            if '"op":"read"' in lines[index]:
                lines[index] = lines[index].replace(
                    '"op":"read"', '"op":"write"'
                )
                break
        else:
            pytest.fail("trace had no read record to tamper with")
        with pytest.raises(TraceFormatError):
            loads_trace("\n".join(lines) + "\n")

    def test_truncated_trace_fails(self):
        trace = record_trace(self.spec(), 16, seed=4)
        lines = dumps_trace(trace).splitlines()
        with pytest.raises(TraceFormatError):
            loads_trace("\n".join(lines[:-2]) + "\n")

    def test_wrong_version_rejected(self):
        trace = record_trace(self.spec(), 4, seed=4)
        text = dumps_trace(trace).replace('"version":1', '"version":99')
        with pytest.raises(TraceFormatError):
            loads_trace(text)

    def test_not_a_trace_rejected(self):
        with pytest.raises(TraceFormatError):
            loads_trace('{"format":"something-else","version":1}\n')
        with pytest.raises(TraceFormatError):
            loads_trace("")

    def test_shape_identical_traces_differ_only_in_keys(self):
        uniform = WorkloadSpec(distribution="uniform", num_keys=96,
                               value_size=12, write_fraction=0.4)
        zipf = self.spec()
        a = record_trace(uniform, 64, seed=21, rate=800.0)
        b = record_trace(zipf, 64, seed=21, rate=800.0)
        assert [r.t for r in a] == [r.t for r in b]
        assert [(r.op, r.value) for r in a] == [(r.op, r.value) for r in b]
        assert [r.key for r in a] != [r.key for r in b]

    def test_epoch_groups_cover_all_records(self):
        trace = record_trace(self.spec(), 64, seed=8, rate=500.0)
        groups = trace.epoch_groups(0.05)
        assert sum(len(g) for g in groups) == len(trace)
        for index, group in enumerate(groups):
            for r in group:
                assert index * 0.05 <= r.t < (index + 1) * 0.05


class TestTenantDisjointness:
    def mix(self):
        return WorkloadSpec(
            distribution="tenant",
            write_fraction=0.5,
            value_size=8,
            tenants=(
                TenantSpec(tenant_id=1, num_keys=40, weight=3.0,
                           distribution="zipf", zipf_exponent=1.2),
                TenantSpec(tenant_id=2, num_keys=24, weight=1.0),
                TenantSpec(tenant_id=3, num_keys=16, weight=1.0),
            ),
        )

    def test_ranges_are_disjoint_and_cover(self):
        ranges = self.mix().key_ranges()
        assert ranges == [(1, 0, 40), (2, 40, 64), (3, 64, 80)]
        assert self.mix().total_keys == 80

    def test_sampled_keys_stay_in_owner_range(self):
        spec = self.mix()
        bounds = {t: (lo, hi) for t, lo, hi in spec.key_ranges()}
        requests = generate_requests(spec, 2000, seed=13)
        seen = set()
        for request in requests:
            lo, hi = bounds[request.client_id]
            assert lo <= request.key < hi
            seen.add(request.client_id)
        assert seen == {1, 2, 3}

    def test_weights_steer_traffic(self):
        requests = generate_requests(self.mix(), 4000, seed=13)
        per_tenant = {t: 0 for t in (1, 2, 3)}
        for request in requests:
            per_tenant[request.client_id] += 1
        assert per_tenant[1] > 2 * per_tenant[2]

    def test_duplicate_tenant_ids_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            WorkloadSpec(
                distribution="tenant",
                tenants=(
                    TenantSpec(tenant_id=1, num_keys=8),
                    TenantSpec(tenant_id=1, num_keys=8),
                ),
            )


class TestShapeInvariance:
    def test_requests_same_shape_across_distributions(self):
        specs = [
            WorkloadSpec(distribution="uniform", num_keys=80),
            WorkloadSpec(distribution="zipf", num_keys=80,
                         zipf_exponent=1.4),
        ]
        runs = [generate_requests(spec, 120, seed=3) for spec in specs]
        shapes = [
            [(r.op, r.value, r.seq) for r in run] for run in runs
        ]
        assert shapes[0] == shapes[1]
        assert [r.key for r in runs[0]] != [r.key for r in runs[1]]

    def test_schedule_same_shape_across_distributions(self):
        uniform = generate_schedule(
            WorkloadSpec(distribution="uniform", num_keys=80),
            3, 10, seed=5, num_balancers=2,
        )
        zipf = generate_schedule(
            WorkloadSpec(distribution="zipf", num_keys=80,
                         zipf_exponent=1.2),
            3, 10, seed=5, num_balancers=2,
        )
        shape = lambda sched: [  # noqa: E731
            [(r.op, r.value, lb) for r, lb in epoch] for epoch in sched
        ]
        assert shape(uniform) == shape(zipf)

    def test_write_fraction_controls_shape(self):
        spec = WorkloadSpec(distribution="uniform", num_keys=32)
        for fraction, expect in ((0.0, 0), (1.0, 400)):
            swept = write_ratio_sweep(spec, [fraction])[0]
            requests = generate_requests(swept, 400, seed=1)
            writes = sum(1 for r in requests if r.op is OpType.WRITE)
            assert writes == expect

    def test_write_ratio_sweep_preserves_everything_else(self):
        spec = WorkloadSpec(distribution="zipf", num_keys=64,
                            zipf_exponent=1.3)
        family = write_ratio_sweep(spec, [0.0, 0.25, 1.0])
        assert [s.write_fraction for s in family] == [0.0, 0.25, 1.0]
        assert all(s.zipf_exponent == 1.3 for s in family)


class TestSpecParsing:
    def test_shorthands(self):
        assert parse_workload_spec("uniform").distribution == "uniform"
        assert parse_workload_spec("zipf:1.4").zipf_exponent == 1.4
        tenant = parse_workload_spec("tenant:3x16")
        assert tenant.distribution == "tenant"
        assert tenant.total_keys == 48
        assert len(tenant.tenants) == 3

    def test_defaults_flow_through(self):
        spec = parse_workload_spec(
            "zipf", num_keys=77, write_fraction=0.25, value_size=24
        )
        assert (spec.num_keys, spec.write_fraction, spec.value_size) == \
            (77, 0.25, 24)

    def test_json_file_round_trip(self, tmp_path):
        import json

        spec = WorkloadSpec(distribution="zipf", num_keys=99,
                            zipf_exponent=1.7)
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert parse_workload_spec(str(path)) == spec

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            parse_workload_spec("pareto")


class TestDeprecatedShims:
    def test_sim_workload_warns_and_delegates(self):
        import warnings

        from repro.sim import workload as legacy

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            requests = legacy.uniform_requests(
                20, 50, rng=random.Random(1)
            )
            sampler = legacy.ZipfSampler(10, 1.2, random.Random(2))
            list(legacy.poisson_arrivals(100.0, 0.1, random.Random(3)))
            list(legacy.bursty_arrivals(
                50.0, 500.0, 0.5, rng=random.Random(4)
            ))
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) >= 4
        assert len(requests) == 20
        assert isinstance(sampler, ZipfSampler)

    def test_shim_output_matches_new_package(self):
        import warnings

        from repro.sim import workload as legacy
        from repro.workloads import zipf_requests

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            old = legacy.zipf_requests(30, 40, 1.2, rng=random.Random(6))
        new = zipf_requests(30, 40, 1.2, rng=random.Random(6))
        assert old == new


class TestTraceRecordEdges:
    def test_read_record_has_no_value(self):
        record = TraceRecord(t=0.5, op="read", key=3)
        obj = record.to_json_obj()
        assert "value" not in obj
        assert TraceRecord.from_json_obj(obj) == record

    def test_invalid_op_rejected(self):
        with pytest.raises(TraceFormatError):
            TraceRecord.from_json_obj({"t": 0, "op": "delete", "key": 1})

    def test_empty_trace_properties(self):
        trace = Trace(records=[])
        assert len(trace) == 0
        assert trace.duration == 0.0
        assert trace.mean_rate == 0.0
        assert trace.epoch_groups(0.1) == []
