"""Property-based tests for the telemetry primitives (seeded stdlib random).

Randomized but fully deterministic: every case is drawn from a seeded
``random.Random``, so a failure replays identically.  Three properties:

* histogram percentiles agree with a brute-force sorted-list oracle for
  every p and any sample multiset;
* arbitrarily nested/overlapping span usage always yields a forest of
  well-formed trees whose name counts match what was opened;
* counter/registry merging is associative and order-insensitive —
  merging worker registries in any grouping produces the same totals.
"""

import math
import random
import threading

from repro.telemetry.registry import (
    Histogram,
    MetricsRegistry,
    nearest_rank_percentile,
)
from repro.telemetry.spans import Tracer

CASES = 50


def oracle_percentile(samples, p):
    """Brute-force nearest-rank percentile: the definition, verbatim."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = math.ceil(p / 100 * len(ordered))
    return ordered[max(0, min(len(ordered) - 1, rank - 1))]


class TestPercentileOracle:
    def test_histogram_matches_oracle_on_random_samples(self):
        rng = random.Random(0xA11CE)
        for _ in range(CASES):
            size = rng.randrange(1, 200)
            # Mix of magnitudes, ties, and negatives.
            samples = [
                rng.choice([rng.random(), rng.randrange(5), -rng.random()])
                for _ in range(size)
            ]
            hist = Histogram("t_seconds")
            for sample in samples:
                hist.observe(sample)
            for _ in range(10):
                p = rng.uniform(0, 100)
                assert hist.percentile(p) == oracle_percentile(samples, p)
            assert hist.p50 == oracle_percentile(samples, 50)
            assert hist.p95 == oracle_percentile(samples, 95)
            assert hist.p99 == oracle_percentile(samples, 99)

    def test_empty_and_extreme_percentiles(self):
        assert nearest_rank_percentile([], 50) == 0.0
        rng = random.Random(7)
        samples = sorted(rng.random() for _ in range(30))
        assert nearest_rank_percentile(samples, 0) == samples[0]
        assert nearest_rank_percentile(samples, 100) == samples[-1]

    def test_percentile_is_monotone_in_p(self):
        rng = random.Random(99)
        for _ in range(CASES):
            samples = sorted(
                rng.random() for _ in range(rng.randrange(1, 60))
            )
            cuts = sorted(rng.uniform(0, 100) for _ in range(8))
            values = [nearest_rank_percentile(samples, p) for p in cuts]
            assert values == sorted(values)


class TestSpanTreeProperty:
    def test_random_nesting_forms_well_formed_forest(self):
        rng = random.Random(0xBEEF)
        for _ in range(CASES):
            tracer = Tracer()
            opened = []

            def grow(depth):
                count = rng.randrange(0, 4)
                for _ in range(count):
                    name = f"span-{rng.randrange(5)}"
                    opened.append(name)
                    with tracer.span(name, depth=depth):
                        if depth < 4 and rng.random() < 0.6:
                            grow(depth + 1)

            grow(0)
            # Every opened span appears exactly once in the forest.
            walked = [
                span.name
                for root in tracer.roots
                for span in root.walk()
            ]
            assert sorted(walked) == sorted(opened)
            counts = tracer.name_counts()
            assert sum(counts.values()) == len(opened)
            # Parent intervals contain child intervals (monotonic clock).
            for root in tracer.roots:
                for span in root.walk():
                    assert span.end >= span.start
                    for child in span.children:
                        assert child.start >= span.start
                        assert child.end <= span.end

    def test_spans_on_concurrent_threads_stay_separate_roots(self):
        rng = random.Random(5)
        for _ in range(10):
            tracer = Tracer()
            num_threads = rng.randrange(2, 5)
            spans_per_thread = rng.randrange(1, 4)

            def work(tid):
                for i in range(spans_per_thread):
                    with tracer.span(f"t{tid}", index=i):
                        pass

            threads = [
                threading.Thread(target=work, args=(tid,))
                for tid in range(num_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(tracer.roots) == num_threads * spans_per_thread
            assert all(not root.children for root in tracer.roots)


class TestMergeAssociativity:
    def _random_registry(self, rng):
        registry = MetricsRegistry()
        for _ in range(rng.randrange(1, 6)):
            name = f"m{rng.randrange(3)}_total"
            registry.counter(name, shard=str(rng.randrange(2))).inc(
                rng.randrange(1, 10)
            )
        for _ in range(rng.randrange(0, 4)):
            hist = registry.histogram(f"h{rng.randrange(2)}_seconds")
            for _ in range(rng.randrange(1, 5)):
                hist.observe(rng.random())
        return registry

    @staticmethod
    def _totals(registry):
        out = {}
        for metric in registry.metrics():
            key = (metric.name, metric.labels)
            if hasattr(metric, "samples"):
                out[key] = sorted(metric.samples)
            else:
                out[key] = metric.value
        return out

    def test_merge_grouping_and_order_do_not_matter(self):
        rng = random.Random(0xF00D)
        for _ in range(CASES):
            seeds = [rng.randrange(2**30) for _ in range(3)]

            def fresh(index):
                return self._random_registry(random.Random(seeds[index]))

            # (a + b) + c
            left = fresh(0)
            left.merge(fresh(1))
            left.merge(fresh(2))
            # a + (b + c)
            bc = fresh(1)
            bc.merge(fresh(2))
            right = fresh(0)
            right.merge(bc)
            # c + b + a (order reversed)
            rev = fresh(2)
            rev.merge(fresh(1))
            rev.merge(fresh(0))
            assert self._totals(left) == self._totals(right)
            assert self._totals(left) == self._totals(rev)

    def test_merging_empty_is_identity(self):
        rng = random.Random(12)
        registry = self._random_registry(rng)
        before = self._totals(registry)
        registry.merge(MetricsRegistry())
        assert self._totals(registry) == before
