#!/usr/bin/env python3
"""Adaptive latency/throughput mode switching (§1's stated future work).

The paper notes Snoopy is built for the high-throughput regime and that a
latency-optimized subORAM with shorter epochs serves the low-throughput
regime better, leaving adaptive switching between them as future work.
This example runs that policy against a day-in-the-life load trace:
overnight trickle, morning ramp, lunchtime spike, evening decay.

Run:  python examples/adaptive_switching.py
"""

from repro.extensions.adaptive import AdaptivePolicy


def load_trace():
    """(hour, offered requests/second) — a synthetic diurnal pattern."""
    trace = []
    for hour in range(24):
        if hour < 6:
            rate = 40  # overnight trickle
        elif hour < 9:
            rate = 40 + (hour - 5) * 4_000  # morning ramp
        elif hour < 14:
            rate = 25_000  # busy plateau
        elif hour < 15:
            rate = 60_000  # lunch spike
        elif hour < 20:
            rate = 12_000  # afternoon
        else:
            rate = 300  # evening decay
        trace.append((hour, rate))
    return trace


def main() -> None:
    policy = AdaptivePolicy(
        num_load_balancers=2,
        num_suborams=8,
        num_objects=1_000_000,
    )
    print("operating points:")
    for spec in (policy.latency_mode, policy.throughput_mode):
        print(
            f"  {spec.mode.value:<10}: epoch {spec.epoch * 1e3:5.0f} ms, "
            f"capacity {spec.capacity:>9,.0f} reqs/s, idle latency "
            f"{spec.idle_latency * 1e3:6.1f} ms"
        )

    print("\nhour  offered/s   mode        predicted latency")
    for hour, rate in load_trace():
        # Each hour delivers several measurement windows to the EWMA.
        for _ in range(6):
            policy.observe(requests=rate * 10, window=10.0, now=float(hour))
        predicted = policy.predicted_latency(policy.rate_estimate)
        print(
            f"{hour:>4}  {rate:>9,}   {policy.mode.value:<10} "
            f"{predicted * 1e3:8.1f} ms"
        )

    print(f"\nmode switches over the day: {len(policy.switches)}")
    for when, mode in policy.switches:
        print(f"  hour {when:4.1f} -> {mode.value}")
    assert len(policy.switches) <= 4, "hysteresis must prevent flapping"


if __name__ == "__main__":
    main()
