#!/usr/bin/env python3
"""Key transparency over Snoopy (§3.2, Fig. 9b).

Alice looks up Bob's public key in a transparency log without the server
learning she is interested in Bob: the log's Merkle tree nodes and user
keys are objects in an oblivious store, and one lookup issues
log2(n) + 1 oblivious reads in a single epoch.

Run:  python examples/key_transparency.py
"""

import hashlib

from repro.apps.key_transparency import KeyTransparencyLog
from repro.core.config import SnoopyConfig


def user_public_key(user_id: int) -> bytes:
    """A stand-in for the user's real 32-byte public key."""
    return hashlib.sha256(f"pk-{user_id}".encode()).digest()


def main() -> None:
    # A log with 200 users, served from a 1-LB / 2-subORAM deployment.
    users = {user_id: user_public_key(user_id) for user_id in range(1, 201)}
    log = KeyTransparencyLog(
        users,
        config=SnoopyConfig(
            num_load_balancers=1,
            num_suborams=2,
            value_size=32,
            security_parameter=32,
        ),
    )
    print(f"log built: {len(users)} users, {log.num_objects} stored objects "
          f"(tree nodes + keys), {log.accesses_per_lookup()} oblivious "
          "accesses per lookup")

    # Alice privately looks up Bob (user 42).
    proof = log.lookup(42)
    assert proof.public_key == user_public_key(42)
    print(f"lookup(42): got key {proof.public_key.hex()[:16]}..., "
          f"{len(proof.siblings)} Merkle siblings, signed root")

    # Client-side verification: inclusion proof against the signed root.
    assert log.verify_lookup(proof), "proof must verify"
    print("inclusion proof verified against the signed root")

    # A tampered key fails verification.
    forged = type(proof)(
        user_id=proof.user_id,
        public_key=b"\x00" * 32,
        siblings=proof.siblings,
        root=proof.root,
        signature=proof.signature,
    )
    assert not log.verify_lookup(forged)
    print("forged key correctly rejected")

    # The paper's scale: 5M users -> 24 accesses per lookup, which is why
    # Fig. 9b throughput is ~24x below raw request throughput.
    print("at 5M users a lookup would cost 24 accesses "
          "(log2(8M slots) + 1) — the Fig. 9b regime")


if __name__ == "__main__":
    main()
