#!/usr/bin/env python3
"""Access control via recursive Snoopy lookups (Appendix D).

The access-control matrix itself lives in an oblivious store; each epoch
first resolves privileges obliviously, then executes the data batch with
per-request permission bits checked inside the subORAM's oblivious
compare-and-set.  Denied reads return null; denied writes silently don't
apply — and the cloud can't tell any of it happened.

Run:  python examples/access_control.py
"""

from repro import AccessControlledStore, OpType, Request, SnoopyConfig


def main() -> None:
    store = AccessControlledStore(
        SnoopyConfig(
            num_load_balancers=1,
            num_suborams=2,
            value_size=16,
            security_parameter=32,
        )
    )

    # Medical-records flavour: patient charts keyed by record id.
    records = {k: f"chart-{k:04d}".ljust(16).encode() for k in range(20)}
    DOCTOR, NURSE, BILLING = 1, 2, 3
    store.initialize(
        records,
        grants=[
            # The doctor can read and update chart 7.
            (DOCTOR, 7, OpType.READ),
            (DOCTOR, 7, OpType.WRITE),
            # The nurse can only read it.
            (NURSE, 7, OpType.READ),
            # Billing has no access to chart 7 at all.
            (BILLING, 12, OpType.READ),
        ],
    )
    print("initialized 20 records + oblivious ACL matrix")

    store.submit(Request(OpType.READ, 7, client_id=DOCTOR, seq=1))
    store.submit(Request(OpType.READ, 7, client_id=NURSE, seq=1))
    store.submit(Request(OpType.READ, 7, client_id=BILLING, seq=1))
    store.submit(Request(OpType.WRITE, 7, b"tampered-chart!!", client_id=BILLING, seq=2))
    responses = {(r.client_id, r.seq): r for r in store.run_epoch()}

    print(f"doctor read  -> {responses[(DOCTOR, 1)].value}")
    print(f"nurse read   -> {responses[(NURSE, 1)].value}")
    print(f"billing read -> {responses[(BILLING, 1)].value} "
          f"(ok={responses[(BILLING, 1)].ok})")
    print(f"billing write-> ok={responses[(BILLING, 2)].ok}")

    assert responses[(DOCTOR, 1)].ok and responses[(NURSE, 1)].ok
    assert not responses[(BILLING, 1)].ok
    assert not responses[(BILLING, 2)].ok

    # The denied write did not change the chart.
    store.submit(Request(OpType.READ, 7, client_id=DOCTOR, seq=3))
    [check] = store.run_epoch()
    assert check.value == records[7]
    print("denied write verified not applied")

    # Privileges are themselves updated with oblivious writes.
    store.revoke(NURSE, 7, OpType.READ)
    store.submit(Request(OpType.READ, 7, client_id=NURSE, seq=2))
    [revoked] = store.run_epoch()
    assert not revoked.ok
    print("revocation took effect on the next epoch")


if __name__ == "__main__":
    main()
