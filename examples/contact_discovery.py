#!/usr/bin/env python3
"""Private contact discovery over Snoopy (§3.2, §5).

A Signal-style service learns which of a client's contacts are registered
users — without the access pattern revealing the contact list, and
without registration writes revealing who joined.

Run:  python examples/contact_discovery.py
"""

from repro.apps.contact_discovery import ContactDiscoveryService
from repro.core.config import SnoopyConfig


def main() -> None:
    service = ContactDiscoveryService(
        key_space=4096,
        config=SnoopyConfig(
            num_load_balancers=1,
            num_suborams=2,
            value_size=16,
            security_parameter=32,
        ),
    )

    registered = [f"+1555000{i:04d}" for i in range(50)]
    service.initialize(registered)
    print(f"directory initialized: {len(registered)} registered numbers "
          f"in a {service.key_space}-slot oblivious table")

    # A client uploads its address book; the whole lookup is one epoch of
    # oblivious reads — duplicates and skew are deduplicated server-side.
    contacts = [
        "+15550000007",   # registered
        "+15550000021",   # registered
        "+19990000000",   # not registered
        "+15550000007",   # duplicate — free after dedup
        "+18880000000",   # not registered
    ]
    results = service.discover(contacts)
    for number, present in results.items():
        print(f"  {number}: {'registered' if present else 'not registered'}")

    assert results["+15550000007"] and results["+15550000021"]
    assert not results["+19990000000"] and not results["+18880000000"]

    # Registration updates are oblivious writes: the server cannot tell
    # register from unregister, nor which number changed.
    service.register("+19990000000")
    assert service.discover(["+19990000000"])["+19990000000"]
    print("newly registered number discovered on the next query")

    service.unregister("+19990000000")
    assert not service.discover(["+19990000000"])["+19990000000"]
    print("unregistered number disappeared — all via indistinguishable writes")


if __name__ == "__main__":
    main()
