#!/usr/bin/env python3
"""Regenerate every evaluation figure/table of the paper in one run.

The pytest benchmarks under ``benchmarks/`` do this with assertions; this
example is the human-friendly version: it prints each figure's series
with the paper's reported values alongside.

Run:  python examples/paper_figures.py        (~1 minute)
"""

from repro.analysis.overhead import capacity_curve, dummy_overhead_percent
from repro.planner.planner import Planner
from repro.sim.cluster import (
    latency_vs_suborams,
    max_objects_within_latency,
    snoopy_oblix_best_split,
    throughput_scaling_series,
)
from repro.sim.costmodel import (
    adaptive_sort_time,
    load_balancer_time,
    obladi_throughput,
    oblix_throughput,
    redis_throughput,
    sort_time,
    suboram_time,
)
from repro.tools.ascii import series_table


def heading(text: str) -> None:
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")


def fig3() -> None:
    heading("Fig 3 — dummy overhead % (paper: ~50% at R=10K, S=10)")
    rows = [
        (r, *(f"{dummy_overhead_percent(r, s):.1f}%" for s in (2, 10, 20)))
        for r in (1000, 2500, 5000, 10_000)
    ]
    print(series_table(["R", "S=2", "S=10", "S=20"], rows))


def fig4() -> None:
    heading("Fig 4 — real request capacity (paper: sublinear for lambda>0)")
    curves = capacity_curve(20)
    rows = [
        (s, curves[0][s - 1], curves[80][s - 1], curves[128][s - 1])
        for s in (1, 5, 10, 15, 20)
    ]
    print(series_table(["S", "lambda=0", "lambda=80", "lambda=128"], rows))


def fig9a() -> None:
    heading("Fig 9a — throughput scaling, 2M x 160B "
            "(paper: 68K/92K/130K at 18 machines)")
    series = throughput_scaling_series(
        list(range(4, 19, 2)), 2_000_000, [0.3, 0.5, 1.0]
    )
    rows = []
    for i, machines in enumerate(range(4, 19, 2)):
        rows.append(
            (
                machines,
                f"{series[0.3][i][3] / 1e3:.1f}K",
                f"{series[0.5][i][3] / 1e3:.1f}K",
                f"{series[1.0][i][3] / 1e3:.1f}K",
            )
        )
    print(series_table(["machines", "300ms", "500ms", "1s"], rows))
    print(f"Obladi: {obladi_throughput(2_000_000) / 1e3:.1f}K   "
          f"Oblix: {oblix_throughput(2_000_000) / 1e3:.2f}K   "
          f"Redis(15): {redis_throughput(15) / 1e6:.1f}M")


def fig9b() -> None:
    heading("Fig 9b — key transparency, 10M x 32B, 24 accesses/op "
            "(paper: 1.1K/3.2K/6.1K)")
    series = throughput_scaling_series(
        [6, 12, 18], 10_000_000, [0.3, 0.5, 1.0],
        object_size=32, accesses_per_op=24,
    )
    rows = [
        (
            machines,
            f"{series[0.3][i][3]:.0f}",
            f"{series[0.5][i][3]:.0f}",
            f"{series[1.0][i][3]:.0f}",
        )
        for i, machines in enumerate([6, 12, 18])
    ]
    print(series_table(["machines", "300ms", "500ms", "1s"], rows))


def fig10() -> None:
    heading("Fig 10 — Snoopy-Oblix hybrid (paper: 18K = 15.6x vanilla @17)")
    vanilla = oblix_throughput(2_000_000)
    rows = []
    for machines in (3, 5, 7, 9, 11, 13, 15, 17):
        _, suborams, x = snoopy_oblix_best_split(machines, 2_000_000, 0.5)
        rows.append((machines, f"{x / 1e3:.1f}K", f"{x / vanilla:.1f}x"))
    print(series_table(["machines", "throughput", "vs vanilla"], rows))


def fig11() -> None:
    heading("Fig 11a — objects per subORAM budget at <=160ms "
            "(paper: ~191K/subORAM)")
    rows = [
        (s, f"{max_objects_within_latency(s):,}") for s in (1, 5, 10, 15)
    ]
    print(series_table(["subORAMs", "max objects"], rows))

    heading("Fig 11b — latency vs subORAMs, 2M objects "
            "(paper: 847ms -> 112ms)")
    rows = [
        (s, f"{latency * 1e3:.0f} ms")
        for s, latency in latency_vs_suborams([1, 3, 5, 9, 15])
    ]
    print(series_table(["subORAMs", "mean latency"], rows))


def fig12() -> None:
    heading("Fig 12 — batch breakdown (paper: subORAM jump 2^15 -> 2^20)")
    rows = []
    for n in (2**10, 2**15, 2**20):
        lb = load_balancer_time(512, 1)
        so = suboram_time(512, n)
        rows.append(
            (
                f"2^{n.bit_length() - 1}",
                f"{lb / 2 * 1e3:.1f} ms",
                f"{so * 1e3:.1f} ms",
                f"{lb / 2 * 1e3:.1f} ms",
            )
        )
    print(series_table(["objects", "make batch", "process", "match"], rows))


def fig13() -> None:
    heading("Fig 13 — parallelism (paper: adaptive sort; ~linear scan speedup)")
    rows = []
    for n in (2**10, 2**13, 2**16):
        rows.append(
            (
                f"2^{n.bit_length() - 1}",
                f"{sort_time(n, 1) * 1e3:.1f} ms",
                f"{sort_time(n, 3) * 1e3:.1f} ms",
                f"{adaptive_sort_time(n, 3) * 1e3:.1f} ms",
            )
        )
    print(series_table(["sort n", "1 thread", "3 threads", "adaptive"], rows))


def fig14() -> None:
    heading("Fig 14 — planner (paper: bigger data => more subORAMs, more $)")
    rows = []
    for objects in (10_000, 1_000_000):
        planner = Planner(objects)
        for target in (20_000, 80_000):
            plan = planner.plan(target, 1.0)
            rows.append(
                (
                    f"{objects:,}",
                    f"{target / 1e3:.0f}K",
                    plan.num_load_balancers,
                    plan.num_suborams,
                    f"${plan.monthly_cost:,.0f}",
                )
            )
    print(series_table(["objects", "target", "LB", "subORAMs", "cost/mo"], rows))


def main() -> None:
    fig3()
    fig4()
    fig9a()
    fig9b()
    fig10()
    fig11()
    fig12()
    fig13()
    fig14()
    print("\nSee EXPERIMENTS.md for the full paper-vs-measured record.")


if __name__ == "__main__":
    main()
