#!/usr/bin/env python3
"""Snoopy's techniques applied to PIR (§9).

SubORAMs become pairs of non-colluding XOR-PIR servers; the load-balancer
machinery routes a deduplicated, padded batch of queries to the shard
holding each record.  Each server individually sees only uniformly random
subsets — information-theoretic privacy for reads.

Run:  python examples/pir_store.py
"""

import random
from collections import Counter

from repro.extensions.pir import PirShardedStore


def main() -> None:
    objects = {k: f"rec{k:04d}".encode() for k in range(200)}
    store = PirShardedStore(
        objects,
        num_shards=4,
        record_size=7,
        rng=random.Random(0),
    )
    print(f"PIR store: {len(objects)} records over {store.num_shards} shards, "
          "2 servers per shard")

    # A batch of reads — duplicates and skew included.
    keys = [3, 17, 42, 99, 3, 3, 150]
    results = store.batch_read(keys)
    for key in sorted(set(keys)):
        print(f"  read({key}) -> {results[key]}")
    assert all(results[k] == objects[k] for k in keys)

    # The public per-shard query count: every shard answers the same
    # number of PIR queries regardless of which keys were requested.
    per_shard = store.queries_per_shard(len(set(keys)))
    print(f"every shard answered exactly {per_shard} queries "
          "(dummies pad the difference)")

    # What one server sees: uniformly random subsets.  Demonstrate by
    # hammering a single record and checking the subset elements hit all
    # positions roughly equally.
    server_a, _ = store.servers[0]
    before = len(server_a.query_log)
    for _ in range(300):
        store.batch_read([3])
    counts = Counter()
    for subset in server_a.query_log[before:]:
        counts.update(subset)
    values = list(counts.values())
    print(
        "server A's view over 300 repeats of read(3): positions touched "
        f"min {min(values)} / max {max(values)} times — near-uniform, "
        "nothing about record 3 stands out"
    )
    assert max(values) < 2.5 * min(values)


if __name__ == "__main__":
    main()
