#!/usr/bin/env python3
"""A distributed-style deployment: attestation, encrypted transport, and
fault tolerance (§3.1, §9).

Shows the parts the in-process quickstart hides: enclaves attest to each
other before channels come up, every load-balancer <-> subORAM message is
AEAD-sealed with replay protection, and a replicated subORAM group
survives crashes and detects rollback attacks via a trusted counter.

Run:  python examples/distributed_deployment.py
"""

import random

from repro.core.config import SnoopyConfig
from repro.core.deployment import DistributedSnoopy
from repro.enclave.model import Enclave
from repro.errors import AttestationError, IntegrityError, RollbackError
from repro.extensions.replication import ReplicatedSubOram
from repro.types import BatchEntry, OpType, Request


def main() -> None:
    # --- attested, encrypted deployment ---------------------------------
    # The thread backend runs the two subORAMs' sealed round trips
    # concurrently (channel state stays in-process; a "process" backend
    # would be rejected here).
    config = SnoopyConfig(
        num_load_balancers=2,
        num_suborams=2,
        value_size=8,
        security_parameter=32,
        execution_backend="thread",
    )
    deployment = DistributedSnoopy(config, rng=random.Random(0))
    deployment.initialize({k: bytes([k]) * 8 for k in range(50)})
    print("deployment up: 2 load balancers + 2 subORAMs, channels "
          "established via remote attestation "
          f"(backend: {deployment.backend.name})")

    print("read(5) over encrypted transport ->", deployment.read(5))

    # submit() hands back a Ticket that resolves when the epoch closes.
    ticket = deployment.submit(Request(OpType.READ, 6))
    deployment.run_epoch()
    print("ticketed read(6) ->", ticket.result().value)

    # A rogue enclave (wrong measurement) cannot join.
    try:
        deployment._verify_peer(Enclave("evil-imposter"))
    except AttestationError as exc:
        print(f"rogue enclave rejected: {exc}")

    # A tampering network is detected, not served.
    def tamper(balancer, suboram, nonce, sealed):
        return nonce, sealed[:-1] + bytes([sealed[-1] ^ 1])

    deployment.network_hook = tamper
    try:
        deployment.read(5)
    except IntegrityError:
        print("in-network tampering detected by the AEAD channel")
    deployment.network_hook = lambda b, s, n, c: (n, c)

    # --- replicated subORAM group (§9) -----------------------------------
    print("\nreplicated subORAM: f=1 crash + r=1 rollback tolerance "
          "(3 replicas)")
    group = ReplicatedSubOram(
        suboram_id=0, value_size=4, crash_tolerance=1, rollback_tolerance=1
    )
    group.initialize({k: bytes([k]) * 4 for k in range(10)})

    snapshot = group.snapshot(0)  # what a malicious host might capture
    group.batch_access(
        [BatchEntry(op=OpType.WRITE, key=3, value=b"v2!!", is_dummy=False)]
    )

    group.crash(1)
    group.rollback(0, snapshot)  # replica 0 serves stale state
    [resp] = group.batch_access(
        [BatchEntry(op=OpType.READ, key=3, is_dummy=False)]
    )
    assert resp.value == b"v2!!"
    print("crash + rollback survived: fresh replica's reply selected "
          f"(value {resp.value})")

    # Roll back *every* replica: the trusted counter refuses to serve.
    group.recover_from_peer(1)
    snapshots = [group.snapshot(i) for i in range(group.group_size)]
    group.batch_access(
        [BatchEntry(op=OpType.WRITE, key=3, value=b"v3!!", is_dummy=False)]
    )
    for i, snap in enumerate(snapshots):
        group.rollback(i, snap)
    try:
        group.batch_access([BatchEntry(op=OpType.READ, key=3, is_dummy=False)])
    except RollbackError as exc:
        print(f"full rollback detected: {exc}")


if __name__ == "__main__":
    main()
