#!/usr/bin/env python3
"""Capacity planning with the §6 planner and the calibrated cost model.

Given a data size and SLOs (minimum throughput, maximum mean latency),
the planner returns the cheapest (load balancers, subORAMs) split; the
epoch simulator then validates the predicted latency against a Poisson
arrival process.

Run:  python examples/capacity_planning.py
"""

import random

from repro import Planner
from repro.sim.cluster import throughput_scaling_series
from repro.sim.costmodel import obladi_throughput, oblix_throughput
from repro.sim.events import EpochSimConfig, EpochSimulator
from repro.sim.workload import poisson_arrivals


def main() -> None:
    num_objects = 2_000_000

    print("== planner: cheapest configuration per SLO ==")
    planner = Planner(num_objects)
    for throughput, latency in [(20_000, 1.0), (60_000, 1.0), (60_000, 0.5)]:
        plan = planner.plan(min_throughput=throughput, max_latency=latency)
        print(
            f"  >= {throughput / 1000:.0f}K reqs/s, <= {latency * 1e3:.0f} ms: "
            f"{plan.num_load_balancers} load balancers + "
            f"{plan.num_suborams} subORAMs  "
            f"(${plan.monthly_cost:,.0f}/month, predicts "
            f"{plan.predicted_throughput / 1000:.0f}K reqs/s @ "
            f"{plan.predicted_latency * 1e3:.0f} ms)"
        )

    print("\n== machine scaling (Fig. 9a regime, 2M x 160B) ==")
    series = throughput_scaling_series([6, 12, 18], num_objects, [0.5])
    for machines, balancers, suborams, x in series[0.5]:
        print(
            f"  {machines} machines (L={balancers}, S={suborams}): "
            f"{x / 1000:6.1f}K reqs/s"
        )
    print(f"  Obladi ceiling: {obladi_throughput(num_objects) / 1000:.1f}K; "
          f"Oblix ceiling: {oblix_throughput(num_objects) / 1000:.2f}K")

    print("\n== validating a plan with the epoch simulator ==")
    plan = planner.plan(min_throughput=40_000, max_latency=1.0)
    epoch = 2.0 * 1.0 / 5.0  # Eq. (2): T = 2 L / 5
    sim = EpochSimulator(
        EpochSimConfig(
            num_load_balancers=plan.num_load_balancers,
            num_suborams=plan.num_suborams,
            num_objects=num_objects,
            epoch_duration=epoch,
        )
    )
    stats = sim.run(poisson_arrivals(40_000, 10.0, random.Random(1)))
    print(
        f"  simulated {stats.count:,} requests at 40K reqs/s: "
        f"mean {stats.mean * 1e3:.0f} ms, p95 {stats.p95 * 1e3:.0f} ms, "
        f"p99 {stats.p99 * 1e3:.0f} ms (bound 5T/2 = {5 * epoch / 2 * 1e3:.0f} ms)"
    )
    assert stats.mean <= 5 * epoch / 2, "plan must meet the Eq. (2) bound"
    print("  plan meets its latency bound under Poisson arrivals")


if __name__ == "__main__":
    main()
