#!/usr/bin/env python3
"""Quickstart: stand up a Snoopy deployment and issue oblivious reads/writes.

Run:  python examples/quickstart.py
"""

import random

from repro import Client, OpType, Request, Snoopy, SnoopyConfig


def main() -> None:
    # A deployment with 2 load balancers and 3 subORAMs (5 "machines").
    # security_parameter=32 keeps the dummy padding small for a demo;
    # production would use 128 (the library default).
    # execution_backend picks how epoch stages run: "serial" (reference),
    # "thread[:N]" (overlap blocking work), "process[:N]" (multi-core).
    # kernel picks how each oblivious schedule executes: "python" (the
    # traced scalar reference) or "numpy" (vectorized structure-of-arrays
    # passes over the same schedule).  Results are byte-identical across
    # backends and kernels.
    config = SnoopyConfig(
        num_load_balancers=2,
        num_suborams=3,
        value_size=16,
        security_parameter=32,
        execution_backend="thread:4",
        kernel="numpy",
    )
    store = Snoopy(config, rng=random.Random(0))

    # Load 1,000 objects. Initialization shards them across subORAMs by a
    # keyed hash the cloud never sees.
    store.initialize({key: f"value-{key:06d}".ljust(16).encode() for key in range(1000)})
    print(f"initialized {store.num_objects} objects across "
          f"{config.num_suborams} subORAMs "
          f"(backend: {store.backend.name}, kernel: {config.kernel})")

    # Single-request epochs.
    print("read(7)      ->", store.read(7))
    prior = store.write(7, b"overwritten!!!!!")
    print("write(7)     -> prior value", prior)
    print("read(7)      ->", store.read(7))

    # The asynchronous front door: submit() returns a Ticket immediately;
    # the response exists once the epoch closes.
    ticket = store.submit(Request(OpType.READ, 9))
    print("submitted    ->", ticket)
    store.run_epoch()
    print("resolved     ->", ticket.result().value)

    # A realistic epoch: many clients, duplicate keys, mixed ops.  The
    # load balancer deduplicates, pads each subORAM batch to the same
    # public size f(R, S), and matches responses back.
    requests = []
    for i in range(20):
        key = [3, 3, 3, 5, 9][i % 5]  # heavily skewed on purpose
        if i % 4 == 0:
            requests.append(Request(OpType.WRITE, key, b"x" * 16, seq=i))
        else:
            requests.append(Request(OpType.READ, key, seq=i))
    responses = store.batch(requests)
    print(f"batch of {len(requests)} skewed requests -> "
          f"{len(responses)} responses, all served")

    # The Client wrapper tracks sequence numbers and builds histories for
    # the linearizability checker.
    client = Client(store)
    client.write(42, b"hello snoopy 42!")
    print("client.read(42) ->", client.read(42))
    print(f"client history: {len(client.history)} completed operations")

    print(f"epochs executed: {store.counter.value} "
          "(one trusted-counter bump each)")
    store.close()  # release the thread pool


if __name__ == "__main__":
    main()
