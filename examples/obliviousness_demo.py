#!/usr/bin/env python3
"""See obliviousness: identical access traces for different secrets.

Runs the load balancer's batch pipeline twice — once on a uniform
workload, once on an all-duplicates workload for a single hot object —
records every memory address touched, and shows the traces are *equal*.
Then does the same for bitonic sort, and shows a contrast: a naive
(non-oblivious) filter whose trace gives the secret away.

Run:  python examples/obliviousness_demo.py
"""

import random

from repro.loadbalancer.batching import generate_batches
from repro.oblivious.memory import AccessTrace, TracedMemory
from repro.oblivious.sort import bitonic_sort
from repro.tools.traceview import diff_summary, shade_strip
from repro.types import OpType, Request

KEY = b"demo-sharding-key-0123456789abcd"


def collect(workload):
    trace = AccessTrace()
    generate_batches(
        workload, 3, KEY, security_parameter=16,
        mem_factory=lambda items, t=trace: TracedMemory(items, trace=t),
    )
    return trace


def main() -> None:
    rng = random.Random(0)

    print("== load balancer batch pipeline: 24 requests, 3 subORAMs ==")
    uniform = [Request(OpType.READ, k, seq=i)
               for i, k in enumerate(rng.sample(range(10**6), 24))]
    hot = [Request(OpType.READ, 7, seq=i) for i in range(24)]
    t_uniform, t_hot = collect(uniform), collect(hot)
    print(f"uniform workload : {shade_strip(t_uniform)}")
    print(f"hot-key workload : {shade_strip(t_hot)}")
    equal, summary = diff_summary(t_uniform, t_hot)
    print(summary)
    assert equal

    print("\n== bitonic sort: sorted vs reversed input ==")
    def sort_trace(data):
        trace = AccessTrace()
        bitonic_sort(
            data,
            mem_factory=lambda items, t=trace: TracedMemory(items, trace=t),
        )
        return trace

    t_sorted = sort_trace(list(range(32)))
    t_reversed = sort_trace(list(range(31, -1, -1)))
    equal, summary = diff_summary(t_sorted, t_reversed)
    print(summary)
    assert equal

    print("\n== the contrast: a NAIVE filter leaks ==")
    def naive_filter_trace(flags):
        trace = AccessTrace()
        memory = TracedMemory(list(range(len(flags))), trace=trace)
        kept = []
        for i, flag in enumerate(flags):
            if flag:  # data-dependent branch: the access pattern leaks!
                kept.append(memory[i])
        return trace

    t_few = naive_filter_trace([1, 0, 0, 0, 0, 0, 0, 0])
    t_many = naive_filter_trace([1, 1, 1, 1, 1, 1, 1, 0])
    equal, summary = diff_summary(t_few, t_many)
    print(summary)
    assert not equal
    print("-> the naive filter's trace reveals how many (and which) items "
          "matched; Goodrich compaction exists to close exactly this leak")


if __name__ == "__main__":
    main()
