"""Figure 9a + §8.2 headline: throughput scaling with machines.

Paper (2M 160-byte objects):
  * 18 machines -> 68K reqs/s (300 ms), 92K (500 ms), 130K (1 s);
  * Obladi caps at 6,716 reqs/s (2 machines), Oblix at 1,153 (1 machine);
  * Snoopy passes Obladi by ~6 machines at 300 ms and beats it 13.7x at
    500 ms with 18 machines.
"""

import pytest

from repro.sim.cluster import throughput_scaling_series
from repro.sim.costmodel import obladi_throughput, oblix_throughput

from conftest import report

MACHINES = list(range(4, 19))
LATENCIES = [0.3, 0.5, 1.0]
NUM_OBJECTS = 2_000_000


@pytest.fixture(scope="module")
def series():
    return throughput_scaling_series(MACHINES, NUM_OBJECTS, LATENCIES)


def test_fig09a_series(benchmark, series):
    result = benchmark(
        throughput_scaling_series, [4, 18], NUM_OBJECTS, [0.5]
    )
    assert result[0.5][-1][3] > result[0.5][0][3]

    obladi = obladi_throughput(NUM_OBJECTS)
    oblix = oblix_throughput(NUM_OBJECTS)
    lines = [
        "machines  300ms (L+S)        500ms (L+S)        1s (L+S)",
    ]
    for i, m in enumerate(MACHINES):
        cells = []
        for lat in LATENCIES:
            _, l, s, x = series[lat][i]
            cells.append(f"{x / 1000:7.1f}K ({l}+{s})")
        lines.append(f"{m:<9} " + "   ".join(cells))
    lines.append(f"Obladi (2 machines): {obladi / 1000:.1f}K reqs/s")
    lines.append(f"Oblix  (1 machine):  {oblix / 1000:.2f}K reqs/s")
    report("Fig 9a — throughput vs machines (2M x 160B)", "\n".join(lines))


def test_headline_92k_at_500ms(series):
    _, _, _, x = series[0.5][-1]
    assert 70_000 < x < 115_000, f"expected ~92K reqs/s, got {x:,.0f}"


def test_headline_13x_over_obladi(series):
    _, _, _, x = series[0.5][-1]
    ratio = x / obladi_throughput(NUM_OBJECTS)
    assert ratio > 10, f"expected ~13.7x over Obladi, got {ratio:.1f}x"


def test_snoopy_crosses_obladi_with_few_machines(series):
    """Paper: Snoopy outperforms Obladi with >= 6 machines at 300 ms."""
    obladi = obladi_throughput(NUM_OBJECTS)
    crossing = next(
        m for m, _, _, x in series[0.3] if x > obladi
    )
    assert crossing <= 8

    oblix = oblix_throughput(NUM_OBJECTS)
    crossing_oblix = next(m for m, _, _, x in series[0.3] if x > oblix)
    assert crossing_oblix <= 6  # paper: >= 5 machines


def test_per_machine_gain(series):
    """Paper: each machine adds ~8.6K reqs/s at 1 s latency."""
    rows = series[1.0]
    gain = (rows[-1][3] - rows[0][3]) / (MACHINES[-1] - MACHINES[0])
    assert 4_000 < gain < 13_000, f"per-machine gain {gain:,.0f}"


def test_relaxing_latency_helps(series):
    for i in range(len(MACHINES)):
        assert series[0.3][i][3] <= series[0.5][i][3] <= series[1.0][i][3]
