"""Table 8: qualitative comparison of Redis, Obladi, Oblix, and Snoopy.

The table's properties are demonstrated *executably*: obliviousness via
fixed batch shapes / visible access logs, proxy requirements via the
architectures, throughput and scaling via the calibrated models.
"""

import random

import pytest

from repro.baselines.plaintext import PlaintextStore
from repro.core.config import SnoopyConfig
from repro.core.snoopy import Snoopy
from repro.sim.costmodel import (
    best_split,
    obladi_throughput,
    oblix_throughput,
    redis_throughput,
)
from repro.types import OpType, Request

from conftest import report

ROWS = [
    # system, oblivious, no trusted proxy, high throughput, scales
    ("Redis", False, True, True, True),
    ("Obladi", True, False, True, False),
    ("Oblix", True, True, False, False),
    ("Snoopy", True, True, True, True),
]


def test_table08(benchmark):
    benchmark(lambda: [oblix_throughput(2_000_000) for _ in range(3)])

    def mark(flag):
        return "yes" if flag else "no "

    lines = ["system   oblivious  no-proxy  high-tput  scales"]
    for name, obl, noproxy, tput, scales in ROWS:
        lines.append(
            f"{name:<8} {mark(obl):<10} {mark(noproxy):<9} "
            f"{mark(tput):<10} {mark(scales)}"
        )
    report("Table 8 — baseline comparison", "\n".join(lines))


def test_redis_not_oblivious():
    """Redis leaks which object each request touches."""
    store = PlaintextStore(4)
    store.initialize({k: bytes([k]) for k in range(16)})
    store.read(3)
    store.read(3)
    assert store.access_log[0] == store.access_log[1]  # repeats visible


def test_snoopy_oblivious_batch_shape():
    """Snoopy's per-subORAM batch size is identical for any workload."""
    sizes = []
    for workload in ([1, 2, 3, 4, 5], [9, 9, 9, 9, 9]):
        store = Snoopy(
            SnoopyConfig(num_suborams=2, value_size=4, security_parameter=32),
            rng=random.Random(1),
        )
        store.initialize({k: bytes(4) for k in range(10)})
        observed = []
        for so in store.suborams:
            original = so.batch_access
            so.batch_access = (
                lambda batch, _orig=original: (observed.append(len(batch)), _orig(batch))[1]
            )
        store.batch([Request(OpType.READ, k, seq=i) for i, k in enumerate(workload)])
        sizes.append(observed)
    assert sizes[0] == sizes[1]


def test_throughput_ordering():
    """Redis >> Snoopy > Obladi > Oblix at comparable scale."""
    snoopy = best_split(18, 2_000_000, 0.5)[2]
    assert redis_throughput(15) > snoopy > obladi_throughput(2_000_000) > (
        oblix_throughput(2_000_000)
    )


def test_only_snoopy_and_redis_scale():
    """Obladi/Oblix are single-pipeline: model throughput is machine-flat."""
    assert obladi_throughput(2_000_000) == obladi_throughput(2_000_000)
    snoopy_small = best_split(4, 2_000_000, 1.0)[2]
    snoopy_large = best_split(16, 2_000_000, 1.0)[2]
    assert snoopy_large > 2 * snoopy_small
    assert redis_throughput(16) > 2 * redis_throughput(4)


def test_oram_family_amortized_work():
    """Why the scan subORAM wins: amortized touched-slots per access for
    the classic ORAM families vs Snoopy's batch-amortized scan."""
    from repro.baselines.sqrtoram import SqrtOram
    from repro.baselines.pathoram import PathOram

    n = 4096
    batch = 512
    sqrt_oram = SqrtOram(n)
    path_oram = PathOram(n)
    scan_per_request = n * 2 / batch  # one scan + rewrite over the batch

    path_work = 2 * path_oram.path_length_blocks()  # read + write back
    sqrt_work = sqrt_oram.amortized_work_per_access()

    # Tree ORAMs beat the scan per *single* request...
    assert path_work < n
    # ...but at Snoopy's batch sizes the amortized scan is cheaper than
    # the hierarchical family's reshuffle-dominated cost.
    assert scan_per_request < sqrt_work
