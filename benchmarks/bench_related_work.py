"""Related-work comparison (§10): every ORAM family, measured.

One table across the families the paper positions itself against, with
*functionally measured* per-operation characteristics (not just the cost
model): server work per access, coordination events, and the structural
bottleneck each design hits.  Demonstrates executably why Snoopy's
batch-scan + stateless-balancer design is the only one whose bottleneck
disappears with machines.
"""

import random

import pytest

from repro.baselines.circuitoram import CircuitOram
from repro.baselines.obladi import ObladiProxy
from repro.baselines.pancake import PancakeProxy
from repro.baselines.pathoram import PathOram
from repro.baselines.prooram import ProOram
from repro.baselines.querylog import QueryLogOram
from repro.baselines.ringoram import RingOram
from repro.baselines.sqrtoram import SqrtOram
from repro.baselines.taostore import TaoStoreProxy
from repro.types import OpType, Request

from conftest import report

N = 256
OPS = 200


def _uniform_dist(n):
    return {k: 1.0 / n for k in range(n)}


def run_ops(store, rng, write_ok=True):
    for i in range(OPS):
        key = rng.randrange(N)
        if write_ok and rng.random() < 0.3:
            store.write(key, bytes([i % 256]))
        else:
            store.read(key)


def test_related_work_table(benchmark):
    rng = random.Random(1)
    objects = {k: bytes([k % 256]) for k in range(N)}

    path = PathOram(N, rng=random.Random(2))
    path.initialize(dict(objects))
    run_ops(path, rng)

    ring = RingOram(N, rng=random.Random(3))
    ring.initialize(dict(objects))
    run_ops(ring, rng)

    circuit = CircuitOram(N, rng=random.Random(12))
    circuit.initialize(dict(objects))
    run_ops(circuit, rng)

    sqrt = SqrtOram(N, rng=random.Random(4))
    sqrt.initialize(dict(objects))
    run_ops(sqrt, rng)

    tao = TaoStoreProxy(N, rng=random.Random(5))
    tao.initialize(dict(objects))
    run_ops(tao, rng)

    qlog = QueryLogOram(N, rng=random.Random(6))
    qlog.initialize(dict(objects))
    run_ops(qlog, rng)

    pancake = PancakeProxy(dict(objects), _uniform_dist(N),
                           rng=random.Random(7))
    run_ops(pancake, rng)

    pro = ProOram(dict(objects), rng=random.Random(8))
    run_ops(pro, rng, write_ok=False)

    def quick_obladi():
        proxy = ObladiProxy(N, batch_size=16, rng=random.Random(9))
        proxy.initialize(dict(objects))
        proxy.batch([Request(OpType.READ, k % N, seq=k) for k in range(32)])
        return proxy

    obladi = benchmark(quick_obladi)

    rows = [
        "family          coordination point       measured notes",
        f"Path ORAM       position map (client)    {path.path_length_blocks()} blocks/path",
        f"Ring ORAM       position map + evict     {ring.evictions} evictions, {ring.early_reshuffles} reshuffles",
        f"Circuit ORAM    position map + evict     {circuit.evictions} single-pass evictions, stash {circuit.stash_size}",
        f"sqrt ORAM       periodic reshuffle       {sqrt.reshuffles} reshuffles / {sqrt.accesses} ops",
        f"TaoStore        proxy sequencer          {tao.sequenced} sequenced, {tao.paths_fetched} paths",
        f"PrivateFS-like  encrypted query log      {qlog.log_scans} log scans, {qlog.commits} commits",
        f"Obladi          proxy + fixed batches    {obladi.batches_executed} batches, {obladi.dummy_accesses} dummy accesses",
        f"Pancake         proxy + distribution     {pancake.num_replicas} replicas, smooth={pancake.smoothness():.2f}",
        f"PRO-ORAM        read-only, bg shuffle    {pro.background_shuffles} bg shuffles (writes rejected)",
        "Snoopy          none (stateless LBs)     batch shape public; scans parallel",
    ]
    report("Related work (§10) — measured coordination structure", "\n".join(rows))

    # Executable claims behind the table.
    assert tao.sequenced == OPS
    assert qlog.log_scans == OPS
    assert sqrt.reshuffles >= sqrt.accesses // sqrt.shelter_size
    # Smoothness needs enough samples per replica to mean anything; run a
    # dedicated, denser workload for the assertion.
    dense = PancakeProxy(
        {k: bytes([k]) for k in range(32)},
        _uniform_dist(32),
        rng=random.Random(11),
    )
    dense_rng = random.Random(12)
    for _ in range(3000):
        dense.read(dense_rng.randrange(32))
    assert dense.smoothness() < 2.0  # uniform workload stays smooth


def test_only_snoopy_avoids_per_request_coordination():
    """Every baseline has a component touched by *every* request; Snoopy's
    load balancers partition requests instead (no shared state)."""
    from repro.core.config import SnoopyConfig
    from repro.core.snoopy import Snoopy

    store = Snoopy(
        SnoopyConfig(num_load_balancers=2, num_suborams=2, value_size=1,
                     security_parameter=16),
        rng=random.Random(10),
    )
    store.initialize({k: bytes(1) for k in range(N)})
    # Requests split across balancers; neither sees the other's queue.
    store.submit(Request(OpType.READ, 1, seq=0), load_balancer=0)
    store.submit(Request(OpType.READ, 2, seq=1), load_balancer=1)
    assert store.load_balancers[0].pending == 1
    assert store.load_balancers[1].pending == 1
