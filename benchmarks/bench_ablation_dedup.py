"""Ablation: deduplication is what makes f(R,S) < R safe (§4.1).

Without dedup, an all-duplicates workload forces every request into one
subORAM, so the only safe batch size is B = R ("a simple way to satisfy
security would be to set f(R,S) = R") — every subORAM then processes R
requests.  With dedup, duplicates collapse and Theorem 3 applies.  This
bench runs the *functional* load balancer both ways and counts actual
subORAM work.
"""

import random

import pytest

from repro.analysis.balls_bins import batch_size
from repro.loadbalancer.batching import generate_batches
from repro.types import OpType, Request

from conftest import report

KEY = b"ablation-sharding-key-0123456789"
R = 512
S = 8


def skewed_requests():
    return [Request(OpType.READ, 7, seq=i) for i in range(R)]


def uniform_requests():
    rng = random.Random(1)
    return [
        Request(OpType.READ, rng.randrange(10**6), seq=i) for i in range(R)
    ]


def test_ablation_dedup(benchmark):
    batches, _, size = benchmark(
        generate_batches, skewed_requests(), S, KEY, 32
    )

    with_dedup_work = S * size
    without_dedup_work = S * R  # f(R,S)=R is the only safe no-dedup size
    lines = [
        f"workload: {R} requests, all for one object, {S} subORAMs",
        f"  with dedup   : B = f(R,S) = {size}; total subORAM work "
        f"{with_dedup_work} request-slots",
        f"  without dedup: B must be R = {R}; total subORAM work "
        f"{without_dedup_work} request-slots",
        f"  saving: {without_dedup_work / with_dedup_work:.1f}x",
    ]
    report("Ablation — deduplication under skew", "\n".join(lines))

    assert size == batch_size(R, S, 32)
    assert with_dedup_work < without_dedup_work / 2


def test_dedup_collapses_skew_to_one_real_request():
    batches, _, _ = generate_batches(skewed_requests(), S, KEY, 32)
    real = [e for b in batches for e in b if not e.is_dummy]
    assert len(real) == 1


def test_uniform_workload_same_shape_as_skewed():
    """Whatever the workload, every subORAM sees exactly B entries."""
    skew_batches, _, skew_size = generate_batches(
        skewed_requests(), S, KEY, 32
    )
    uni_batches, _, uni_size = generate_batches(
        uniform_requests(), S, KEY, 32
    )
    assert skew_size == uni_size
    assert [len(b) for b in skew_batches] == [len(b) for b in uni_batches]
