"""Figure 4: total real-request capacity per epoch vs number of subORAMs.

Paper: capacity grows with S but sublinearly for lambda > 0 (the insecure
lambda=0 line is exactly 1K x S); security costs real capacity.
"""

from repro.analysis.overhead import capacity_curve

from conftest import report

MAX_SUBORAMS = 20
BUDGET = 1000  # <= 1K requests per subORAM per epoch, as in the paper


def test_fig04_capacity(benchmark):
    curves = benchmark(capacity_curve, MAX_SUBORAMS, BUDGET)

    lines = ["S    lambda=0   lambda=80  lambda=128"]
    for s in (1, 2, 5, 10, 15, 20):
        lines.append(
            f"{s:<4} {curves[0][s - 1]:<10} {curves[80][s - 1]:<10} "
            f"{curves[128][s - 1]:<10}"
        )
    report("Fig 4 — real request capacity (budget 1K/subORAM)", "\n".join(lines))

    insecure = curves[0]
    assert insecure == [BUDGET * s for s in range(1, MAX_SUBORAMS + 1)]
    for lam in (80, 128):
        curve = curves[lam]
        assert all(b >= a for a, b in zip(curve, curve[1:])), "monotone in S"
        assert all(c <= i for c, i in zip(curve, insecure)), "security costs capacity"
        # Sublinear: doubling S from 10 to 20 less than doubles capacity.
        assert curve[19] < 2 * curve[9]
    assert all(a >= b for a, b in zip(curves[80], curves[128]))
