"""Oblivious-kernel throughput: scalar python reference vs NumPy SoA.

Two measurements on a Fig. 13c-style workload (R requests over S
subORAMs holding N objects):

* **kernel wall-clock** — the three oblivious primitives (bitonic sort,
  Goodrich compaction, Figure 19 scan) timed directly through the kernel
  API on the array shapes that workload induces: the load balancer's
  padded sort/compact over ``R + S*f(R,S)`` entries and each subORAM's
  scan over its ``N/S``-object shard.  This isolates the data plane the
  kernels replace; the acceptance bar is >= 3x at S=8.
* **end-to-end epochs** — full deployments (serial backend, no latency
  wrapper) run under each kernel.  The python row is the reference
  configuration (python kernel, batched HMAC crypto); the numpy row
  pairs the SoA kernel with the counter-mode crypto kernel
  (``crypto="vector"``, :class:`~repro.crypto.vector.VectorAead`) —
  the fast data plane the execute stage actually deploys — so the
  epoch speedup measures both axes together rather than being damped
  by a shared per-slot AEAD floor.

A third section composes the kernel with the thread execution backend
via :func:`~repro.sim.cluster.epoch_wallclock_series`, confirming the
two axes multiply.  Results land in ``BENCH_kernels.json``; set
``SNOOPY_BENCH_SMOKE=1`` for CI's reduced sizes.
"""

import json
import os
import pathlib
import random
import time

from repro.analysis.balls_bins import batch_size
from repro.core.config import SnoopyConfig
from repro.core.snoopy import Snoopy
from repro.oblivious.kernels import KERNELS, ScanTable
from repro.sim.cluster import epoch_wallclock_series
from repro.types import OpType, Request

from conftest import report

SMOKE = os.environ.get("SNOOPY_BENCH_SMOKE") == "1"

SUBORAM_COUNTS = [2, 4] if SMOKE else [2, 4, 8]
NUM_OBJECTS = 1024 if SMOKE else 4096
REQUESTS = 256 if SMOKE else 512
VALUE_SIZE = 16
SECURITY = 32
# The speedup floor asserted at the largest S (the ISSUE's acceptance
# bar); smoke sizes are too small for the full ratio, so CI only checks
# that the fast path wins at all.
KERNEL_SPEEDUP_FLOOR = 1.5 if SMOKE else 3.0


def _timed(fn, *args, repeats=3, **kwargs):
    """Best-of-``repeats`` wall-clock for one call."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best


def _kernel_stage_time(kernel, suborams, rng):
    """Sort + compact + scan wall-clock on the shapes S induces."""
    kern = KERNELS[kernel]
    # Load-balancer shape: R real requests padded with S*f(R,S) dummies,
    # sorted on (suboram, dummy bit, key) then compacted back down.
    padded = REQUESTS + suborams * batch_size(REQUESTS, suborams, SECURITY)
    items = list(range(padded))
    columns = [
        [rng.randrange(suborams) for _ in range(padded)],
        [rng.randrange(2) for _ in range(padded)],
        [rng.randrange(NUM_OBJECTS) for _ in range(padded)],
    ]
    flags = [rng.randrange(2) for _ in range(padded)]
    total = _timed(kern.sort, items, columns)
    total += _timed(kern.compact, items, flags)
    # SubORAM shape: each shard scans its N/S objects against a batch
    # table of 2*f(R,S) slots, two candidate slots per object.
    shard = NUM_OBJECTS // suborams
    slots = 2 * batch_size(REQUESTS, suborams, SECURITY)
    obj_keys = list(range(shard))
    obj_values = [bytes(VALUE_SIZE) for _ in range(shard)]
    table = ScanTable(
        keys=[rng.randrange(shard) for _ in range(slots)],
        occupied=[1] * slots,
        is_write=[rng.randrange(2) for _ in range(slots)],
        permitted=[1] * slots,
        values=[bytes(VALUE_SIZE) for _ in range(slots)],
    )
    lookup = [
        [rng.randrange(slots), (rng.randrange(slots - 1) + 1 + s) % slots]
        for s in range(shard)
    ]
    total += _timed(
        kern.scan, obj_keys, obj_values, VALUE_SIZE, lookup, table
    )
    return total


def _epoch_time(kernel, suborams, crypto="batched", epochs=3):
    """Best-of-``epochs`` epoch wall-clock under ``kernel``.

    Best-of matches :func:`_timed`: each epoch does identical work, so
    the minimum is the least-noise estimate of the steady state.
    """
    config = SnoopyConfig(
        num_load_balancers=2,
        num_suborams=suborams,
        value_size=VALUE_SIZE,
        kernel=kernel,
        crypto=crypto,
    )
    rng = random.Random(3)
    with Snoopy(config, rng=random.Random(3)) as store:
        store.initialize({k: bytes(VALUE_SIZE) for k in range(NUM_OBJECTS)})
        # Warm up at the measured shape so one-time work keyed on array
        # sizes (memoized bitonic level schedules, scratch allocation)
        # happens outside the clock — the timed epochs are steady state.
        for _ in range(REQUESTS):
            store.submit(
                Request(OpType.READ, rng.randrange(NUM_OBJECTS)),
                load_balancer=rng.randrange(2),
            )
        store.run_epoch()
        best = float("inf")
        for _ in range(epochs):
            for _ in range(REQUESTS):
                store.submit(
                    Request(OpType.READ, rng.randrange(NUM_OBJECTS)),
                    load_balancer=rng.randrange(2),
                )
            start = time.perf_counter()
            store.run_epoch()
            best = min(best, time.perf_counter() - start)
        return best


def test_kernel_speedup():
    """python vs numpy: kernel wall-clock and end-to-end epochs per S."""
    results = {}
    for suborams in SUBORAM_COUNTS:
        row = {}
        for kernel in ("python", "numpy"):
            rng = random.Random(suborams)
            row[f"{kernel}_kernel_s"] = _kernel_stage_time(
                kernel, suborams, rng
            )
            # The numpy epoch row deploys the full fast data plane:
            # SoA kernel + counter-mode vector crypto.
            row[f"{kernel}_epoch_s"] = _epoch_time(
                kernel,
                suborams,
                crypto="vector" if kernel == "numpy" else "batched",
            )
        row["kernel_speedup"] = (
            row["python_kernel_s"] / max(row["numpy_kernel_s"], 1e-9)
        )
        row["epoch_speedup"] = (
            row["python_epoch_s"] / max(row["numpy_epoch_s"], 1e-9)
        )
        results[suborams] = row

    lines = [
        "S     py-kernel   np-kernel   speedup |  py-epoch    np-epoch    speedup"
    ]
    for suborams, row in results.items():
        lines.append(
            f"{suborams:<4} {row['python_kernel_s'] * 1e3:>9.1f}ms "
            f"{row['numpy_kernel_s'] * 1e3:>9.1f}ms "
            f"{row['kernel_speedup']:>7.1f}x | "
            f"{row['python_epoch_s'] * 1e3:>9.1f}ms "
            f"{row['numpy_epoch_s'] * 1e3:>9.1f}ms "
            f"{row['epoch_speedup']:>7.1f}x"
        )
    report("Oblivious kernels — numpy SoA vs python reference", "\n".join(lines))

    # Kernel x execution backend: the two speedups compose.
    combined = {}
    stages = {}
    for kernel in ("python", "numpy"):
        stage_sink = {}
        series = epoch_wallclock_series(
            ["serial", "thread"],
            num_load_balancers=2,
            num_suborams=4,
            num_objects=64 if SMOKE else 128,
            requests_per_epoch=16 if SMOKE else 32,
            epochs=2,
            batch_delay=0.01,
            kernel=kernel,
            stage_sink=stage_sink,
        )
        combined[kernel] = {
            "serial_s": series["serial"],
            "thread_s": series["thread"],
            "thread_speedup": series["serial"] / max(series["thread"], 1e-9),
        }
        stages[kernel] = stage_sink

    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_kernels.json"
    out.write_text(json.dumps(
        {
            "benchmark": "oblivious_kernel_speedup",
            "smoke": SMOKE,
            "num_objects": NUM_OBJECTS,
            "requests_per_epoch": REQUESTS,
            "value_size": VALUE_SIZE,
            "results": {str(s): row for s, row in results.items()},
            "kernel_x_backend": combined,
            "stages": stages,
        },
        indent=2,
    ) + "\n")

    largest = results[max(results)]
    assert largest["kernel_speedup"] >= KERNEL_SPEEDUP_FLOOR, largest
    # End-to-end epochs carry AEAD and packing overhead both kernels
    # share, so the bar is lower — but the fast path must still win.
    assert largest["epoch_speedup"] > 1.0, largest
