"""Scenario factory benchmarks: traces, the tuner, and the §3.2 apps.

Three phases, all seeded and all feeding ``BENCH_workloads.json``:

* **traces** — record/parse throughput of the JSONL trace format (the
  cost of making every workload replayable);
* **tuner** — the replay-driven tuner on two adversarial traces (a
  Zipf hot-key stream and a flash-crowd spike), reporting the chosen
  config, its modelled and measured rps, the measured speedup over the
  library default, and a reproduction check of the emitted config;
* **scenarios** — the paper's §3.2 applications (key transparency,
  private contact discovery) run end to end as workloads.  The full run
  uses production scale — ≥1M stored objects each (2^19 users ⇒ ~1.57M
  tree objects; 2^20 directory buckets) — driven by Zipf-hot request
  streams; ``SNOOPY_BENCH_SMOKE=1`` shrinks both for CI.

The tuner rows double as the acceptance check for ``python -m repro
tune``: replaying the emitted best config must reproduce the reported
throughput (digest-identical responses; rps within the recorded
relative error).
"""

import json
import os
import pathlib
import time

from repro.workloads import (
    TunerSweep,
    WorkloadSpec,
    dumps_trace,
    loads_trace,
    record_trace,
    tune,
    verify_reproduction,
)
from repro.workloads.scenarios import (
    contact_discovery_scenario,
    key_transparency_scenario,
)

from conftest import report

SMOKE = os.environ.get("SNOOPY_BENCH_SMOKE") == "1"

TRACE_REQUESTS = 300 if SMOKE else 1_200
# Arrival rate sized so every trace spans many epochs at every swept
# epoch_duration — single-epoch traces make pipelining unmeasurable and
# the replay wall-clock pure noise.
TRACE_RATE = 400.0 if SMOKE else 1_200.0
# Best-of-2 even in smoke: the first replay of a config pays one-time
# warmup (kernel import, pool spinup) that would otherwise dominate the
# reproduction check.
TUNE_REPEATS = 2

# §3.2 application scale: the full run crosses the paper's 1M-object
# mark in both apps; smoke shrinks ~100x for CI wall-clock.
KT_USERS = 1 << 12 if SMOKE else 1 << 19
KT_LOOKUPS = 6 if SMOKE else 4
CD_KEY_SPACE = 1 << 14 if SMOKE else 1 << 20
CD_REGISTERED = 2_000 if SMOKE else 100_000
CD_BATCHES = 2
CD_CONTACTS = 32 if SMOKE else 48

SWEEP = TunerSweep(
    epoch_durations=(0.05, 0.1, 0.2),
    pipeline_depths=(1, 2),
    kernels=("python", "numpy"),
    backends=("serial", "thread:4"),
)

HOT_KEY_SPEC = WorkloadSpec(
    distribution="zipf", num_keys=256, zipf_exponent=1.2,
    write_fraction=0.5, value_size=16,
)


def _trace_phase():
    """Record/serialize/parse throughput of the trace format."""
    started = time.perf_counter()
    trace = record_trace(HOT_KEY_SPEC, TRACE_REQUESTS, seed=5, rate=TRACE_RATE)
    record_s = time.perf_counter() - started
    started = time.perf_counter()
    text = dumps_trace(trace)
    dump_s = time.perf_counter() - started
    started = time.perf_counter()
    loaded = loads_trace(text)
    load_s = time.perf_counter() - started
    assert dumps_trace(loaded) == text  # byte-stable round trip
    return {
        "records": len(trace),
        "bytes": len(text),
        "record_s": record_s,
        "dump_s": dump_s,
        "load_s": load_s,
        "records_per_s_parse": len(trace) / load_s if load_s > 0 else 0.0,
        "checksum": trace.checksum(),
    }


def _tuner_phase(name, trace):
    """Tune one trace, then verify the emitted config reproduces."""
    started = time.perf_counter()
    result = tune(trace, sweep=SWEEP, measure=True, repeats=TUNE_REPEATS)
    tune_s = time.perf_counter() - started
    verdict = verify_reproduction(
        trace, result, repeats=TUNE_REPEATS, tolerance=0.5,
    )
    measured = result.measured
    return {
        "trace": name,
        "records": len(trace),
        "trace_checksum": result.trace_checksum,
        "best": result.best.to_dict(),
        "tune_s": tune_s,
        "candidates": len(result.scores),
        "measured_rps": measured["best_rps"],
        "default_rps": measured["default_rps"],
        "speedup_over_default": measured["speedup_over_default"],
        "reproduction": verdict,
    }


def test_workload_scenarios():
    """Trace format, tuner value, and the §3.2 apps as workloads."""
    traces = _trace_phase()

    zipf_trace = record_trace(
        HOT_KEY_SPEC, TRACE_REQUESTS, seed=5, rate=TRACE_RATE
    )
    flash_trace = record_trace(
        HOT_KEY_SPEC, TRACE_REQUESTS, seed=6,
        arrival="flash_crowd", rate=TRACE_RATE / 2,
        arrival_params={"spike_factor": 8.0, "spike_at": 0.3,
                        "spike_length": 0.2},
    )
    tuner_rows = [
        _tuner_phase("zipf_poisson", zipf_trace),
        _tuner_phase("zipf_flash_crowd", flash_trace),
    ]

    kt = key_transparency_scenario(
        num_users=KT_USERS, lookups=KT_LOOKUPS, seed=1,
    )
    cd = contact_discovery_scenario(
        key_space=CD_KEY_SPACE, registered=CD_REGISTERED,
        batches=CD_BATCHES, contacts_per_batch=CD_CONTACTS, seed=1,
    )

    lines = [
        f"trace format : {traces['records']} records, "
        f"{traces['bytes']} bytes, parse "
        f"{traces['records_per_s_parse']:,.0f} rec/s",
    ]
    for row in tuner_rows:
        best = row["best"]
        lines.append(
            f"tuner {row['trace']:<17}: best "
            f"({best['epoch_duration']}s, depth {best['pipeline_depth']}, "
            f"{best['kernel']}, {best['backend']}) "
            f"{row['measured_rps']:,.0f} rps "
            f"({row['speedup_over_default']:.2f}x default, reproduction "
            f"err {row['reproduction']['relative_error']:.1%})"
        )
    lines.append(
        f"key transparency : {kt['num_objects']:,} objects, "
        f"{kt['verified']}/{kt['lookups']} proofs verified, "
        f"{kt['lookups_per_s']:.2f} lookups/s "
        f"(build {kt['build_s']:.1f}s)"
    )
    lines.append(
        f"contact discovery: {cd['num_objects']:,} buckets, "
        f"{cd['hits']}/{cd['queries']} hits "
        f"({cd['duplicate_contacts']} hot duplicates), "
        f"{cd['queries_per_s']:.2f} queries/s "
        f"(build {cd['build_s']:.1f}s)"
    )
    report(
        "Scenario factory — traces, tuner, §3.2 apps under skew",
        "\n".join(lines),
    )

    out = pathlib.Path(__file__).resolve().parent.parent / (
        "BENCH_workloads.json"
    )
    out.write_text(json.dumps(
        {
            "benchmark": "workloads",
            "smoke": SMOKE,
            "traces": traces,
            "tuner": tuner_rows,
            "scenarios": {"key_transparency": kt, "contact_discovery": cd},
        },
        indent=2,
    ) + "\n")

    # Acceptance: the tuner's emitted config reproduces (identical
    # response bytes; throughput within the recorded tolerance), both
    # apps served every request correctly, and the full run really
    # crossed the 1M-object mark in both scenarios.
    for row in tuner_rows:
        assert row["reproduction"]["digest_matches"], row
        assert row["reproduction"]["within_tolerance"], row
        assert row["measured_rps"] > 0, row
    assert kt["verified"] == kt["lookups"], kt
    assert cd["queries"] == CD_BATCHES * CD_CONTACTS, cd
    assert cd["duplicate_contacts"] > 0, cd  # skew really produced dupes
    if not SMOKE:
        assert kt["num_objects"] >= 1_000_000, kt
        assert cd["num_objects"] >= 1_000_000, cd
