"""Figure 13: thread parallelism in bitonic sort and subORAM batches.

Paper: (a) multi-thread bitonic sort wins for large inputs but loses to a
single thread below a crossover, motivating the adaptive strategy; (b)
extra enclave threads cut subORAM batch processing (batch 4K).

(c) is this reproduction's own engine measurement: real epochs of the
functional system under the serial vs thread execution backends
(latency-wrapped subORAMs model per-machine network/enclave time), with
the measured speedups written to ``BENCH_parallelism.json``.  Set
``SNOOPY_BENCH_SMOKE=1`` for a reduced-size run (CI's smoke job).
"""

import json
import os
import pathlib

import pytest

from repro.sim.cluster import epoch_wallclock_series
from repro.sim.costmodel import adaptive_sort_time, sort_time, suboram_time

from conftest import report

SORT_SIZES = [2**10, 2**12, 2**14, 2**16]
DATA_SIZES = [2**12, 2**15, 2**18, 2**21]
BATCH = 4096
SMOKE = os.environ.get("SNOOPY_BENCH_SMOKE") == "1"


def test_fig13a_sort_parallelism(benchmark):
    benchmark(sort_time, 2**16, 3)

    lines = ["objects  1 thread    2 threads   3 threads   adaptive"]
    for n in SORT_SIZES:
        t1, t2, t3 = (sort_time(n, t) for t in (1, 2, 3))
        ta = adaptive_sort_time(n, 3)
        lines.append(
            f"2^{n.bit_length() - 1:<5} {t1 * 1e3:>9.1f}ms {t2 * 1e3:>10.1f}ms "
            f"{t3 * 1e3:>10.1f}ms {ta * 1e3:>9.1f}ms"
        )
    report("Fig 13a — bitonic sort parallelism", "\n".join(lines))

    # Crossover: single thread wins small, three threads win large.
    assert sort_time(2**8, 1) < sort_time(2**8, 3)
    assert sort_time(2**16, 3) < sort_time(2**16, 1)
    # Adaptive is never worse than either fixed strategy.
    for n in SORT_SIZES:
        assert adaptive_sort_time(n, 3) <= min(sort_time(n, t) for t in (1, 2, 3))


def test_fig13b_suboram_parallelism(benchmark):
    benchmark(suboram_time, BATCH, 2**18)

    lines = ["objects  1 thread     2 threads    3 threads"]
    for n in DATA_SIZES:
        ts = [suboram_time(BATCH, n, threads=t) for t in (1, 2, 3)]
        lines.append(
            f"2^{n.bit_length() - 1:<5} "
            + " ".join(f"{t * 1e3:>10.1f}ms" for t in ts)
        )
    report("Fig 13b — subORAM batch parallelism (batch 4K)", "\n".join(lines))

    for n in DATA_SIZES[1:]:
        t1 = suboram_time(BATCH, n, threads=1)
        t3 = suboram_time(BATCH, n, threads=3)
        assert t3 < t1
        # Speedup approaches but does not exceed 3x.
        assert t1 / t3 <= 3.001


def test_fig13c_execution_backend_speedup():
    """Measured epoch wall-clock: thread backend vs serial reference.

    Serial execution pays every subORAM's per-batch delay in sequence
    (L*S delays per epoch); the thread backend overlaps them across
    subORAMs, so the speedup grows with S.  Requires >= 1.5x at S >= 4.
    Results land in ``BENCH_parallelism.json`` next to the repo root.
    """
    suboram_counts = [2, 4] if SMOKE else [2, 4, 8]
    epochs = 2 if SMOKE else 3
    rows = {}
    stages = {}
    for suborams in suboram_counts:
        stage_sink = {}
        series = epoch_wallclock_series(
            ["serial", "thread"],
            num_load_balancers=2,
            num_suborams=suborams,
            num_objects=64 if SMOKE else 128,
            requests_per_epoch=16 if SMOKE else 32,
            epochs=epochs,
            batch_delay=0.01,
            stage_sink=stage_sink,
        )
        rows[suborams] = {
            "serial_s": series["serial"],
            "thread_s": series["thread"],
            "speedup": series["serial"] / max(series["thread"], 1e-9),
        }
        stages[str(suborams)] = stage_sink

    lines = ["S     serial      thread      speedup"]
    for suborams, row in rows.items():
        lines.append(
            f"{suborams:<4} {row['serial_s'] * 1e3:>8.1f}ms "
            f"{row['thread_s'] * 1e3:>9.1f}ms {row['speedup']:>8.2f}x"
        )
    report("Fig 13c — execution-backend epoch speedup", "\n".join(lines))

    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_parallelism.json"
    out.write_text(json.dumps(
        {
            "benchmark": "fig13c_execution_backend_speedup",
            "smoke": SMOKE,
            "epochs": epochs,
            "batch_delay_s": 0.01,
            "results": {str(s): row for s, row in rows.items()},
            "stages": stages,
        },
        indent=2,
    ) + "\n")

    for suborams, row in rows.items():
        if suborams >= 4:
            assert row["speedup"] >= 1.5, (
                f"S={suborams}: thread backend speedup {row['speedup']:.2f}x "
                "below the 1.5x acceptance bar"
            )
