"""Figure 13: thread parallelism in bitonic sort and subORAM batches.

Paper: (a) multi-thread bitonic sort wins for large inputs but loses to a
single thread below a crossover, motivating the adaptive strategy; (b)
extra enclave threads cut subORAM batch processing (batch 4K).
"""

import pytest

from repro.sim.costmodel import adaptive_sort_time, sort_time, suboram_time

from conftest import report

SORT_SIZES = [2**10, 2**12, 2**14, 2**16]
DATA_SIZES = [2**12, 2**15, 2**18, 2**21]
BATCH = 4096


def test_fig13a_sort_parallelism(benchmark):
    benchmark(sort_time, 2**16, 3)

    lines = ["objects  1 thread    2 threads   3 threads   adaptive"]
    for n in SORT_SIZES:
        t1, t2, t3 = (sort_time(n, t) for t in (1, 2, 3))
        ta = adaptive_sort_time(n, 3)
        lines.append(
            f"2^{n.bit_length() - 1:<5} {t1 * 1e3:>9.1f}ms {t2 * 1e3:>10.1f}ms "
            f"{t3 * 1e3:>10.1f}ms {ta * 1e3:>9.1f}ms"
        )
    report("Fig 13a — bitonic sort parallelism", "\n".join(lines))

    # Crossover: single thread wins small, three threads win large.
    assert sort_time(2**8, 1) < sort_time(2**8, 3)
    assert sort_time(2**16, 3) < sort_time(2**16, 1)
    # Adaptive is never worse than either fixed strategy.
    for n in SORT_SIZES:
        assert adaptive_sort_time(n, 3) <= min(sort_time(n, t) for t in (1, 2, 3))


def test_fig13b_suboram_parallelism(benchmark):
    benchmark(suboram_time, BATCH, 2**18)

    lines = ["objects  1 thread     2 threads    3 threads"]
    for n in DATA_SIZES:
        ts = [suboram_time(BATCH, n, threads=t) for t in (1, 2, 3)]
        lines.append(
            f"2^{n.bit_length() - 1:<5} "
            + " ".join(f"{t * 1e3:>10.1f}ms" for t in ts)
        )
    report("Fig 13b — subORAM batch parallelism (batch 4K)", "\n".join(lines))

    for n in DATA_SIZES[1:]:
        t1 = suboram_time(BATCH, n, threads=1)
        t3 = suboram_time(BATCH, n, threads=3)
        assert t3 < t1
        # Speedup approaches but does not exceed 3x.
        assert t1 / t3 <= 3.001
