"""Figure 9b: key-transparency throughput scaling (5M users).

Paper: 10M 32-byte objects, each KT lookup costs 24 ORAM accesses
(log2(5M slots) + 1); at 18 machines Snoopy sustains ~1.1K lookups/s at
300 ms, ~3.2K at 500 ms, ~6.1K at 1 s — far below Fig 9a because every
operation multiplies into 24 accesses.
"""

import math

import pytest

from repro.apps.key_transparency import KeyTransparencyLog
from repro.sim.cluster import throughput_scaling_series

from conftest import report

MACHINES = list(range(4, 19))
LATENCIES = [0.3, 0.5, 1.0]
NUM_USERS = 5_000_000
NUM_OBJECTS = 10_000_000  # tree nodes + user keys
OBJECT_SIZE = 32
ACCESSES_PER_OP = 24  # log2(8M slots) = 23, + 1 for the user key


@pytest.fixture(scope="module")
def series():
    return throughput_scaling_series(
        MACHINES,
        NUM_OBJECTS,
        LATENCIES,
        object_size=OBJECT_SIZE,
        accesses_per_op=ACCESSES_PER_OP,
    )


def test_fig09b_series(benchmark, series):
    result = benchmark(
        throughput_scaling_series,
        [18],
        NUM_OBJECTS,
        [1.0],
        object_size=OBJECT_SIZE,
        accesses_per_op=ACCESSES_PER_OP,
    )
    assert result[1.0][0][3] > 0

    lines = ["machines  300ms      500ms      1s"]
    for i, m in enumerate(MACHINES):
        cells = [f"{series[lat][i][3]:8.0f}" for lat in LATENCIES]
        lines.append(f"{m:<9} " + "  ".join(cells))
    report(
        "Fig 9b — key transparency ops/s (5M users, 10M x 32B, 24 acc/op)",
        "\n".join(lines),
    )


def test_kt_throughput_anchors(series):
    """Paper: ~1.1K / 3.2K / 6.1K ops/s at 18 machines."""
    x_300 = series[0.3][-1][3]
    x_500 = series[0.5][-1][3]
    x_1000 = series[1.0][-1][3]
    assert 500 < x_300 < 4_000
    assert 1_500 < x_500 < 8_000
    assert 3_000 < x_1000 < 12_000
    assert x_300 <= x_500 <= x_1000


def test_access_count_formula_matches_functional_app():
    """The 24-access figure matches the real application's lookups."""
    users = {u: bytes([u % 256]) * 32 for u in range(1, 40)}
    log = KeyTransparencyLog(users)
    proof = log.lookup(5)
    slots = log.tree.num_slots
    assert proof.accesses() == int(math.log2(slots)) + 1
    # At the paper's scale the same formula gives 24.
    paper_slots = 1 << 23  # next_pow2(5M)
    assert int(math.log2(paper_slots)) + 1 == ACCESSES_PER_OP


def test_kt_much_slower_than_raw_store(series):
    from repro.sim.cluster import throughput_scaling_series as tss

    raw = tss([18], 2_000_000, [1.0])[1.0][0][3]
    assert series[1.0][-1][3] < raw / 10
