"""Batched AEAD and state-shipping throughput: the epoch crypto floor.

Two measurements behind the batched-crypto tentpole:

* **seal/open MB/s** — scalar per-slot ``seal``/``open`` (the audited
  oracle) vs the batched whole-buffer path
  (:meth:`~repro.crypto.aead.AeadKey.seal_batch_buffer`) over a
  store-shaped workload (N uniform slots, slot-index AAD) at
  ``value_size`` in {16, 256, 1024}.  The write-back scan re-encrypts
  every slot every epoch, so these MB/s *are* the epoch crypto floor.
* **state ship time** — moving a populated
  :class:`~repro.suboram.store.EncryptedStore` across the process seam:
  plain pickle (protocol 5, buffers in-band) vs the shared-memory
  shipping path (:mod:`repro.exec.shipping`: out-of-band buffers copied
  once into a segment, tiny envelope on the pipe).

Results land in ``BENCH_aead.json``; set ``SNOOPY_BENCH_SMOKE=1`` for
CI's reduced sizes.  The run fails if the batched path is slower than
the scalar oracle at any size — the whole point of batching is that it
never regresses.
"""

import json
import os
import pathlib
import pickle
import time

from repro.crypto.aead import AeadKey, NONCE_LEN
from repro.exec import shipping
from repro.suboram.store import EncryptedStore

from conftest import report

SMOKE = os.environ.get("SNOOPY_BENCH_SMOKE") == "1"

VALUE_SIZES = [16, 256, 1024]
#: Slots per measured pass, chosen so each pass moves ~the same volume.
SLOTS = {16: 512, 256: 256, 1024: 128} if SMOKE else {
    16: 4096, 256: 2048, 1024: 512
}
SHIP_SLOTS = 1024 if SMOKE else 8192
SHIP_VALUE_SIZE = 64
REPEATS = 3

KEY = AeadKey(b"bench-aead-key-0123456789abcdef01")


def _timed(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _fixtures(value_size, count):
    # Store-shaped slots: 16-byte key prefix + value, slot-index AAD.
    plain_size = 16 + value_size
    nonces = [
        (7 * i + 1).to_bytes(NONCE_LEN, "big") for i in range(count)
    ]
    plaintexts = [
        i.to_bytes(16, "big") + bytes([i % 256]) * value_size
        for i in range(count)
    ]
    aads = [i.to_bytes(8, "big") for i in range(count)]
    return plain_size, nonces, plaintexts, aads


def _crypto_row(value_size):
    count = SLOTS[value_size]
    plain_size, nonces, plaintexts, aads = _fixtures(value_size, count)
    volume_mb = count * plain_size / 1e6

    sealed = KEY.seal_batch(nonces, plaintexts, aads)
    plain_buf = b"".join(plaintexts)
    sealed_buf = b"".join(sealed)
    slot_size = plain_size + 32

    scalar_seal = _timed(lambda: [
        KEY.seal(n, pt, aad) for n, pt, aad in zip(nonces, plaintexts, aads)
    ])
    batched_seal = _timed(
        lambda: KEY.seal_batch_buffer(nonces, (plain_buf, plain_size), aads)
    )
    scalar_open = _timed(lambda: [
        KEY.open(n, blob, aad) for n, blob, aad in zip(nonces, sealed, aads)
    ])
    batched_open = _timed(
        lambda: KEY.open_batch_buffer(nonces, (sealed_buf, slot_size), aads)
    )
    return {
        "slots": count,
        "plain_size": plain_size,
        "scalar_seal_mbps": volume_mb / scalar_seal,
        "batched_seal_mbps": volume_mb / batched_seal,
        "seal_speedup": scalar_seal / max(batched_seal, 1e-9),
        "scalar_open_mbps": volume_mb / scalar_open,
        "batched_open_mbps": volume_mb / batched_open,
        "open_speedup": scalar_open / max(batched_open, 1e-9),
    }


def _ship_times():
    """Pickle-only vs shared-memory round-trip of one populated store."""
    store = EncryptedStore(
        b"bench-ship-key-0123456789abcdef01",
        num_slots=SHIP_SLOTS,
        value_size=SHIP_VALUE_SIZE,
    )
    store.put_batch(
        list(range(SHIP_SLOTS)),
        [bytes([i % 256]) * SHIP_VALUE_SIZE for i in range(SHIP_SLOTS)],
    )
    state_bytes = SHIP_SLOTS * store.slot_size

    def pickle_roundtrip():
        pickle.loads(pickle.dumps(store, protocol=5))

    pickle_s = _timed(pickle_roundtrip, repeats=5)

    shm_s = None
    if shipping.shm_available():
        pool = shipping.RegionPool()
        cache = shipping.AttachCache()
        try:

            def shm_roundtrip():
                wire = shipping.encode(store, pool.ensure)
                shipping.decode(wire, cache.get)

            shm_roundtrip()  # create + map the segment outside the clock
            shm_s = _timed(shm_roundtrip, repeats=5)
        finally:
            cache.close()
            pool.close()
    return {
        "slots": SHIP_SLOTS,
        "state_bytes": state_bytes,
        "pickle_roundtrip_s": pickle_s,
        "shm_roundtrip_s": shm_s,
        "ship_speedup": (
            pickle_s / max(shm_s, 1e-9) if shm_s is not None else None
        ),
    }


def test_batched_aead_throughput():
    """Scalar vs batched AEAD MB/s, plus shm vs pickle state shipping."""
    results = {size: _crypto_row(size) for size in VALUE_SIZES}
    ship = _ship_times()

    lines = [
        "value  scalar-seal  batch-seal  speedup | scalar-open  batch-open  speedup"
    ]
    for size, row in results.items():
        lines.append(
            f"{size:<6} {row['scalar_seal_mbps']:>8.1f}MB/s "
            f"{row['batched_seal_mbps']:>8.1f}MB/s "
            f"{row['seal_speedup']:>6.1f}x | "
            f"{row['scalar_open_mbps']:>8.1f}MB/s "
            f"{row['batched_open_mbps']:>8.1f}MB/s "
            f"{row['open_speedup']:>6.1f}x"
        )
    if ship["shm_roundtrip_s"] is not None:
        lines.append(
            f"state ship ({ship['state_bytes'] / 1e6:.1f}MB): pickle "
            f"{ship['pickle_roundtrip_s'] * 1e3:.2f}ms, shm "
            f"{ship['shm_roundtrip_s'] * 1e3:.2f}ms "
            f"({ship['ship_speedup']:.1f}x)"
        )
    report("Batched AEAD + zero-copy state shipping", "\n".join(lines))

    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_aead.json"
    out.write_text(json.dumps(
        {
            "benchmark": "batched_aead_throughput",
            "smoke": SMOKE,
            "results": {str(s): row for s, row in results.items()},
            "state_ship": ship,
        },
        indent=2,
    ) + "\n")

    # The guard: batching must never lose to the per-slot oracle.
    for size, row in results.items():
        assert row["seal_speedup"] >= 1.0, (size, row)
        assert row["open_speedup"] >= 1.0, (size, row)
