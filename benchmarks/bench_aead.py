"""Vectorized AEAD and state-shipping throughput: the epoch crypto floor.

Two measurements behind the execute-stage crypto tentpole:

* **seal/open MB/s** — scalar per-slot ``seal``/``open`` (the audited
  HMAC oracle) vs the two batch paths over a store-shaped workload
  (N uniform slots) at ``value_size`` in {16, 256, 1024}:

  - the batched HMAC pass (:meth:`~repro.crypto.aead.AeadKey.
    seal_batch_buffer`) — one nonce per slot, vectorized HMAC;
  - the counter-mode kernel (:class:`~repro.crypto.vector.VectorAead`)
    — one nonce-derived keystream for the whole batch, whole-buffer
    XOR, vectorized polynomial MAC, O(1) Python calls per epoch.

  The write-back scan re-encrypts every slot every epoch, so these
  MB/s *are* the epoch crypto floor.  The headline ``seal_speedup`` /
  ``open_speedup`` compare the vector kernel against the scalar
  oracle; the HMAC batch path is reported as ``*_hmac`` secondaries.

* **state ship time** — moving a populated
  :class:`~repro.suboram.store.EncryptedStore` across a *real*
  ``multiprocessing.Pipe`` at several state sizes: plain ``conn.send``
  (default in-band pickling) vs the shipping layer
  (:mod:`repro.exec.shipping`: buffers copied once into a persistent
  shared-memory segment, tiny envelope on the pipe).  All benched
  sizes sit above the shm routing threshold; below-threshold states
  take the :class:`~repro.exec.shipping.PipeShipment` path, which by
  construction reuses the one pickling pass plain ``send`` would do,
  so it is not separately timed here.

Results land in ``BENCH_aead.json``; set ``SNOOPY_BENCH_SMOKE=1`` for
CI's reduced sizes.  The run fails if the vector kernel clears less
than ``VECTOR_GATE``x over the scalar oracle at any size (the CI
regression gate), if the HMAC batch path loses to the oracle, or if
shm shipping loses to plain pickling at any benched size.
"""

import json
import multiprocessing
import os
import pathlib
import threading
import time

from repro.crypto.aead import AeadKey, NONCE_LEN
from repro.crypto.vector import VectorAead
from repro.exec import shipping
from repro.suboram.store import EncryptedStore

from conftest import report

SMOKE = os.environ.get("SNOOPY_BENCH_SMOKE") == "1"

VALUE_SIZES = [16, 256, 1024]
#: Slots per measured pass, chosen so each pass moves ~the same volume.
SLOTS = {16: 512, 256: 256, 1024: 128} if SMOKE else {
    16: 4096, 256: 2048, 1024: 512
}
#: State-ship sizes (slots of 64B values, ~112B/slot on the host), all
#: above the shm routing threshold so every row takes the segment path.
SHIP_SLOT_COUNTS = [1024, 4096] if SMOKE else [1024, 4096, 16384]
SHIP_VALUE_SIZE = 64
REPEATS = 3
#: The CI regression gate: the vector kernel must clear this over the
#: scalar oracle at every value size (full runs at 1KB clear >= 8x).
VECTOR_GATE = 4.0

KEY_BYTES = b"bench-aead-key-0123456789abcdef01"
KEY = AeadKey(KEY_BYTES)
VEC = VectorAead(KEY_BYTES)


def _timed(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _fixtures(value_size, count):
    # Store-shaped slots: 16-byte key prefix + value, slot-index AAD.
    plain_size = 16 + value_size
    nonces = [
        (7 * i + 1).to_bytes(NONCE_LEN, "big") for i in range(count)
    ]
    plaintexts = [
        i.to_bytes(16, "big") + bytes([i % 256]) * value_size
        for i in range(count)
    ]
    aads = [i.to_bytes(8, "big") for i in range(count)]
    return plain_size, nonces, plaintexts, aads


def _crypto_row(value_size):
    count = SLOTS[value_size]
    plain_size, nonces, plaintexts, aads = _fixtures(value_size, count)
    volume_mb = count * plain_size / 1e6

    sealed = KEY.seal_batch(nonces, plaintexts, aads)
    plain_buf = b"".join(plaintexts)
    sealed_buf = b"".join(sealed)
    slot_size = plain_size + 32

    scalar_seal = _timed(lambda: [
        KEY.seal(n, pt, aad) for n, pt, aad in zip(nonces, plaintexts, aads)
    ])
    hmac_seal = _timed(
        lambda: KEY.seal_batch_buffer(nonces, (plain_buf, plain_size), aads)
    )
    scalar_open = _timed(lambda: [
        KEY.open(n, blob, aad) for n, blob, aad in zip(nonces, sealed, aads)
    ])
    hmac_open = _timed(
        lambda: KEY.open_batch_buffer(nonces, (sealed_buf, slot_size), aads)
    )

    # The counter-mode kernel: one batch nonce, epoch-reused scratch.
    batch_nonce = (11 * count + 5).to_bytes(NONCE_LEN, "big")
    scratch = {}
    vec_sealed = bytes(
        VEC.seal_lanes(batch_nonce, plain_buf, count, plain_size,
                       scratch=scratch)
    )
    vector_seal = _timed(
        lambda: VEC.seal_lanes(batch_nonce, plain_buf, count, plain_size,
                               scratch=scratch)
    )
    vector_open = _timed(
        lambda: VEC.open_lanes(batch_nonce, vec_sealed, count, plain_size,
                               scratch=scratch)
    )
    return {
        "slots": count,
        "plain_size": plain_size,
        "scalar_seal_mbps": volume_mb / scalar_seal,
        "scalar_open_mbps": volume_mb / scalar_open,
        "hmac_seal_mbps": volume_mb / hmac_seal,
        "hmac_open_mbps": volume_mb / hmac_open,
        "seal_speedup_hmac": scalar_seal / max(hmac_seal, 1e-9),
        "open_speedup_hmac": scalar_open / max(hmac_open, 1e-9),
        "vector_seal_mbps": volume_mb / vector_seal,
        "vector_open_mbps": volume_mb / vector_open,
        "seal_speedup": scalar_seal / max(vector_seal, 1e-9),
        "open_speedup": scalar_open / max(vector_open, 1e-9),
    }


def _pipe_best(conn_a, conn_b, produce, finish, repeats=5):
    """Best-of wall-clock for produce -> send -> recv -> finish.

    The sender runs in a thread so large in-band payloads cannot
    deadlock against the OS pipe buffer while this thread receives.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        sender = threading.Thread(target=lambda: conn_a.send(produce()))
        sender.start()
        finish(conn_b.recv())
        sender.join()
        best = min(best, time.perf_counter() - start)
    return best


def _ship_row(num_slots):
    """Plain pipe send vs shm shipping for one populated store."""
    store = EncryptedStore(
        b"bench-ship-key-0123456789abcdef01",
        num_slots=num_slots,
        value_size=SHIP_VALUE_SIZE,
    )
    store.put_batch(
        list(range(num_slots)),
        [bytes([i % 256]) * SHIP_VALUE_SIZE for i in range(num_slots)],
    )
    state_bytes = num_slots * store.slot_size

    conn_a, conn_b = multiprocessing.Pipe()
    try:
        pickle_s = _pipe_best(
            conn_a, conn_b, lambda: store, lambda obj: obj
        )
        shm_s = None
        if shipping.shm_available():
            pool = shipping.RegionPool()
            cache = shipping.AttachCache()
            try:
                produce = lambda: shipping.encode(store, pool.ensure)
                finish = lambda wire: shipping.decode(wire, cache.get)
                # Create + map the segment outside the clock; every
                # epoch after the first reuses both sides' attachments.
                finish(produce())
                shm_s = _pipe_best(conn_a, conn_b, produce, finish)
            finally:
                cache.close()
                pool.close()
    finally:
        conn_a.close()
        conn_b.close()
    return {
        "slots": num_slots,
        "state_bytes": state_bytes,
        "pickle_roundtrip_s": pickle_s,
        "shm_roundtrip_s": shm_s,
        "ship_speedup": (
            pickle_s / max(shm_s, 1e-9) if shm_s is not None else None
        ),
    }


def test_batched_aead_throughput():
    """Scalar vs batch AEAD MB/s, plus shm vs pipe state shipping."""
    results = {size: _crypto_row(size) for size in VALUE_SIZES}
    ship_rows = [_ship_row(n) for n in SHIP_SLOT_COUNTS]

    lines = [
        "value  scalar-seal  hmac-seal  vector-seal  speedup | "
        "scalar-open  hmac-open  vector-open  speedup"
    ]
    for size, row in results.items():
        lines.append(
            f"{size:<6} {row['scalar_seal_mbps']:>8.1f}MB/s "
            f"{row['hmac_seal_mbps']:>8.1f}MB/s "
            f"{row['vector_seal_mbps']:>8.1f}MB/s "
            f"{row['seal_speedup']:>6.1f}x | "
            f"{row['scalar_open_mbps']:>8.1f}MB/s "
            f"{row['hmac_open_mbps']:>8.1f}MB/s "
            f"{row['vector_open_mbps']:>8.1f}MB/s "
            f"{row['open_speedup']:>6.1f}x"
        )
    for ship in ship_rows:
        if ship["shm_roundtrip_s"] is None:
            continue
        lines.append(
            f"state ship ({ship['state_bytes'] / 1e6:.2f}MB): pipe "
            f"{ship['pickle_roundtrip_s'] * 1e3:.2f}ms, shm "
            f"{ship['shm_roundtrip_s'] * 1e3:.2f}ms "
            f"({ship['ship_speedup']:.1f}x)"
        )
    report(
        "Vectorized AEAD + zero-copy state shipping", "\n".join(lines)
    )

    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_aead.json"
    out.write_text(json.dumps(
        {
            "benchmark": "batched_aead_throughput",
            "smoke": SMOKE,
            "vector_gate": VECTOR_GATE,
            "results": {str(s): row for s, row in results.items()},
            "state_ship": ship_rows,
        },
        indent=2,
    ) + "\n")

    for size, row in results.items():
        # The CI regression gate: the counter-mode kernel must hold its
        # margin over the scalar oracle at every size.
        assert row["seal_speedup"] >= VECTOR_GATE, (size, row)
        assert row["open_speedup"] >= VECTOR_GATE, (size, row)
        # And the HMAC batch path must never lose to the oracle.
        assert row["seal_speedup_hmac"] >= 1.0, (size, row)
        assert row["open_speedup_hmac"] >= 1.0, (size, row)
    for ship in ship_rows:
        if ship["ship_speedup"] is not None:
            assert ship["ship_speedup"] >= 1.0, ship
