"""Figure 12: breakdown of batch processing time (1 LB + 1 subORAM).

Paper: three components — load balancer make-batch, subORAM process-batch,
load balancer match-responses — for data sizes 2^10 / 2^15 / 2^20 and
batch sizes 2^6..2^11.  Load-balancer time grows with batch size; subORAM
time is dominated by the data-size-dependent linear scan and jumps
between 2^15 and 2^20 due to enclave paging.
"""

import pytest

from repro.analysis.balls_bins import batch_size
from repro.sim.costmodel import load_balancer_time, suboram_time

from conftest import report

BATCH_SIZES = [2**6, 2**7, 2**8, 2**9, 2**10, 2**11]
DATA_SIZES = [2**10, 2**15, 2**20]


def breakdown(requests: int, num_objects: int):
    """(make_batch, process_batch, match_responses) in seconds."""
    lb_total = load_balancer_time(requests, 1)
    # The two LB phases are near-symmetric sorts+compactions (§4.2).
    make_batch = lb_total / 2
    match = lb_total / 2
    size = batch_size(requests, 1)
    process = suboram_time(size, num_objects)
    return make_batch, process, match


def test_fig12_breakdown(benchmark):
    benchmark(breakdown, 2**10, 2**20)

    lines = []
    for n in DATA_SIZES:
        lines.append(f"-- data size 2^{n.bit_length() - 1} objects --")
        lines.append("batch   make(ms)  process(ms)  match(ms)")
        for r in BATCH_SIZES:
            make, process, match = breakdown(r, n)
            lines.append(
                f"{r:<7} {make * 1e3:>8.1f} {process * 1e3:>12.1f} "
                f"{match * 1e3:>10.1f}"
            )
    report("Fig 12 — batch processing breakdown", "\n".join(lines))


def test_lb_time_grows_with_batch_size():
    times = [breakdown(r, 2**15)[0] for r in BATCH_SIZES]
    assert all(b >= a for a, b in zip(times, times[1:]))
    assert times[-1] > 2 * times[0]


def test_suboram_time_dominated_by_data_size():
    """Paper: subORAM time depends mostly on N, not the batch size."""
    across_batches = [breakdown(r, 2**20)[1] for r in BATCH_SIZES]
    across_data = [breakdown(2**9, n)[1] for n in DATA_SIZES]
    batch_spread = max(across_batches) / min(across_batches)
    data_spread = max(across_data) / min(across_data)
    assert data_spread > 5 * batch_spread


def test_paging_jump_between_2e15_and_2e20():
    """Paper: the 2^15 -> 2^20 jump exceeds the 32x object ratio."""
    t_15 = suboram_time(2**9, 2**15)
    t_20 = suboram_time(2**9, 2**20)
    scan_15 = t_15 - suboram_time(2**9, 1)
    scan_20 = t_20 - suboram_time(2**9, 1)
    assert scan_20 / scan_15 > 32  # super-proportional: the paging knee
