"""Ablation: the linear-scan subORAM design decisions (§5).

Two claims are quantified:

1. "in the case where data is partitioned over many subORAMs, a single
   scan amortized over a large batch of requests is concretely cheaper
   than servicing the batch using ORAMs with polylogarithmic access
   costs" — we locate the batch-size crossover between the scan subORAM
   and an Oblix subORAM for a fixed partition size.

2. Two-tier vs single-tier oblivious hash tables: per-lookup bucket scan
   cost (which multiplies the whole linear scan) is far smaller two-tier,
   at modest total-size cost.
"""

import pytest

from repro.analysis.balls_bins import batch_size
from repro.oblivious.hashtable import TwoTierParams
from repro.sim.costmodel import oblix_access_time, suboram_time

from conftest import report

PARTITION = 133_000  # ~2M objects / 15 subORAMs


def scan_batch_time(batch: int) -> float:
    return suboram_time(batch, PARTITION)


def oblix_batch_time(batch: int) -> float:
    return batch * oblix_access_time(PARTITION)


def test_ablation_scan_vs_polylog(benchmark):
    benchmark(scan_batch_time, 512)

    lines = ["batch   scan-subORAM  oblix-subORAM  winner"]
    crossover = None
    for batch in (1, 8, 32, 128, 512, 2048):
        scan = scan_batch_time(batch)
        oblix = oblix_batch_time(batch)
        winner = "scan" if scan < oblix else "oblix"
        if winner == "scan" and crossover is None:
            crossover = batch
        lines.append(
            f"{batch:<7} {scan * 1e3:>10.1f}ms {oblix * 1e3:>12.1f}ms   {winner}"
        )
    lines.append(f"crossover at batch ~{crossover}")
    report(
        f"Ablation — scan vs polylog subORAM ({PARTITION:,}-object partition)",
        "\n".join(lines),
    )

    # Small batches favour per-request ORAMs; large batches favour the scan.
    assert oblix_batch_time(1) < scan_batch_time(1)
    assert scan_batch_time(2048) < oblix_batch_time(2048)


def test_ablation_two_tier_buckets(benchmark):
    params = benchmark(TwoTierParams.for_capacity, 4096)

    single_tier_bucket = batch_size(4096, 4096 // 4, 128)
    lines = [
        f"batch capacity 4096, lambda=128:",
        f"  single-tier bucket scan: {single_tier_bucket} slots",
        f"  two-tier bucket scan:    {params.lookup_scan_slots} slots "
        f"(Z1={params.tier1_bucket_size} + Z2={params.tier2_bucket_size})",
        f"  two-tier total slots:    {params.total_slots} "
        f"(vs {4096 // 4 * single_tier_bucket} single-tier)",
    ]
    report("Ablation — two-tier vs single-tier hash table", "\n".join(lines))

    # The paper: two-tier buckets ~10x smaller than single-tier for 4096
    # requests.  Our sizing gets a large constant-factor win on the scan
    # cost, which multiplies into every object of the linear scan.
    assert params.lookup_scan_slots < single_tier_bucket * 1.5
    assert params.tier1_bucket_size * 5 < single_tier_bucket


def test_ablation_scan_parallel_threads():
    """Supporting Fig. 13b: the scan is what extra threads accelerate."""
    t1 = suboram_time(512, PARTITION, threads=1)
    t3 = suboram_time(512, PARTITION, threads=3)
    assert t3 < t1 < 3.5 * t3
