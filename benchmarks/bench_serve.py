"""Network front door throughput: loadgen over the asyncio service.

Unlike the in-process benchmarks, every request here crosses a real TCP
socket: ``run_loadgen`` drives a live :class:`repro.serve.SnoopyServer`
(hosted by :class:`repro.serve.ServerThread`) with a fleet of
connections, each keeping a fixed window of requests in flight.  Two
phases model the paper's §8 service experiments:

* **throughput** — a moderate aggregate window saturates the clocked
  epoch pipeline and measures sustained requests/second plus the p50/p99
  ticket latency the epoch batching costs.  Runs twice: over the
  production **attested** sealed channels and over a **plaintext**
  baseline, asserting the attested stack stays within 2x of plaintext
  RPS (the handshake is per-connection and sealing is per-frame AEAD,
  both cheap next to the oblivious epoch itself);
* **soak** — the window knob turned up until the server is tracking
  100K+ open tickets at once (smoke: a proportionally reduced target),
  demonstrating that per-connection backpressure and the ticket book
  sustain the paper's large-deployment request volumes — over attested
  channels, like production.

Latency is measured client-side (first byte sent to response decoded),
so it includes framing, the kernel socket path, epoch queueing, and the
oblivious batch itself.  Results land in ``BENCH_serve.json``; set
``SNOOPY_BENCH_SMOKE=1`` for CI's reduced sizes.
"""

import json
import os
import pathlib
import random
import time

from repro.core.config import SnoopyConfig
from repro.core.snoopy import Snoopy
from repro.serve import ServerThread, run_loadgen

from conftest import report

SMOKE = os.environ.get("SNOOPY_BENCH_SMOKE") == "1"

NUM_OBJECTS = 2048
VALUE_SIZE = 16
NUM_BALANCERS = 2
NUM_SUBORAMS = 4
SECURITY = 32
EPOCH_DURATION = 0.05
DEPTH = 2
WRITE_FRACTION = 0.5

# Phase 1: sustained throughput at a window that keeps every epoch batch
# full without flooding the ticket book.
THROUGHPUT_REQUESTS = 2_000 if SMOKE else 12_000
THROUGHPUT_CONNECTIONS = 4 if SMOKE else 16
THROUGHPUT_WINDOW = 64 if SMOKE else 128

# Phase 2: the open-ticket soak.  connections * window is the aggregate
# in-flight ceiling; the full run holds >100K tickets open at once while
# each connection sends a little past its window so the peak is reached
# and then fully drained.
SOAK_CONNECTIONS = 8 if SMOKE else 112
# Sealed AEAD framing slows per-connection submission, letting the
# pipeline resolve more tickets during the fill; the wider window keeps
# the measured peak comfortably past the 100K-open-ticket target.
SOAK_WINDOW = 128 if SMOKE else 1536
SOAK_EXTRA_PER_CONNECTION = 32 if SMOKE else 64
SOAK_REQUESTS = SOAK_CONNECTIONS * (SOAK_WINDOW + SOAK_EXTRA_PER_CONNECTION)
# The floor asserted on the server's measured peak of simultaneously
# open tickets.  Submission (a frame decode per request) far outpaces
# resolution (an oblivious batch per epoch), so the peak should come
# close to the configured ceiling; the floor leaves headroom for the
# tickets the pipeline resolves during the submission burst.
SOAK_PEAK_FLOOR = SOAK_CONNECTIONS * SOAK_WINDOW // 2 if SMOKE else 100_000


def _open_store():
    """A vectorized thread-backend deployment behind the front door."""
    config = SnoopyConfig(
        num_load_balancers=NUM_BALANCERS,
        num_suborams=NUM_SUBORAMS,
        value_size=VALUE_SIZE,
        execution_backend="thread",
        kernel="numpy",
        security_parameter=SECURITY,
        max_workers=NUM_BALANCERS * NUM_SUBORAMS,
    )
    store = Snoopy(config, rng=random.Random(7))
    store.initialize({k: bytes(VALUE_SIZE) for k in range(NUM_OBJECTS)})
    return store


def _run_phase(name, *, requests, connections, window, seed, attested=True):
    """Host a fresh server, drive it with loadgen, return merged stats."""
    with _open_store() as store:
        with ServerThread(
            store,
            clock=True,
            epoch_duration=EPOCH_DURATION,
            pipeline_depth=DEPTH,
            max_pending_per_connection=window,
            attested=attested,
        ) as handle:
            handle.start()
            started = time.perf_counter()
            stats = run_loadgen(
                "127.0.0.1",
                handle.port,
                requests=requests,
                connections=connections,
                window=window,
                num_keys=NUM_OBJECTS,
                write_fraction=WRITE_FRACTION,
                seed=seed,
                trust=handle.trust,
            )
            stats["wall_s"] = time.perf_counter() - started
            stats["server"] = dict(handle.server.stats)
    stats["phase"] = name
    return stats


def test_serve_throughput():
    """Sustained RPS and open-ticket capacity of the network service."""
    throughput = _run_phase(
        "attested",
        requests=THROUGHPUT_REQUESTS,
        connections=THROUGHPUT_CONNECTIONS,
        window=THROUGHPUT_WINDOW,
        seed=11,
    )
    plaintext = _run_phase(
        "plaintext",
        requests=THROUGHPUT_REQUESTS,
        connections=THROUGHPUT_CONNECTIONS,
        window=THROUGHPUT_WINDOW,
        seed=11,
        attested=False,
    )
    soak = _run_phase(
        "soak",
        requests=SOAK_REQUESTS,
        connections=SOAK_CONNECTIONS,
        window=SOAK_WINDOW,
        seed=13,
    )

    lines = [
        "phase        reqs     conns  window  open-cap   rps      "
        "p50 ms   p99 ms   peak-open"
    ]
    for row in (throughput, plaintext, soak):
        lines.append(
            f"{row['phase']:<11} {row['requests']:>7}  {row['connections']:>5} "
            f"{row['window']:>7}  {row['open_tickets']:>8}  "
            f"{row['rps']:>7.0f}  {row['latency_p50_ms']:>7.1f}  "
            f"{row['latency_p99_ms']:>7.1f}  "
            f"{row['server']['peak_open_tickets']:>9}"
        )
    ratio = plaintext["rps"] / max(throughput["rps"], 1e-9)
    lines.append(
        f"attested channel cost: plaintext/attested rps ratio "
        f"{ratio:.2f}x (ceiling 2.00x)"
    )
    report("Network front door — loadgen over real TCP (§8)", "\n".join(lines))

    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_serve.json"
    out.write_text(json.dumps(
        {
            "benchmark": "serve_loadgen",
            "smoke": SMOKE,
            "num_objects": NUM_OBJECTS,
            "value_size": VALUE_SIZE,
            "num_load_balancers": NUM_BALANCERS,
            "num_suborams": NUM_SUBORAMS,
            "epoch_duration_s": EPOCH_DURATION,
            "pipeline_depth": DEPTH,
            "backend": "thread",
            "kernel": "numpy",
            "throughput": throughput,
            "throughput_plaintext": plaintext,
            "plaintext_over_attested_rps": ratio,
            "soak": soak,
        },
        indent=2,
    ) + "\n")

    # Acceptance: every request crossed the wire and came back, the
    # service sustained a real rate, attested channels stayed within 2x
    # of the plaintext baseline, and the soak actually held the
    # advertised volume of tickets open at once.
    assert throughput["attested"] and not plaintext["attested"]
    assert throughput["requests"] == THROUGHPUT_REQUESTS, throughput
    assert throughput["server"]["responses"] == THROUGHPUT_REQUESTS, throughput
    assert throughput["rps"] > 0, throughput
    assert throughput["latency_p99_ms"] >= throughput["latency_p50_ms"], (
        throughput
    )
    assert throughput["rps"] * 2.0 >= plaintext["rps"], (throughput, plaintext)
    assert soak["requests"] == SOAK_REQUESTS, soak
    assert soak["server"]["responses"] == SOAK_REQUESTS, soak
    assert soak["server"]["peak_open_tickets"] >= SOAK_PEAK_FLOOR, soak
