"""Figure 14: planner allocations and cost vs throughput requirements.

Paper (1 s max latency): larger stores need a higher subORAM:LB ratio as
throughput grows (14a); monthly cost rises with throughput and with data
size — ~$4K/month buys ~122.9K reqs/s at 10K objects but only ~51.6K at
1M objects (14b).
"""

import pytest

from repro.planner.planner import Planner

from conftest import report

THROUGHPUTS = [10_000, 20_000, 40_000, 80_000, 120_000]
LATENCY = 1.0


@pytest.fixture(scope="module")
def sweeps():
    return {
        10_000: Planner(10_000).sweep(THROUGHPUTS, LATENCY),
        1_000_000: Planner(1_000_000).sweep(THROUGHPUTS, LATENCY),
    }


def test_fig14_planner(benchmark, sweeps):
    benchmark(lambda: Planner(10_000).plan(20_000, LATENCY))

    lines = ["target X    10K objects (L,S,$)      1M objects (L,S,$)"]
    for i, x in enumerate(THROUGHPUTS):
        cells = []
        for size in (10_000, 1_000_000):
            plan = sweeps[size][i]
            cells.append(
                f"({plan.num_load_balancers},{plan.num_suborams},"
                f"${plan.monthly_cost:,.0f})"
                if plan
                else "infeasible"
            )
        lines.append(f"{x:<11} {cells[0]:<24} {cells[1]}")
    report("Fig 14 — planner allocation & cost (1 s latency)", "\n".join(lines))


def test_cost_monotone_in_throughput(sweeps):
    for size in (10_000, 1_000_000):
        costs = [p.monthly_cost for p in sweeps[size] if p]
        assert costs == sorted(costs)


def test_larger_data_costs_more(sweeps):
    """Fig 14b: the 1M-object line sits above the 10K-object line."""
    for small, large in zip(sweeps[10_000], sweeps[1_000_000]):
        if small and large:
            assert large.monthly_cost >= small.monthly_cost


def test_larger_data_higher_suboram_ratio(sweeps):
    """Fig 14a: big stores allocate relatively more subORAMs."""
    pairs = [
        (s, l)
        for s, l in zip(sweeps[10_000], sweeps[1_000_000])
        if s and l
    ]
    assert pairs
    small, large = pairs[-1]
    ratio_small = small.num_suborams / small.num_load_balancers
    ratio_large = large.num_suborams / large.num_load_balancers
    assert ratio_large >= ratio_small


def test_budget_anchor(sweeps):
    """Paper: ~$4K/month sustains >100K reqs/s on 10K objects but far
    less on 1M objects."""
    plan_small = Planner(10_000).plan(100_000, LATENCY)
    assert plan_small.monthly_cost < 6_000
    plan_large = Planner(1_000_000).plan(50_000, LATENCY)
    assert plan_large.monthly_cost >= plan_small.monthly_cost / 2
