"""Benchmark-suite plumbing: collects figure tables and prints them at the
end of the run, so ``pytest benchmarks/ --benchmark-only`` emits the
paper-style rows alongside pytest-benchmark's timing table."""

from __future__ import annotations

from typing import List, Tuple

_REPORTS: List[Tuple[str, str]] = []


def report(title: str, text: str) -> None:
    """Register a figure/table reproduction for the terminal summary."""
    _REPORTS.append((title, text))


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "paper figure/table reproductions")
    for title, text in _REPORTS:
        terminalreporter.write_sep("-", title)
        terminalreporter.write_line(text)
