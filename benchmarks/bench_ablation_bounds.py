"""Ablation: the Theorem 3 bound vs prior balls-into-bins bounds (§10).

The paper argues prior bounds are "either inefficient to evaluate or do
not have a cryptographically negligible overflow probability under
realistic system parameters".  This bench quantifies both claims:

* polynomial-probability bounds (Berenbrink, Raab-Steger) produce
  *smaller* capacities but deliver only tens of security bits;
* the exact binomial union bound is tight but costs a tail summation per
  point, while the Lambert-W closed form is ~constant time and lands
  within a few percent of it.
"""

import time

import pytest

from repro.analysis.balls_bins import batch_size, security_bits
from repro.analysis.bounds import (
    berenbrink_bound,
    exact_batch_size,
    raab_steger_bound,
)

from conftest import report

POINTS = [(1_000, 4), (10_000, 10), (100_000, 16)]


def test_ablation_bounds(benchmark):
    benchmark(batch_size, 10_000, 10, 128)

    lines = [
        "R        S   theorem3  exact   berenb.  raab-st.  "
        "(sec bits: t3 / berenb.)"
    ]
    for r, s in POINTS:
        t3 = batch_size(r, s, 128)
        exact = exact_batch_size(r, s, 128)
        ber = berenbrink_bound(r, s)
        rs = raab_steger_bound(r, s)
        bits_t3 = security_bits(r, s, t3)
        bits_ber = security_bits(r, s, ber)
        lines.append(
            f"{r:<8} {s:<3} {t3:<9} {exact:<7} {ber:<8} {rs:<9} "
            f"({bits_t3:.0f} / {bits_ber:.0f})"
        )
    report("Ablation — batch-size bounds (lambda=128)", "\n".join(lines))


def test_theorem3_has_crypto_security_where_others_do_not():
    for r, s in POINTS:
        t3 = batch_size(r, s, 128)
        assert security_bits(r, s, t3) >= 128
        assert security_bits(r, s, berenbrink_bound(r, s)) < 64
        assert security_bits(r, s, raab_steger_bound(r, s)) < 64


def test_theorem3_tight_against_exact():
    for r, s in POINTS:
        exact = exact_batch_size(r, s, 128)
        closed = batch_size(r, s, 128)
        assert exact <= closed <= 1.25 * exact


def test_closed_form_much_faster_than_exact():
    start = time.perf_counter()
    for _ in range(50):
        batch_size(100_000, 16, 128)
    closed_time = time.perf_counter() - start

    start = time.perf_counter()
    exact_batch_size(100_000, 16, 128)
    exact_time = time.perf_counter() - start

    assert closed_time / 50 < exact_time, (
        "the Lambert-W form must be cheaper per evaluation than the "
        "exact tail search"
    )
