"""Ablation: adaptive mode switching (the §1 future-work extension).

Quantifies why neither fixed mode dominates: the latency-optimized mode
(short epochs, per-request subORAM) wins at low offered load, the
throughput-optimized mode (long epochs, batch scan) at high load; the
adaptive policy tracks the better of the two with hysteresis.
"""

import pytest

from repro.extensions.adaptive import AdaptivePolicy, Mode

from conftest import report


@pytest.fixture(scope="module")
def policy():
    return AdaptivePolicy(
        num_load_balancers=1, num_suborams=4, num_objects=500_000
    )


def test_ablation_adaptive(benchmark, policy):
    benchmark(policy.decide, 100.0)

    lat = policy.latency_mode
    thr = policy.throughput_mode
    lines = [
        "mode        epoch     capacity      idle latency",
        f"latency     {lat.epoch * 1e3:5.0f} ms  {lat.capacity:>9,.0f}/s  "
        f"{lat.idle_latency * 1e3:8.1f} ms",
        f"throughput  {thr.epoch * 1e3:5.0f} ms  {thr.capacity:>9,.0f}/s  "
        f"{thr.idle_latency * 1e3:8.1f} ms",
        "",
        "offered load -> chosen mode / predicted latency:",
    ]
    for rate in (50, 500, 5_000, 50_000):
        fresh = AdaptivePolicy(1, 4, 500_000)
        for _ in range(20):
            fresh.observe(requests=rate, window=1.0)
        predicted = fresh.predicted_latency(fresh.rate_estimate)
        lines.append(
            f"  {rate:>7,}/s -> {fresh.mode.value:<10} "
            f"{predicted * 1e3:8.1f} ms"
        )
    report("Ablation — adaptive mode switching (§1 future work)", "\n".join(lines))


def test_neither_fixed_mode_dominates(policy):
    low, high = 100.0, policy.latency_mode.capacity * 3
    assert policy.predicted_latency(low, Mode.LATENCY) < (
        policy.predicted_latency(low, Mode.THROUGHPUT)
    )
    assert policy.predicted_latency(high, Mode.THROUGHPUT) < (
        policy.predicted_latency(high, Mode.LATENCY)
    )


def test_adaptive_tracks_the_winner(policy):
    for rate in (100.0, policy.latency_mode.capacity * 3):
        fresh = AdaptivePolicy(1, 4, 500_000)
        for _ in range(20):
            fresh.observe(requests=int(rate), window=1.0)
        best = min(
            (Mode.LATENCY, Mode.THROUGHPUT),
            key=lambda m: fresh.predicted_latency(rate, m),
        )
        assert fresh.mode == best
