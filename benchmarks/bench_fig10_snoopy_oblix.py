"""Figure 10: Snoopy with Oblix as the subORAM (2M x 160B objects).

Paper: the hybrid reaches ~18K reqs/s at 17 machines / 500 ms — 15.6x
vanilla single-machine Oblix — with a visible throughput spike between 8
and 9 machines where sharding drops one level of position-map recursion;
Snoopy's native subORAM still beats the hybrid by ~4.85x.
"""

import pytest

from repro.sim.cluster import snoopy_oblix_best_split
from repro.sim.costmodel import (
    best_split,
    oblix_recursion_levels,
    oblix_throughput,
)

from conftest import report

MACHINES = list(range(2, 18))
NUM_OBJECTS = 2_000_000
LATENCY = 0.5


@pytest.fixture(scope="module")
def series():
    return [
        (m, *snoopy_oblix_best_split(m, NUM_OBJECTS, LATENCY)) for m in MACHINES
    ]


def test_fig10_series(benchmark, series):
    result = benchmark(snoopy_oblix_best_split, 9, NUM_OBJECTS, LATENCY)
    assert result[2] > 0

    vanilla = oblix_throughput(NUM_OBJECTS)
    lines = ["machines  L  S   reqs/s     levels(N/S)  x-vanilla"]
    for m, l, s, x in series:
        levels = oblix_recursion_levels(NUM_OBJECTS // s)
        lines.append(
            f"{m:<9} {l}  {s:<3} {x:>9,.0f}  {levels:<12} {x / vanilla:5.1f}x"
        )
    lines.append(f"vanilla Oblix (1 machine): {vanilla:,.0f} reqs/s")
    report("Fig 10 — Snoopy-Oblix hybrid (500 ms)", "\n".join(lines))


def test_hybrid_scales_over_vanilla(series):
    """Paper: 15.6x at 17 machines; we accept >5x (same order)."""
    vanilla = oblix_throughput(NUM_OBJECTS)
    _, _, _, x = series[-1]
    assert x / vanilla > 5


def test_recursion_spike(series):
    """The jump where a recursion level drops (paper: 8 -> 9 machines)."""
    xs = {m: x for m, _, _, x in series}
    # Find machine counts whose best shard sizes straddle the level drop.
    gains = [(m, xs[m] - xs[m - 1]) for m in MACHINES[1:]]
    spike_machine, spike_gain = max(gains, key=lambda g: g[1])
    median_gain = sorted(g for _, g in gains)[len(gains) // 2]
    assert spike_gain > 2 * max(median_gain, 1.0)
    assert 6 <= spike_machine <= 12


def test_native_suboram_beats_oblix_suboram(series):
    """Paper: the throughput-optimized subORAM wins by 4.85x at 17."""
    _, _, _, hybrid = series[-1]
    _, _, native = best_split(17, NUM_OBJECTS, LATENCY)
    assert native / hybrid > 2
