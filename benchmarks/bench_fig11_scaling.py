"""Figure 11: adding subORAMs for data size (11a) and latency (11b).

Paper (1 load balancer, constant load):
  * 11a — at <=160 ms mean latency each extra subORAM supports ~191K more
    objects; 15 subORAMs hold ~2.8M.
  * 11b — 2M objects: 847 ms mean latency with 1 subORAM, 112 ms with 15,
    with diminishing returns from dummy overhead.
  * Obladi: 79 ms; Oblix: 1.1 ms (sequential, for reference).
"""

import pytest

from repro.sim.cluster import latency_vs_suborams, max_objects_within_latency
from repro.sim.costmodel import oblix_access_time

from conftest import report

SUBORAM_COUNTS = [1, 3, 5, 7, 9, 11, 13, 15]
NUM_OBJECTS = 2_000_000
LOAD = 500.0  # constant offered load (reqs/s)


def test_fig11a_data_size(benchmark):
    capacities = benchmark(
        lambda: [
            max_objects_within_latency(s, latency_target=0.160, load=LOAD)
            for s in SUBORAM_COUNTS
        ]
    )
    lines = ["subORAMs  max objects @160ms"]
    for s, cap in zip(SUBORAM_COUNTS, capacities):
        lines.append(f"{s:<9} {cap:>12,}")
    slope = (capacities[-1] - capacities[0]) / (
        SUBORAM_COUNTS[-1] - SUBORAM_COUNTS[0]
    )
    lines.append(f"slope: ~{slope:,.0f} objects per added subORAM")
    report("Fig 11a — data size vs subORAMs (<=160 ms)", "\n".join(lines))

    assert all(b > a for a, b in zip(capacities, capacities[1:]))
    # Roughly linear growth: consecutive slopes within a factor of ~3.
    slopes = [
        (capacities[i + 1] - capacities[i])
        / (SUBORAM_COUNTS[i + 1] - SUBORAM_COUNTS[i])
        for i in range(len(capacities) - 1)
    ]
    assert max(slopes) < 4 * max(1.0, min(slopes))


def test_fig11b_latency(benchmark):
    rows = benchmark(latency_vs_suborams, SUBORAM_COUNTS, NUM_OBJECTS, LOAD)

    lines = ["subORAMs  mean latency"]
    for s, latency in rows:
        lines.append(f"{s:<9} {latency * 1e3:>8.0f} ms")
    lines.append(f"(Obladi: ~79 ms at batch 500; Oblix: "
                 f"{oblix_access_time(NUM_OBJECTS) * 1e3:.1f} ms sequential)")
    report("Fig 11b — latency vs subORAMs (2M objects)", "\n".join(lines))

    latencies = [latency for _, latency in rows]
    # Paper anchors: ~847 ms at 1 subORAM; large drop by 15.
    assert 0.6 < latencies[0] < 1.1
    assert latencies[-1] < 0.2
    assert all(b < a for a, b in zip(latencies, latencies[1:]))
    # Diminishing returns.
    assert (latencies[0] - latencies[1]) > (latencies[-2] - latencies[-1])


def test_oblix_latency_reference():
    """Oblix's sequential access is ~1 ms — far below Snoopy's epochs."""
    assert oblix_access_time(NUM_OBJECTS) < 0.005
