"""Microbenchmarks of the *functional* implementations (real wall time).

Unlike the figure benches (which use the calibrated model), these time the
actual Python algorithms: oblivious sort/compaction, hash-table
construction, subORAM batch access, a full Snoopy epoch, and baseline
ORAM accesses.  They document the real cost of the pure-Python
reproduction and guard against accidental complexity regressions.
"""

import random

import pytest

from repro.core.config import SnoopyConfig
from repro.core.snoopy import Snoopy
from repro.baselines.pathoram import PathOram
from repro.oblivious.compact import ocompact
from repro.oblivious.hashtable import TwoTierHashTable
from repro.oblivious.sort import bitonic_sort
from repro.suboram.suboram import SubOram
from repro.types import BatchEntry, OpType, Request


@pytest.fixture(scope="module")
def rng():
    return random.Random(1)


def test_bitonic_sort_1k(benchmark, rng):
    data = [rng.randrange(10**9) for _ in range(1024)]
    result = benchmark(bitonic_sort, data)
    assert result == sorted(data)


def test_ocompact_1k(benchmark, rng):
    items = list(range(1024))
    flags = [rng.randrange(2) for _ in range(1024)]
    result = benchmark(ocompact, items, flags)
    assert len(result) == sum(flags)


def test_hashtable_build_256(benchmark, rng):
    class Item:
        __slots__ = ("key",)

        def __init__(self, key):
            self.key = key

    items = [Item(k) for k in rng.sample(range(10**9), 256)]
    table = benchmark(
        TwoTierHashTable.build, items, lambda i: i.key, b"bench-key"
    )
    assert len(table.extract_real()) == 256


def test_suboram_batch_64_over_2k_objects(benchmark, rng):
    suboram = SubOram(0, value_size=16, security_parameter=32)
    suboram.initialize({k: bytes(16) for k in range(2048)})
    keys = rng.sample(range(2048), 64)

    def run():
        batch = [
            BatchEntry(op=OpType.READ, key=k, is_dummy=False) for k in keys
        ]
        return suboram.batch_access(batch)

    responses = benchmark(run)
    assert len(responses) == 64


def test_snoopy_epoch_32_requests(benchmark, rng):
    store = Snoopy(
        SnoopyConfig(num_load_balancers=1, num_suborams=2, value_size=16,
                     security_parameter=32),
        rng=random.Random(2),
    )
    store.initialize({k: bytes(16) for k in range(512)})

    def run():
        for i in range(32):
            store.submit(Request(OpType.READ, rng.randrange(512), seq=i))
        return store.run_epoch()

    responses = benchmark(run)
    assert len(responses) == 32


def test_pathoram_access(benchmark, rng):
    oram = PathOram(4096, rng=random.Random(3))
    oram.initialize({k: bytes([k % 256]) for k in range(1024)})
    keys = [rng.randrange(1024) for _ in range(16)]

    def run():
        for k in keys:
            oram.read(k)

    benchmark(run)


def test_oblivious_shuffle_1k(benchmark, rng):
    from repro.oblivious.shuffle import oblivious_shuffle

    items = list(range(1024))
    result = benchmark(oblivious_shuffle, items, b"shuffle-key-0123456789abcdef!!!!")
    assert sorted(result) == items


def test_waksman_apply_1k(benchmark, rng):
    from repro.oblivious.permutation import apply_permutation

    permutation = list(range(1024))
    rng.shuffle(permutation)
    items = list(range(1024))
    result = benchmark(apply_permutation, items, permutation)
    assert sorted(result) == items


def test_sqrtoram_access(benchmark, rng):
    from repro.baselines.sqrtoram import SqrtOram
    import random as _random

    # Small capacity: each sqrt(n) accesses trigger a full oblivious
    # reshuffle, which is the expensive (and interesting) part.
    oram = SqrtOram(256, rng=_random.Random(11))
    oram.initialize({k: bytes([k % 256]) for k in range(256)})
    keys = [rng.randrange(256) for _ in range(4)]

    def run():
        for k in keys:
            oram.read(k)

    benchmark.pedantic(run, rounds=3, iterations=1)
