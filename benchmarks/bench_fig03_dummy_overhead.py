"""Figure 3: dummy-request overhead vs number of real requests.

Paper: overhead falls as R grows; at R=10K with 10 subORAMs it is ~50%;
more subORAMs mean more overhead (lambda = 128 throughout).
"""

from repro.analysis.overhead import dummy_overhead_percent

from conftest import report

REQUEST_COUNTS = [500, 1_000, 2_000, 4_000, 6_000, 8_000, 10_000]
SUBORAM_COUNTS = [2, 10, 20]


def compute_table():
    rows = {}
    for s in SUBORAM_COUNTS:
        rows[s] = [dummy_overhead_percent(r, s, 128) for r in REQUEST_COUNTS]
    return rows


def test_fig03_dummy_overhead(benchmark):
    rows = benchmark(compute_table)

    lines = ["R (reals)  " + "".join(f"S={s:<8}" for s in SUBORAM_COUNTS)]
    for i, r in enumerate(REQUEST_COUNTS):
        lines.append(
            f"{r:<10} "
            + "".join(f"{rows[s][i]:>6.1f}%  " for s in SUBORAM_COUNTS)
        )
    report("Fig 3 — dummy overhead % (lambda=128)", "\n".join(lines))

    # Shape checks mirroring the paper's claims.
    for s in SUBORAM_COUNTS:
        assert rows[s] == sorted(rows[s], reverse=True), "overhead must fall with R"
    for i in range(len(REQUEST_COUNTS)):
        assert rows[2][i] <= rows[10][i] <= rows[20][i]
    # Anchor: ~50% at R=10K, S=10.
    assert 30 < rows[10][-1] < 70
