"""Epoch pipelining throughput: sequential scheduler vs §6 overlap.

One deployment per S models the paper's throughput experiment: the load
balancer runs locally (scalar python kernel — real CPU to build and
match batches), while each subORAM is a *remote machine* whose cost is
dominated by the network round trip plus enclave processing, modelled by
a latency wrapper charging ``BATCH_DELAY`` per batch around the
vectorized (numpy) subORAM data plane.  The same seeded schedule then
runs twice:

* **sequential** — ``submit`` then ``run_epoch``, so every epoch pays
  build + execute + match back to back;
* **pipelined** — ``start_pipeline(clock=False)`` with per-epoch
  ``close_epoch()``, so the builder closes epoch ``e+1`` while the
  backend executes ``e`` and the matcher resolves ``e-1``.

The remote delays release the GIL, so the build/match CPU of adjacent
epochs genuinely hides under the execute stage's network time — the §6
claim.  The stage-interval recorder provides the witness: per-stage
occupancy over the run's makespan plus the seconds of later-epoch build
overlapping earlier-epoch execute.  Results land in
``BENCH_pipeline.json``; set ``SNOOPY_BENCH_SMOKE=1`` for CI's reduced
sizes.
"""

import json
import os
import pathlib
import random
import time

from repro.core.config import SnoopyConfig
from repro.core.snoopy import Snoopy
from repro.sim.latency import LatencySubOram
from repro.suboram.suboram import SubOram
from repro.types import OpType, Request

from conftest import report

SMOKE = os.environ.get("SNOOPY_BENCH_SMOKE") == "1"

# CI's smoke criterion is still judged at S=8 (the ISSUE's acceptance
# point), so smoke keeps the endpoint and drops only the middle.
SUBORAM_COUNTS = [2, 8] if SMOKE else [2, 4, 8]
NUM_OBJECTS = 256
REQUESTS = 256 if SMOKE else 512
# The pipeline reaches its steady-state rate (one epoch per execute
# interval) after a one-epoch ramp, so enough epochs are needed to
# amortize the ramp and the final match tail.
EPOCHS = 6 if SMOKE else 10
VALUE_SIZE = 16
NUM_BALANCERS = 1
# lambda for batch padding.  The subORAM's per-batch hash-table build
# scales with f(R,S,lambda); a smaller lambda keeps the remote machines'
# local CPU share small relative to the load balancer's R-dominated
# sort, which is the §6 regime (subORAM time ~ network + enclave I/O).
SECURITY = 32
# Per-batch remote time (network RTT + enclave processing); the thread
# backend overlaps the delays of different subORAMs, and the sleeps are
# GIL-free time the pipeline fills with adjacent epochs' build/match.
BATCH_DELAY = 0.08 if SMOKE else 0.15
DEPTH = 2
REPEATS = 2
# The throughput floor asserted at the largest S (the ISSUE's acceptance
# bar); smoke sizes leave less work to overlap, so CI only checks that
# pipelining never loses to the sequential scheduler.
PIPELINE_SPEEDUP_FLOOR = 1.0 if SMOKE else 1.3


def _remote_suboram_factory(suboram_id, config, keychain):
    """A latency-wrapped vectorized subORAM: the remote-machine model.

    The paper's subORAMs are separate enclave machines, so their
    contribution to epoch wall-clock is network + remote processing —
    time that does not contend with the load balancer's CPU.  We model
    that by running the subORAM data plane on the vectorized kernel and
    charging ``BATCH_DELAY`` of GIL-releasing sleep per batch, while the
    load balancer (the local, CPU-bound half) keeps the scalar kernel.
    """
    inner = SubOram(
        suboram_id,
        config.value_size,
        keychain,
        security_parameter=config.security_parameter,
        kernel="numpy",
    )
    return LatencySubOram(inner, batch_delay=BATCH_DELAY)


def _schedule(suborams):
    """Seeded (key, balancer) schedule, identical for both modes."""
    rng = random.Random(1000 + suborams)
    return [
        [
            (rng.randrange(NUM_OBJECTS), rng.randrange(NUM_BALANCERS))
            for _ in range(REQUESTS)
        ]
        for _ in range(EPOCHS)
    ]


def _open_store(suborams):
    """A thread-backend deployment over remote-modelled subORAMs."""
    config = SnoopyConfig(
        num_load_balancers=NUM_BALANCERS,
        num_suborams=suborams,
        value_size=VALUE_SIZE,
        execution_backend="thread",
        kernel="python",
        security_parameter=SECURITY,
        # One worker per (balancer, subORAM) batch so every remote delay
        # overlaps — the paper's one-machine-per-subORAM deployment.
        max_workers=NUM_BALANCERS * suborams,
    )
    store = Snoopy(config, suboram_factory=_remote_suboram_factory)
    store.initialize({k: bytes(VALUE_SIZE) for k in range(NUM_OBJECTS)})
    # Warmup epoch: spin up the thread pool and touch every subORAM so
    # neither mode pays one-time costs inside the timed region.
    for key in range(8):
        store.submit(Request(OpType.READ, key))
    store.run_epoch()
    return store


def _run_sequential(suborams, schedule):
    """Wall-clock of the schedule under the sequential scheduler."""
    with _open_store(suborams) as store:
        start = time.perf_counter()
        for epoch_schedule in schedule:
            for key, balancer in epoch_schedule:
                store.submit(Request(OpType.READ, key), load_balancer=balancer)
            store.run_epoch()
        return time.perf_counter() - start


def _run_pipelined(suborams, schedule):
    """Wall-clock plus overlap evidence under the epoch pipeline."""
    with _open_store(suborams) as store:
        pipeline = store.start_pipeline(depth=DEPTH, clock=False)
        try:
            start = time.perf_counter()
            for epoch_schedule in schedule:
                for key, balancer in epoch_schedule:
                    store.submit(
                        Request(OpType.READ, key), load_balancer=balancer
                    )
                pipeline.close_epoch()
            pipeline.flush()
            elapsed = time.perf_counter() - start
            return (
                elapsed,
                pipeline.occupancy(),
                pipeline.overlap("build", "execute"),
                pipeline.stats,
            )
        finally:
            pipeline.stop()


def test_pipeline_throughput():
    """Sequential vs pipelined requests/second per subORAM count."""
    total_requests = EPOCHS * REQUESTS
    results = {}
    for suborams in SUBORAM_COUNTS:
        schedule = _schedule(suborams)
        # Best-of-REPEATS per mode: scheduling noise only ever slows a
        # run down, so the minimum is the cleanest estimate of each
        # scheduler's cost.
        sequential_s = min(
            _run_sequential(suborams, schedule) for _ in range(REPEATS)
        )
        pipelined_s, occupancy, overlap, stats = min(
            (_run_pipelined(suborams, schedule) for _ in range(REPEATS)),
            key=lambda run: run[0],
        )
        results[suborams] = {
            "sequential_s": sequential_s,
            "pipelined_s": pipelined_s,
            "sequential_rps": total_requests / sequential_s,
            "pipelined_rps": total_requests / pipelined_s,
            "speedup": sequential_s / max(pipelined_s, 1e-9),
            "build_execute_overlap_s": overlap,
            "occupancy": occupancy,
            "stats": stats,
        }

    lines = [
        "S     seq ms/ep   pipe ms/ep   speedup   overlap   exec-occ"
    ]
    for suborams, row in results.items():
        execute_row = next(
            r for r in row["occupancy"] if r["stage"] == "execute"
        )
        lines.append(
            f"{suborams:<4} {row['sequential_s'] / EPOCHS * 1e3:>9.1f}ms "
            f"{row['pipelined_s'] / EPOCHS * 1e3:>10.1f}ms "
            f"{row['speedup']:>8.2f}x "
            f"{row['build_execute_overlap_s'] * 1e3:>7.1f}ms "
            f"{execute_row['occupancy'] * 100:>7.1f}%"
        )
    lines.append("")
    largest_occ = results[max(results)]["occupancy"]
    lines.append("stage occupancy at largest S:")
    for occ_row in largest_occ:
        lines.append(
            f"  {occ_row['stage']:<8} epochs={int(occ_row['count']):<3} "
            f"busy={occ_row['busy_s'] * 1e3:7.1f}ms "
            f"span={occ_row['span_s'] * 1e3:7.1f}ms "
            f"occupancy={occ_row['occupancy'] * 100:5.1f}%"
        )
    report("Epoch pipelining — sequential vs overlapped (§6)", "\n".join(lines))

    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"
    out.write_text(json.dumps(
        {
            "benchmark": "epoch_pipeline_throughput",
            "smoke": SMOKE,
            "num_objects": NUM_OBJECTS,
            "requests_per_epoch": REQUESTS,
            "epochs": EPOCHS,
            "num_load_balancers": NUM_BALANCERS,
            "batch_delay_s": BATCH_DELAY,
            "pipeline_depth": DEPTH,
            "backend": "thread",
            "results": {str(s): row for s, row in results.items()},
        },
        indent=2,
    ) + "\n")

    largest = results[max(results)]
    # The §6 acceptance bar: pipelined throughput beats sequential at the
    # largest S, and the stage recorder shows *genuine* overlap (build of
    # a later epoch concurrent with execute of an earlier one) rather
    # than an incidental timing win.
    assert largest["speedup"] >= PIPELINE_SPEEDUP_FLOOR, largest
    assert largest["build_execute_overlap_s"] > 0, largest
    assert largest["stats"]["max_inflight"] >= 2, largest["stats"]
    for occ_row in largest["occupancy"]:
        assert occ_row["count"] == EPOCHS, largest["occupancy"]
