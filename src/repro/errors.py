"""Exception hierarchy for the Snoopy reproduction.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A system was configured with invalid or inconsistent parameters."""


class NotInitializedError(ReproError, RuntimeError):
    """A component was used before ``initialize`` loaded its contents.

    Subclasses :class:`RuntimeError` for one deprecation cycle so existing
    ``except RuntimeError`` callers keep working.
    """


class TicketPendingError(ReproError):
    """``Ticket.result()`` was called before the ticket's epoch closed.

    Epochs in the functional system run on demand; call ``run_epoch`` on
    the deployment first, then read the ticket.
    """


class SecurityError(ReproError):
    """A security invariant was violated (tampering, replay, overflow)."""


class IntegrityError(SecurityError):
    """Stored or transmitted data failed an integrity check."""


class ReplayError(SecurityError):
    """A message with a previously seen nonce was received."""


class AttestationError(SecurityError):
    """Remote attestation of an enclave failed."""


class RollbackError(SecurityError):
    """Sealed state is older than the trusted monotonic counter allows."""


class BatchOverflowError(SecurityError):
    """More than ``f(R, S)`` distinct requests hashed to one subORAM.

    By Theorem 3 this happens with probability negligible in the security
    parameter; surfacing it loudly (instead of silently dropping a request)
    preserves the paper's no-drop guarantee.
    """


class DuplicateRequestError(ReproError):
    """A subORAM batch contained duplicate object ids.

    The subORAM security definition (Definition 2) only holds for batches of
    distinct requests; the load balancer guarantees this, so receiving a
    duplicate indicates a protocol bug.
    """


class CapacityError(ReproError, ValueError):
    """An operation exceeded a fixed capacity (e.g. oblivious hash bucket).

    Also raised for payloads that do not fit a store's fixed slot size.
    Subclasses :class:`ValueError` for one deprecation cycle so existing
    ``except ValueError`` callers keep working.
    """


class PlannerError(ReproError):
    """The planner could not find a configuration meeting the constraints."""
