"""Exception hierarchy for the Snoopy reproduction.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A system was configured with invalid or inconsistent parameters."""


class NotInitializedError(ReproError, RuntimeError):
    """A component was used before ``initialize`` loaded its contents.

    Subclasses :class:`RuntimeError` for one deprecation cycle so existing
    ``except RuntimeError`` callers keep working.
    """


class TicketPendingError(ReproError):
    """``Ticket.result()`` was called before the ticket's epoch closed.

    Epochs in the functional system run on demand; call ``run_epoch`` on
    the deployment first, then read the ticket.
    """


class SecurityError(ReproError):
    """A security invariant was violated (tampering, replay, overflow)."""


class IntegrityError(SecurityError):
    """Stored or transmitted data failed an integrity check."""


class ReplayError(SecurityError):
    """A message with a previously seen nonce was received."""


class AttestationError(SecurityError):
    """Remote attestation of an enclave failed."""


class RollbackError(SecurityError):
    """Sealed state is older than the trusted monotonic counter allows."""


class BatchOverflowError(SecurityError):
    """More than ``f(R, S)`` distinct requests hashed to one subORAM.

    By Theorem 3 this happens with probability negligible in the security
    parameter; surfacing it loudly (instead of silently dropping a request)
    preserves the paper's no-drop guarantee.
    """


class DuplicateRequestError(ReproError):
    """A subORAM batch contained duplicate object ids.

    The subORAM security definition (Definition 2) only holds for batches of
    distinct requests; the load balancer guarantees this, so receiving a
    duplicate indicates a protocol bug.
    """


class CapacityError(ReproError, ValueError):
    """An operation exceeded a fixed capacity (e.g. oblivious hash bucket).

    Also raised for payloads that do not fit a store's fixed slot size.
    Subclasses :class:`ValueError` for one deprecation cycle so existing
    ``except ValueError`` callers keep working.
    """


class PlannerError(ReproError):
    """The planner could not find a configuration meeting the constraints."""


class FaultError(ReproError):
    """Base class for transient infrastructure faults (crash/timeout/network).

    Fault errors describe *public* events — a worker died, a task took too
    long, a network hop failed — never secret data.  They are the only
    errors the epoch retry machinery considers retryable: retrying a
    security abort (tampering, overflow) would re-run a deterministically
    failing epoch, and making retry decisions depend on anything secret
    would itself be a leak.
    """


class WorkerCrashError(FaultError):
    """An execution-backend worker died before completing its task.

    Attributes:
        unit: index of the epoch unit (e.g. subORAM) the task belonged
            to, when known.
    """

    def __init__(self, message: str, unit=None):
        super().__init__(message)
        self.unit = unit


class TaskTimeoutError(FaultError):
    """A backend task exceeded its configured per-task timeout.

    Attributes:
        unit: index of the epoch unit the task belonged to, when known.
    """

    def __init__(self, message: str, unit=None):
        super().__init__(message)
        self.unit = unit


class TransportError(FaultError):
    """A load-balancer <-> subORAM network hop failed (not tampering).

    Distinct from :class:`IntegrityError`/:class:`ReplayError`: those are
    *security* failures that must never be blindly retried, while a
    dropped connection is a transient fault the epoch pipeline recovers
    from by re-running the whole epoch.
    """


class ServiceUnavailableError(ReproError):
    """The serve-layer front door refused a request with a typed verdict.

    Subclasses distinguish *why* — load shedding vs. drain — because the
    right client reaction differs: a BUSY verdict is retryable after
    backoff, a SHUTTING_DOWN verdict means find another server.  Both
    are public control-plane facts (the paper's §2.1 model already
    grants the attacker full visibility into connection lifecycle).
    """


class ServerBusyError(ServiceUnavailableError, FaultError):
    """The server shed this request with a BUSY frame (load shedding).

    Also a :class:`FaultError`: busy verdicts are transient by
    definition, so generic retry machinery may treat them as retryable.
    """


class ServerShuttingDownError(ServiceUnavailableError):
    """The server answered with SHUTTING_DOWN while draining.

    Deliberately *not* a :class:`FaultError`: retrying against the same
    server would race its drain; clients should fail over instead.
    """


class SessionExpiredError(ReproError):
    """A reconnecting client's resumable session was no longer held.

    The server evicted the session (buffer cap exceeded, server
    restart, or LRU pressure), so exactly-once resumption is impossible
    and the open tickets fail loudly instead of silently re-executing.
    """


class CircuitOpenError(FaultError):
    """The client's per-connection circuit breaker is open.

    Raised on submit without touching the network: enough consecutive
    transport failures occurred that further attempts are presumed
    futile until the cooldown elapses (then one half-open probe is let
    through).
    """


class DeadlineExceededError(ReproError, TimeoutError):
    """A per-request deadline elapsed before the ticket resolved.

    Subclasses :class:`TimeoutError` so callers treating deadlines as
    generic timeouts keep working.  The request itself may still
    complete server-side; the deadline bounds the *wait*, not the
    epoch execution.
    """


class EpochFailedError(ReproError):
    """One epoch attempt failed; its requests were requeued, not dropped.

    Raised by :meth:`repro.core.epoch.EpochDriver.run` when any stage unit
    fails.  By the time it propagates the driver has already rolled the
    epoch back: drained requests are back in their balancers (in arrival
    order), subORAM state was not installed, and pending tickets remain
    pending — the next ``run_epoch`` retries the same requests, which is
    how the paper's no-drop guarantee (Theorem 3 / Appendix C: every
    accepted request is eventually served in some epoch) survives faults.

    Attributes:
        stage: which pipeline stage failed (``"build"``, ``"execute"``,
            ``"match"``).
        unit: failing unit index within the stage, when known (balancer
            index for build/match, subORAM index for execute).
        cause: the underlying exception.
    """

    def __init__(self, stage: str, unit, cause: BaseException):
        super().__init__(
            f"epoch stage {stage!r} failed"
            + (f" at unit {unit}" if unit is not None else "")
            + f": {cause!r}"
        )
        self.stage = stage
        self.unit = unit
        self.cause = cause

    @property
    def retryable(self) -> bool:
        """True when the cause is a transient fault worth retrying.

        Only :class:`FaultError` subclasses (worker crash, task timeout,
        transport failure) are retryable; security aborts and protocol
        bugs deterministically recur, so retrying them would just repeat
        the failure ``max_attempts`` times.
        """
        return isinstance(self.cause, FaultError)
