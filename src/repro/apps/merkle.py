"""A binary Merkle tree with heap-indexed nodes.

Used by the key-transparency application: the tree's nodes are the
objects stored in Snoopy (32-byte hashes), and an inclusion proof is the
list of sibling nodes on the leaf-to-root path — each fetched with an
oblivious read.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

from repro.utils.bits import next_pow2

HASH_SIZE = 32


def _hash_leaf(data: bytes) -> bytes:
    return hashlib.sha256(b"leaf:" + data).digest()


def _hash_node(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(b"node:" + left + right).digest()


EMPTY_LEAF = _hash_leaf(b"")


class MerkleTree:
    """A complete binary Merkle tree over a fixed number of leaf slots.

    Nodes use 1-based heap indexing: node ``i`` has children ``2i`` and
    ``2i+1``; leaves occupy ``[num_slots, 2*num_slots)``.
    """

    def __init__(self, leaves: List[bytes]):
        if not leaves:
            raise ValueError("MerkleTree requires at least one leaf")
        self.num_leaves = len(leaves)
        self.num_slots = next_pow2(self.num_leaves)
        self.nodes: List[bytes] = [b""] * (2 * self.num_slots)
        for i in range(self.num_slots):
            data = leaves[i] if i < self.num_leaves else b""
            self.nodes[self.num_slots + i] = _hash_leaf(data)
        for i in range(self.num_slots - 1, 0, -1):
            self.nodes[i] = _hash_node(self.nodes[2 * i], self.nodes[2 * i + 1])

    @property
    def root(self) -> bytes:
        """The tree's root hash."""
        return self.nodes[1]

    @property
    def height(self) -> int:
        """Levels below the root (= proof length)."""
        return self.num_slots.bit_length() - 1

    def leaf_index(self, position: int) -> int:
        """Node index of the leaf at ``position``."""
        if not 0 <= position < self.num_slots:
            raise IndexError(f"leaf position {position} out of range")
        return self.num_slots + position

    def proof_node_indices(self, position: int) -> List[int]:
        """Node indices of the siblings on the path to the root."""
        index = self.leaf_index(position)
        siblings = []
        while index > 1:
            siblings.append(index ^ 1)
            index //= 2
        return siblings

    def as_objects(self) -> Dict[int, bytes]:
        """All nodes as a {node_index: hash} object map for Snoopy."""
        return {i: self.nodes[i] for i in range(1, 2 * self.num_slots)}

    @staticmethod
    def verify(
        leaf_data: bytes, position: int, siblings: List[bytes], root: bytes
    ) -> bool:
        """Check an inclusion proof (leaf data + sibling hashes) to a root."""
        current = _hash_leaf(leaf_data)
        index = position
        for sibling in siblings:
            if index % 2 == 0:
                current = _hash_node(current, sibling)
            else:
                current = _hash_node(sibling, current)
            index //= 2
        return current == root
