"""Private key-transparency lookups over Snoopy (§3.2, Fig. 9b).

A key-transparency log (CONIKS/Trillian-style) maps users to public keys
and publishes a signed Merkle root; to look up Bob's key, Alice fetches
(1) Bob's key, (2) the signed root, and (3) a Merkle inclusion proof —
``log2(n) + 1`` ORAM accesses for ``n`` users (the signed root is
requested directly).  Serving the log from Snoopy hides *whose* key Alice
looked up, so the server cannot learn that Alice wants to talk to Bob.

Objects are 32-byte hashes/keys; for 5M users the paper's configuration
stores ~10M objects and spends 24 accesses per lookup.
"""

from __future__ import annotations

import hmac
import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.apps.merkle import HASH_SIZE, MerkleTree
from repro.core.config import SnoopyConfig
from repro.core.snoopy import Snoopy
from repro.types import OpType, Request

# Object-key layout inside the Snoopy store: Merkle node i lives at key i
# (node indices start at 1); user key material lives above the node range.
_USER_KEY_BASE_SHIFT = 1


@dataclass(frozen=True)
class LookupProof:
    """Result of a private lookup: the key plus its inclusion proof."""

    user_id: int
    public_key: Optional[bytes]
    siblings: List[bytes]
    root: bytes
    signature: bytes

    def accesses(self) -> int:
        """ORAM accesses this lookup consumed (log2 n + 1)."""
        return len(self.siblings) + 1


class KeyTransparencyLog:
    """A key-transparency log whose state is served obliviously by Snoopy."""

    def __init__(
        self,
        users: Dict[int, bytes],
        config: Optional[SnoopyConfig] = None,
        signing_key: bytes = b"kt-log-signing-key",
    ):
        if not users:
            raise ValueError("key transparency log needs at least one user")
        for user, key in users.items():
            if len(key) != HASH_SIZE:
                raise ValueError(
                    f"public key for user {user} must be {HASH_SIZE} bytes"
                )
        self._signing_key = signing_key
        self._users = sorted(users)
        self._position = {user: i for i, user in enumerate(self._users)}
        self.tree = MerkleTree([users[u] for u in self._users])

        self._user_key_base = 2 * self.tree.num_slots + _USER_KEY_BASE_SHIFT
        objects = self.tree.as_objects()
        for user in self._users:
            objects[self._user_key_base + self._position[user]] = users[user]

        self.num_objects = len(objects)
        if config is None:
            config = SnoopyConfig(
                num_load_balancers=1,
                num_suborams=2,
                value_size=HASH_SIZE,
                security_parameter=32,
            )
        if config.value_size != HASH_SIZE:
            raise ValueError("key transparency requires 32-byte objects")
        self.store = Snoopy(config)
        self.store.initialize(objects)

    # ------------------------------------------------------------------
    # Root signing (done by the log operator, outside the ORAM)
    # ------------------------------------------------------------------
    def signed_root(self) -> tuple:
        """The current (root, signature) pair the log operator publishes."""
        signature = hmac.new(
            self._signing_key, self.tree.root, hashlib.sha256
        ).digest()
        return self.tree.root, signature

    def verify_root(self, root: bytes, signature: bytes) -> bool:
        """Check the operator's signature over a published root."""
        expect = hmac.new(self._signing_key, root, hashlib.sha256).digest()
        return hmac.compare_digest(expect, signature)

    # ------------------------------------------------------------------
    # Private lookup
    # ------------------------------------------------------------------
    def accesses_per_lookup(self) -> int:
        """log2(n)+1 — the Fig. 9b per-operation access count."""
        return self.tree.height + 1

    def lookup(self, user_id: int) -> LookupProof:
        """Privately fetch a user's key and inclusion proof in one epoch."""
        if user_id not in self._position:
            raise KeyError(f"user {user_id} not in the log")
        position = self._position[user_id]
        requests = [
            Request(OpType.READ, self._user_key_base + position, seq=0)
        ]
        sibling_indices = self.tree.proof_node_indices(position)
        for i, node_index in enumerate(sibling_indices):
            requests.append(Request(OpType.READ, node_index, seq=i + 1))

        responses = {r.seq: r for r in self.store.batch(requests)}
        public_key = responses[0].value
        siblings = [responses[i + 1].value for i in range(len(sibling_indices))]
        root, signature = self.signed_root()
        return LookupProof(
            user_id=user_id,
            public_key=public_key,
            siblings=siblings,
            root=root,
            signature=signature,
        )

    def verify_lookup(self, proof: LookupProof) -> bool:
        """Client-side verification of a lookup proof."""
        if not self.verify_root(proof.root, proof.signature):
            return False
        if proof.public_key is None:
            return False
        position = self._position[proof.user_id]
        return MerkleTree.verify(
            proof.public_key, position, proof.siblings, proof.root
        )
