"""Applications from §3.2: key transparency and private contact discovery."""

from repro.apps.merkle import MerkleTree
from repro.apps.key_transparency import KeyTransparencyLog, LookupProof
from repro.apps.contact_discovery import ContactDiscoveryService

__all__ = [
    "ContactDiscoveryService",
    "KeyTransparencyLog",
    "LookupProof",
    "MerkleTree",
]
