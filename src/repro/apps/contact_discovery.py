"""Private contact discovery over Snoopy (§3.2, §5).

Signal's problem: a client wants to learn which of its contacts are
registered users without revealing the contact list.  The paper's
subORAM design is directly inspired by Signal's oblivious hash table
approach; here we solve the *service-side* version with Snoopy itself —
registration state is an oblivious object store, so neither queries nor
registration updates leak which phone numbers they touch.

Phone numbers are mapped to object keys by truncated keyed hash;
registered numbers store a presence record, all other keys store an
"absent" record.  (A production deployment would size the key space to
the hash domain; the class keeps it configurable for tests.)
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional

from repro.core.config import SnoopyConfig
from repro.core.snoopy import Snoopy
from repro.types import OpType, Request

PRESENT = b"\x01"
ABSENT = b"\x00"
RECORD_SIZE = 16  # presence byte + padding to a fixed record size


def _record(present: bool) -> bytes:
    return (PRESENT if present else ABSENT) + b"\x00" * (RECORD_SIZE - 1)


class ContactDiscoveryService:
    """An oblivious contact-discovery service.

    Args:
        key_space: number of hash buckets for phone numbers (the object
            count; collisions produce false positives exactly as in any
            truncated-hash directory).
        config: Snoopy deployment parameters.
    """

    def __init__(
        self,
        key_space: int = 1 << 16,
        config: Optional[SnoopyConfig] = None,
        hash_salt: bytes = b"contact-discovery",
    ):
        self.key_space = key_space
        self._salt = hash_salt
        if config is None:
            config = SnoopyConfig(
                num_load_balancers=1,
                num_suborams=2,
                value_size=RECORD_SIZE,
                security_parameter=32,
            )
        if config.value_size != RECORD_SIZE:
            raise ValueError(f"contact discovery uses {RECORD_SIZE}-byte records")
        self.store = Snoopy(config)
        self._initialized = False

    def object_key(self, phone_number: str) -> int:
        """Hash a phone number into the key space."""
        digest = hashlib.sha256(
            self._salt + phone_number.encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") % self.key_space

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def initialize(self, registered: Iterable[str]) -> None:
        """Build the directory: every key-space slot gets a record."""
        objects = {key: _record(False) for key in range(self.key_space)}
        for phone_number in registered:
            objects[self.object_key(phone_number)] = _record(True)
        self.store.initialize(objects)
        self._initialized = True

    def register(self, phone_number: str) -> None:
        """Register a number (an oblivious write)."""
        self.store.write(self.object_key(phone_number), _record(True))

    def unregister(self, phone_number: str) -> None:
        """Remove a number (an oblivious write, indistinguishable)."""
        self.store.write(self.object_key(phone_number), _record(False))

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def discover(self, contacts: List[str]) -> Dict[str, bool]:
        """Which of ``contacts`` are registered, in one oblivious epoch.

        Duplicate contacts and arbitrary skew are fine — the load
        balancer deduplicates (§4.1).
        """
        if not self._initialized:
            raise RuntimeError("service not initialized")
        requests = [
            Request(OpType.READ, self.object_key(number), seq=i)
            for i, number in enumerate(contacts)
        ]
        responses = {r.seq: r for r in self.store.batch(requests)}
        return {
            number: (
                responses[i].value is not None
                and responses[i].value[:1] == PRESENT
            )
            for i, number in enumerate(contacts)
        }
