"""Extensions the paper sketches but does not evaluate (§9).

* :mod:`repro.extensions.replication` — quorum-replicated subORAMs with
  trusted-counter freshness: tolerates ``f`` crashed and ``r`` rolled-back
  replicas.
* :mod:`repro.extensions.pir` — Snoopy's load-balancer techniques applied
  to private information retrieval: subORAMs replaced with two-server
  XOR-PIR shards.
"""

from repro.extensions.replication import ReplicatedSubOram
from repro.extensions.pir import PirServer, PirShardedStore

__all__ = ["PirServer", "PirShardedStore", "ReplicatedSubOram"]

from repro.extensions.adaptive import AdaptivePolicy, Mode  # noqa: E402

__all__.extend(["AdaptivePolicy", "Mode"])
