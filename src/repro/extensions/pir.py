"""Snoopy's techniques applied to Private Information Retrieval (§9).

The paper: "We can replace the subORAMs with PIR servers, each of which
stores a shard of the data.  Our load balancer design then makes it
possible to obliviously route requests to the PIR server holding the
correct shard."

This module implements the sketch with classic two-server XOR PIR
(Chor-Goldreich-Kushilevitz-Sudan):

* each shard is replicated on two non-colluding :class:`PirServer`\\ s;
* to fetch record ``i`` the querier sends a uniformly random subset
  ``S`` of record indices to server A and ``S xor {i}`` to server B;
  XOR-ing the two answers yields record ``i``, while each server alone
  sees a uniformly random subset;
* :class:`PirShardedStore` plays the load-balancer role: requests are
  routed to shards by the keyed hash, deduplicated, and padded to the
  Theorem 3 batch size with dummy queries so the per-shard query count
  is public.

PIR is read-only; the fundamental per-query cost is a linear scan of the
shard — exactly the regime Snoopy's batching amortizes.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.analysis.balls_bins import batch_size
from repro.crypto.prf import Prf
from repro.errors import ConfigurationError
from repro.utils.validation import require, require_positive


class PirServer:
    """One PIR server: a shard of fixed-size records, XOR-subset queries.

    ``query_log`` records the subsets served — tests use it to verify the
    information-theoretic property that a single server's view is a
    uniformly random subset, independent of the retrieved index.
    """

    def __init__(self, records: Sequence[bytes], record_size: int):
        require_positive(record_size, "record_size")
        for record in records:
            require(
                len(record) == record_size,
                f"record size {len(record)} != {record_size}",
            )
        self.records = list(records)
        self.record_size = record_size
        self.query_log: List[frozenset] = []

    def answer(self, subset: frozenset) -> bytes:
        """XOR of the records indexed by ``subset``."""
        self.query_log.append(subset)
        out = bytearray(self.record_size)
        for index in subset:
            record = self.records[index]
            for b in range(self.record_size):
                out[b] ^= record[b]
        return bytes(out)


def pir_fetch(server_a: PirServer, server_b: PirServer, index: int,
              rng: random.Random) -> bytes:
    """Two-server PIR retrieval of one record."""
    n = len(server_a.records)
    subset = frozenset(i for i in range(n) if rng.getrandbits(1))
    flipped = subset ^ frozenset([index])
    answer_a = server_a.answer(subset)
    answer_b = server_b.answer(flipped)
    return bytes(a ^ b for a, b in zip(answer_a, answer_b))


class PirShardedStore:
    """A sharded, batched, load-balanced two-server PIR store.

    Read-only Snoopy analogue: ``batch_read`` deduplicates the requested
    keys, routes each to its shard by the keyed hash, pads every shard's
    query list to the public batch size ``f(R, S)`` with dummy queries,
    and executes all queries through the two-server PIR protocol.
    """

    def __init__(
        self,
        objects: Dict[int, bytes],
        num_shards: int,
        record_size: int,
        sharding_key: bytes = b"pir-sharding-key-0123456789abcd!",
        security_parameter: int = 32,
        rng: Optional[random.Random] = None,
    ):
        require_positive(num_shards, "num_shards")
        if not objects:
            raise ConfigurationError("PIR store needs at least one object")
        self._prf = Prf(sharding_key)
        self.num_shards = num_shards
        self.record_size = record_size
        self.security_parameter = security_parameter
        self._rng = rng if rng is not None else random.Random()

        # Build shard layouts: key -> (shard, position).
        shard_keys: List[List[int]] = [[] for _ in range(num_shards)]
        for key in sorted(objects):
            shard_keys[self._prf.range(key, num_shards)].append(key)
        self._position: Dict[int, tuple] = {}
        self._key_at: Dict[tuple, int] = {}
        self.servers: List[tuple] = []
        for shard, keys in enumerate(shard_keys):
            records = [objects[k] for k in keys] or [bytes(record_size)]
            for position, key in enumerate(keys):
                self._position[key] = (shard, position)
                self._key_at[(shard, position)] = key
            self.servers.append(
                (
                    PirServer(records, record_size),
                    PirServer(records, record_size),
                )
            )

    def batch_read(self, keys: Sequence[int]) -> Dict[int, Optional[bytes]]:
        """Fetch a batch of keys; per-shard query counts are public.

        Returns a key -> value map (``None`` for unknown keys).  Every
        shard answers exactly ``f(len(keys), num_shards)`` queries —
        dummy queries target position 0 — so the shard load leaks nothing
        about which keys were requested.
        """
        distinct = sorted(set(keys))
        if not distinct:
            return {}
        size = batch_size(
            len(distinct), self.num_shards, self.security_parameter
        )

        per_shard: List[List[int]] = [[] for _ in range(self.num_shards)]
        results: Dict[int, Optional[bytes]] = {}
        for key in distinct:
            if key not in self._position:
                results[key] = None
                continue
            shard, position = self._position[key]
            per_shard[shard].append(position)

        for shard, positions in enumerate(per_shard):
            if len(positions) > size:
                # Negligible under Theorem 3 with distinct random keys.
                raise ConfigurationError(
                    f"shard {shard} batch overflowed public size {size}"
                )
            padded = positions + [0] * (size - len(positions))
            server_a, server_b = self.servers[shard]
            answers = [
                pir_fetch(server_a, server_b, position, self._rng)
                for position in padded
            ]
            for position, value in zip(positions, answers[: len(positions)]):
                results[self._key_at[(shard, position)]] = value
        return results

    def queries_per_shard(self, num_keys: int) -> int:
        """The public per-shard query count for a batch of ``num_keys``."""
        return batch_size(num_keys, self.num_shards, self.security_parameter)
