"""Adaptive configuration switching — the paper's stated future work.

§1 (Limitations): "Snoopy can use a different, latency-optimized subORAM
with a shorter epoch time if latency is a priority.  We leave for future
work the problem of adaptively switching between solutions that are
optimal under different workloads."

This module implements that switching at the policy level:

* two *modes*, each a (epoch length, subORAM design) pair —
  ``LATENCY`` (short epochs; per-request-efficient subORAM, modelled on
  Oblix) and ``THROUGHPUT`` (longer epochs; the batch linear-scan
  subORAM);
* a load estimator (exponentially weighted request rate);
* a hysteresis policy: switch up when the estimated rate exceeds the
  latency mode's sustainable capacity (headroom factor), switch down only
  when the rate falls well below it — oscillation would pay the
  reconfiguration cost repeatedly.

Predicted mode latencies come from the calibrated cost model, so the
policy's decisions inherit its calibration.  The *security* note from the
paper applies: which mode is active is public information (epoch timing
is observable anyway); the switch itself depends only on the public
request rate.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.sim.cluster import snoopy_oblix_max_throughput
from repro.sim.costmodel import max_throughput, mean_latency, oblix_access_time
from repro.sim.machines import DEFAULT_PROFILE, MachineProfile
from repro.utils.validation import require, require_positive


class Mode(enum.Enum):
    """The two operating points the policy switches between."""

    LATENCY = "latency"
    THROUGHPUT = "throughput"


@dataclass(frozen=True)
class ModeSpec:
    """One operating point: epoch length plus a capacity estimate."""

    mode: Mode
    epoch: float
    capacity: float  # sustainable requests/second
    idle_latency: float  # mean latency at negligible load


class AdaptivePolicy:
    """Decides the operating mode from an estimated request rate.

    Args:
        num_load_balancers / num_suborams / num_objects: the deployment.
        latency_epoch: epoch length of the latency mode (short).
        throughput_epoch: epoch length of the throughput mode.
        headroom: fraction of a mode's capacity considered safe (switch
            up beyond it).
        hysteresis: switch down only below ``headroom * hysteresis`` of
            the latency mode's capacity.
        smoothing: EWMA factor for the rate estimator (0..1; higher reacts
            faster).
    """

    def __init__(
        self,
        num_load_balancers: int,
        num_suborams: int,
        num_objects: int,
        latency_epoch: float = 0.02,
        throughput_epoch: float = 0.4,
        headroom: float = 0.8,
        hysteresis: float = 0.5,
        smoothing: float = 0.3,
        profile: MachineProfile = DEFAULT_PROFILE,
    ):
        require_positive(latency_epoch, "latency_epoch")
        require_positive(throughput_epoch, "throughput_epoch")
        require(0 < headroom <= 1, "headroom must be in (0, 1]")
        require(0 < hysteresis < 1, "hysteresis must be in (0, 1)")
        require(0 < smoothing <= 1, "smoothing must be in (0, 1]")
        self.profile = profile
        self.headroom = headroom
        self.hysteresis = hysteresis
        self.smoothing = smoothing

        shard = max(1, math.ceil(num_objects / num_suborams))
        # Latency mode: Oblix-style subORAM, short epochs.  Capacity is
        # what the hybrid sustains at mean latency = 5/2 * latency_epoch.
        latency_capacity = snoopy_oblix_max_throughput(
            num_load_balancers,
            num_suborams,
            num_objects,
            5 * latency_epoch / 2,
            profile,
        )
        self.latency_mode = ModeSpec(
            mode=Mode.LATENCY,
            epoch=latency_epoch,
            capacity=latency_capacity,
            idle_latency=latency_epoch / 2 + oblix_access_time(shard, profile),
        )
        throughput_capacity = max_throughput(
            num_load_balancers,
            num_suborams,
            num_objects,
            5 * throughput_epoch / 2,
            profile=profile,
        )
        self.throughput_mode = ModeSpec(
            mode=Mode.THROUGHPUT,
            epoch=throughput_epoch,
            capacity=throughput_capacity,
            idle_latency=mean_latency(
                1.0, num_load_balancers, num_suborams, num_objects,
                profile=profile,
            ),
        )

        self._rate_estimate = 0.0
        self.mode = Mode.LATENCY
        self.switches: List[Tuple[float, Mode]] = []

    # ------------------------------------------------------------------
    # Rate estimation + decisions
    # ------------------------------------------------------------------
    @property
    def rate_estimate(self) -> float:
        """The current EWMA of the offered request rate (reqs/s)."""
        return self._rate_estimate

    def observe(self, requests: int, window: float, now: float = 0.0) -> Mode:
        """Feed one measurement window; returns the (possibly new) mode."""
        require_positive(window, "window")
        instantaneous = requests / window
        self._rate_estimate = (
            self.smoothing * instantaneous
            + (1 - self.smoothing) * self._rate_estimate
        )
        decided = self.decide(self._rate_estimate)
        if decided != self.mode:
            self.mode = decided
            self.switches.append((now, decided))
        return self.mode

    def decide(self, rate: float) -> Mode:
        """Pure decision function with hysteresis (no state update)."""
        up_threshold = self.headroom * self.latency_mode.capacity
        down_threshold = up_threshold * self.hysteresis
        if self.mode is Mode.LATENCY:
            return Mode.THROUGHPUT if rate > up_threshold else Mode.LATENCY
        return Mode.LATENCY if rate < down_threshold else Mode.THROUGHPUT

    # ------------------------------------------------------------------
    # Predicted behaviour per mode (for tests and reporting)
    # ------------------------------------------------------------------
    def spec(self, mode: Optional[Mode] = None) -> ModeSpec:
        """The ModeSpec for ``mode`` (default: the current mode)."""
        mode = mode if mode is not None else self.mode
        return (
            self.latency_mode if mode is Mode.LATENCY else self.throughput_mode
        )

    def predicted_latency(self, rate: float, mode: Optional[Mode] = None) -> float:
        """Rough mean latency at ``rate`` in ``mode`` (inf if overloaded)."""
        spec = self.spec(mode)
        if rate > spec.capacity:
            return float("inf")
        return max(spec.idle_latency, 5 * spec.epoch / 2 * 0.5)
