"""Fault tolerance and rollback protection for subORAMs (§9).

The paper's sketch: "use a quorum replication scheme to replicate data to
``f + r + 1`` nodes where ``f`` is the maximum number of nodes that can
fail by crashing and ``r`` the maximum number of nodes that can be
maliciously rolled back.  Systems like ROTE or SGX's monotonic counter
provide a trusted counter abstraction that can be used to detect which of
the received replies corresponds to the most recent epoch...  Snoopy only
invokes the trusted counter once per epoch."

``ReplicatedSubOram`` implements exactly that: every batch goes to all
reachable replicas; each reply is stamped with the replica's epoch; the
group's trusted counter (bumped once per batch) identifies fresh replies.
With at most ``f`` crashes and ``r`` rollbacks, at least one fresh reply
survives; fewer survivors than that raise loudly instead of serving stale
data.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional

from repro.crypto.keys import KeyChain
from repro.enclave.sealed import MonotonicCounter
from repro.errors import ReproError, RollbackError
from repro.suboram.suboram import SubOram
from repro.types import BatchEntry
from repro.utils.validation import require


class ReplicaUnavailableError(ReproError):
    """All replicas of a subORAM group are unreachable."""


class _Replica:
    """One replica: a subORAM plus its local (untrusted) epoch number."""

    def __init__(self, suboram: SubOram):
        self.suboram = suboram
        self.epoch = 0
        self.crashed = False

    def rollback_to(self, snapshot: "_ReplicaSnapshot") -> None:
        """Malicious host restores an old state (state + old epoch)."""
        self.suboram = snapshot.suboram
        self.epoch = snapshot.epoch


class _ReplicaSnapshot:
    def __init__(self, suboram: SubOram, epoch: int):
        self.suboram = suboram
        self.epoch = epoch


class ReplicatedSubOram:
    """A subORAM group tolerating ``f`` crashes and ``r`` rollbacks.

    The group size is ``f + r + 1``.  ``batch_access`` executes the batch
    on every live replica, bumps the trusted counter once, and returns the
    response of a replica whose epoch matches the counter.
    """

    def __init__(
        self,
        suboram_id: int,
        value_size: int,
        crash_tolerance: int = 1,
        rollback_tolerance: int = 1,
        keychain: Optional[KeyChain] = None,
        security_parameter: int = 32,
        kernel=None,
        crypto: str = "batched",
    ):
        require(crash_tolerance >= 0, "crash_tolerance must be >= 0")
        require(rollback_tolerance >= 0, "rollback_tolerance must be >= 0")
        self.suboram_id = suboram_id
        self.crash_tolerance = crash_tolerance
        self.rollback_tolerance = rollback_tolerance
        self.counter = MonotonicCounter()
        keychain = keychain if keychain is not None else KeyChain()
        self.replicas = [
            _Replica(
                SubOram(
                    suboram_id,
                    value_size,
                    keychain,
                    security_parameter,
                    kernel=kernel,
                    crypto=crypto,
                )
            )
            for _ in range(crash_tolerance + rollback_tolerance + 1)
        ]

    @property
    def group_size(self) -> int:
        """Total replica count (f + r + 1)."""
        return len(self.replicas)

    @property
    def state_token(self) -> tuple:
        """Version token over the whole group's mutable state.

        Lets the group ride the process backend's cross-epoch state cache
        (:meth:`~repro.exec.pools.ProcessPoolBackend.map_stateful`): the
        token changes whenever the trusted counter, any replica's local
        epoch or crash flag, or any replica's subORAM state changes — the
        exact conditions under which a cached worker-side copy is stale.
        """
        return (
            self.counter.value,
            tuple(
                (
                    replica.epoch,
                    replica.crashed,
                    getattr(replica.suboram, "state_token", None),
                )
                for replica in self.replicas
            ),
        )

    @property
    def num_objects(self) -> int:
        """Object count of the partition (taken from a live replica)."""
        for replica in self.replicas:
            if not replica.crashed:
                return replica.suboram.num_objects
        return 0

    def peek(self, key: int) -> Optional[bytes]:
        """Non-oblivious debug read from the freshest live replica."""
        fresh = max(
            (r for r in self.replicas if not r.crashed),
            key=lambda r: r.epoch,
            default=None,
        )
        if fresh is None:
            raise ReplicaUnavailableError(
                f"subORAM group {self.suboram_id}: all replicas crashed"
            )
        return fresh.suboram.peek(key)

    def initialize(self, objects: Dict[int, bytes]) -> None:
        """Load the partition contents onto every replica."""
        for replica in self.replicas:
            replica.suboram.initialize(dict(objects))

    # ------------------------------------------------------------------
    # Batch execution with freshness checking
    # ------------------------------------------------------------------
    def batch_access(self, batch: List[BatchEntry]) -> List[BatchEntry]:
        """Execute on all live replicas; return a verified-fresh reply.

        Raises:
            ReplicaUnavailableError: every replica has crashed.  The
                trusted counter is *not* advanced: no batch was served,
                so after ``recover_from_peer`` the group resumes with
                replica epochs still aligned to the counter.
            RollbackError: replies arrived but none matches the trusted
                counter epoch (more than ``r`` rollbacks — the guarantee
                is void and serving would return stale data).
        """
        # The counter increment commits only once a fresh reply is in
        # hand; incrementing up front would permanently desynchronize
        # ``expected_epoch`` from the replica epochs whenever every
        # replica was crashed (nothing executed, yet the counter moved).
        expected_epoch = self.counter.value + 1

        replies = []
        for replica in self.replicas:
            if replica.crashed:
                continue
            # Each replica needs its own copy of the batch: entries are
            # mutated in place during the scan.
            local_batch = [entry.copy() for entry in batch]
            result = replica.suboram.batch_access(local_batch)
            replica.epoch += 1
            replies.append((replica.epoch, result))

        if not replies:
            raise ReplicaUnavailableError(
                f"subORAM group {self.suboram_id}: all "
                f"{self.group_size} replicas crashed"
            )
        for epoch, result in replies:
            if epoch == expected_epoch:
                self.counter.increment()
                return result
        raise RollbackError(
            f"subORAM group {self.suboram_id}: no reply matches trusted "
            f"epoch {expected_epoch} (stale epochs: "
            f"{sorted(e for e, _ in replies)})"
        )

    # ------------------------------------------------------------------
    # Fault injection (tests / chaos tooling)
    # ------------------------------------------------------------------
    def crash(self, index: int) -> None:
        """Fault injection: mark a replica as crashed."""
        self.replicas[index].crashed = True

    def recover_from_peer(self, index: int) -> None:
        """Crash recovery: re-seed a replica from a fresh peer's state."""
        fresh = max(
            (r for r in self.replicas if not r.crashed),
            key=lambda r: r.epoch,
            default=None,
        )
        if fresh is None:
            raise ReplicaUnavailableError("no live peer to recover from")
        replica = self.replicas[index]
        replica.suboram = copy.deepcopy(fresh.suboram)
        replica.epoch = fresh.epoch
        replica.crashed = False

    def snapshot(self, index: int) -> _ReplicaSnapshot:
        """What a malicious host can capture for a later rollback."""
        replica = self.replicas[index]
        return _ReplicaSnapshot(copy.deepcopy(replica.suboram), replica.epoch)

    def rollback(self, index: int, snapshot: _ReplicaSnapshot) -> None:
        """Maliciously restore a replica to an old snapshot."""
        self.replicas[index].rollback_to(snapshot)
