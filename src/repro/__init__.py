"""Snoopy reproduction: a scalable oblivious object store in Python.

This library reproduces *Snoopy: Surpassing the Scalability Bottleneck of
Oblivious Storage* (Dauterman, Fang, Demertzis, Crooks, Popa — SOSP 2021):

* the functional system — oblivious load balancers, batch-scan subORAMs,
  the assembled store with linearizable semantics (:mod:`repro.core`);
* its oblivious building blocks — compare-and-set, bitonic sort,
  Goodrich compaction, two-tier oblivious hash tables
  (:mod:`repro.oblivious`);
* the analysis — the Lambert-W batch-size bound (:mod:`repro.analysis`);
* the evaluated baselines — Path/Ring ORAM, Obladi, Oblix, plaintext
  (:mod:`repro.baselines`);
* performance simulation and the planner (:mod:`repro.sim`,
  :mod:`repro.planner`);
* the motivating applications (:mod:`repro.apps`).

Quickstart::

    from repro import Snoopy, SnoopyConfig, Request, OpType

    store = Snoopy(SnoopyConfig(num_load_balancers=2, num_suborams=3,
                                value_size=16, execution_backend="thread"))
    store.initialize({key: bytes(16) for key in range(1000)})
    ticket = store.submit(Request(OpType.WRITE, 42, b"hello snoopy 42!"))
    store.run_epoch()
    response = ticket.result()
"""

from repro.types import OpType, Request, Response
from repro.core.config import SnoopyConfig
from repro.core.snoopy import Snoopy
from repro.core.client import Client, SnoopyClient
from repro.core.faults import FaultEvent, FaultInjector, FaultPlan
from repro.core.resilience import EpochRetryController, RetryPolicy
from repro.core.pipeline import EpochPipeline
from repro.core.tickets import Ticket
from repro.core.access_control import AccessControlledStore
from repro.errors import (
    CapacityError,
    EpochFailedError,
    FaultError,
    NotInitializedError,
    ReproError,
    TaskTimeoutError,
    TicketPendingError,
    TransportError,
    WorkerCrashError,
)
from repro.exec import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    make_backend,
)
from repro.planner.planner import Plan, Planner

__version__ = "1.0.0"

__all__ = [
    "AccessControlledStore",
    "CapacityError",
    "Client",
    "EpochFailedError",
    "EpochPipeline",
    "EpochRetryController",
    "ExecutionBackend",
    "FaultError",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "NotInitializedError",
    "OpType",
    "Plan",
    "Planner",
    "ProcessPoolBackend",
    "ReproError",
    "Request",
    "Response",
    "RetryPolicy",
    "SerialBackend",
    "Snoopy",
    "SnoopyClient",
    "SnoopyConfig",
    "TaskTimeoutError",
    "ThreadPoolBackend",
    "Ticket",
    "TicketPendingError",
    "TransportError",
    "WorkerCrashError",
    "make_backend",
    "__version__",
]
