"""The staged epoch driver: §6's parallel pipeline over a pluggable backend.

One Snoopy epoch decomposes into three stages whose units are mutually
independent (the structure behind equations (1)–(3) and Figures 11/13):

* **build** — every load balancer turns its queued requests into S
  fixed-size batches (one oblivious sort + compaction per balancer);
  independent *across balancers*.
* **execute** — every subORAM serves the L balancers' batches.  The
  batches of one subORAM must run in fixed balancer order (LB 0 first —
  the order Appendix C's linearization proof fixes), so each subORAM's
  L-batch chain is a single ordered task; independent *across subORAMs*.
* **match** — every balancer obliviously matches the returned entries to
  its clients' requests; independent *across balancers*.

:class:`EpochDriver` runs each stage as one
:meth:`~repro.exec.backend.ExecutionBackend.map` call, so the same driver
produces serial reference execution or a concurrent epoch depending only
on the backend — with byte-identical responses either way.

Stage functions are module-level and take plain picklable tuples so that
:class:`~repro.exec.pools.ProcessPoolBackend` can ship them to workers;
mutated subORAM state returns by value in :class:`EpochResult.suborams`
and the deployment reinstalls it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.exec.backend import ExecutionBackend
from repro.loadbalancer.batching import generate_batches
from repro.loadbalancer.matching import match_responses
from repro.types import BatchEntry, Response

#: Delivery seam for stage ➋: ``(balancer_index, suboram_index, suboram,
#: batch) -> response entries``.  ``None`` means a direct in-process
#: ``suboram.batch_access(batch)`` call; a networked deployment supplies
#: its sealed-channel round trip here.
Transport = Callable[[int, int, object, List[BatchEntry]], List[BatchEntry]]


@dataclass
class EpochResult:
    """Everything one driven epoch produced.

    Attributes:
        responses_per_balancer: matched responses, indexed by balancer;
            empty list for balancers that had no queued requests.
        suborams: the (possibly reinstalled-by-value) subORAM objects,
            in partition order — identical objects under in-process
            backends, shipped-back copies under process backends.
    """

    responses_per_balancer: List[List[Response]]
    suborams: List[object]

    @property
    def responses(self) -> List[Response]:
        """All responses flattened in balancer order (the legacy shape)."""
        return [
            response
            for per_balancer in self.responses_per_balancer
            for response in per_balancer
        ]


def _build_stage(task):
    """Stage ➊ unit: one balancer's oblivious batch generation."""
    (
        requests,
        num_suborams,
        sharding_key,
        security_parameter,
        permissions,
        kernel,
    ) = task
    return generate_batches(
        requests,
        num_suborams,
        sharding_key,
        security_parameter,
        permissions=permissions,
        kernel=kernel,
    )


def _execute_stage(task):
    """Stage ➋ unit: one subORAM's L batches, in fixed balancer order."""
    suboram_index, suboram, chain, transport = task
    outputs = []
    for balancer_index, batch in chain:
        if transport is None:
            entries = suboram.batch_access(batch)
        else:
            entries = transport(balancer_index, suboram_index, suboram, batch)
        outputs.append((balancer_index, entries))
    return suboram, outputs


def _execute_stateful(suboram, chain):
    """Stage ➋ stateful unit: the direct-call path for ``map_stateful``.

    Returns ``(new_state, result)`` as the stateful contract requires —
    which here is exactly the ``(suboram, outputs)`` pair
    :func:`_execute_stage` produces, so the driver handles both paths
    uniformly.
    """
    outputs = []
    for balancer_index, batch in chain:
        outputs.append((balancer_index, suboram.batch_access(batch)))
    return suboram, outputs


def _suboram_state_token(suboram):
    """Cache token for a subORAM's mutable state.

    Returns ``None`` — meaning "never assume a cached copy is current" —
    for subORAM implementations that do not expose ``state_token``.
    """
    return getattr(suboram, "state_token", None)


def _match_stage(task):
    """Stage ➌ unit: one balancer's oblivious response matching."""
    originals, responses, kernel = task
    return match_responses(originals, responses, kernel=kernel)


class EpochDriver:
    """Drives one epoch's three stages over an execution backend."""

    def __init__(self, backend: ExecutionBackend):
        self.backend = backend

    def run(
        self,
        load_balancers: Sequence,
        suborams: Sequence,
        permissions=None,
        transport: Optional[Transport] = None,
        state_ns: str = "epoch",
    ) -> EpochResult:
        """Close the epoch: drain, build, execute, match.

        Args:
            load_balancers: the deployment's balancers; their queues are
                drained (and epoch counters bumped) up front.
            suborams: the deployment's partitions, in order.
            permissions: optional §D access-control bits
                ``{(client_id, seq): 0/1}``.
            transport: optional delivery seam for stage ➋ (see
                :data:`Transport`).  Requires an in-process backend:
                closures over live channel state cannot cross a process
                boundary.
            state_ns: namespace for the backend's cross-epoch state cache
                (stage ➋ runs through
                :meth:`~repro.exec.backend.ExecutionBackend.map_stateful`);
                deployments sharing one backend should pass distinct
                namespaces so their subORAM caches never collide.

        Raises:
            ConfigurationError: a transport was supplied on a backend
                without shared state (e.g. ``process``).
        """
        if transport is not None and not self.backend.supports_shared_state:
            raise ConfigurationError(
                f"backend {self.backend.name!r} cannot run a custom "
                "transport: channel state must stay in-process (use "
                "'serial' or 'thread')"
            )

        drained = [balancer.drain() for balancer in load_balancers]
        active = [index for index, requests in enumerate(drained) if requests]
        if not active:
            return EpochResult(
                responses_per_balancer=[[] for _ in load_balancers],
                suborams=list(suborams),
            )

        # Stage ➊ — per-balancer batch building, concurrent across L.
        built = self.backend.map(
            _build_stage,
            [
                (
                    drained[index],
                    load_balancers[index].num_suborams,
                    load_balancers[index].sharding_key,
                    load_balancers[index].security_parameter,
                    permissions,
                    getattr(load_balancers[index], "kernel", None),
                )
                for index in active
            ],
        )

        # Stage ➋ — per-subORAM chains, concurrent across S.  Each chain
        # lists that subORAM's batches in ascending balancer order, the
        # fixed order the linearizability argument requires.  The direct
        # in-process path runs through ``map_stateful`` so process
        # backends can keep each subORAM's state cached worker-side
        # across epochs instead of re-shipping it every batch.
        if transport is None:
            executed = self.backend.map_stateful(
                _execute_stateful,
                [
                    (
                        (state_ns, suboram_index),
                        suboram,
                        [
                            (balancer_index, built[j][0][suboram_index])
                            for j, balancer_index in enumerate(active)
                        ],
                    )
                    for suboram_index, suboram in enumerate(suborams)
                ],
                token=_suboram_state_token,
            )
        else:
            executed = self.backend.map(
                _execute_stage,
                [
                    (
                        suboram_index,
                        suboram,
                        [
                            (balancer_index, built[j][0][suboram_index])
                            for j, balancer_index in enumerate(active)
                        ],
                        transport,
                    )
                    for suboram_index, suboram in enumerate(suborams)
                ],
            )
        new_suborams = [suboram for suboram, _ in executed]

        # Regroup stage-➋ outputs by balancer, subORAMs in ascending
        # order — the exact entry order serial execution produced.
        entries_per_balancer = {index: [] for index in active}
        for _, outputs in executed:
            for balancer_index, entries in outputs:
                entries_per_balancer[balancer_index].extend(entries)

        # Stage ➌ — per-balancer response matching, concurrent across L.
        matched = self.backend.map(
            _match_stage,
            [
                (
                    built[j][1],
                    entries_per_balancer[balancer_index],
                    getattr(load_balancers[balancer_index], "kernel", None),
                )
                for j, balancer_index in enumerate(active)
            ],
        )

        responses_per_balancer: List[List[Response]] = [
            [] for _ in load_balancers
        ]
        for j, balancer_index in enumerate(active):
            responses_per_balancer[balancer_index] = matched[j]
        return EpochResult(
            responses_per_balancer=responses_per_balancer,
            suborams=new_suborams,
        )
