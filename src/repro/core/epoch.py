"""The staged epoch driver: §6's parallel pipeline over a pluggable backend.

One Snoopy epoch decomposes into three stages whose units are mutually
independent (the structure behind equations (1)–(3) and Figures 11/13):

* **build** — every load balancer turns its queued requests into S
  fixed-size batches (one oblivious sort + compaction per balancer);
  independent *across balancers*.
* **execute** — every subORAM serves the L balancers' batches.  The
  batches of one subORAM must run in fixed balancer order (LB 0 first —
  the order Appendix C's linearization proof fixes), so each subORAM's
  L-batch chain is a single ordered task; independent *across subORAMs*.
* **match** — every balancer obliviously matches the returned entries to
  its clients' requests; independent *across balancers*.

:class:`EpochDriver` runs each stage as one
:meth:`~repro.exec.backend.ExecutionBackend.map` call, so the same driver
produces serial reference execution or a concurrent epoch depending only
on the backend — with byte-identical responses either way.

Stage functions are module-level and take plain picklable tuples so that
:class:`~repro.exec.pools.ProcessPoolBackend` can ship them to workers;
mutated subORAM state returns by value in :class:`EpochResult.suborams`
and the deployment reinstalls it.

**Atomic epochs.**  A failed stage unit must not strand the epoch's
requests (the paper's no-drop guarantee) nor leave subORAM state half
mutated (retrying a partially applied batch would change write-before
values and break byte-equivalence with serial execution).  On any stage
failure :meth:`EpochDriver.run` therefore rolls the whole epoch back —
drained requests are requeued into their balancers in arrival order,
subORAM state is not installed, pending tickets stay pending — and
raises a typed :class:`~repro.errors.EpochFailedError` naming the stage
and unit.  When the deployment arms atomicity (retry policy or a fault
injector with events still pending), stage ➋ additionally runs on deep
copies under shared-state backends so a mid-stage crash cannot leak
partial in-place mutations; process backends already mutate worker-side
copies, so a failed attempt simply never installs them.

**Stage methods.**  :meth:`EpochDriver.run_build`,
:meth:`EpochDriver.run_execute` and :meth:`EpochDriver.run_match` expose
the three stages individually so :class:`~repro.core.pipeline.\
EpochPipeline` can run the build of epoch ``e+1`` concurrently with the
execute of epoch ``e`` and the match of ``e-1``.  The stage methods
raise :class:`~repro.errors.EpochFailedError` but do *not* requeue
requests — under the pipeline a failed epoch keeps its drained requests
on the in-flight job and is retried in place, so queued successor epochs
are never reordered.  :meth:`EpochDriver.run` composes the same methods
with the requeue rollback, preserving the sequential semantics exactly.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.faults import FaultInjector
from repro.errors import (
    ConfigurationError,
    EpochFailedError,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.exec.backend import ExecutionBackend
from repro.loadbalancer.batching import generate_batches
from repro.loadbalancer.matching import match_responses
from repro.telemetry import resolve_telemetry
from repro.types import BatchEntry, Response

#: Delivery seam for stage ➋: ``(balancer_index, suboram_index, suboram,
#: batch) -> response entries``.  ``None`` means a direct in-process
#: ``suboram.batch_access(batch)`` call; a networked deployment supplies
#: its sealed-channel round trip here.
Transport = Callable[[int, int, object, List[BatchEntry]], List[BatchEntry]]


@dataclass
class EpochResult:
    """Everything one driven epoch produced.

    Attributes:
        responses_per_balancer: matched responses, indexed by balancer;
            empty list for balancers that had no queued requests.
        suborams: the (possibly reinstalled-by-value) subORAM objects,
            in partition order — identical objects under in-process
            backends, shipped-back copies under process backends.
    """

    responses_per_balancer: List[List[Response]]
    suborams: List[object]

    @property
    def responses(self) -> List[Response]:
        """All responses flattened in balancer order (the legacy shape)."""
        return [
            response
            for per_balancer in self.responses_per_balancer
            for response in per_balancer
        ]


def _build_stage(task):
    """Stage ➊ unit: one balancer's oblivious batch generation.

    The trailing ``telemetry`` element is the deployment handle under
    in-process backends and (because a live handle pickles to the null
    one) the no-op handle inside process-pool workers.
    """
    (
        requests,
        num_suborams,
        sharding_key,
        security_parameter,
        permissions,
        kernel,
        telemetry,
    ) = task
    return generate_batches(
        requests,
        num_suborams,
        sharding_key,
        security_parameter,
        permissions=permissions,
        kernel=kernel,
        telemetry=telemetry,
    )


def _raise_injected(fault: Optional[str], unit: int) -> None:
    """Fire an injected stage-➋ fault inside the executing worker.

    The raise happens worker-side (also across a process boundary) so the
    failure exercises the same propagation path a real crash would.
    """
    if fault == "worker_crash":
        raise WorkerCrashError(
            f"injected worker crash at subORAM {unit}", unit=unit
        )
    if fault == "task_timeout":
        raise TaskTimeoutError(
            f"injected task timeout at subORAM {unit}", unit=unit
        )


def _execute_stage(task):
    """Stage ➋ unit: one subORAM's L batches, in fixed balancer order."""
    suboram_index, suboram, chain, transport, fault, telemetry = task
    _raise_injected(fault, suboram_index)
    outputs = []
    for balancer_index, batch in chain:
        with telemetry.time(
            "snoopy_suboram_batch_seconds", unit=suboram_index
        ):
            if transport is None:
                entries = suboram.batch_access(batch)
            else:
                entries = transport(
                    balancer_index, suboram_index, suboram, batch
                )
        outputs.append((balancer_index, entries))
    return suboram, outputs


def _execute_stateful(suboram, args):
    """Stage ➋ stateful unit: the direct-call path for ``map_stateful``.

    Returns ``(new_state, result)`` as the stateful contract requires —
    which here is exactly the ``(suboram, outputs)`` pair
    :func:`_execute_stage` produces, so the driver handles both paths
    uniformly.
    """
    suboram_index, chain, fault, telemetry = args
    _raise_injected(fault, suboram_index)
    outputs = []
    for balancer_index, batch in chain:
        with telemetry.time(
            "snoopy_suboram_batch_seconds", unit=suboram_index
        ):
            outputs.append((balancer_index, suboram.batch_access(batch)))
    return suboram, outputs


def _suboram_state_token(suboram):
    """Cache token for a subORAM's mutable state.

    Returns ``None`` — meaning "never assume a cached copy is current" —
    for subORAM implementations that do not expose ``state_token``.
    """
    return getattr(suboram, "state_token", None)


def _match_stage(task):
    """Stage ➌ unit: one balancer's oblivious response matching."""
    originals, responses, kernel, telemetry = task
    return match_responses(
        originals, responses, kernel=kernel, telemetry=telemetry
    )


class EpochDriver:
    """Drives one epoch's three stages over an execution backend.

    Args:
        backend: the execution backend the stages fan out over.
        telemetry: optional :class:`~repro.telemetry.Telemetry` handle;
            when given, each stage is wrapped in a trace span and timed
            into ``snoopy_epoch_stage_seconds{stage=...}``, and the
            handle is threaded into the stage tasks (batching, matching
            and per-batch subORAM timings record through it on
            in-process backends; it pickles to the no-op handle across
            process boundaries).
    """

    def __init__(self, backend: ExecutionBackend, telemetry=None):
        self.backend = backend
        self.telemetry = resolve_telemetry(telemetry)

    def run(
        self,
        load_balancers: Sequence,
        suborams: Sequence,
        permissions=None,
        transport: Optional[Transport] = None,
        state_ns: str = "epoch",
        injector: Optional[FaultInjector] = None,
        atomic: bool = False,
    ) -> EpochResult:
        """Close the epoch: drain, build, execute, match — atomically.

        Args:
            load_balancers: the deployment's balancers; their queues are
                drained (and epoch counters bumped) up front.
            suborams: the deployment's partitions, in order.
            permissions: optional §D access-control bits
                ``{(client_id, seq): 0/1}``.
            transport: optional delivery seam for stage ➋ (see
                :data:`Transport`).  Requires an in-process backend:
                closures over live channel state cannot cross a process
                boundary.
            state_ns: namespace for the backend's cross-epoch state cache
                (stage ➋ runs through
                :meth:`~repro.exec.backend.ExecutionBackend.map_stateful`);
                deployments sharing one backend should pass distinct
                namespaces so their subORAM caches never collide.
            injector: optional :class:`~repro.core.faults.FaultInjector`;
                stage-➋ units with a scheduled worker-crash/timeout event
                are armed to fail inside the executing worker.
            atomic: run stage ➋ on deep copies under shared-state
                backends so a failed attempt leaves the caller's subORAM
                objects untouched.  Deployments arm this whenever a retry
                policy or fault injector is active; the reinstalled
                :attr:`EpochResult.suborams` then *are* the copies, as
                they already are under process backends.

        Raises:
            ConfigurationError: a transport was supplied on a backend
                without shared state (e.g. ``process``).
            EpochFailedError: a stage unit failed.  The epoch was rolled
                back first: every drained request is requeued into its
                balancer (arrival order preserved), no subORAM state is
                installed, and tickets stay pending for the retry.
        """
        if transport is not None and not self.backend.supports_shared_state:
            from repro.exec import BACKENDS

            shared = sorted(
                name
                for name, cls in BACKENDS.items()
                if cls.supports_shared_state
            )
            raise ConfigurationError(
                f"backend {self.backend.name!r} cannot run a custom "
                f"transport for state namespace {state_ns!r}: channel "
                "state must stay in-process (shared-state backends: "
                f"{', '.join(repr(name) for name in shared)})"
            )

        with self.telemetry.span("stage", stage="collect"), \
                self.telemetry.time(
                    "snoopy_epoch_stage_seconds", stage="collect"
                ):
            drained = [balancer.drain() for balancer in load_balancers]
        active = [index for index, requests in enumerate(drained) if requests]
        if not active:
            return EpochResult(
                responses_per_balancer=[[] for _ in load_balancers],
                suborams=list(suborams),
            )
        try:
            return self._run_stages(
                load_balancers, suborams, drained, active,
                permissions, transport, state_ns, injector, atomic,
            )
        except EpochFailedError:
            self._rollback(load_balancers, drained)
            raise

    @staticmethod
    def _rollback(load_balancers: Sequence, drained: List[list]) -> None:
        """Requeue every drained request so the next epoch retries it."""
        for balancer, requests in zip(load_balancers, drained):
            balancer.requeue(requests)

    def _run_stages(
        self, load_balancers, suborams, drained, active,
        permissions, transport, state_ns, injector, atomic,
    ) -> EpochResult:
        """The three pipeline stages; failures surface as EpochFailedError."""
        built = self.run_build(load_balancers, drained, active, permissions)
        new_suborams, entries_per_balancer = self.run_execute(
            suborams, built, active,
            transport=transport, state_ns=state_ns,
            injector=injector, atomic=atomic,
        )
        responses_per_balancer = self.run_match(
            load_balancers, built, entries_per_balancer, active
        )
        return EpochResult(
            responses_per_balancer=responses_per_balancer,
            suborams=new_suborams,
        )

    # ------------------------------------------------------------------
    # Individual stage methods (the pipeline's building blocks)
    # ------------------------------------------------------------------
    def run_build(
        self, load_balancers, drained, active, permissions=None
    ) -> list:
        """Stage ➊ only: oblivious batch building for every active balancer.

        ``generate_batches`` is a pure function of its inputs, so the
        returned ``built`` list (one ``(batches, originals, batch_size)``
        tuple per active balancer) can safely be reused across retry
        attempts of the execute stage.

        Raises:
            EpochFailedError: ``stage="build"``.  No rollback is
            performed — the caller owns the drained requests.
        """
        try:
            with self.telemetry.span(
                "stage", stage="build", tasks=len(active)
            ), self.telemetry.time(
                "snoopy_epoch_stage_seconds", stage="build"
            ):
                return self.backend.map(
                    _build_stage,
                    [
                        (
                            drained[index],
                            load_balancers[index].num_suborams,
                            load_balancers[index].sharding_key,
                            load_balancers[index].security_parameter,
                            permissions,
                            getattr(load_balancers[index], "kernel", None),
                            self.telemetry,
                        )
                        for index in active
                    ],
                )
        except BaseException as exc:
            raise EpochFailedError(
                "build", getattr(exc, "unit", None), exc
            ) from exc

    def run_execute(
        self,
        suborams,
        built,
        active,
        *,
        transport: Optional[Transport] = None,
        state_ns: str = "epoch",
        injector: Optional[FaultInjector] = None,
        atomic: bool = False,
    ):
        """Stage ➋ only: every subORAM serves its L-batch chain.

        Each chain lists that subORAM's batches in ascending balancer
        order, the fixed order the linearizability argument requires.
        The direct in-process path runs through ``map_stateful`` so
        process backends can keep each subORAM's state cached
        worker-side across epochs instead of re-shipping it every batch.

        Returns:
            ``(new_suborams, entries_per_balancer)`` — the mutated (or
            shipped-back / atomically copied) subORAM objects in
            partition order, and a ``{balancer_index: entries}`` dict
            regrouping the stage outputs for matching (subORAMs in
            ascending order — the exact entry order serial execution
            produced).

        Raises:
            EpochFailedError: ``stage="execute"``.  No rollback is
            performed and — when ``atomic`` — the caller's subORAM
            objects *and* ``built`` batches are untouched, so the caller
            may simply call this method again with the same ``built``
            batches to retry.
        """
        work_suborams = list(suborams)
        work_built = built
        try:
            if atomic and self.backend.supports_shared_state:
                # Shared-state backends mutate in place; run on copies
                # so a failed unit cannot leave the caller's state
                # half-applied.  Batches too: ``batch_access`` consumes
                # entries in place (each entry's value is folded into
                # its response), and a retried attempt — or the
                # pipeline, which reuses one build across attempts —
                # must re-execute pristine batches.  The copy itself is
                # inside the fault wrapping because remote proxies turn
                # it into a TXN_BEGIN round trip that can hit a network
                # fault; an abandoned half-clone is harmless (the retry
                # re-clones the same committed parents under fresh
                # version ids).
                work_suborams = copy.deepcopy(work_suborams)
                work_built = [
                    (copy.deepcopy(batches), originals, size)
                    for (batches, originals, size) in built
                ]
        except BaseException as exc:
            raise EpochFailedError(
                "execute", getattr(exc, "unit", None), exc
            ) from exc
        faults = [
            injector.stage_fault(suboram_index)
            if injector is not None
            else None
            for suboram_index in range(len(work_suborams))
        ]
        try:
            with self.telemetry.span(
                "stage", stage="execute", tasks=len(work_suborams)
            ), self.telemetry.time(
                "snoopy_epoch_stage_seconds", stage="execute"
            ):
                if transport is None:
                    executed = self.backend.map_stateful(
                        _execute_stateful,
                        [
                            (
                                (state_ns, suboram_index),
                                suboram,
                                (
                                    suboram_index,
                                    [
                                        (balancer_index,
                                         work_built[j][0][suboram_index])
                                        for j, balancer_index in enumerate(
                                            active
                                        )
                                    ],
                                    faults[suboram_index],
                                    self.telemetry,
                                ),
                            )
                            for suboram_index, suboram in enumerate(
                                work_suborams
                            )
                        ],
                        token=_suboram_state_token,
                    )
                else:
                    executed = self.backend.map(
                        _execute_stage,
                        [
                            (
                                suboram_index,
                                suboram,
                                [
                                    (balancer_index,
                                     work_built[j][0][suboram_index])
                                    for j, balancer_index in enumerate(active)
                                ],
                                transport,
                                faults[suboram_index],
                                self.telemetry,
                            )
                            for suboram_index, suboram in enumerate(
                                work_suborams
                            )
                        ],
                    )
        except BaseException as exc:
            raise EpochFailedError(
                "execute", getattr(exc, "unit", None), exc
            ) from exc
        new_suborams = [suboram for suboram, _ in executed]
        entries_per_balancer = {index: [] for index in active}
        for _, outputs in executed:
            for balancer_index, entries in outputs:
                entries_per_balancer[balancer_index].extend(entries)
        return new_suborams, entries_per_balancer

    def run_match(
        self, load_balancers, built, entries_per_balancer, active
    ) -> List[List[Response]]:
        """Stage ➌ only: oblivious response matching per active balancer.

        Returns the full ``responses_per_balancer`` list (empty lists
        for balancers that had no queued requests this epoch).

        Raises:
            EpochFailedError: ``stage="match"``.  No rollback is
            performed.
        """
        try:
            with self.telemetry.span(
                "stage", stage="match", tasks=len(active)
            ), self.telemetry.time(
                "snoopy_epoch_stage_seconds", stage="match"
            ):
                matched = self.backend.map(
                    _match_stage,
                    [
                        (
                            built[j][1],
                            entries_per_balancer[balancer_index],
                            getattr(
                                load_balancers[balancer_index], "kernel", None
                            ),
                            self.telemetry,
                        )
                        for j, balancer_index in enumerate(active)
                    ],
                )
        except BaseException as exc:
            raise EpochFailedError(
                "match", getattr(exc, "unit", None), exc
            ) from exc

        responses_per_balancer: List[List[Response]] = [
            [] for _ in load_balancers
        ]
        for j, balancer_index in enumerate(active):
            responses_per_balancer[balancer_index] = matched[j]
        return responses_per_balancer
