"""Access control via recursive Snoopy lookups (Appendix D).

The access-control matrix is itself stored obliviously: entry
``(client, object, op) -> 0/1`` lives in a second, internal Snoopy
deployment.  Executing an epoch takes two phases:

1. for every queued data request, read the corresponding ACL object
   (an oblivious batch against the ACL store — the "recursive" lookup);
2. run the data epoch with each request's permission bit attached; denied
   writes never apply (checked inside the subORAM's compare-and-set) and
   denied reads return a null value (masked during response matching).

As the paper notes, this doubles latency (two epochs per user-visible
operation) but leaks nothing about which requests were permitted.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.config import SnoopyConfig
from repro.core.snoopy import Snoopy
from repro.types import OpType, Request, Response

PERMIT = b"\x01"
DENY = b"\x00"

# Client ids and object keys are packed into one ACL key; these widths
# bound them (ample for any test or example deployment).
_KEY_BITS = 40
_CLIENT_BITS = 20


def acl_key(client_id: int, object_key: int, op: OpType) -> int:
    """The ACL store key for a (client, object, op) privilege entry."""
    if not 0 <= object_key < (1 << _KEY_BITS):
        raise ValueError(f"object key {object_key} out of ACL range")
    if not 0 <= client_id < (1 << _CLIENT_BITS):
        raise ValueError(f"client id {client_id} out of ACL range")
    op_bit = int(op is OpType.WRITE)
    return (client_id << (_KEY_BITS + 1)) | (object_key << 1) | op_bit


class AccessControlledStore:
    """A Snoopy deployment enforcing per-(client, object, op) privileges.

    Args:
        config: configuration for the data store; the ACL store reuses the
            same partition counts with 1-byte values.
        default_permit: privilege assumed for pairs absent from the ACL.
            The paper's matrix is total; a default keeps examples small.
    """

    def __init__(self, config: SnoopyConfig, default_permit: bool = False):
        self.config = config
        self.default_permit = default_permit
        self.data_store = Snoopy(config)
        acl_config = SnoopyConfig(
            num_load_balancers=config.num_load_balancers,
            num_suborams=config.num_suborams,
            value_size=1,
            security_parameter=config.security_parameter,
            epoch_duration=config.epoch_duration,
        )
        self.acl_store = Snoopy(acl_config)
        self._pending: List[Tuple[Request, Optional[int]]] = []

    def initialize(
        self,
        objects: Dict[int, bytes],
        grants: Iterable[Tuple[int, int, OpType]],
    ) -> None:
        """Load data objects and the access-control matrix.

        Args:
            objects: the data partition contents.
            grants: (client_id, object_key, op) triples that are permitted.
        """
        self.data_store.initialize(objects)
        default = PERMIT if self.default_permit else DENY
        acl_objects: Dict[int, bytes] = {}
        for client_id in self._client_universe(grants):
            for object_key in objects:
                for op in (OpType.READ, OpType.WRITE):
                    acl_objects[acl_key(client_id, object_key, op)] = default
        for client_id, object_key, op in grants:
            acl_objects[acl_key(client_id, object_key, op)] = PERMIT
        self.acl_store.initialize(acl_objects)

    @staticmethod
    def _client_universe(grants) -> List[int]:
        return sorted({client_id for client_id, _, _ in grants})

    # ------------------------------------------------------------------
    # Request flow
    # ------------------------------------------------------------------
    def submit(self, request: Request, load_balancer: Optional[int] = None) -> None:
        """Queue a request; privileges resolve at the next epoch."""
        self._pending.append((request, load_balancer))

    def run_epoch(self) -> List[Response]:
        """Two-phase epoch: oblivious ACL lookup, then the data epoch."""
        pending, self._pending = self._pending, []
        if not pending:
            return []

        # Phase 1: recursive ACL lookup (its own oblivious batch).
        acl_requests = [
            Request(
                OpType.READ,
                acl_key(request.client_id, request.key, request.op),
                client_id=request.client_id,
                seq=request.seq,
            )
            for request, _ in pending
        ]
        acl_responses = self.acl_store.batch(acl_requests)
        permissions = {
            (resp.client_id, resp.seq): int(
                (resp.value == PERMIT)
                if resp.value is not None
                else self.default_permit
            )
            for resp in acl_responses
        }

        # Phase 2: the data epoch, permission bits attached.
        for request, balancer in pending:
            self.data_store.submit(request, balancer)
        return self.data_store.run_epoch(permissions=permissions)

    def grant(self, client_id: int, object_key: int, op: OpType) -> None:
        """Grant a privilege (an oblivious write to the ACL store)."""
        self.acl_store.write(acl_key(client_id, object_key, op), PERMIT)

    def revoke(self, client_id: int, object_key: int, op: OpType) -> None:
        """Revoke a privilege (an oblivious write to the ACL store)."""
        self.acl_store.write(acl_key(client_id, object_key, op), DENY)
