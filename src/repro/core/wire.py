"""Wire serialization for load-balancer <-> subORAM traffic.

The in-process :class:`~repro.core.snoopy.Snoopy` passes Python objects
directly; the distributed deployment
(:mod:`repro.core.deployment`) sends real bytes over AEAD channels, so
batches and responses need a stable encoding.  The format is fixed-size
headers plus a length-prefixed value:

    entry := op(1) | flags(1) | key(16, signed) | suboram(4) | tag(8)
             | client_id(8) | seq(8) | value_len(4) | value(value_len)

Every real/dummy entry of a batch serializes to the same header size, so
message sizes depend only on batch size and object size — public
quantities — preserving the obliviousness of the transport.
"""

from __future__ import annotations

import struct
from typing import List

from repro.errors import ReproError
from repro.types import BatchEntry, OpType

_HEADER = struct.Struct(">BBq8xIQQQI")
# op, flags, key(int64 -- see _encode_key), pad, suboram, tag, client, seq, vlen
# Keys can exceed 64 bits only for ACL-extended deployments; those stay
# in-process.  The dummy/spill id spaces fit int64.

_FLAG_DUMMY = 1
_FLAG_PERMITTED = 2
_FLAG_HAS_VALUE = 4

_OPS = {OpType.READ: 0, OpType.WRITE: 1}
_OPS_INV = {0: OpType.READ, 1: OpType.WRITE}

INT64_MIN = -(2**63)
INT64_MAX = 2**63 - 1


class WireError(ReproError):
    """Malformed or out-of-range wire data."""


def _check_key(key: int) -> int:
    if not INT64_MIN <= key <= INT64_MAX:
        raise WireError(f"key {key} does not fit the wire format")
    return key


def encode_entry(entry: BatchEntry) -> bytes:
    """Serialize one batch entry."""
    flags = 0
    if entry.is_dummy:
        flags |= _FLAG_DUMMY
    if entry.permitted:
        flags |= _FLAG_PERMITTED
    value = entry.value if entry.value is not None else b""
    if entry.value is not None:
        flags |= _FLAG_HAS_VALUE
    header = _HEADER.pack(
        _OPS[entry.op],
        flags,
        _check_key(entry.key),
        entry.suboram,
        entry.tag,
        entry.client_id,
        entry.seq,
        len(value),
    )
    return header + value


def decode_entry(data: bytes, offset: int = 0) -> tuple:
    """Deserialize one entry; returns (entry, next_offset)."""
    if len(data) - offset < _HEADER.size:
        raise WireError("truncated entry header")
    op, flags, key, suboram, tag, client_id, seq, value_len = _HEADER.unpack_from(
        data, offset
    )
    offset += _HEADER.size
    if op not in _OPS_INV:
        raise WireError(f"unknown op code {op}")
    if len(data) - offset < value_len:
        raise WireError("truncated entry value")
    value = bytes(data[offset : offset + value_len]) if flags & _FLAG_HAS_VALUE else None
    offset += value_len
    entry = BatchEntry(
        op=_OPS_INV[op],
        key=key,
        value=value,
        suboram=suboram,
        tag=tag,
        client_id=client_id,
        seq=seq,
        is_dummy=bool(flags & _FLAG_DUMMY),
        permitted=1 if flags & _FLAG_PERMITTED else 0,
    )
    return entry, offset


def encode_batch(batch: List[BatchEntry]) -> bytes:
    """Serialize a batch: count header + entries."""
    parts = [struct.pack(">I", len(batch))]
    parts.extend(encode_entry(entry) for entry in batch)
    return b"".join(parts)


def decode_batch(data: bytes) -> List[BatchEntry]:
    """Deserialize a batch; rejects trailing garbage."""
    if len(data) < 4:
        raise WireError("truncated batch header")
    (count,) = struct.unpack_from(">I", data, 0)
    offset = 4
    batch = []
    for _ in range(count):
        entry, offset = decode_entry(data, offset)
        batch.append(entry)
    if offset != len(data):
        raise WireError("trailing bytes after batch")
    return batch
