"""Wire serialization for Snoopy's networked hops.

The in-process :class:`~repro.core.snoopy.Snoopy` passes Python objects
directly; the distributed deployment (:mod:`repro.core.deployment`) and
the TCP service layer (:mod:`repro.serve`) send real bytes, so batches,
requests, and responses need a stable encoding.  The format is
fixed-size headers plus a length-prefixed value:

    entry := op(1) | flags(1) | key(16, signed) | suboram(4) | tag(8)
             | client_id(8) | seq(8) | value_len(4) | value(value_len)

Every real/dummy entry of a batch serializes to the same header size, so
message sizes depend only on batch size and object size — public
quantities — preserving the obliviousness of the transport.

**Versioned handshake.**  Every Snoopy TCP connection opens with one
fixed-size hello frame from each side:

    hello := magic(4 = "SNPY") | version(1) | role(1) | flags(1)
             | reserved(9)

The hello is 16 bytes for every client, server, and worker, regardless
of configuration or payload sizes, so the handshake itself leaks nothing
beyond the fact of a connection (already host-visible).  The flags byte
advertises transport capabilities (:data:`HELLO_FLAG_ATTESTED` — the
peer will follow the hello with an ATTEST quote exchange).  A peer
speaking a version outside :data:`SUPPORTED_WIRE_VERSIONS` is rejected
with :class:`VersionMismatchError` — which names both the offered and
the supported versions — before any request bytes flow; servers
additionally answer with a structured ``VERSION_REJECT`` frame
(:func:`encode_version_reject`) so the rejected client learns the
server's supported set instead of an opaque hangup.

**Attested channels.**  When both hellos carry
:data:`HELLO_FLAG_ATTESTED`, each side follows with one fixed-size
ATTEST frame (:func:`encode_attest`, always :data:`ATTEST_SIZE` payload
bytes) carrying an attestation quote and a key share; every subsequent
frame is sealed by :class:`repro.crypto.aead.SecureChannel` framing (see
:mod:`repro.serve.secure`).  The ATTEST payload is constant-size for
every role and enclave name, so the upgraded handshake still has a
constant shape.

**Frames.**  After the handshake, every message is a framed unit:

    frame := kind(1) | payload_len(4) | payload(payload_len)

Frame kinds are the :class:`FrameKind` constants.  Payload sizes are
functions of public quantities only (request counts, the configured
value size, batch sizes), preserving obliviousness end to end:

* ``REQUEST``/``RESPONSE`` — one client operation and its completion
  (:func:`encode_request` / :func:`encode_response`); every request of
  a given value size is byte-for-byte the same length whether it is a
  read or a write of any key (reads carry a zero-filled value slot).
* ``BATCH``/``BATCH_REPLY``/``INIT`` — load-balancer <-> subORAM worker
  traffic, reusing :func:`encode_batch` payloads.
* ``TXN_BEGIN``/``TXN_ACK``/``CLOSE_EPOCH``/``EPOCH_CLOSED``/``ERROR``
  — control frames with fixed-size payloads.
* ``SESSION``/``SESSION_ACK``/``RESPONSE_ACK`` — resumable client
  sessions: a reconnecting client re-adopts its open tickets and the
  server replays undelivered responses (exactly-once delivery).
* ``BUSY``/``SHUTTING_DOWN`` — typed load-shedding and drain signals so
  clients get a structured verdict instead of a dropped connection.
* ``SNAP_FETCH``/``SNAP_DATA``/``SNAP_PUSH``/``SNAP_ACK``/
  ``VERSIONS_QUERY``/``VERSIONS_REPLY`` — chunked, resumable sealed
  snapshot transfer between a balancer and its subORAM workers, so
  workers no longer need a shared filesystem.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from repro.errors import ReproError
from repro.types import BatchEntry, OpType, Request, Response

_HEADER = struct.Struct(">BBq8xIQQQI")
# op, flags, key(int64 -- see _encode_key), pad, suboram, tag, client, seq, vlen
# Keys can exceed 64 bits only for ACL-extended deployments; those stay
# in-process.  The dummy/spill id spaces fit int64.

_FLAG_DUMMY = 1
_FLAG_PERMITTED = 2
_FLAG_HAS_VALUE = 4

_OPS = {OpType.READ: 0, OpType.WRITE: 1}
_OPS_INV = {0: OpType.READ, 1: OpType.WRITE}

INT64_MIN = -(2**63)
INT64_MAX = 2**63 - 1


class WireError(ReproError):
    """Malformed or out-of-range wire data."""


class VersionMismatchError(WireError):
    """A peer's hello frame advertised an unsupported wire version.

    The error names *both* sides of the negotiation so a rejected peer
    can log something actionable instead of an opaque hangup.

    Attributes:
        offered: the version byte the peer sent.
        supported: tuple of versions this library accepts
            (:data:`SUPPORTED_WIRE_VERSIONS`).
    """

    def __init__(self, offered: int, supported=None):
        if supported is None:
            supported = SUPPORTED_WIRE_VERSIONS
        elif isinstance(supported, int):
            supported = (supported,)
        else:
            supported = tuple(supported)
        versions = ", ".join(str(v) for v in supported)
        super().__init__(
            f"peer offered wire version {offered}; this library supports "
            f"version(s) {{{versions}}}"
        )
        self.offered = offered
        self.supported = supported


def _check_key(key: int) -> int:
    if not INT64_MIN <= key <= INT64_MAX:
        raise WireError(f"key {key} does not fit the wire format")
    return key


def encode_entry(entry: BatchEntry) -> bytes:
    """Serialize one batch entry."""
    flags = 0
    if entry.is_dummy:
        flags |= _FLAG_DUMMY
    if entry.permitted:
        flags |= _FLAG_PERMITTED
    value = entry.value if entry.value is not None else b""
    if entry.value is not None:
        flags |= _FLAG_HAS_VALUE
    header = _HEADER.pack(
        _OPS[entry.op],
        flags,
        _check_key(entry.key),
        entry.suboram,
        entry.tag,
        entry.client_id,
        entry.seq,
        len(value),
    )
    return header + value


def decode_entry(data: bytes, offset: int = 0) -> tuple:
    """Deserialize one entry; returns (entry, next_offset)."""
    if len(data) - offset < _HEADER.size:
        raise WireError("truncated entry header")
    op, flags, key, suboram, tag, client_id, seq, value_len = _HEADER.unpack_from(
        data, offset
    )
    offset += _HEADER.size
    if op not in _OPS_INV:
        raise WireError(f"unknown op code {op}")
    if len(data) - offset < value_len:
        raise WireError("truncated entry value")
    value = bytes(data[offset : offset + value_len]) if flags & _FLAG_HAS_VALUE else None
    offset += value_len
    entry = BatchEntry(
        op=_OPS_INV[op],
        key=key,
        value=value,
        suboram=suboram,
        tag=tag,
        client_id=client_id,
        seq=seq,
        is_dummy=bool(flags & _FLAG_DUMMY),
        permitted=1 if flags & _FLAG_PERMITTED else 0,
    )
    return entry, offset


def encode_batch(batch: List[BatchEntry]) -> bytes:
    """Serialize a batch: count header + entries."""
    parts = [struct.pack(">I", len(batch))]
    parts.extend(encode_entry(entry) for entry in batch)
    return b"".join(parts)


def decode_batch(data: bytes) -> List[BatchEntry]:
    """Deserialize a batch; rejects trailing garbage."""
    if len(data) < 4:
        raise WireError("truncated batch header")
    (count,) = struct.unpack_from(">I", data, 0)
    offset = 4
    batch = []
    for _ in range(count):
        entry, offset = decode_entry(data, offset)
        batch.append(entry)
    if offset != len(data):
        raise WireError("trailing bytes after batch")
    return batch


# ---------------------------------------------------------------------------
# Versioned handshake
# ---------------------------------------------------------------------------
#: Protocol version this library speaks.  Bump on any incompatible frame
#: or encoding change; peers with a different version are rejected at
#: handshake time instead of failing mid-stream.
#: v2: hello flags byte, ATTEST exchange, sessions, snapshot transfer,
#: delivery sequence numbers on responses.
WIRE_VERSION = 2

#: Every wire version this library can speak.  Kept as a tuple so a
#: future version can retain backward compatibility windows; rejects
#: report this whole set, not a single number.
SUPPORTED_WIRE_VERSIONS = (WIRE_VERSION,)

#: Connection magic: the first four bytes of every Snoopy TCP stream.
WIRE_MAGIC = b"SNPY"

_HELLO = struct.Struct(">4sBBB9x")
#: Size in bytes of the (fixed-size) hello frame.
HELLO_SIZE = _HELLO.size

#: Hello flag: the sender will follow its hello with an ATTEST frame and
#: expects every post-handshake frame to ride a sealed channel.
HELLO_FLAG_ATTESTED = 1


class Role:
    """Peer roles carried in the hello frame (public deployment facts)."""

    CLIENT = 1
    SERVER = 2
    BALANCER = 3
    WORKER = 4

    _VALID = frozenset((CLIENT, SERVER, BALANCER, WORKER))


def encode_hello(
    role: int, version: int = WIRE_VERSION, flags: int = 0
) -> bytes:
    """The fixed-size hello frame opening every connection.

    Always exactly :data:`HELLO_SIZE` bytes regardless of role, version,
    or flags — the handshake's shape is constant.
    """
    if role not in Role._VALID:
        raise WireError(f"unknown hello role {role}")
    if not 0 <= version <= 255:
        raise WireError(f"version {version} does not fit the version byte")
    if not 0 <= flags <= 255:
        raise WireError(f"flags {flags} do not fit the flags byte")
    return _HELLO.pack(WIRE_MAGIC, version, role, flags)


def decode_hello(data: bytes) -> Tuple[int, int, int]:
    """Validate a peer's hello; returns ``(version, role, flags)``.

    Raises:
        WireError: short frame, bad magic, or unknown role.
        VersionMismatchError: the peer speaks a version outside
            :data:`SUPPORTED_WIRE_VERSIONS` (checked *after* the magic
            so garbage connections fail as malformed, not as version
            skew).  The error carries both the offered version and the
            supported set.
    """
    if len(data) < HELLO_SIZE:
        raise WireError("truncated hello frame")
    magic, version, role, flags = _HELLO.unpack_from(data, 0)
    if magic != WIRE_MAGIC:
        raise WireError(f"bad connection magic {magic!r}")
    if version not in SUPPORTED_WIRE_VERSIONS:
        raise VersionMismatchError(version, SUPPORTED_WIRE_VERSIONS)
    if role not in Role._VALID:
        raise WireError(f"unknown hello role {role}")
    return version, role, flags


# ---------------------------------------------------------------------------
# Frames
# ---------------------------------------------------------------------------
_FRAME_HEADER = struct.Struct(">BI")
#: Size in bytes of every frame header: kind(1) | payload_len(4).
FRAME_HEADER_SIZE = _FRAME_HEADER.size

#: Ceiling on a single frame payload (a protocol sanity bound, far above
#: any real batch; prevents a corrupt length field from allocating GiBs).
MAX_FRAME_PAYLOAD = 1 << 30


class FrameKind:
    """Frame type constants for the post-handshake stream."""

    REQUEST = 1        # client -> server: one submitted operation
    RESPONSE = 2       # server -> client: one resolved ticket
    CLOSE_EPOCH = 3    # client -> server: close the current epoch (admin)
    EPOCH_CLOSED = 4   # server -> client: epoch number (or 0) that closed
    ERROR = 5          # either direction: fatal protocol error text
    INIT = 6           # balancer -> worker: load a partition
    INIT_ACK = 7       # worker -> balancer: partition loaded (num objects)
    BATCH = 8          # balancer -> worker: execute one batch
    BATCH_REPLY = 9    # worker -> balancer: the batch's response entries
    TXN_BEGIN = 10     # balancer -> worker: start an atomic epoch attempt
    TXN_ACK = 11       # worker -> balancer: attempt state staged
    PING = 12          # liveness probe (optional u32 echo-delay ms)
    PONG = 13          # liveness reply
    ATTEST = 14        # both directions: quote + key share (fixed size)
    VERSION_REJECT = 15  # server -> client: offered + supported versions
    SESSION = 16       # client -> server: open/resume a resumable session
    SESSION_ACK = 17   # server -> client: session id granted/resumed
    RESPONSE_ACK = 18  # client -> server: delivery seq received through
    BUSY = 19          # server -> client: request shed (req_id)
    SHUTTING_DOWN = 20  # server -> client: drain verdict (req_id or empty)
    SNAP_FETCH = 21    # balancer -> worker: read sealed snapshot chunk
    SNAP_DATA = 22     # worker -> balancer: total size + chunk bytes
    SNAP_PUSH = 23     # balancer -> worker: install snapshot chunk
    SNAP_ACK = 24      # worker -> balancer: bytes staged so far
    VERSIONS_QUERY = 25  # balancer -> worker: which versions do you hold?
    VERSIONS_REPLY = 26  # worker -> balancer: held version ids

    _VALID = frozenset(range(1, 27))


def encode_frame(kind: int, payload: bytes = b"") -> bytes:
    """One framed message: kind byte, payload length, payload."""
    if kind not in FrameKind._VALID:
        raise WireError(f"unknown frame kind {kind}")
    if len(payload) > MAX_FRAME_PAYLOAD:
        raise WireError(f"frame payload of {len(payload)} bytes exceeds cap")
    return _FRAME_HEADER.pack(kind, len(payload)) + payload


def decode_frame_header(data: bytes) -> Tuple[int, int]:
    """Parse a frame header; returns ``(kind, payload_len)``."""
    if len(data) < FRAME_HEADER_SIZE:
        raise WireError("truncated frame header")
    kind, length = _FRAME_HEADER.unpack_from(data, 0)
    if kind not in FrameKind._VALID:
        raise WireError(f"unknown frame kind {kind}")
    if length > MAX_FRAME_PAYLOAD:
        raise WireError(f"frame payload of {length} bytes exceeds cap")
    return kind, length


# ---------------------------------------------------------------------------
# Client requests and responses
# ---------------------------------------------------------------------------
_REQUEST = struct.Struct(">QBBhq8xQQI")
# req_id(8) | op(1) | flags(1) | load_balancer(2, signed; -1 = random)
# | key(8) | pad(8) | client_id(8) | seq(8) | vlen(4)
_RESPONSE = struct.Struct(">QQBBhIq8xQQQI")
# req_id(8) | delivery_seq(8) | ok(1) | flags(1) | load_balancer(2)
# | arrival(4) | key(8) | pad(8) | client_id(8) | seq(8) | epoch(8)
# | vlen(4)
# delivery_seq is the per-session delivery counter used by the
# exactly-once resume protocol (0 on sessionless connections).


def request_size(value_size: int) -> int:
    """Byte length of every request of a store's value size (public)."""
    return _REQUEST.size + value_size


def encode_request(
    req_id: int,
    request: Request,
    value_size: int,
    load_balancer: int = -1,
) -> bytes:
    """Serialize one client operation for the service front door.

    Reads and writes of any key produce the same number of bytes for a
    given ``value_size``: reads (and short write payloads) are padded
    with zeros to the store's fixed value slot, so the wire length of a
    request depends only on the public object size.
    """
    value = request.value if request.value is not None else b""
    if len(value) > value_size:
        raise WireError(
            f"request value of {len(value)} bytes exceeds the store's "
            f"value_size {value_size}"
        )
    flags = _FLAG_HAS_VALUE if request.value is not None else 0
    header = _REQUEST.pack(
        req_id,
        _OPS[request.op],
        flags,
        load_balancer,
        _check_key(request.key),
        request.client_id,
        request.seq,
        len(value),
    )
    return header + value + bytes(value_size - len(value))


def decode_request(data: bytes, value_size: int):
    """Deserialize one request; returns ``(req_id, request, load_balancer)``."""
    if len(data) != _REQUEST.size + value_size:
        raise WireError("request frame has the wrong size")
    (
        req_id, op, flags, load_balancer, key, client_id, seq, vlen
    ) = _REQUEST.unpack_from(data, 0)
    if op not in _OPS_INV:
        raise WireError(f"unknown op code {op}")
    if vlen > value_size:
        raise WireError("request value length exceeds the value slot")
    value = (
        bytes(data[_REQUEST.size:_REQUEST.size + vlen])
        if flags & _FLAG_HAS_VALUE
        else None
    )
    request = Request(
        op=_OPS_INV[op], key=key, value=value, client_id=client_id, seq=seq
    )
    return req_id, request, (load_balancer if load_balancer >= 0 else None)


def response_size(value_size: int) -> int:
    """Byte length of every response of a store's value size (public)."""
    return _RESPONSE.size + value_size


def encode_response(
    req_id: int,
    response: Response,
    value_size: int,
    *,
    load_balancer: int,
    arrival: int,
    epoch: int,
    delivery_seq: int = 0,
) -> bytes:
    """Serialize one resolved ticket back to its client.

    Like requests, every response of a given value size is the same
    length: absent values (``None``) are flagged and zero-padded.
    ``delivery_seq`` is the session's delivery counter (0 when the
    connection is sessionless); it lets a resumed client acknowledge
    and deduplicate replayed responses.
    """
    value = response.value if response.value is not None else b""
    if len(value) > value_size:
        raise WireError(
            f"response value of {len(value)} bytes exceeds the store's "
            f"value_size {value_size}"
        )
    flags = _FLAG_HAS_VALUE if response.value is not None else 0
    header = _RESPONSE.pack(
        req_id,
        delivery_seq,
        1 if response.ok else 0,
        flags,
        load_balancer,
        arrival,
        _check_key(response.key),
        response.client_id,
        response.seq,
        epoch,
        len(value),
    )
    return header + value + bytes(value_size - len(value))


def decode_response(data: bytes, value_size: int):
    """Deserialize one response frame.

    Returns ``(req_id, response, placement, delivery_seq)`` where
    ``placement`` is a ``(load_balancer, arrival, epoch)`` tuple.
    """
    if len(data) != _RESPONSE.size + value_size:
        raise WireError("response frame has the wrong size")
    (
        req_id, delivery_seq, ok, flags, load_balancer, arrival, key,
        client_id, seq, epoch, vlen,
    ) = _RESPONSE.unpack_from(data, 0)
    if vlen > value_size:
        raise WireError("response value length exceeds the value slot")
    value = (
        bytes(data[_RESPONSE.size:_RESPONSE.size + vlen])
        if flags & _FLAG_HAS_VALUE
        else None
    )
    response = Response(
        key=key, value=value, client_id=client_id, seq=seq, ok=bool(ok)
    )
    return req_id, response, (load_balancer, arrival, epoch), delivery_seq


# ---------------------------------------------------------------------------
# Worker control payloads
# ---------------------------------------------------------------------------
_TXN = struct.Struct(">QQ")
_U64 = struct.Struct(">Q")
_U32 = struct.Struct(">I")


def encode_txn(parent_version: int, new_version: int) -> bytes:
    """TXN_BEGIN payload: clone ``parent_version`` state as ``new_version``."""
    return _TXN.pack(parent_version, new_version)


def decode_txn(data: bytes) -> Tuple[int, int]:
    """Parse a TXN_BEGIN payload; returns ``(parent, new)`` version ids."""
    if len(data) != _TXN.size:
        raise WireError("txn payload has the wrong size")
    return _TXN.unpack(data)


def encode_u64(value: int) -> bytes:
    """Fixed 8-byte unsigned payload (version ids, epoch numbers)."""
    return _U64.pack(value)


def decode_u64(data: bytes) -> int:
    """Parse a fixed 8-byte unsigned payload."""
    if len(data) != _U64.size:
        raise WireError("u64 payload has the wrong size")
    return _U64.unpack(data)[0]


def encode_u32(value: int) -> bytes:
    """Fixed 4-byte unsigned payload (counts)."""
    return _U32.pack(value)


def decode_u32(data: bytes) -> int:
    """Parse a fixed 4-byte unsigned payload."""
    if len(data) != _U32.size:
        raise WireError("u32 payload has the wrong size")
    return _U32.unpack(data)[0]


# ---------------------------------------------------------------------------
# Attestation exchange
# ---------------------------------------------------------------------------
#: Maximum enclave-name length carried in an ATTEST payload.
ATTEST_NAME_MAX = 31

_ATTEST = struct.Struct(">B31s32s32s32s")
#: Byte length of every ATTEST payload: name_len(1) | name(31, padded)
#: | measurement(32) | key_share(32) | signature(32).  Constant for
#: every role and enclave name, so the attested handshake has the same
#: shape as the plaintext one plus one fixed-size frame each way.
ATTEST_SIZE = _ATTEST.size


def encode_attest(
    name: str, measurement: bytes, key_share: bytes, signature: bytes
) -> bytes:
    """Serialize one ATTEST payload (quote + key share).

    Clients — which are verified by password/authorization out of band,
    not by attestation — send an all-zero measurement and signature with
    their key share; enclave roles send a full quote.  Both encode to
    exactly :data:`ATTEST_SIZE` bytes.
    """
    raw = name.encode("utf-8")
    if len(raw) > ATTEST_NAME_MAX:
        raise WireError(f"enclave name {name!r} exceeds {ATTEST_NAME_MAX} bytes")
    if len(measurement) != 32 or len(key_share) != 32 or len(signature) != 32:
        raise WireError("attest fields must be exactly 32 bytes")
    return _ATTEST.pack(len(raw), raw, measurement, key_share, signature)


def decode_attest(data: bytes):
    """Parse an ATTEST payload.

    Returns ``(name, measurement, key_share, signature)``.
    """
    if len(data) != ATTEST_SIZE:
        raise WireError("attest payload has the wrong size")
    name_len, raw, measurement, key_share, signature = _ATTEST.unpack(data)
    if name_len > ATTEST_NAME_MAX:
        raise WireError("attest name length out of range")
    name = raw[:name_len].decode("utf-8", errors="replace")
    return name, measurement, key_share, signature


# ---------------------------------------------------------------------------
# Version negotiation reject
# ---------------------------------------------------------------------------
def encode_version_reject(offered: int, supported=SUPPORTED_WIRE_VERSIONS) -> bytes:
    """VERSION_REJECT payload: offered(1) | count(1) | versions(count)."""
    supported = tuple(supported)
    if not supported or len(supported) > 255:
        raise WireError("supported version set out of range")
    return bytes([offered & 0xFF, len(supported), *[v & 0xFF for v in supported]])


def decode_version_reject(data: bytes) -> Tuple[int, Tuple[int, ...]]:
    """Parse a VERSION_REJECT payload; returns ``(offered, supported)``."""
    if len(data) < 2 or len(data) != 2 + data[1]:
        raise WireError("version reject payload has the wrong size")
    return data[0], tuple(data[2 : 2 + data[1]])


# ---------------------------------------------------------------------------
# Resumable sessions
# ---------------------------------------------------------------------------
_SESSION = struct.Struct(">QQ")


def encode_session(session_id: int, last_delivery_seq: int) -> bytes:
    """SESSION payload: resume ``session_id`` (0 = open a new session)
    having received responses through ``last_delivery_seq``."""
    return _SESSION.pack(session_id, last_delivery_seq)


def decode_session(data: bytes) -> Tuple[int, int]:
    """Parse a SESSION payload; returns ``(session_id, last_seq)``."""
    if len(data) != _SESSION.size:
        raise WireError("session payload has the wrong size")
    return _SESSION.unpack(data)


# ---------------------------------------------------------------------------
# Snapshot transfer (remote workers, no shared filesystem)
# ---------------------------------------------------------------------------
_SNAP_FETCH = struct.Struct(">QI")
_SNAP_PUSH_HEAD = struct.Struct(">QB")


def encode_snap_fetch(offset: int, max_chunk: int) -> bytes:
    """SNAP_FETCH payload: read snapshot bytes from ``offset``."""
    return _SNAP_FETCH.pack(offset, max_chunk)


def decode_snap_fetch(data: bytes) -> Tuple[int, int]:
    """Parse a SNAP_FETCH payload; returns ``(offset, max_chunk)``."""
    if len(data) != _SNAP_FETCH.size:
        raise WireError("snap fetch payload has the wrong size")
    return _SNAP_FETCH.unpack(data)


def encode_snap_data(total: int, chunk: bytes) -> bytes:
    """SNAP_DATA payload: snapshot total length + one chunk."""
    return _U64.pack(total) + chunk


def decode_snap_data(data: bytes) -> Tuple[int, bytes]:
    """Parse a SNAP_DATA payload; returns ``(total, chunk)``."""
    if len(data) < _U64.size:
        raise WireError("snap data payload has the wrong size")
    return _U64.unpack_from(data, 0)[0], bytes(data[_U64.size:])


def encode_snap_push(offset: int, last: bool, chunk: bytes) -> bytes:
    """SNAP_PUSH payload: stage ``chunk`` at ``offset``; ``last`` commits."""
    return _SNAP_PUSH_HEAD.pack(offset, 1 if last else 0) + chunk


def decode_snap_push(data: bytes) -> Tuple[int, bool, bytes]:
    """Parse a SNAP_PUSH payload; returns ``(offset, last, chunk)``."""
    if len(data) < _SNAP_PUSH_HEAD.size:
        raise WireError("snap push payload has the wrong size")
    offset, last = _SNAP_PUSH_HEAD.unpack_from(data, 0)
    return offset, bool(last), bytes(data[_SNAP_PUSH_HEAD.size:])


def encode_versions(versions) -> bytes:
    """VERSIONS_REPLY payload: count(4) | version ids (8 bytes each)."""
    versions = tuple(versions)
    return _U32.pack(len(versions)) + b"".join(_U64.pack(v) for v in versions)


def decode_versions(data: bytes) -> Tuple[int, ...]:
    """Parse a VERSIONS_REPLY payload; returns the held version ids."""
    if len(data) < _U32.size:
        raise WireError("versions payload has the wrong size")
    (count,) = _U32.unpack_from(data, 0)
    if len(data) != _U32.size + count * _U64.size:
        raise WireError("versions payload has the wrong size")
    return tuple(
        _U64.unpack_from(data, _U32.size + i * _U64.size)[0]
        for i in range(count)
    )
