"""Deployment configuration for a Snoopy cluster."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.utils.validation import require, require_positive


@dataclass(frozen=True)
class SnoopyConfig:
    """Public parameters of a Snoopy deployment (§2.1's public information).

    Attributes:
        num_load_balancers: L.
        num_suborams: S.
        value_size: fixed object size in bytes.
        security_parameter: lambda; overflow probability <= 2^-lambda.
        epoch_duration: epoch length T in seconds.  Used by the
            performance simulator, and — when the deployment runs
            pipelined (:meth:`~repro.core.snoopy.Snoopy.start_pipeline`)
            — as the period of the background epoch clock that closes
            batches on the load balancers.  The sequential
            ``run_epoch`` path still closes epochs on demand.
        pipeline_depth: maximum in-flight epochs under the pipelined
            scheduler (§6's double-buffering; default 2 matches the
            paper's latency <= 2T claim).  An epoch is in flight from
            close until its responses are matched back; when the limit
            is reached the clock skips ticks and requests keep
            accumulating on the balancers (backpressure).  Public
            information: cadence and depth are scheduling facts the
            attacker already observes.
        execution_backend: how epoch stages execute — an
            :mod:`repro.exec` spec string (``"serial"``, ``"thread"``,
            ``"thread:8"``, ``"process"``, ...).  Public information: the
            attacker already sees the degree of physical parallelism.
        max_workers: pool size for parallel backends (None = backend
            default; a ``:N`` spec suffix takes precedence).
        kernel: oblivious-kernel selector, ``"python"`` (the scalar
            reference oracle) or ``"numpy"`` (the vectorized
            structure-of-arrays fast path).  Public information: the
            kernel only changes how each fixed schedule level executes,
            never which addresses it touches (see
            :mod:`repro.oblivious.kernels`).
        crypto: store-crypto selector, ``"scalar"`` (one AEAD call per
            slot — the audited oracle) or ``"batched"`` (default: whole
            -store seal/open in one vectorized pass per epoch, byte
            -identical responses).  Public information: batching changes
            only how many Python calls move the same uniform-size
            ciphertexts; nonce uniqueness per slot and ciphertext
            lengths are unchanged (SECURITY.md "Batched crypto is
            public information").
        task_timeout: per-task timeout in seconds for pooled backends
            (None = unbounded).  An overrun raises
            :class:`~repro.errors.TaskTimeoutError`, a retryable fault.
        epoch_max_attempts: total attempts per epoch (1 = legacy
            fail-fast; >1 enables atomic epoch retry — a failed attempt
            requeues its requests and the epoch is re-run).
        epoch_backoff_base: first retry delay in seconds (0 = no sleep).
        epoch_backoff_factor: exponential multiplier per further retry.
        epoch_backoff_jitter: relative jitter amplitude on each delay,
            drawn deterministically from ``epoch_retry_seed``.
        epoch_retry_seed: seed of the backoff jitter stream.
        replication: §9 fault-tolerance parameters ``(f, r)`` — tolerate
            ``f`` fail-stop crashes and ``r`` rollbacks per subORAM by
            running each as a :class:`~repro.extensions.replication.\
ReplicatedSubOram` group of ``f + r + 1`` replicas.  ``None`` (default)
            deploys unreplicated subORAMs.  Public information: replica
            counts and crash/recovery events are infrastructure facts the
            cloud attacker already controls.
        telemetry: optional :class:`~repro.telemetry.Telemetry` handle
            the deployment wires through every layer (epoch driver,
            backend, kernels, retry/fault machinery).  ``None`` (default)
            means telemetry is off and every instrumentation point is a
            shared no-op.  Excluded from equality/repr: a live handle is
            runtime plumbing, not a public parameter — the quantities it
            exports are (see SECURITY.md "Telemetry is public
            information").
    """

    num_load_balancers: int = 1
    num_suborams: int = 1
    value_size: int = 160
    security_parameter: int = 128
    epoch_duration: float = 0.2
    pipeline_depth: int = 2
    execution_backend: str = "serial"
    max_workers: Optional[int] = None
    kernel: str = "python"
    crypto: str = "batched"
    task_timeout: Optional[float] = None
    epoch_max_attempts: int = 1
    epoch_backoff_base: float = 0.0
    epoch_backoff_factor: float = 2.0
    epoch_backoff_jitter: float = 0.1
    epoch_retry_seed: int = 0
    replication: Optional[Tuple[int, int]] = None
    telemetry: Optional[object] = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        require_positive(self.num_load_balancers, "num_load_balancers")
        require_positive(self.num_suborams, "num_suborams")
        require_positive(self.value_size, "value_size")
        require(
            self.security_parameter >= 0,
            "security_parameter must be >= 0",
        )
        require(self.epoch_duration > 0, "epoch_duration must be positive")
        require(self.pipeline_depth >= 1, "pipeline_depth must be >= 1")
        if self.max_workers is not None:
            require_positive(self.max_workers, "max_workers")
        if self.task_timeout is not None:
            require(self.task_timeout > 0, "task_timeout must be positive")
        require(
            self.epoch_max_attempts >= 1, "epoch_max_attempts must be >= 1"
        )
        require(
            self.epoch_backoff_base >= 0,
            "epoch_backoff_base must be >= 0",
        )
        require(
            self.epoch_backoff_factor >= 1,
            "epoch_backoff_factor must be >= 1",
        )
        require(
            self.epoch_backoff_jitter >= 0,
            "epoch_backoff_jitter must be >= 0",
        )
        if self.replication is not None:
            require(
                isinstance(self.replication, tuple)
                and len(self.replication) == 2,
                "replication must be an (f, r) tuple",
            )
            f, r = self.replication
            require(
                isinstance(f, int) and isinstance(r, int),
                "replication (f, r) must be integers",
            )
            require(f >= 0, "replication f (crash failures) must be >= 0")
            require(r >= 0, "replication r (rollbacks) must be >= 0")
            require(
                f + r >= 1,
                "replication (0, 0) is a single unreplicated copy; "
                "use replication=None instead",
            )
        # Validate the spec eagerly so a typo fails at configuration time,
        # not at the first epoch.  Imported here to keep repro.exec (which
        # needs repro.errors only) free of import cycles with core.
        from repro.exec import parse_spec

        parse_spec(self.execution_backend)

        from repro.oblivious.kernels import validate_kernel_name

        validate_kernel_name(self.kernel)

        from repro.suboram.suboram import SubOram

        require(
            self.crypto in SubOram.CRYPTO_MODES,
            f"unknown crypto mode {self.crypto!r}; valid modes: "
            f"{list(SubOram.CRYPTO_MODES)}",
        )

    @property
    def num_machines(self) -> int:
        """Total machine count (one enclave machine per component)."""
        return self.num_load_balancers + self.num_suborams
