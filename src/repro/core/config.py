"""Deployment configuration for a Snoopy cluster."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.utils.validation import require, require_positive


@dataclass(frozen=True)
class SnoopyConfig:
    """Public parameters of a Snoopy deployment (§2.1's public information).

    Attributes:
        num_load_balancers: L.
        num_suborams: S.
        value_size: fixed object size in bytes.
        security_parameter: lambda; overflow probability <= 2^-lambda.
        epoch_duration: epoch length T in seconds (used by the performance
            simulator; the functional core runs epochs on demand).
        execution_backend: how epoch stages execute — an
            :mod:`repro.exec` spec string (``"serial"``, ``"thread"``,
            ``"thread:8"``, ``"process"``, ...).  Public information: the
            attacker already sees the degree of physical parallelism.
        max_workers: pool size for parallel backends (None = backend
            default; a ``:N`` spec suffix takes precedence).
        kernel: oblivious-kernel selector, ``"python"`` (the scalar
            reference oracle) or ``"numpy"`` (the vectorized
            structure-of-arrays fast path).  Public information: the
            kernel only changes how each fixed schedule level executes,
            never which addresses it touches (see
            :mod:`repro.oblivious.kernels`).
    """

    num_load_balancers: int = 1
    num_suborams: int = 1
    value_size: int = 160
    security_parameter: int = 128
    epoch_duration: float = 0.2
    execution_backend: str = "serial"
    max_workers: Optional[int] = None
    kernel: str = "python"

    def __post_init__(self) -> None:
        require_positive(self.num_load_balancers, "num_load_balancers")
        require_positive(self.num_suborams, "num_suborams")
        require_positive(self.value_size, "value_size")
        require(
            self.security_parameter >= 0,
            "security_parameter must be >= 0",
        )
        require(self.epoch_duration > 0, "epoch_duration must be positive")
        if self.max_workers is not None:
            require_positive(self.max_workers, "max_workers")
        # Validate the spec eagerly so a typo fails at configuration time,
        # not at the first epoch.  Imported here to keep repro.exec (which
        # needs repro.errors only) free of import cycles with core.
        from repro.exec import parse_spec

        parse_spec(self.execution_backend)

        from repro.oblivious.kernels import validate_kernel_name

        validate_kernel_name(self.kernel)

    @property
    def num_machines(self) -> int:
        """Total machine count (one enclave machine per component)."""
        return self.num_load_balancers + self.num_suborams
