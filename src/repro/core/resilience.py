"""Epoch retry policy and the shared fault-tolerance controller.

The paper's correctness story (Appendix C) assumes every accepted request
is eventually served in *some* epoch; §9 sketches the infrastructure side
(``f + r + 1`` quorum replication with a trusted counter).  This module
is the glue that makes both deployments honor that under faults:

* :class:`RetryPolicy` — per-epoch retry with exponential backoff and
  *deterministic seeded jitter* (two runs with the same seed back off
  identically; jitter still decorrelates distinct deployments), built
  from the ``epoch_*`` fields of
  :class:`~repro.core.config.SnoopyConfig`;
* :class:`EpochRetryController` — drives the attempt loop around
  :meth:`~repro.core.epoch.EpochDriver.run`, heals replica groups at
  epoch boundaries (automatic
  :meth:`~repro.extensions.replication.ReplicatedSubOram.recover_from_peer`
  of crashed or stale replicas), applies scheduled replica faults from a
  :class:`~repro.core.faults.FaultInjector`, and accumulates the
  deployment's ``fault_stats``.

Retry decisions are functions of **public information only**: the fault
kind (crash/timeout/transport — all host-visible events) and the attempt
count.  Nothing here reads request contents, keys, or any other secret,
so the failure/retry behaviour an attacker observes is exactly what they
could simulate themselves (see SECURITY.md).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.faults import FaultInjector
from repro.errors import EpochFailedError
from repro.telemetry import resolve_telemetry
from repro.utils.validation import require


def _replica_groups(suborams: Sequence) -> list:
    """The ReplicatedSubOram groups among ``suborams``, in order.

    Imported lazily: ``repro.extensions`` pulls in the simulator, which
    imports the core deployments — a module-level import here would be
    circular.
    """
    from repro.extensions.replication import ReplicatedSubOram

    return [s for s in suborams if isinstance(s, ReplicatedSubOram)]


@dataclass(frozen=True)
class RetryPolicy:
    """How (and how often) a failed epoch is retried.

    Attributes:
        max_attempts: total attempts per epoch (1 = no retry; failures
            propagate after the requests were requeued).
        backoff_base: first retry delay in seconds (0 disables sleeping —
            the right setting for tests).
        backoff_factor: multiplier per further attempt (exponential).
        jitter: relative jitter amplitude; each delay is scaled by a
            factor drawn uniformly from ``[1, 1 + jitter]``.
        seed: seed of the jitter stream, making backoff schedules
            deterministic and reproducible per deployment.
    """

    max_attempts: int = 1
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        require(self.max_attempts >= 1, "max_attempts must be >= 1")
        require(self.backoff_base >= 0, "backoff_base must be >= 0")
        require(self.backoff_factor >= 1, "backoff_factor must be >= 1")
        require(self.jitter >= 0, "jitter must be >= 0")

    @classmethod
    def from_config(cls, config) -> "RetryPolicy":
        """Build the policy from a :class:`SnoopyConfig`'s epoch_* fields."""
        return cls(
            max_attempts=config.epoch_max_attempts,
            backoff_base=config.epoch_backoff_base,
            backoff_factor=config.epoch_backoff_factor,
            jitter=config.epoch_backoff_jitter,
            seed=config.epoch_retry_seed,
        )

    def delay(self, failure_index: int) -> float:
        """Backoff before retry number ``failure_index`` (1-based).

        ``backoff_base * backoff_factor**(failure_index-1)``, scaled by
        the seeded jitter draw for that index — a pure function of
        ``(seed, failure_index)``.
        """
        require(failure_index >= 1, "failure_index is 1-based")
        if self.backoff_base <= 0:
            return 0.0
        base = self.backoff_base * self.backoff_factor ** (failure_index - 1)
        draw = random.Random((self.seed, failure_index).__hash__()).random()
        return base * (1.0 + self.jitter * draw)


class EpochRetryController:
    """The fault-tolerance engine shared by both deployments.

    One controller lives per deployment and is consulted by every
    ``run_epoch``:

    1. :meth:`begin_epoch` — advance the injector, heal replica groups
       (recover crashed/stale replicas from a fresh peer), then apply
       this epoch's scheduled ``replica_crash`` events and stage
       ``replica_rollback`` snapshots;
    2. :meth:`run_with_retry` — drive the attempt loop; failed attempts
       were already rolled back by the driver (requests requeued, state
       not installed), so a retry is simply running the driver again;
    3. :meth:`end_epoch` — after a successful attempt, apply the staged
       rollbacks (the malicious-host event the §9 freshness check
       catches next epoch).

    Attributes:
        stats: controller-level counters (``epochs_failed``,
            ``epochs_retried``, ``replicas_recovered``).
    """

    def __init__(
        self,
        policy: RetryPolicy,
        injector: Optional[FaultInjector] = None,
        sleep: Callable[[float], None] = time.sleep,
        telemetry=None,
    ):
        self.policy = policy
        self.injector = injector
        self._sleep = sleep
        self.telemetry = resolve_telemetry(telemetry)
        self.stats: Dict[str, int] = {
            "epochs_failed": 0,
            "epochs_retried": 0,
            "replicas_recovered": 0,
        }
        #: (unit, replica, snapshot) rollbacks staged for this epoch.
        self._staged_rollbacks: List[Tuple[int, int, object]] = []

    @property
    def armed(self) -> bool:
        """True when epochs must be atomic (retry or chaos is active).

        The epoch driver deep-copies shared-state subORAMs only when
        armed: with ``epoch_max_attempts == 1`` and fault injection off
        (no injector, or an injector whose plan has fully fired) the
        legacy fail-fast semantics — and the zero-copy hot path, which
        skips a per-attempt ``copy.deepcopy`` of every subORAM — are
        preserved exactly.  A deployment with a finite fault plan
        therefore pays the copy only until the last scheduled event has
        fired.
        """
        if self.policy.max_attempts > 1:
            return True
        return self.injector is not None and not self.injector.exhausted

    @property
    def fault_stats(self) -> Dict[str, int]:
        """Controller counters merged with the injector's fired events."""
        merged = dict(self.stats)
        if self.injector is not None:
            merged.update(self.injector.stats)
        return merged

    # ------------------------------------------------------------------
    # Epoch boundaries
    # ------------------------------------------------------------------
    def begin_epoch(self, epoch: int, suborams: Sequence) -> None:
        """Heal replica groups, then apply this epoch's replica faults."""
        if self.injector is not None:
            self.injector.begin_epoch(epoch)
        recovered = heal_replica_groups(suborams)
        self.stats["replicas_recovered"] += recovered
        if recovered:
            self.telemetry.counter("replication_recoveries_total").inc(
                recovered
            )
        self._staged_rollbacks = []
        if self.injector is None:
            return
        groups = _replica_groups(suborams)
        if not groups:
            return
        for event in self.injector.replica_faults("replica_crash"):
            group = groups[event.unit % len(groups)]
            group.crash(event.replica % group.group_size)
        for event in self.injector.replica_faults("replica_rollback"):
            unit = event.unit % len(groups)
            group = groups[unit]
            replica = event.replica % group.group_size
            # Capture the pre-epoch state now; the malicious restore is
            # applied in end_epoch, so next epoch's freshness check sees
            # a genuinely stale reply.
            self._staged_rollbacks.append(
                (unit, replica, group.snapshot(replica))
            )

    def end_epoch(self, suborams: Sequence) -> None:
        """Apply staged rollbacks against the (possibly reinstalled) groups."""
        if not self._staged_rollbacks:
            return
        groups = _replica_groups(suborams)
        for unit, replica, snapshot in self._staged_rollbacks:
            if unit < len(groups):
                groups[unit].rollback(replica, snapshot)
        self._staged_rollbacks = []

    # ------------------------------------------------------------------
    # The attempt loop
    # ------------------------------------------------------------------
    def run_with_retry(self, attempt: Callable[[], object]):
        """Run one epoch with the policy's retry/backoff schedule.

        ``attempt`` is a zero-argument callable driving
        :meth:`EpochDriver.run` once.  On :class:`EpochFailedError` the
        driver has already requeued the epoch's requests, so retrying is
        side-effect-free.  Non-retryable failures (security aborts,
        protocol bugs) and exhausted budgets re-raise the *original*
        cause, preserving the pre-fault-tolerance API surface.
        """
        failure: Optional[EpochFailedError] = None
        for attempt_index in range(1, self.policy.max_attempts + 1):
            if attempt_index > 1:
                self.stats["epochs_retried"] += 1
                self.telemetry.counter("retry_epochs_retried_total").inc()
                delay = self.policy.delay(attempt_index - 1)
                if delay > 0:
                    self.telemetry.counter(
                        "retry_backoff_sleeps_total"
                    ).inc()
                    self.telemetry.counter(
                        "retry_backoff_seconds_total"
                    ).inc(delay)
                    self._sleep(delay)
            try:
                return attempt()
            except EpochFailedError as exc:
                self.stats["epochs_failed"] += 1
                self.telemetry.counter(
                    "retry_epochs_failed_total",
                    stage=exc.stage if exc.stage else "unknown",
                ).inc()
                failure = exc
                if not exc.retryable:
                    break
        assert failure is not None
        raise failure.cause from failure


def heal_replica_groups(suborams: Sequence) -> int:
    """Recover crashed or stale replicas from a fresh peer; returns count.

    Runs at every epoch boundary.  A replica is healed when it is marked
    crashed or its local epoch lags the freshest live peer (the state a
    rollback or missed epoch leaves behind).  Groups with no live replica
    are left alone — ``batch_access`` will raise
    :class:`~repro.extensions.replication.ReplicaUnavailableError`
    loudly rather than serve from nothing.
    """
    recovered = 0
    for group in _replica_groups(suborams):
        live = [r for r in group.replicas if not r.crashed]
        if not live:
            continue
        freshest = max(r.epoch for r in live)
        for index, replica in enumerate(group.replicas):
            if replica.crashed or replica.epoch != freshest:
                group.recover_from_peer(index)
                recovered += 1
    return recovered
