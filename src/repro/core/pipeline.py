"""The pipelined epoch scheduler: overlap build, execute, and match (§6).

Snoopy's performance model assumes epochs are *pipelined*: load
balancers batch and route epoch ``e+1`` while the subORAMs execute epoch
``e`` and responses for ``e-1`` are matched back — that is why
equations (1)–(3) bound latency at ~2 epoch durations while throughput
scales with ``R/T``.  :class:`EpochPipeline` brings that architecture to
the functional system (the same move Obladi makes for its trusted proxy
and TaoStore for its asynchronous proxy scheduling):

* a **background epoch clock** with period
  :attr:`~repro.core.config.SnoopyConfig.epoch_duration` closes the
  current batch on the load balancers (``submit`` stays fully
  non-blocking: tickets are resolved by the pipeline's match thread);
* three **stage threads** — builder, executor, matcher — each drive one
  :class:`~repro.core.epoch.EpochDriver` stage over the deployment's
  execution backend, so the build of epoch ``e+1`` runs concurrently
  with the execute of ``e`` and the match of ``e-1``;
* a **depth semaphore** caps in-flight epochs at
  :attr:`~repro.core.config.SnoopyConfig.pipeline_depth` (default 2,
  the paper's latency <= 2T claim).  When the limit is reached the
  clock skips its tick and requests keep accumulating on the balancers
  — backpressure grows the next batch instead of queueing epochs.

**Ordering and fault tolerance.**  Epochs serialize in close order:
the trusted counter is bumped under the intake lock at close, each
queue stage is a single FIFO thread, and the execute stage — the only
stage that mutates subORAM state — processes one epoch at a time.  The
retry/replication/chaos machinery of :mod:`repro.core.resilience`
composes unchanged: the executor thread runs
:meth:`~repro.core.resilience.EpochRetryController.run_with_retry`
around the execute stage, so an in-flight epoch that fails is retried
*in place* — queued successor epochs are never reordered, preserving
the Appendix C linearization argument.  (Build output is a pure
function of the drained requests, so retries reuse the already-built
batches.)

**Fatal failures** (exhausted retry budget, security aborts, batch
overflow) poison the pipeline: the failing epoch and every epoch behind
it are rolled back — requests requeued at the front of their balancers
in close order, ticket cuts restored, tickets left pending — and the
original error is re-raised by the next :meth:`EpochPipeline.flush` /
:meth:`EpochPipeline.close_epoch` call.  After :meth:`EpochPipeline.stop`
the deployment's sequential ``run_epoch`` path can re-serve the
requeued requests.

**What is public.**  Epoch cadence, pipeline depth, in-flight counts
and per-stage occupancy are scheduling facts the host already observes;
none of them depends on request contents (SECURITY.md).  Stage overlap
is recorded through :mod:`repro.telemetry.overlap` so benchmarks can
*prove* the overlap instead of asserting wall-clock alone.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import List, Optional

from repro.core.tickets import Ticket, TicketBook
from repro.errors import ConfigurationError
from repro.telemetry import resolve_telemetry
from repro.telemetry.overlap import (
    StageIntervalRecorder,
    occupancy_table,
    overlap_seconds,
)
from repro.types import Request

#: Queue sentinel shutting a stage thread down.
_STOP = object()


class _EpochJob:
    """One in-flight epoch: its requests, tickets, and stage outputs."""

    __slots__ = (
        "epoch", "drained", "active", "tickets",
        "built", "entries", "responses", "failure",
        "closed_at", "done",
    )

    def __init__(self, epoch, drained, active, tickets):
        self.epoch: int = epoch
        self.drained: List[List[Request]] = drained
        self.active: List[int] = active
        self.tickets: List[List[Ticket]] = tickets
        self.built = None
        self.entries = None
        self.responses = None
        self.failure: Optional[BaseException] = None
        self.closed_at = time.monotonic()
        self.done = threading.Event()


class EpochPipeline:
    """Double-buffered epoch execution over a :class:`~repro.core.snoopy.Snoopy`.

    Construct through :meth:`Snoopy.start_pipeline
    <repro.core.snoopy.Snoopy.start_pipeline>` rather than directly::

        with store.start_pipeline() as pipeline:   # clock running
            tickets = [store.submit(r) for r in requests]
            pipeline.flush()                        # drain in-flight epochs
        responses = [t.result() for t in tickets]

    Tests and benchmarks that need deterministic epoch composition pass
    ``clock=False`` and call :meth:`close_epoch` themselves.

    Args:
        store: the deployment to schedule (its balancers, subORAMs,
            ticket book, retry controller, and backend are shared — the
            pipeline is the deployment's scheduler, not a copy).
        depth: max in-flight epochs; defaults to
            ``store.config.pipeline_depth``.
        clock_period: period of the background epoch clock in seconds,
            or ``None`` for manual :meth:`close_epoch` pacing.
    """

    def __init__(self, store, depth: Optional[int] = None,
                 clock_period: Optional[float] = None):
        if depth is None:
            depth = store.config.pipeline_depth
        if depth < 1:
            raise ConfigurationError("pipeline depth must be >= 1")
        if clock_period is not None and clock_period <= 0:
            raise ConfigurationError("clock_period must be positive")
        self._store = store
        self.depth = depth
        self.clock_period = clock_period
        self.telemetry = resolve_telemetry(store.telemetry)
        self.recorder = StageIntervalRecorder(telemetry=self.telemetry)

        # One driver per stage thread is unnecessary: EpochDriver is
        # stateless between calls, so the stage threads share one.
        from repro.core.epoch import EpochDriver

        self._driver = EpochDriver(store.backend, telemetry=store.telemetry)

        self._mutex = threading.Lock()
        self._cv = threading.Condition(self._mutex)
        self._slots = threading.BoundedSemaphore(depth)
        self._to_build: "queue.Queue" = queue.Queue()
        self._to_execute: "queue.Queue" = queue.Queue()
        self._to_match: "queue.Queue" = queue.Queue()
        self._inflight = 0
        self._failed_jobs: List[_EpochJob] = []
        self._error: Optional[BaseException] = None
        self._epochs_completed = 0
        self._max_inflight = 0
        self._stop_event = threading.Event()
        self._threads: List[threading.Thread] = []
        self._clock_thread: Optional[threading.Thread] = None
        self._started = False
        self._active = False
        self._epoch_observers: List = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "EpochPipeline":
        """Launch the stage threads (and the clock, if configured)."""
        if self._started:
            raise ConfigurationError("pipeline already started")
        self._started = True
        self._active = True
        self.telemetry.gauge("pipeline_depth").set(self.depth)
        for name, target in (
            ("build", self._build_worker),
            ("execute", self._execute_worker),
            ("match", self._match_worker),
        ):
            thread = threading.Thread(
                target=target, name=f"repro-pipeline-{name}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        if self.clock_period is not None:
            self._clock_thread = threading.Thread(
                target=self._clock_main, name="repro-pipeline-clock",
                daemon=True,
            )
            self._clock_thread.start()
        return self

    @property
    def active(self) -> bool:
        """True while the pipeline accepts submissions and closes epochs."""
        return self._active

    @property
    def error(self) -> Optional[BaseException]:
        """The fatal error that poisoned the pipeline, if any."""
        with self._mutex:
            return self._error

    def stop(self) -> None:
        """Drain in-flight work, then shut the stage threads down.

        Flushes first unless the pipeline is already poisoned (a stored
        fatal error means the remaining work was rolled back; the error
        stays retrievable via :attr:`error` and the requests stay queued
        for a sequential ``run_epoch``).  Idempotent.
        """
        if not self._started or not self._active:
            return
        try:
            if self.error is None:
                self.flush()
        finally:
            self._active = False
            self._stop_event.set()
            if self._clock_thread is not None:
                self._clock_thread.join()
            for stage_queue in (
                self._to_build, self._to_execute, self._to_match
            ):
                stage_queue.put(_STOP)
            for thread in self._threads:
                thread.join()

    def __enter__(self) -> "EpochPipeline":
        """Context-manager entry: returns the (running) pipeline."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: stops the pipeline (flushing first)."""
        self.stop()

    # ------------------------------------------------------------------
    # Intake
    # ------------------------------------------------------------------
    def submit(self, request: Request, load_balancer: int) -> Ticket:
        """Queue a request without blocking; the clock closes the epoch.

        Called by :meth:`Snoopy.submit <repro.core.snoopy.Snoopy.submit>`
        while the pipeline is active.  Holding the intake lock keeps the
        (arrival index, ticket) pair consistent with a concurrent epoch
        close.

        Raises:
            The stored fatal error, when the pipeline is poisoned.
        """
        with self._cv:
            if self._error is not None:
                raise self._error
            arrival = self._store.load_balancers[load_balancer].submit(
                request
            )
            ticket = self._store.tickets.issue(
                load_balancer, arrival, request
            )
        self.telemetry.counter("snoopy_requests_total").inc()
        return ticket

    def add_epoch_observer(self, observer) -> None:
        """Register ``observer(epoch, resolved, latency_s)`` for epoch closes.

        Called on the match thread after each epoch completes — the seam
        the TCP service uses for service-level metrics.  Observer
        exceptions are swallowed (counted in
        ``pipeline_observer_errors_total``) so instrumentation can never
        poison the pipeline.
        """
        self._epoch_observers.append(observer)

    def _notify_epoch_observers(
        self, epoch: int, resolved: int, latency_s: float
    ) -> None:
        for observer in self._epoch_observers:
            try:
                observer(epoch, resolved, latency_s)
            except Exception:
                self.telemetry.counter(
                    "pipeline_observer_errors_total"
                ).inc()

    def close_epoch(self, wait: bool = True) -> Optional[int]:
        """Close the current batch into an in-flight epoch.

        Drains every balancer, bumps the trusted counter, cuts the
        ticket book, and hands the epoch to the builder thread.  Returns
        the epoch number, or ``None`` when there was nothing queued — or
        when ``wait=False`` and all ``depth`` slots are occupied (the
        clock's backpressure path: the tick is skipped and requests keep
        accumulating).

        Raises:
            The stored fatal error, when the pipeline is poisoned (after
            waiting for the rollback of in-flight epochs to finish).
        """
        if not self._active:
            raise ConfigurationError("pipeline is not running")
        if wait:
            self._slots.acquire()
        elif not self._slots.acquire(blocking=False):
            self.telemetry.counter("pipeline_backpressure_skips_total").inc()
            return None
        job = None
        try:
            with self._cv:
                if self._error is not None:
                    while self._inflight:
                        self._cv.wait()
                    raise self._error
                drained = [
                    balancer.drain()
                    for balancer in self._store.load_balancers
                ]
                active = [
                    index for index, requests in enumerate(drained)
                    if requests
                ]
                if not active:
                    # Nothing queued: undo the drains so balancer epoch
                    # counters only advance for real epochs.
                    for balancer, requests in zip(
                        self._store.load_balancers, drained
                    ):
                        balancer.requeue(requests)
                    return None
                self._store.counter.increment()
                job = _EpochJob(
                    epoch=self._store.counter.value,
                    drained=drained,
                    active=active,
                    tickets=self._store.tickets.cut(),
                )
                self._inflight += 1
                self._max_inflight = max(self._max_inflight, self._inflight)
                self.telemetry.gauge("pipeline_inflight_epochs").set(
                    self._inflight
                )
        finally:
            if job is None:
                self._slots.release()
        self._to_build.put(job)
        return job.epoch

    def flush(self) -> None:
        """Close any queued requests, then wait for every in-flight epoch.

        Raises:
            The stored fatal error, when an in-flight epoch failed.
        """
        self.close_epoch(wait=True)
        with self._cv:
            while self._inflight:
                self._cv.wait()
            if self._error is not None:
                raise self._error

    # ------------------------------------------------------------------
    # Stage threads
    # ------------------------------------------------------------------
    def _build_worker(self) -> None:
        """Builder thread: stage ➊ of each closed epoch, in close order.

        Build failures are fatal rather than retried: batch generation
        is a pure function of the drained requests, so a failure (e.g.
        :class:`~repro.errors.BatchOverflowError`) would repeat
        identically; injected and infrastructure faults target stage ➋,
        where the retry loop runs.
        """
        while True:
            job = self._to_build.get()
            if job is _STOP:
                break
            if self._error is None and job.failure is None:
                start = time.monotonic()
                try:
                    job.built = self._driver.run_build(
                        self._store.load_balancers, job.drained, job.active
                    )
                except BaseException as exc:
                    job.failure = exc
                else:
                    self.recorder.record(
                        "build", job.epoch, start, time.monotonic()
                    )
            self._to_execute.put(job)

    def _execute_worker(self) -> None:
        """Executor thread: stage ➋, one epoch at a time, with retries.

        The only stage that mutates subORAM state, so it is the
        serialization point: epochs execute strictly in close order, and
        a retried epoch re-runs here without touching the queued
        successors waiting behind it.
        """
        store = self._store
        while True:
            job = self._to_execute.get()
            if job is _STOP:
                break
            if self._error is not None or job.failure is not None:
                self._abort(job)
                continue
            controller = store.retry_controller
            try:
                controller.begin_epoch(job.epoch, store.suborams)

                def attempt(job=job, controller=controller):
                    start = time.monotonic()
                    try:
                        return self._driver.run_execute(
                            store.suborams, job.built, job.active,
                            state_ns=store.state_namespace,
                            injector=store.injector,
                            atomic=controller.armed,
                        )
                    finally:
                        self.recorder.record(
                            "execute", job.epoch, start, time.monotonic()
                        )

                new_suborams, entries = controller.run_with_retry(attempt)
                store.suborams = new_suborams
                if store.telemetry.enabled:
                    from repro.core.snoopy import (
                        attach_telemetry_to_suborams,
                    )

                    attach_telemetry_to_suborams(
                        new_suborams, store.telemetry
                    )
                controller.end_epoch(new_suborams)
            except BaseException as exc:
                job.failure = exc
                self._abort(job)
                continue
            job.entries = entries
            self._to_match.put(job)

    def _match_worker(self) -> None:
        """Matcher thread: stage ➌ + ticket resolution, in close order."""
        store = self._store
        while True:
            job = self._to_match.get()
            if job is _STOP:
                break
            if self._error is not None:
                self._abort(job)
                continue
            try:
                start = time.monotonic()
                responses = self._driver.run_match(
                    store.load_balancers, job.built, job.entries, job.active
                )
                self.recorder.record(
                    "match", job.epoch, start, time.monotonic()
                )
                with self.telemetry.span("stage", stage="respond"), \
                        self.telemetry.time(
                            "snoopy_epoch_stage_seconds", stage="respond"
                        ):
                    resolved = TicketBook.resolve_cut(
                        job.tickets, responses, job.epoch
                    )
            except BaseException as exc:
                job.failure = exc
                self._abort(job)
                continue
            job.responses = responses
            latency = time.monotonic() - job.closed_at
            self.telemetry.counter("snoopy_epochs_total").inc()
            self.telemetry.counter("snoopy_responses_total").inc(resolved)
            self.telemetry.histogram("snoopy_epoch_seconds").observe(latency)
            self._notify_epoch_observers(job.epoch, resolved, latency)
            self._finish(job)

    # ------------------------------------------------------------------
    # Completion and rollback
    # ------------------------------------------------------------------
    def _finish(self, job: _EpochJob) -> None:
        """Mark one epoch complete and free its depth slot."""
        with self._cv:
            self._inflight -= 1
            self._epochs_completed += 1
            self.telemetry.gauge("pipeline_inflight_epochs").set(
                self._inflight
            )
            self._cv.notify_all()
        self._slots.release()
        job.done.set()

    def _abort(self, job: _EpochJob) -> None:
        """Roll one epoch back after a fatal failure.

        The first aborted job's failure poisons the pipeline; every
        in-flight job (the failed one and the successors drained after
        it) is collected, and once the last one arrives they are
        requeued *in close order* — latest epoch first, each prepending
        its requests and ticket cut — so the balancer queues and ticket
        book end up exactly as if none of the epochs had been drained.
        """
        with self._cv:
            if self._error is None and job.failure is not None:
                self._error = job.failure
            self._failed_jobs.append(job)
            self._inflight -= 1
            self.telemetry.gauge("pipeline_inflight_epochs").set(
                self._inflight
            )
            if self._inflight == 0:
                self._rollback_failed_locked()
            self._cv.notify_all()
        self._slots.release()
        job.done.set()

    def _rollback_failed_locked(self) -> None:
        """Requeue every aborted epoch's requests and tickets (locked)."""
        for failed in sorted(
            self._failed_jobs, key=lambda j: j.epoch, reverse=True
        ):
            for balancer, requests in zip(
                self._store.load_balancers, failed.drained
            ):
                balancer.requeue(requests)
            self._store.tickets.restore(failed.tickets)
        self._failed_jobs = []

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    def _clock_main(self) -> None:
        """Background epoch clock: one non-blocking close per period."""
        while not self._stop_event.wait(self.clock_period):
            try:
                self.close_epoch(wait=False)
            except BaseException:
                # Poisoned (or racing a stop): the error is surfaced to
                # the caller via flush/close_epoch, not the clock.
                break

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stats(self) -> dict:
        """Scheduling counters: epochs completed, in flight, max depth seen."""
        with self._mutex:
            return {
                "epochs_completed": self._epochs_completed,
                "inflight": self._inflight,
                "max_inflight": self._max_inflight,
                "depth": self.depth,
            }

    def occupancy(self) -> List[dict]:
        """Per-stage busy/span/occupancy rows (see
        :func:`repro.telemetry.overlap.occupancy_table`)."""
        return occupancy_table(
            self.recorder.intervals, stages=("build", "execute", "match")
        )

    def overlap(self, stage_a: str = "build", stage_b: str = "execute") -> float:
        """Seconds ``stage_a`` of later epochs overlapped ``stage_b`` of
        earlier ones — the §6 overlap witness (see
        :func:`repro.telemetry.overlap.overlap_seconds`)."""
        return overlap_seconds(self.recorder.intervals, stage_a, stage_b)
