"""A distributed-style Snoopy deployment with real encrypted transport.

Where :class:`~repro.core.snoopy.Snoopy` wires components with direct
Python calls, ``DistributedSnoopy`` reproduces the deployment story of
§3.1:

* each load balancer and subORAM runs in its own
  :class:`~repro.enclave.model.Enclave`;
* components prove themselves to each other via remote attestation
  against a shared :class:`~repro.enclave.attestation.AttestationService`
  whitelist (the Snoopy release measurements);
* every load-balancer <-> subORAM message is serialized
  (:mod:`repro.core.wire`) and sent through an AEAD
  :class:`~repro.crypto.aead.SecureChannel` with replay protection.

Functionally equivalent to the in-process deployment — identical
results for identical requests — but a tampering or replaying network
raises :class:`~repro.errors.IntegrityError` /
:class:`~repro.errors.ReplayError`, which the integration tests inject.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.core.config import SnoopyConfig
from repro.core.wire import decode_batch, encode_batch
from repro.crypto.aead import SecureChannel
from repro.crypto.keys import KeyChain
from repro.enclave.attestation import AttestationService
from repro.loadbalancer.initialization import oblivious_shard
from repro.enclave.model import Enclave
from repro.enclave.sealed import MonotonicCounter
from repro.loadbalancer.balancer import LoadBalancer
from repro.suboram.suboram import SubOram
from repro.types import Request, Response
from repro.utils.validation import require


class _ChannelPair:
    """Both directions of an attested LB <-> subORAM link."""

    def __init__(self, key: bytes, name: str):
        self.to_suboram = SecureChannel(key, f"{name}/fwd")
        self.to_suboram_rx = SecureChannel(key, f"{name}/fwd")
        self.to_balancer = SecureChannel(key, f"{name}/rev")
        self.to_balancer_rx = SecureChannel(key, f"{name}/rev")


class DistributedSnoopy:
    """Snoopy with per-component enclaves and encrypted transport."""

    def __init__(self, config: SnoopyConfig, keychain: Optional[KeyChain] = None,
                 rng: Optional[random.Random] = None):
        self.config = config
        self.keychain = keychain if keychain is not None else KeyChain()
        self._rng = rng if rng is not None else random.Random()
        self.counter = MonotonicCounter()

        # Provision the attestation service with the release measurements.
        self.attestation = AttestationService()
        self.balancer_enclaves = [
            Enclave(f"snoopy-lb-{i}") for i in range(config.num_load_balancers)
        ]
        self.suboram_enclaves = [
            Enclave(f"snoopy-suboram-{s}") for s in range(config.num_suborams)
        ]
        for enclave in self.balancer_enclaves + self.suboram_enclaves:
            self.attestation.trust(enclave.measurement)

        sharding_key = self.keychain.sharding_key()
        self.load_balancers = [
            LoadBalancer(i, config.num_suborams, sharding_key,
                         config.security_parameter)
            for i in range(config.num_load_balancers)
        ]
        self.suborams = [
            SubOram(s, config.value_size, self.keychain,
                    config.security_parameter)
            for s in range(config.num_suborams)
        ]

        # Attested channel establishment: each pair verifies the peer's
        # quote before deriving the channel key.
        self._channels: Dict[tuple, _ChannelPair] = {}
        for i, lb_enclave in enumerate(self.balancer_enclaves):
            for s, so_enclave in enumerate(self.suboram_enclaves):
                self._verify_peer(lb_enclave)
                self._verify_peer(so_enclave)
                key = self.keychain.channel_key(lb_enclave.name, so_enclave.name)
                self._channels[(i, s)] = _ChannelPair(key, f"lb{i}-so{s}")
        self._initialized = False

    def _verify_peer(self, enclave: Enclave) -> None:
        quote = self.attestation.quote(enclave, b"\x00" * 32)
        self.attestation.verify(quote)  # raises AttestationError if rogue

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def initialize(self, objects: Dict[int, bytes]) -> None:
        """Obliviously shard objects across the subORAM enclaves."""
        require(all(key >= 0 for key in objects), "object keys must be >= 0")
        partitions = oblivious_shard(
            objects, self.config.num_suborams, self.keychain.sharding_key()
        )
        for suboram, partition in zip(self.suborams, partitions):
            suboram.initialize(partition)
        self._initialized = True

    def submit(self, request: Request, load_balancer: Optional[int] = None) -> tuple:
        """Queue a request with a (randomly) chosen load balancer."""
        if load_balancer is None:
            load_balancer = self._rng.randrange(self.config.num_load_balancers)
        arrival = self.load_balancers[load_balancer].submit(request)
        return load_balancer, arrival

    def run_epoch(self) -> List[Response]:
        """One epoch over the encrypted transport."""
        if not self._initialized:
            raise RuntimeError("DistributedSnoopy.initialize must be called first")
        self.counter.increment()

        responses: List[Response] = []
        for i, balancer in enumerate(self.load_balancers):
            def send_batch(suboram_id: int, batch, balancer_index=i):
                pair = self._channels[(balancer_index, suboram_id)]
                # LB side: serialize + seal.
                nonce, sealed = pair.to_suboram.send(encode_batch(batch))
                # "Network" — the attacker may tamper here (tests do).
                nonce, sealed = self.network_hook(
                    balancer_index, suboram_id, nonce, sealed
                )
                # SubORAM side: open + deserialize + execute.
                wire_batch = decode_batch(pair.to_suboram_rx.receive(nonce, sealed))
                results = self.suborams[suboram_id].batch_access(wire_batch)
                # Response path back.
                r_nonce, r_sealed = pair.to_balancer.send(encode_batch(results))
                return decode_batch(pair.to_balancer_rx.receive(r_nonce, r_sealed))

            responses.extend(balancer.run_epoch(send_batch))
        return responses

    # Overridable by tests to simulate an in-network attacker.
    def network_hook(self, balancer: int, suboram: int, nonce: bytes,
                     sealed: bytes) -> tuple:
        """Test hook: intercept (and possibly tamper with) a sealed message in flight."""
        return nonce, sealed

    # ------------------------------------------------------------------
    # Conveniences matching Snoopy's API
    # ------------------------------------------------------------------
    def read(self, key: int) -> Optional[bytes]:
        """Read one object in its own epoch."""
        from repro.types import OpType

        self.submit(Request(OpType.READ, key))
        [response] = self.run_epoch()
        return response.value

    def write(self, key: int, value: bytes) -> Optional[bytes]:
        """Write one object in its own epoch; returns the prior value."""
        from repro.types import OpType

        self.submit(Request(OpType.WRITE, key, value))
        [response] = self.run_epoch()
        return response.value

    def batch(self, requests) -> List[Response]:
        """Submit requests and run one epoch over the encrypted transport."""
        for request in requests:
            self.submit(request)
        return self.run_epoch()
