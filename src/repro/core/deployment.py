"""A distributed-style Snoopy deployment with real encrypted transport.

Where :class:`~repro.core.snoopy.Snoopy` wires components with direct
Python calls, ``DistributedSnoopy`` reproduces the deployment story of
§3.1:

* each load balancer and subORAM runs in its own
  :class:`~repro.enclave.model.Enclave`;
* components prove themselves to each other via remote attestation
  against a shared :class:`~repro.enclave.attestation.AttestationService`
  whitelist (the Snoopy release measurements);
* every load-balancer <-> subORAM message is serialized
  (:mod:`repro.core.wire`) and sent through an AEAD
  :class:`~repro.crypto.aead.SecureChannel` with replay protection.

Functionally equivalent to the in-process deployment — identical
results for identical requests — but a tampering or replaying network
raises :class:`~repro.errors.IntegrityError` /
:class:`~repro.errors.ReplayError`, which the integration tests inject.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Optional

from repro.core.config import SnoopyConfig
from repro.core.epoch import EpochDriver
from repro.core.faults import FaultInjector, FaultPlan
from repro.core.resilience import EpochRetryController, RetryPolicy
from repro.core.tickets import Ticket, TicketBook
from repro.core.wire import decode_batch, encode_batch
from repro.crypto.aead import SecureChannelPair
from repro.crypto.keys import KeyChain
from repro.enclave.attestation import AttestationService
from repro.errors import NotInitializedError, TransportError
from repro.exec import BackendSpec, ExecutionBackend, make_backend
from repro.loadbalancer.initialization import oblivious_shard
from repro.enclave.model import Enclave
from repro.enclave.sealed import MonotonicCounter
from repro.loadbalancer.balancer import LoadBalancer
from repro.suboram.suboram import SubOram
from repro.telemetry import resolve_telemetry
from repro.types import Request, Response
from repro.utils.validation import require

#: Monotonic id source for per-deployment state-cache namespaces.
_DEPLOYMENT_COUNTER = itertools.count()


class _ChannelPair:
    """Both *endpoints* of an attested LB <-> subORAM link.

    The in-process deployment simulates the wire, so it holds the load
    balancer's :class:`SecureChannelPair` and the subORAM's — the same
    construction :mod:`repro.serve.secure` gives each endpoint of a real
    TCP link after the attested handshake.
    """

    def __init__(self, key: bytes, name: str):
        self.lb = SecureChannelPair(key, name, initiator=True)
        self.so = SecureChannelPair(key, name, initiator=False)


class DistributedSnoopy:
    """Snoopy with per-component enclaves and encrypted transport."""

    def __init__(self, config: SnoopyConfig, keychain: Optional[KeyChain] = None,
                 rng: Optional[random.Random] = None,
                 backend: Optional[BackendSpec] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 telemetry=None):
        """Assemble the attested deployment.

        Args:
            config: public deployment parameters.
            keychain: deployment secrets (generated if omitted).
            rng: randomness for client load-balancer selection.
            backend: execution backend for epoch stages (defaults to
                ``config.execution_backend``).  Must keep shared state
                in-process (``serial`` or ``thread``): the encrypted
                channels hold live replay counters that cannot be shipped
                across a process boundary.
            fault_plan: optional deterministic
                :class:`~repro.core.faults.FaultPlan`; in addition to the
                backend and replica seams this deployment injects
                scheduled ``transport_error`` events into the sealed
                LB <-> subORAM hop.
            telemetry: optional :class:`~repro.telemetry.Telemetry`
                handle; overrides ``config.telemetry`` (same wiring as
                :class:`~repro.core.snoopy.Snoopy`).
        """
        self.config = config
        self.keychain = keychain if keychain is not None else KeyChain()
        self._rng = rng if rng is not None else random.Random()
        self.counter = MonotonicCounter()
        self.telemetry = resolve_telemetry(
            telemetry if telemetry is not None else config.telemetry
        )
        self._owns_backend = not isinstance(backend, ExecutionBackend)
        self.backend = make_backend(
            backend if backend is not None else config.execution_backend,
            config.max_workers,
            task_timeout=config.task_timeout,
        )
        if self.telemetry.enabled:
            self.backend.attach_telemetry(self.telemetry)
        self._state_ns = f"distributed-{next(_DEPLOYMENT_COUNTER)}"
        self._injector = (
            FaultInjector(fault_plan, telemetry=self.telemetry)
            if fault_plan is not None
            else None
        )
        self._retry = EpochRetryController(
            RetryPolicy.from_config(config),
            injector=self._injector,
            telemetry=self.telemetry,
        )

        # Provision the attestation service with the release measurements.
        self.attestation = AttestationService()
        self.balancer_enclaves = [
            Enclave(f"snoopy-lb-{i}") for i in range(config.num_load_balancers)
        ]
        self.suboram_enclaves = [
            Enclave(f"snoopy-suboram-{s}") for s in range(config.num_suborams)
        ]
        for enclave in self.balancer_enclaves + self.suboram_enclaves:
            self.attestation.trust(enclave.measurement)

        sharding_key = self.keychain.sharding_key()
        self.load_balancers = [
            LoadBalancer(i, config.num_suborams, sharding_key,
                         config.security_parameter, kernel=config.kernel)
            for i in range(config.num_load_balancers)
        ]
        if config.replication is not None:
            # Lazy import: repro.extensions pulls in the simulator, which
            # imports the core deployments — circular at module level.
            from repro.extensions.replication import ReplicatedSubOram

            crash_tolerance, rollback_tolerance = config.replication
            self.suborams = [
                ReplicatedSubOram(
                    s, config.value_size,
                    crash_tolerance=crash_tolerance,
                    rollback_tolerance=rollback_tolerance,
                    keychain=self.keychain,
                    security_parameter=config.security_parameter,
                    kernel=config.kernel,
                )
                for s in range(config.num_suborams)
            ]
        else:
            self.suborams = [
                SubOram(s, config.value_size, self.keychain,
                        config.security_parameter, kernel=config.kernel)
                for s in range(config.num_suborams)
            ]
        if self.telemetry.enabled:
            from repro.core.snoopy import attach_telemetry_to_suborams

            attach_telemetry_to_suborams(self.suborams, self.telemetry)

        # Attested channel establishment: each pair verifies the peer's
        # quote before deriving the channel key.
        self._channels: Dict[tuple, _ChannelPair] = {}
        for i, lb_enclave in enumerate(self.balancer_enclaves):
            for s, so_enclave in enumerate(self.suboram_enclaves):
                self._verify_peer(lb_enclave)
                self._verify_peer(so_enclave)
                key = self.keychain.channel_key(lb_enclave.name, so_enclave.name)
                self._channels[(i, s)] = _ChannelPair(key, f"lb{i}-so{s}")
        self._tickets = TicketBook(config.num_load_balancers)
        self._initialized = False

    def _verify_peer(self, enclave: Enclave) -> None:
        quote = self.attestation.quote(enclave, b"\x00" * 32)
        self.attestation.verify(quote)  # raises AttestationError if rogue

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def initialize(self, objects: Dict[int, bytes]) -> None:
        """Obliviously shard objects across the subORAM enclaves."""
        require(all(key >= 0 for key in objects), "object keys must be >= 0")
        partitions = oblivious_shard(
            objects, self.config.num_suborams, self.keychain.sharding_key()
        )
        for suboram, partition in zip(self.suborams, partitions):
            suboram.initialize(partition)
        self._initialized = True

    def submit(
        self, request: Request, load_balancer: Optional[int] = None
    ) -> Ticket:
        """Queue a request with a (randomly) chosen load balancer.

        Returns a :class:`~repro.core.tickets.Ticket` that resolves when
        ``run_epoch`` closes the epoch (same front-door contract as
        :meth:`repro.core.snoopy.Snoopy.submit`).
        """
        if load_balancer is None:
            load_balancer = self._rng.randrange(self.config.num_load_balancers)
        self.telemetry.counter("snoopy_requests_total").inc()
        arrival = self.load_balancers[load_balancer].submit(request)
        return self._tickets.issue(load_balancer, arrival, request)

    def _transport(self, balancer_index: int, suboram_index: int,
                   suboram: SubOram, batch) -> list:
        """Stage-➋ delivery: seal, cross the hostile network, execute, seal back."""
        if (
            self._injector is not None
            and self._injector.transport_fault(suboram_index)
        ):
            # Injected before any channel send so replay counters stay
            # aligned and the retried hop is a clean re-delivery.
            fault = TransportError(
                f"injected transport failure on hop lb{balancer_index}-"
                f"so{suboram_index}"
            )
            fault.unit = suboram_index
            raise fault
        pair = self._channels[(balancer_index, suboram_index)]
        # LB side: serialize + seal.
        nonce, sealed = pair.lb.tx.send(encode_batch(batch))
        # "Network" — the attacker may tamper here (tests do).
        nonce, sealed = self.network_hook(
            balancer_index, suboram_index, nonce, sealed
        )
        # SubORAM side: open + deserialize + execute.
        wire_batch = decode_batch(pair.so.rx.receive(nonce, sealed))
        results = suboram.batch_access(wire_batch)
        # Response path back.
        r_nonce, r_sealed = pair.so.tx.send(encode_batch(results))
        return decode_batch(pair.lb.rx.receive(r_nonce, r_sealed))

    def run_epoch(self) -> List[Response]:
        """One epoch over the encrypted transport.

        Failed attempts are atomic and retried per the config's
        ``epoch_max_attempts`` / backoff policy, exactly as in
        :meth:`repro.core.snoopy.Snoopy.run_epoch`.

        Raises:
            NotInitializedError: ``initialize`` has not been called.
        """
        if not self._initialized:
            raise NotInitializedError(
                "DistributedSnoopy.initialize must be called first"
            )
        self.counter.increment()
        self._retry.begin_epoch(self.counter.value, self.suborams)

        driver = EpochDriver(self.backend, telemetry=self.telemetry)

        def attempt():
            return driver.run(
                self.load_balancers,
                self.suborams,
                transport=self._transport,
                state_ns=self._state_ns,
                injector=self._injector,
                atomic=self._retry.armed,
            )

        with self.telemetry.span("epoch", epoch=self.counter.value), \
                self.telemetry.time("snoopy_epoch_seconds"):
            result = self._retry.run_with_retry(attempt)
            # Armed (atomic) epochs execute on deep copies; install them
            # so the served state is the state we keep.
            self.suborams = result.suborams
            if self.telemetry.enabled:
                from repro.core.snoopy import attach_telemetry_to_suborams

                attach_telemetry_to_suborams(self.suborams, self.telemetry)
            self._retry.end_epoch(self.suborams)
            with self.telemetry.span("stage", stage="respond"), \
                    self.telemetry.time(
                        "snoopy_epoch_stage_seconds", stage="respond"
                    ):
                for balancer_index, responses in enumerate(
                    result.responses_per_balancer
                ):
                    self._tickets.resolve(
                        balancer_index, responses, epoch=self.counter.value
                    )
        self.telemetry.counter("snoopy_epochs_total").inc()
        self.telemetry.counter("snoopy_responses_total").inc(
            len(result.responses)
        )
        return result.responses

    @property
    def fault_stats(self) -> Dict[str, int]:
        """Fault-tolerance counters (public information); see
        :attr:`repro.core.snoopy.Snoopy.fault_stats`."""
        return self._retry.fault_stats

    def close(self) -> None:
        """Release the execution backend's workers (no-op for serial)."""
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "DistributedSnoopy":
        """Context-manager entry: returns self."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: closes the execution backend."""
        self.close()

    # Overridable by tests to simulate an in-network attacker.
    def network_hook(self, balancer: int, suboram: int, nonce: bytes,
                     sealed: bytes) -> tuple:
        """Test hook: intercept (and possibly tamper with) a sealed message in flight."""
        return nonce, sealed

    # ------------------------------------------------------------------
    # Conveniences matching Snoopy's API
    # ------------------------------------------------------------------
    def read(self, key: int) -> Optional[bytes]:
        """Read one object in its own epoch."""
        from repro.types import OpType

        self.submit(Request(OpType.READ, key))
        [response] = self.run_epoch()
        return response.value

    def write(self, key: int, value: bytes) -> Optional[bytes]:
        """Write one object in its own epoch; returns the prior value."""
        from repro.types import OpType

        self.submit(Request(OpType.WRITE, key, value))
        [response] = self.run_epoch()
        return response.value

    def batch(self, requests) -> List[Response]:
        """Submit requests and run one epoch over the encrypted transport."""
        for request in requests:
            self.submit(request)
        return self.run_epoch()
