"""Tickets: the asynchronous front-door completion API.

``submit`` hands a request to a load balancer *now*; the response only
exists once that balancer's epoch closes.  A :class:`Ticket` is the
receipt for that gap — it names where the request went
(``.load_balancer``, ``.arrival``, the coordinates Appendix C's
linearizability histories are built from) and, once the epoch has run,
carries the response (``.result()``), TaoStore-style, instead of making
clients keep tuple-index bookkeeping::

    ticket = store.submit(Request(OpType.READ, 42))
    store.run_epoch()
    response = ticket.result()          # the Response for *this* request

Calling ``result()`` before the epoch closed raises
:class:`~repro.errors.TicketPendingError`; ``ticket.done`` tells you
which side of the epoch boundary you are on.  (The legacy
``(load_balancer, arrival)`` tuple-unpack shim from the first release
has completed its deprecation cycle and is gone; tickets are plain
objects now.)

**Asynchronous completion.**  Under the pipelined scheduler — and the
TCP service built on it (:mod:`repro.serve`) — tickets resolve on the
pipeline's match thread, not the submitting thread, so polling ``done``
is the wrong shape for a server.  :meth:`Ticket.add_done_callback`
registers a callable invoked exactly once with the ticket as soon as it
resolves (immediately, if it already has); the asyncio service bridges
each callback onto its event loop with ``call_soon_threadsafe``.
Callbacks run on the resolving thread and must not block — hand off, do
not work.

:class:`TicketBook` is the deployment-side ledger: it issues tickets at
``submit`` time and resolves each balancer's tickets, in arrival order,
against that balancer's matched responses when the epoch driver closes
the epoch.

Under the pipelined scheduler (:mod:`repro.core.pipeline`) tickets for
epoch ``e+1`` are issued *while* epoch ``e`` is still in flight, so the
book additionally supports :meth:`TicketBook.cut` — snapshot-and-clear
the pending tickets at epoch close, so each in-flight epoch carries
exactly its own tickets — with :meth:`TicketBook.restore` putting a
failed epoch's cut back at the front and
:meth:`TicketBook.resolve_cut` resolving a cut against that epoch's
matched responses.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, Sequence

from repro.errors import TicketPendingError
from repro.types import Request, Response

#: Guards the resolve/add_done_callback race.  One shared lock (instead
#: of a lock per ticket) keeps tickets at five slots — a service holds
#: hundreds of thousands of them open — and the critical sections are a
#: few pointer operations, so contention is negligible.
_COMPLETION_LOCK = threading.Lock()


class Ticket:
    """A pending-request receipt with future-style completion.

    Attributes:
        load_balancer: index of the balancer the request was queued on.
        arrival: arrival index within that balancer's current epoch.
        request: the submitted request (kept for debugging/history).
    """

    __slots__ = (
        "load_balancer", "arrival", "request", "_response", "_epoch",
        "_callbacks",
    )

    def __init__(
        self,
        load_balancer: int,
        arrival: int,
        request: Optional[Request] = None,
    ):
        self.load_balancer = load_balancer
        self.arrival = arrival
        self.request = request
        self._response: Optional[Response] = None
        self._epoch: Optional[int] = None
        self._callbacks: Optional[List[Callable[["Ticket"], None]]] = None

    @property
    def done(self) -> bool:
        """True once the ticket's epoch has closed and a response exists."""
        return self._response is not None

    @property
    def epoch(self) -> Optional[int]:
        """The trusted-counter value at which the ticket resolved (or None)."""
        return self._epoch

    def result(self) -> Response:
        """The response for this request, once its epoch has closed.

        Raises:
            TicketPendingError: the epoch has not run yet.
        """
        if self._response is None:
            raise TicketPendingError(
                f"ticket (lb={self.load_balancer}, arrival={self.arrival}) "
                "is still pending; run_epoch() has not closed its epoch"
            )
        return self._response

    def add_done_callback(self, callback: Callable[["Ticket"], None]) -> None:
        """Invoke ``callback(ticket)`` exactly once when the ticket resolves.

        The asynchronous completion seam: the epoch pipeline resolves
        tickets on its match thread, so a server cannot poll ``done`` —
        it registers a callback and bridges onto its own event loop.
        If the ticket already resolved, the callback runs immediately on
        the calling thread; otherwise it runs on the resolving thread.
        Callbacks must not block and must not raise (an exception would
        propagate into the resolving epoch's match stage).
        """
        with _COMPLETION_LOCK:
            if self._response is None:
                if self._callbacks is None:
                    self._callbacks = []
                self._callbacks.append(callback)
                return
        callback(self)

    def _resolve(self, response: Response, epoch: int) -> None:
        with _COMPLETION_LOCK:
            self._response = response
            self._epoch = epoch
            callbacks, self._callbacks = self._callbacks, None
        for callback in callbacks or ():
            callback(self)

    def __repr__(self) -> str:
        state = f"done@{self._epoch}" if self.done else "pending"
        return (
            f"Ticket(lb={self.load_balancer}, arrival={self.arrival}, "
            f"{state})"
        )


class TicketBook:
    """Per-deployment ledger of the current epoch's unresolved tickets."""

    def __init__(self, num_load_balancers: int):
        self._pending: List[List[Ticket]] = [
            [] for _ in range(num_load_balancers)
        ]

    def issue(
        self,
        load_balancer: int,
        arrival: int,
        request: Optional[Request] = None,
    ) -> Ticket:
        """Create and track a ticket for a freshly queued request."""
        ticket = Ticket(load_balancer, arrival, request)
        self._pending[load_balancer].append(ticket)
        return ticket

    def pending(self, load_balancer: int) -> int:
        """Unresolved tickets currently queued on one balancer."""
        return len(self._pending[load_balancer])

    def resolve(
        self,
        load_balancer: int,
        responses: Sequence[Response],
        epoch: int,
    ) -> None:
        """Resolve one balancer's tickets against its epoch responses.

        Responses arrive in arrival order (the contract of
        ``match_responses``), which is exactly the order tickets were
        issued in, so the two sequences zip positionally.
        """
        tickets = self._pending[load_balancer]
        self._pending[load_balancer] = []
        if len(tickets) != len(responses):
            raise AssertionError(
                f"balancer {load_balancer}: {len(tickets)} tickets but "
                f"{len(responses)} responses"
            )
        for ticket, response in zip(tickets, responses):
            ticket._resolve(response, epoch)

    def cut(self) -> List[List[Ticket]]:
        """Snapshot-and-clear every balancer's pending tickets.

        Called at epoch close (while holding the pipeline's intake lock)
        so the in-flight epoch carries exactly the tickets of the
        requests it drained; tickets issued afterwards accumulate for
        the *next* epoch.  Returns one list per balancer, in arrival
        order — positionally aligned with the drained request lists.
        """
        snapshot = self._pending
        self._pending = [[] for _ in snapshot]
        return snapshot

    def restore(self, cut: Sequence[List[Ticket]]) -> None:
        """Prepend a previously :meth:`cut` snapshot (epoch rollback).

        When a pipelined epoch fails fatally its requests are requeued
        at the front of their balancers; restoring the matching ticket
        cut keeps the book positionally aligned with those queues so a
        later sequential ``run_epoch`` resolves the same tickets.
        """
        for index, tickets in enumerate(cut):
            self._pending[index] = list(tickets) + self._pending[index]

    @staticmethod
    def resolve_cut(
        cut: Sequence[List[Ticket]],
        responses_per_balancer: Sequence[Sequence[Response]],
        epoch: int,
    ) -> int:
        """Resolve one epoch's ticket cut against its matched responses.

        Both sequences are indexed by balancer and ordered by arrival,
        so they zip positionally exactly like :meth:`resolve`.  Returns
        the number of tickets resolved.
        """
        resolved = 0
        for balancer, (tickets, responses) in enumerate(
            zip(cut, responses_per_balancer)
        ):
            if len(tickets) != len(responses):
                raise AssertionError(
                    f"balancer {balancer}: {len(tickets)} tickets but "
                    f"{len(responses)} responses in epoch {epoch}"
                )
            for ticket, response in zip(tickets, responses):
                ticket._resolve(response, epoch)
                resolved += 1
        return resolved
