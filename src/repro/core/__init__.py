"""Snoopy core: the assembled oblivious object store (§3, Figure 21).

:class:`repro.core.snoopy.Snoopy` wires ``L`` load balancers to ``S``
subORAMs, drives epochs, and exposes the client-facing batch-access API.
The package also hosts the linearizability checker backing the §C proof
and the §D access-control extension.
"""

from repro.core.config import SnoopyConfig
from repro.core.snoopy import Snoopy
from repro.core.client import Client
from repro.core.linearizability import History, Operation, check_linearizable

__all__ = [
    "Client",
    "History",
    "Operation",
    "Snoopy",
    "SnoopyConfig",
    "check_linearizable",
]
