"""Deterministic chaos layer: seeded fault plans and their injector.

Fault tolerance code is only trustworthy if its failure paths are
exercised, and failure paths are only debuggable if the failures are
reproducible.  A :class:`FaultPlan` is a *seeded, deterministic* schedule
of infrastructure faults — worker crashes, task timeouts, replica
crashes and rollbacks, transport errors — each pinned to an (epoch,
unit) coordinate.  The same seed always produces the same plan, so a
chaos run that fails in CI replays identically on a laptop
(``python -m repro demo --faults SEED``).

The plan is injected through the two seams the system already has:

* the **backend seam** — :class:`~repro.core.epoch.EpochDriver` consults
  the injector when building stage-➋ tasks and arms the scheduled unit
  to raise :class:`~repro.errors.WorkerCrashError` /
  :class:`~repro.errors.TaskTimeoutError`;
* the **transport seam** — :class:`~repro.core.deployment.DistributedSnoopy`
  consults it inside the sealed-channel round trip and raises
  :class:`~repro.errors.TransportError` for the scheduled hop, while both
  deployments apply replica crash/rollback events at epoch boundaries.

The serve layer's real TCP sockets get their own message-indexed chaos
vocabulary — :class:`NetworkFaultPlan` / :class:`NetworkFaultInjector`
(connection drops, frame delays, partitions, truncated and duplicated
frames, slow-loris handshakes) — injected inside
:class:`repro.serve.secure.FrameTransport`, the seam every serve-layer
connection already crosses.

Security note (mirrors the paper's §2.1 public-information model): a
fault plan describes *public* events — which machine failed and when is
exactly what a cloud attacker already observes and controls.  Injection
never consults request contents or keys, failure handling is a function
of the fault kind alone, and the access-pattern traces of the epochs
that do complete are byte-identical to a fault-free run
(``tests/test_chaos.py`` asserts this).

:class:`FaultInjector` is the runtime cursor over a plan: it tracks the
deployment's current epoch, hands out each event exactly once (retried
epoch attempts do not re-fire a consumed event), and counts every fired
event in :attr:`FaultInjector.stats` — the substrate of the deployment's
``fault_stats`` surface.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.utils.validation import require

#: Fault kinds a plan may schedule, and the ``stats`` counter each feeds.
FAULT_KINDS: Dict[str, str] = {
    "worker_crash": "worker_crashes",
    "task_timeout": "tasks_timed_out",
    "replica_crash": "replica_crashes",
    "replica_rollback": "replica_rollbacks",
    "transport_error": "transport_errors",
}


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One scheduled fault: *kind* at epoch *epoch*, unit *unit*.

    Attributes:
        epoch: 1-based deployment epoch the fault fires in (the N-th
            ``run_epoch`` call; retries of a failed epoch share its
            number).
        kind: one of :data:`FAULT_KINDS`.
        unit: the stage unit hit — subORAM index for worker/timeout/
            transport/replica faults.
        replica: replica index within the unit's group, for
            ``replica_crash`` / ``replica_rollback``.
    """

    epoch: int
    kind: str
    unit: int = 0
    replica: int = 0

    def __post_init__(self) -> None:
        require(self.kind in FAULT_KINDS,
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {sorted(FAULT_KINDS)}")
        require(self.epoch >= 1, "fault epoch must be >= 1 (1-based)")
        require(self.unit >= 0, "fault unit must be >= 0")
        require(self.replica >= 0, "fault replica must be >= 0")


class FaultPlan:
    """An immutable, ordered schedule of :class:`FaultEvent`.

    Build one explicitly for targeted tests, or derive one from a seed
    with :meth:`generate` for soak runs::

        plan = FaultPlan([
            FaultEvent(epoch=2, kind="worker_crash", unit=1),
            FaultEvent(epoch=4, kind="task_timeout", unit=0),
        ])
        store = Snoopy(config, fault_plan=plan)
    """

    def __init__(self, events: Iterable[FaultEvent] = ()):
        self.events: Tuple[FaultEvent, ...] = tuple(sorted(events))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def for_epoch(self, epoch: int) -> List[FaultEvent]:
        """All events scheduled for one epoch, in deterministic order."""
        return [event for event in self.events if event.epoch == epoch]

    def counts(self) -> Dict[str, int]:
        """Scheduled events per kind (what ``fault_stats`` should reach)."""
        counts = {kind: 0 for kind in FAULT_KINDS}
        for event in self.events:
            counts[event.kind] += 1
        return counts

    @classmethod
    def generate(
        cls,
        seed: int,
        epochs: int,
        num_suborams: int,
        num_replicas: int = 0,
        with_transport: bool = False,
        intensity: int = 1,
    ) -> "FaultPlan":
        """Derive a deterministic plan from a seed (the chaos-soak entry).

        Schedules ``intensity`` events of each applicable kind at
        pseudo-random (epoch, unit) coordinates drawn from
        ``random.Random(seed)``.  Replica faults are only generated when
        ``num_replicas >= 2`` (a rollback needs a fresh peer to detect it
        against), transport faults only when ``with_transport`` is set
        (the in-process deployment has no network hop to fail).

        Events never collide on the same (epoch, unit, kind) coordinate,
        so ``fault_stats`` after the run equals :meth:`counts` exactly.
        """
        require(epochs >= 1, "epochs must be >= 1")
        require(num_suborams >= 1, "num_suborams must be >= 1")
        require(intensity >= 0, "intensity must be >= 0")
        rng = random.Random(seed)
        kinds = ["worker_crash", "task_timeout"]
        if with_transport:
            kinds.append("transport_error")
        if num_replicas >= 2:
            kinds.extend(["replica_crash", "replica_rollback"])
        events: List[FaultEvent] = []
        used = set()
        for kind in kinds:
            for _ in range(intensity):
                for _attempt in range(64):
                    # Rollbacks need a follow-up epoch in which the stale
                    # reply is detected, so keep them off the last epoch.
                    last = epochs - 1 if kind == "replica_rollback" else epochs
                    if last < 1:
                        break
                    epoch = rng.randrange(1, last + 1)
                    unit = rng.randrange(num_suborams)
                    if (epoch, unit, kind) not in used:
                        used.add((epoch, unit, kind))
                        replica = (
                            rng.randrange(num_replicas)
                            if kind.startswith("replica")
                            else 0
                        )
                        events.append(
                            FaultEvent(epoch=epoch, kind=kind, unit=unit,
                                       replica=replica)
                        )
                        break
        return cls(events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan({list(self.events)!r})"


class FaultInjector:
    """Runtime cursor over a :class:`FaultPlan` plus fired-event counters.

    The deployment calls :meth:`begin_epoch` once per user-visible epoch
    (retry attempts share the epoch number); the driver and transport
    seams then :meth:`take` events, each of which fires **at most once**
    — a retried epoch does not replay the fault that failed it, which is
    what makes a finite fault plan terminate.

    Attributes:
        stats: fired-event counters, keyed by the :data:`FAULT_KINDS`
            counter names (``worker_crashes``, ``tasks_timed_out``, ...).
    """

    def __init__(self, plan: Optional[FaultPlan] = None, telemetry=None):
        # Local import: repro.telemetry is dependency-free, but keeping
        # the import here mirrors how deployments attach the handle late.
        from repro.telemetry import resolve_telemetry

        self.plan = plan if plan is not None else FaultPlan()
        self._pending: List[FaultEvent] = list(self.plan.events)
        self._epoch = 0
        self.telemetry = resolve_telemetry(telemetry)
        self.stats: Dict[str, int] = {
            counter: 0 for counter in FAULT_KINDS.values()
        }

    @property
    def epoch(self) -> int:
        """The current (1-based) deployment epoch."""
        return self._epoch

    @property
    def pending(self) -> List[FaultEvent]:
        """Events that have not fired yet (inspection/testing)."""
        return list(self._pending)

    @property
    def exhausted(self) -> bool:
        """True once every scheduled event has fired.

        An exhausted injector can never fail another epoch, so the
        deployment drops back to the zero-copy fail-fast hot path (see
        :attr:`~repro.core.resilience.EpochRetryController.armed`).
        """
        return not self._pending

    def begin_epoch(self, epoch: int) -> None:
        """Advance the injector to a new deployment epoch."""
        self._epoch = epoch

    def take(self, kind: str, unit: Optional[int] = None) -> Optional[FaultEvent]:
        """Fire (and consume) the next matching event for this epoch.

        Returns the event, or ``None`` when nothing matching is
        scheduled.  Matching is by kind, the current epoch, and — when
        given — the unit index.
        """
        for index, event in enumerate(self._pending):
            if event.kind != kind or event.epoch != self._epoch:
                continue
            if unit is not None and event.unit != unit:
                continue
            del self._pending[index]
            self.stats[FAULT_KINDS[kind]] += 1
            self.telemetry.counter("fault_injected_total", kind=kind).inc()
            return event
        return None

    def stage_fault(self, unit: int) -> Optional[str]:
        """Backend-seam probe: fault kind armed for stage-➋ unit ``unit``.

        Consumed on return; the epoch driver embeds the kind into the
        unit's task so the fault fires inside the executing worker.
        """
        for kind in ("worker_crash", "task_timeout"):
            if self.take(kind, unit=unit) is not None:
                return kind
        return None

    def transport_fault(self, unit: int) -> bool:
        """Transport-seam probe: should this hop fail with TransportError?"""
        return self.take("transport_error", unit=unit) is not None

    def replica_faults(self, kind: str) -> List[FaultEvent]:
        """Fire every ``replica_crash``/``replica_rollback`` event due now."""
        require(kind in ("replica_crash", "replica_rollback"),
                "replica_faults takes a replica fault kind")
        fired = []
        while True:
            event = self.take(kind)
            if event is None:
                return fired
            fired.append(event)


# ---------------------------------------------------------------------------
# Network chaos (the serve-layer transport seam)
# ---------------------------------------------------------------------------
#: Network fault kinds a plan may schedule, and their ``stats`` counters.
NET_FAULT_KINDS: Dict[str, str] = {
    "conn_drop": "net_conn_drops",
    "frame_delay": "net_frame_delays",
    "partition": "net_partitions",
    "frame_truncate": "net_frames_truncated",
    "frame_duplicate": "net_frames_duplicated",
    "slow_handshake": "net_slow_handshakes",
}

#: Kinds that fire at a connect attempt (the rest fire at a frame send).
_NET_CONNECT_KINDS = frozenset(("slow_handshake",))


@dataclass(frozen=True, order=True)
class NetFaultEvent:
    """One scheduled network fault on one link.

    Unlike :class:`FaultEvent` (epoch-indexed, because backend faults
    fire inside epoch execution), network faults are *message-indexed*:
    the coordinate is (link, N-th operation on that link), which is
    deterministic regardless of how requests interleave with epochs.

    Attributes:
        link: the transport link name (``"client"``, ``"worker-2"`` ...).
        message: 1-based operation index on the link.  For
            ``slow_handshake`` this counts connect attempts; for every
            other kind it counts frame sends.
        kind: one of :data:`NET_FAULT_KINDS`.
        delay_s: sleep applied for ``frame_delay`` / per-fragment dribble
            for ``slow_handshake``.
        span: for ``partition`` — how many *further* operations (sends
            or connects) on the link are refused after the triggering
            one.
    """

    link: str
    message: int
    kind: str
    delay_s: float = 0.0
    span: int = 1

    def __post_init__(self) -> None:
        require(self.kind in NET_FAULT_KINDS,
                f"unknown network fault kind {self.kind!r}; "
                f"expected one of {sorted(NET_FAULT_KINDS)}")
        require(self.message >= 1, "fault message index must be >= 1 (1-based)")
        require(self.delay_s >= 0.0, "fault delay must be >= 0")
        require(self.span >= 0, "partition span must be >= 0")


class NetworkFaultPlan:
    """An immutable, seeded schedule of :class:`NetFaultEvent`.

    The same no-collision guarantee as :class:`FaultPlan` holds: at most
    one event per (link, message, op-class) coordinate, so — provided
    every link sees at least as many operations as its largest scheduled
    ``message`` index — a run's injector ``stats`` equal
    :meth:`counts` exactly.
    """

    def __init__(self, events: Iterable[NetFaultEvent] = ()):
        self.events: Tuple[NetFaultEvent, ...] = tuple(sorted(events))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def for_link(self, link: str) -> List[NetFaultEvent]:
        """All events scheduled for one link, in message order."""
        return [event for event in self.events if event.link == link]

    def counts(self) -> Dict[str, int]:
        """Scheduled events per kind (what injector ``stats`` must reach)."""
        counts = {kind: 0 for kind in NET_FAULT_KINDS}
        for event in self.events:
            counts[event.kind] += 1
        return counts

    @classmethod
    def generate(
        cls,
        seed: int,
        links: Iterable[str],
        messages: int,
        intensity: int = 1,
        kinds: Optional[Iterable[str]] = None,
        max_delay_s: float = 0.02,
        partition_span: int = 2,
    ) -> "NetworkFaultPlan":
        """Derive a deterministic network fault plan from a seed.

        Schedules ``intensity`` events of each kind in ``kinds`` (default:
        every send-indexed kind) at pseudo-random (link, message)
        coordinates with ``message <= messages``.  ``slow_handshake``
        events always target connect attempt 1 (the only connect attempt
        guaranteed to happen on a link), at most one per link.

        Callers must pick ``messages`` at or below the number of frame
        sends the quietest link will actually perform — drops and
        partitions only ever *add* retransmissions, never remove sends,
        so the fault-free send count is a safe bound.  Under that
        contract every scheduled event fires and ``stats`` equals
        :meth:`counts` exactly.
        """
        links = list(links)
        require(bool(links), "links must be non-empty")
        require(messages >= 1, "messages must be >= 1")
        require(intensity >= 0, "intensity must be >= 0")
        if kinds is None:
            kinds = [k for k in NET_FAULT_KINDS if k not in _NET_CONNECT_KINDS]
        kinds = list(kinds)
        rng = random.Random(seed)
        events: List[NetFaultEvent] = []
        used = set()
        slow_links = set()
        for kind in kinds:
            for _ in range(intensity):
                if kind in _NET_CONNECT_KINDS:
                    free = [l for l in links if l not in slow_links]
                    if not free:
                        break
                    link = free[rng.randrange(len(free))]
                    slow_links.add(link)
                    events.append(NetFaultEvent(
                        link=link, message=1, kind=kind,
                        delay_s=rng.uniform(0.001, max_delay_s),
                    ))
                    continue
                for _attempt in range(64):
                    link = links[rng.randrange(len(links))]
                    message = rng.randrange(1, messages + 1)
                    if (link, message) in used:
                        continue
                    used.add((link, message))
                    events.append(NetFaultEvent(
                        link=link, message=message, kind=kind,
                        delay_s=(rng.uniform(0.001, max_delay_s)
                                 if kind == "frame_delay" else 0.0),
                        span=(partition_span if kind == "partition" else 1),
                    ))
                    break
        return cls(events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NetworkFaultPlan({list(self.events)!r})"


class NetworkFaultInjector:
    """Runtime cursor over a :class:`NetworkFaultPlan`.

    Shared by every transport of one deployment run; each transport
    reports its link name.  Thread-safe: a single lock guards the
    pending-event list and per-link counters, because distinct links
    are driven from distinct threads (the client's sender vs the
    server-side worker channels) during a chaos soak.

    The injector *sleeps* for ``frame_delay`` itself, *raises*
    :class:`~repro.errors.TransportError` for partition refusals, and
    hands every other event back to the calling transport, which owns
    the socket and applies the drop/truncate/duplicate/dribble.

    Attributes:
        stats: fired-event counters, keyed by the
            :data:`NET_FAULT_KINDS` counter names.
    """

    def __init__(self, plan: Optional[NetworkFaultPlan] = None,
                 telemetry=None, sleep=time.sleep, armed: bool = True):
        from repro.telemetry import resolve_telemetry

        #: While False, ``on_send``/``on_connect`` neither count
        #: operations nor fire events — setup traffic (worker INIT,
        #: snapshot seeding) passes untouched, and the plan's
        #: message indices align to steady-state serving from the
        #: moment the harness flips this to True.
        self.armed = armed
        self.plan = plan if plan is not None else NetworkFaultPlan()
        self._pending: List[NetFaultEvent] = list(self.plan.events)
        self._sends: Dict[str, int] = {}
        self._connects: Dict[str, int] = {}
        self._partition_left: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._sleep = sleep
        self.telemetry = resolve_telemetry(telemetry)
        self.stats: Dict[str, int] = {
            counter: 0 for counter in NET_FAULT_KINDS.values()
        }

    @property
    def pending(self) -> List[NetFaultEvent]:
        """Events that have not fired yet (inspection/testing)."""
        return list(self._pending)

    @property
    def exhausted(self) -> bool:
        """True once every scheduled event has fired."""
        return not self._pending and not any(self._partition_left.values())

    def _count(self, event: NetFaultEvent) -> None:
        self.stats[NET_FAULT_KINDS[event.kind]] += 1
        self.telemetry.counter(
            "net_fault_injected_total", kind=event.kind
        ).inc()

    def _take(self, link: str, message: int, connect: bool) -> Optional[NetFaultEvent]:
        wanted = _NET_CONNECT_KINDS if connect else None
        for index, event in enumerate(self._pending):
            if event.link != link or event.message != message:
                continue
            is_connect_kind = event.kind in _NET_CONNECT_KINDS
            if is_connect_kind != connect:
                continue
            del self._pending[index]
            return event
        return None

    def _check_partition(self, link: str) -> None:
        from repro.errors import TransportError

        left = self._partition_left.get(link, 0)
        if left > 0:
            self._partition_left[link] = left - 1
            raise TransportError(
                f"injected fault: link {link!r} is partitioned"
            )

    def on_connect(self, link: str) -> Optional[NetFaultEvent]:
        """Consult the plan before a connect attempt on ``link``.

        Raises :class:`~repro.errors.TransportError` while a partition
        is in force.  Returns a ``slow_handshake`` event (the caller
        dribbles its hello with ``delay_s`` pauses) or ``None``.
        """
        if not self.armed:
            return None
        with self._lock:
            self._check_partition(link)
            self._connects[link] = self._connects.get(link, 0) + 1
            event = self._take(link, self._connects[link], connect=True)
            if event is not None:
                self._count(event)
            return event

    def on_send(self, link: str) -> Optional[NetFaultEvent]:
        """Consult the plan before sending one frame on ``link``.

        Applies ``frame_delay`` (sleeps) and ``partition`` (marks the
        link down and raises :class:`~repro.errors.TransportError`)
        internally; returns ``conn_drop`` / ``frame_truncate`` /
        ``frame_duplicate`` events for the transport to apply, or
        ``None`` for a clean send.
        """
        from repro.errors import TransportError

        if not self.armed:
            return None
        with self._lock:
            self._check_partition(link)
            self._sends[link] = self._sends.get(link, 0) + 1
            event = self._take(link, self._sends[link], connect=False)
            if event is None:
                return None
            self._count(event)
            if event.kind == "partition":
                self._partition_left[link] = event.span
                raise TransportError(
                    f"injected fault: link {link!r} partitioned for "
                    f"{event.span} further operations"
                )
        if event.kind == "frame_delay":
            if event.delay_s:
                self._sleep(event.delay_s)
            return None
        return event
