"""Client-side API: the ``SnoopyClient`` protocol and history recording.

:class:`SnoopyClient` is the one client-facing contract every transport
implements — the in-process :class:`~repro.core.snoopy.Snoopy` facade,
the sealed-channel :class:`~repro.core.deployment.DistributedSnoopy`,
and the TCP :class:`~repro.serve.netclient.NetworkSnoopyClient` all
satisfy it, so applications, examples, and the simulator swap transports
without code changes::

    def audit(store: SnoopyClient) -> None:
        with store:
            store.write(1, b"\\x01" * 4)
            assert store.read(1) == b"\\x01" * 4

The protocol is ``runtime_checkable``; ``isinstance(obj, SnoopyClient)``
verifies structural conformance (method presence, not signatures).

``Client`` issues reads/writes against a deployment, assigns sequence
numbers, and records an operation history (invocation/response epochs)
suitable for the linearizability checker.
"""

from __future__ import annotations

from typing import (
    Dict, List, Optional, Protocol, Sequence, runtime_checkable,
)

from repro.core.linearizability import Operation
from repro.core.snoopy import Snoopy
from repro.core.tickets import Ticket
from repro.types import OpType, Request, Response


@runtime_checkable
class SnoopyClient(Protocol):
    """The transport-agnostic Snoopy client contract.

    One surface, three transports: in-process (:class:`Snoopy`), sealed
    in-process channels (:class:`~repro.core.deployment.DistributedSnoopy`),
    and TCP (:class:`~repro.serve.netclient.NetworkSnoopyClient`).  The
    asynchronous front door is :meth:`submit` → :class:`Ticket`; the
    synchronous conveniences (:meth:`read` / :meth:`write` /
    :meth:`batch`) block until the request's epoch has closed.  Every
    client is a context manager whose exit releases its transport.
    """

    def submit(
        self, request: Request, load_balancer: Optional[int] = None
    ) -> Ticket:
        """Queue a request now; the ticket resolves at its epoch close."""
        ...

    def read(self, key: int) -> Optional[bytes]:
        """Read one object, blocking until its epoch closes."""
        ...

    def write(self, key: int, value: bytes) -> Optional[bytes]:
        """Write one object, returning the prior value."""
        ...

    def batch(self, requests: Sequence[Request]) -> List[Response]:
        """Submit a set of requests and collect their epoch's responses."""
        ...

    def close(self) -> None:
        """Release the client's transport and any owned resources."""
        ...

    def __enter__(self) -> "SnoopyClient":
        ...

    def __exit__(self, exc_type, exc, tb) -> None:
        ...


class Client:
    """A Snoopy client with sequence numbers and history recording."""

    _next_client_id = 0

    def __init__(self, store: Snoopy, client_id: Optional[int] = None):
        if client_id is None:
            client_id = Client._next_client_id
            Client._next_client_id += 1
        self.client_id = client_id
        self.store = store
        self._seq = 0
        self.history: List[Operation] = []
        self._pending: Dict[int, Operation] = {}

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # ------------------------------------------------------------------
    # Asynchronous interface: submit now, complete at epoch end.
    # ------------------------------------------------------------------
    def submit_read(self, key: int, load_balancer: Optional[int] = None) -> int:
        """Queue a read; returns its sequence number."""
        seq = self._next_seq()
        ticket = self.store.submit(
            Request(OpType.READ, key, client_id=self.client_id, seq=seq),
            load_balancer,
        )
        self._pending[seq] = Operation(
            client_id=self.client_id,
            seq=seq,
            op=OpType.READ,
            key=key,
            start_epoch=self.store.counter.value,
            load_balancer=ticket.load_balancer,
            arrival=ticket.arrival,
        )
        return seq

    def submit_write(
        self, key: int, value: bytes, load_balancer: Optional[int] = None
    ) -> int:
        """Queue a write; returns its sequence number."""
        seq = self._next_seq()
        ticket = self.store.submit(
            Request(OpType.WRITE, key, value, client_id=self.client_id, seq=seq),
            load_balancer,
        )
        self._pending[seq] = Operation(
            client_id=self.client_id,
            seq=seq,
            op=OpType.WRITE,
            key=key,
            written=value,
            start_epoch=self.store.counter.value,
            load_balancer=ticket.load_balancer,
            arrival=ticket.arrival,
        )
        return seq

    def complete(self, responses: List[Response]) -> None:
        """Record responses addressed to this client into the history."""
        for response in responses:
            if response.client_id != self.client_id:
                continue
            operation = self._pending.pop(response.seq, None)
            if operation is None:
                continue
            operation.result = response.value
            operation.end_epoch = self.store.counter.value
            self.history.append(operation)

    def complete_ticket(self, ticket) -> None:
        """Record one resolved ticket's response into the history.

        The pipelined completion path: under the epoch pipeline the
        trusted counter advances past an epoch before its responses are
        matched, so :meth:`complete`'s "current counter value" would
        overstate ``end_epoch``.  The ticket instead carries the exact
        epoch it resolved in (:attr:`~repro.core.tickets.Ticket.epoch`),
        keeping the recorded window tight for linearizability checking.
        Tickets addressed to other clients are ignored.
        """
        request = ticket.request
        if request is None or request.client_id != self.client_id:
            return
        operation = self._pending.pop(request.seq, None)
        if operation is None:
            return
        operation.result = ticket.result().value
        operation.end_epoch = ticket.epoch
        self.history.append(operation)

    # ------------------------------------------------------------------
    # Synchronous conveniences (run an epoch per call).
    # ------------------------------------------------------------------
    def read(self, key: int) -> Optional[bytes]:
        """Read one object in its own epoch, recording the operation."""
        self.submit_read(key)
        responses = self.store.run_epoch()
        self.complete(responses)
        return self.history[-1].result

    def write(self, key: int, value: bytes) -> Optional[bytes]:
        """Write one object in its own epoch, recording the operation."""
        self.submit_write(key, value)
        responses = self.store.run_epoch()
        self.complete(responses)
        return self.history[-1].result
