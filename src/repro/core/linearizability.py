"""Linearizability checking (Appendix C).

Two checkers are provided:

* :func:`check_snoopy_history` — verifies the paper's *specific*
  linearization order: operations totally ordered by
  ``(batch commit epoch, load balancer id, reads-before-writes, arrival
  index)``, replayed against hashmap semantics where every operation in a
  batch observes the batch-start state (reads first; writes return the
  prior value; last write per key wins).  This is exactly the order
  Theorem 4's proof constructs.

* :func:`check_linearizable` — a general Wing&Gong-style search usable on
  small histories: is there *any* total order consistent with the
  real-time partial order (epoch intervals) under which every result is
  legal?  Used by tests as an independent oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.types import OpType


@dataclass
class Operation:
    """One completed client operation with epoch-interval timing."""

    client_id: int
    seq: int
    op: OpType
    key: int
    written: Optional[bytes] = None  # payload for writes
    result: Optional[bytes] = None  # returned value (prior value for writes)
    start_epoch: int = 0  # counter value at invocation
    end_epoch: int = 0  # counter value at response
    load_balancer: int = 0
    arrival: int = 0  # arrival index at the load balancer


@dataclass
class History:
    """A set of completed operations plus the store's initial contents."""

    initial: Dict[int, bytes]
    operations: List[Operation] = field(default_factory=list)


class LinearizabilityViolation(AssertionError):
    """Raised (by the strict checker) when the history is not linearizable."""


# ---------------------------------------------------------------------------
# The paper's linearization order (Theorem 4)
# ---------------------------------------------------------------------------
def snoopy_linearization_order(operations: Sequence[Operation]) -> List[Operation]:
    """Sort operations by (commit epoch, balancer, reads-first, arrival)."""
    return sorted(
        operations,
        key=lambda o: (
            o.end_epoch,
            o.load_balancer,
            int(o.op is OpType.WRITE),
            o.arrival,
        ),
    )


def check_snoopy_history(history: History) -> None:
    """Verify ``history`` under the paper's linearization order.

    Raises:
        LinearizabilityViolation: some read did not observe the latest
            preceding write, or some write's returned prior value was
            wrong, or real-time order was violated.
    """
    ordered = snoopy_linearization_order(history.operations)

    # Real-time check (C1): if o1 completed before o2 started, o1 must
    # precede o2 in the order.  Position indices make this O(n^2) worst
    # case, which is fine at test scale.
    position = {id(o): i for i, o in enumerate(ordered)}
    for o1 in ordered:
        for o2 in ordered:
            if o1.end_epoch < o2.start_epoch and position[id(o1)] > position[id(o2)]:
                raise LinearizabilityViolation(
                    f"real-time order violated: {o1} completed before {o2} "
                    "started but is linearized after it"
                )

    # Semantic check (C2): replay group by group; every operation in a
    # (epoch, balancer) group observes the group-start state.
    state = dict(history.initial)
    index = 0
    while index < len(ordered):
        group_key = (ordered[index].end_epoch, ordered[index].load_balancer)
        group: List[Operation] = []
        while index < len(ordered) and (
            ordered[index].end_epoch,
            ordered[index].load_balancer,
        ) == group_key:
            group.append(ordered[index])
            index += 1

        snapshot = {op.key: state.get(op.key) for op in group}
        for op in group:
            expected = snapshot[op.key]
            if op.result != expected:
                raise LinearizabilityViolation(
                    f"{op.op.value}({op.key}) by client {op.client_id} in "
                    f"epoch {op.end_epoch} returned {op.result!r}, expected "
                    f"group-start value {expected!r}"
                )
        # Apply writes in arrival order; last write wins.
        for op in group:
            if op.op is OpType.WRITE:
                state[op.key] = op.written


# ---------------------------------------------------------------------------
# General linearizability search (small histories)
# ---------------------------------------------------------------------------
def check_linearizable(history: History, max_operations: int = 12) -> bool:
    """Exhaustive linearizability check (Wing & Gong style DFS).

    Semantics: ``read(k)`` returns the current value; ``write(k, v)``
    installs ``v`` (its return value is not checked — Snoopy's writes
    report the *batch-start* value, which is a batching artifact rather
    than part of the register's sequential specification; Theorem 4's C2
    condition likewise constrains only reads).  Real-time precedence:
    ``o1 < o2`` iff ``o1.end_epoch < o2.start_epoch``.

    Only intended for small histories (branching is factorial); raises
    ``ValueError`` beyond ``max_operations``.
    """
    operations = list(history.operations)
    if len(operations) > max_operations:
        raise ValueError(
            f"history too large for exhaustive search ({len(operations)} ops)"
        )

    precedes = [
        [a.end_epoch < b.start_epoch for b in operations] for a in operations
    ]

    seen: set = set()

    def dfs(done: frozenset, state: Tuple[Tuple[int, Optional[bytes]], ...]) -> bool:
        if len(done) == len(operations):
            return True
        memo_key = (done, state)
        if memo_key in seen:
            return False
        seen.add(memo_key)
        state_dict = dict(state)
        for i, op in enumerate(operations):
            if i in done:
                continue
            # All real-time predecessors must already be linearized.
            if any(
                precedes[j][i] and j not in done for j in range(len(operations))
            ):
                continue
            current = state_dict.get(op.key, history.initial.get(op.key))
            if op.op is OpType.READ and op.result != current:
                continue
            if op.op is OpType.WRITE:
                new_state = dict(state_dict)
                new_state[op.key] = op.written
                frozen = tuple(sorted(new_state.items(), key=lambda kv: kv[0]))
            else:
                frozen = state
            if dfs(done | {i}, frozen):
                return True
        return False

    return dfs(frozenset(), tuple())
