"""The assembled Snoopy system (Figure 21).

``Snoopy`` owns ``L`` load balancers and ``S`` subORAMs.  Clients submit
requests to a load balancer of their choice (clients pick randomly, §4.3);
``run_epoch`` closes the current epoch: every load balancer independently
builds its batches, and every subORAM executes the load balancers' batches
*in a fixed order* (LB 0 first, then LB 1, ...), which — together with
last-write-wins within a balancer — yields the linearization order proved
correct in Appendix C.

The trusted monotonic counter is bumped once per epoch (§9): state sealed
at epoch ``e`` cannot be replayed at epoch ``e' > e``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.crypto.keys import KeyChain
from repro.core.config import SnoopyConfig
from repro.enclave.sealed import MonotonicCounter
from repro.loadbalancer.balancer import LoadBalancer
from repro.loadbalancer.initialization import oblivious_shard
from repro.suboram.suboram import SubOram
from repro.types import OpType, Request, Response
from repro.utils.validation import require


class Snoopy:
    """An in-process Snoopy deployment: L load balancers, S subORAMs.

    Example::

        store = Snoopy(SnoopyConfig(num_load_balancers=2, num_suborams=3,
                                    value_size=16))
        store.initialize({k: bytes(16) for k in range(1000)})
        store.submit(Request(OpType.WRITE, 7, b"x" * 16))
        [response] = store.run_epoch()
    """

    def __init__(self, config: SnoopyConfig, keychain: Optional[KeyChain] = None,
                 rng: Optional[random.Random] = None, suboram_factory=None):
        """Assemble the deployment.

        Args:
            config: public deployment parameters.
            keychain: deployment secrets (generated if omitted).
            rng: randomness for client load-balancer selection.
            suboram_factory: optional ``(suboram_id, config, keychain) ->
                subORAM`` callable for plugging in alternative subORAM
                designs (anything with ``initialize(objects)`` and
                ``batch_access(batch)``), e.g. the Oblix adapter behind
                Fig. 10.  Defaults to the paper's throughput-optimized
                linear-scan subORAM (§5).
        """
        self.config = config
        self.keychain = keychain if keychain is not None else KeyChain()
        self._rng = rng if rng is not None else random.Random()
        self.counter = MonotonicCounter()

        sharding_key = self.keychain.sharding_key()
        self.load_balancers = [
            LoadBalancer(
                balancer_id=i,
                num_suborams=config.num_suborams,
                sharding_key=sharding_key,
                security_parameter=config.security_parameter,
            )
            for i in range(config.num_load_balancers)
        ]
        if suboram_factory is None:
            suboram_factory = _default_suboram_factory
        self.suborams = [
            suboram_factory(s, config, self.keychain)
            for s in range(config.num_suborams)
        ]
        self._initialized = False

    # ------------------------------------------------------------------
    # Initialization (Figure 23: shard objects by the keyed hash)
    # ------------------------------------------------------------------
    def initialize(self, objects: Dict[int, bytes]) -> None:
        """Shard ``objects`` across subORAMs and load the partitions.

        Uses the Figure 23 oblivious sharding pipeline (fixed tagging
        scan, oblivious sort, boundary scan) so initialization leaks only
        the public partition sizes.
        """
        require(
            all(key >= 0 for key in objects),
            "object keys must be non-negative (negative ids are reserved "
            "for dummies)",
        )
        partitions = oblivious_shard(
            objects, self.config.num_suborams, self.keychain.sharding_key()
        )
        for suboram, partition in zip(self.suborams, partitions):
            suboram.initialize(partition)
        self._initialized = True

    @property
    def num_objects(self) -> int:
        """Total number of stored objects across all subORAMs."""
        return sum(s.num_objects for s in self.suborams)

    @property
    def partition_sizes(self) -> List[int]:
        """Number of objects per subORAM (public information)."""
        return [s.num_objects for s in self.suborams]

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------
    def submit(
        self, request: Request, load_balancer: Optional[int] = None
    ) -> tuple:
        """Queue a request; clients pick a random load balancer by default.

        Returns:
            (load_balancer_index, arrival_index) — clients record these to
            build linearizability histories.
        """
        if load_balancer is None:
            load_balancer = self._rng.randrange(self.config.num_load_balancers)
        arrival = self.load_balancers[load_balancer].submit(request)
        return load_balancer, arrival

    # ------------------------------------------------------------------
    # Epoch execution
    # ------------------------------------------------------------------
    def run_epoch(self, permissions=None) -> List[Response]:
        """Close the epoch: batch, execute, match; returns all responses.

        SubORAMs execute the load balancers' batches in fixed balancer
        order; each batch is processed in its own linear scan with a fresh
        hash-table key (§4.3: with L balancers each subORAM performs L
        scans per epoch).

        Args:
            permissions: optional §D access-control bits,
                ``{(client_id, seq): 0/1}``; used by
                :class:`repro.core.access_control.AccessControlledStore`.
        """
        if not self._initialized:
            raise RuntimeError("Snoopy.initialize must be called first")
        self.counter.increment()  # one trusted-counter bump per epoch (§9)

        responses: List[Response] = []
        for balancer in self.load_balancers:
            responses.extend(
                balancer.run_epoch(
                    lambda suboram_id, batch: self.suborams[
                        suboram_id
                    ].batch_access(batch),
                    permissions=permissions,
                )
            )
        return responses

    # ------------------------------------------------------------------
    # One-shot conveniences (single-request epochs)
    # ------------------------------------------------------------------
    def read(self, key: int) -> Optional[bytes]:
        """Read one object in its own epoch."""
        self.submit(Request(OpType.READ, key))
        [response] = self.run_epoch()
        return response.value

    def write(self, key: int, value: bytes) -> Optional[bytes]:
        """Write one object in its own epoch; returns the prior value."""
        self.submit(Request(OpType.WRITE, key, value))
        [response] = self.run_epoch()
        return response.value

    def batch(self, requests: Sequence[Request]) -> List[Response]:
        """Submit a set of requests (random balancers) and run one epoch."""
        for request in requests:
            self.submit(request)
        return self.run_epoch()


def _default_suboram_factory(suboram_id: int, config: SnoopyConfig,
                             keychain: KeyChain) -> SubOram:
    """The paper's throughput-optimized linear-scan subORAM (§5)."""
    return SubOram(
        suboram_id=suboram_id,
        value_size=config.value_size,
        keychain=keychain,
        security_parameter=config.security_parameter,
    )
