"""The assembled Snoopy system (Figure 21).

``Snoopy`` owns ``L`` load balancers and ``S`` subORAMs.  Clients submit
requests to a load balancer of their choice (clients pick randomly, §4.3)
and receive a :class:`~repro.core.tickets.Ticket`; ``run_epoch`` closes
the current epoch through the staged :class:`~repro.core.epoch.EpochDriver`:
every load balancer builds its batches (concurrently under a parallel
backend), every subORAM executes the load balancers' batches *in a fixed
order* (LB 0 first, then LB 1, ...), and every balancer matches responses
back — which, together with last-write-wins within a balancer, yields the
linearization order proved correct in Appendix C.  Each ticket resolves
with its request's response when the epoch closes.

The execution backend (:mod:`repro.exec`) decides whether those stages
run serially or in parallel; responses are byte-identical either way.

``run_epoch`` closes epochs on demand and strictly sequentially; for
§6's pipelined schedule — a background epoch clock, the build of epoch
``e+1`` overlapping the execute of ``e`` and the match of ``e-1`` —
call :meth:`Snoopy.start_pipeline` (see :mod:`repro.core.pipeline`).
Responses are byte-identical under either scheduler.

The trusted monotonic counter is bumped once per epoch (§9): state sealed
at epoch ``e`` cannot be replayed at epoch ``e' > e``.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Optional, Sequence

from repro.crypto.keys import KeyChain
from repro.core.config import SnoopyConfig
from repro.core.epoch import EpochDriver
from repro.core.faults import FaultInjector, FaultPlan
from repro.core.resilience import EpochRetryController, RetryPolicy
from repro.core.tickets import Ticket, TicketBook
from repro.enclave.sealed import MonotonicCounter
from repro.errors import ConfigurationError, NotInitializedError
from repro.exec import BackendSpec, ExecutionBackend, make_backend
from repro.loadbalancer.balancer import LoadBalancer
from repro.loadbalancer.initialization import oblivious_shard
from repro.suboram.suboram import SubOram
from repro.telemetry import resolve_telemetry
from repro.types import OpType, Request, Response
from repro.utils.validation import require


def attach_telemetry_to_suborams(suborams, telemetry) -> None:
    """Point every subORAM (and replica) with a telemetry seam at ``telemetry``.

    Attachment is attribute-based so custom subORAM implementations opt
    in simply by defining a ``telemetry`` attribute; objects without the
    seam (e.g. bare adapters) are left untouched.  Replica groups are
    descended into via their ``replicas`` list.
    """
    for suboram in suborams:
        if hasattr(suboram, "telemetry"):
            suboram.telemetry = telemetry
        for replica in getattr(suboram, "replicas", []):
            inner = getattr(replica, "suboram", replica)
            if hasattr(inner, "telemetry"):
                inner.telemetry = telemetry


class Snoopy:
    """An in-process Snoopy deployment: L load balancers, S subORAMs.

    Example::

        store = Snoopy(SnoopyConfig(num_load_balancers=2, num_suborams=3,
                                    value_size=16))
        store.initialize({k: bytes(16) for k in range(1000)})
        ticket = store.submit(Request(OpType.WRITE, 7, b"x" * 16))
        store.run_epoch()
        response = ticket.result()
    """

    def __init__(self, config: SnoopyConfig, keychain: Optional[KeyChain] = None,
                 rng: Optional[random.Random] = None, suboram_factory=None,
                 backend: Optional[BackendSpec] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 telemetry=None):
        """Assemble the deployment.

        Args:
            config: public deployment parameters.
            keychain: deployment secrets (generated if omitted).
            rng: randomness for client load-balancer selection.
            suboram_factory: optional ``(suboram_id, config, keychain) ->
                subORAM`` callable for plugging in alternative subORAM
                designs (anything with ``initialize(objects)`` and
                ``batch_access(batch)``), e.g. the Oblix adapter behind
                Fig. 10.  Defaults to the paper's throughput-optimized
                linear-scan subORAM (§5), or to §9
                :class:`~repro.extensions.replication.ReplicatedSubOram`
                groups when ``config.replication`` is set.
            backend: execution backend for epoch stages — an
                :class:`~repro.exec.ExecutionBackend` or a spec string;
                defaults to ``config.execution_backend``.
            fault_plan: optional deterministic
                :class:`~repro.core.faults.FaultPlan` (chaos testing);
                scheduled faults are injected through the backend and
                replica seams and counted in :attr:`fault_stats`.
            telemetry: optional :class:`~repro.telemetry.Telemetry`
                handle; overrides ``config.telemetry``.  When attached,
                every pipeline layer records into its registry/tracer
                (see :mod:`repro.telemetry`).

        Raises:
            ConfigurationError: both a custom ``suboram_factory`` and
                ``config.replication`` were given — the deployment cannot
                know how to wrap an arbitrary subORAM in replica groups.
        """
        self.config = config
        self.keychain = keychain if keychain is not None else KeyChain()
        self._rng = rng if rng is not None else random.Random()
        self.counter = MonotonicCounter()
        self.telemetry = resolve_telemetry(
            telemetry if telemetry is not None else config.telemetry
        )
        self._owns_backend = not isinstance(backend, ExecutionBackend)
        self.backend = make_backend(
            backend if backend is not None else config.execution_backend,
            config.max_workers,
            task_timeout=config.task_timeout,
        )
        if self.telemetry.enabled:
            self.backend.attach_telemetry(self.telemetry)
        self._injector = (
            FaultInjector(fault_plan, telemetry=self.telemetry)
            if fault_plan is not None
            else None
        )
        self._retry = EpochRetryController(
            RetryPolicy.from_config(config),
            injector=self._injector,
            telemetry=self.telemetry,
        )

        # Distinct per-deployment namespace for the backend's cross-epoch
        # subORAM state cache (deployments may share one backend).
        self._state_ns = f"snoopy-{next(_DEPLOYMENT_COUNTER)}"

        sharding_key = self.keychain.sharding_key()
        self.load_balancers = [
            LoadBalancer(
                balancer_id=i,
                num_suborams=config.num_suborams,
                sharding_key=sharding_key,
                security_parameter=config.security_parameter,
                kernel=config.kernel,
            )
            for i in range(config.num_load_balancers)
        ]
        if suboram_factory is None:
            suboram_factory = (
                _replicated_suboram_factory
                if config.replication is not None
                else _default_suboram_factory
            )
        elif config.replication is not None:
            raise ConfigurationError(
                "config.replication and a custom suboram_factory are "
                "mutually exclusive: have the factory build "
                "ReplicatedSubOram groups itself"
            )
        self.suborams = [
            suboram_factory(s, config, self.keychain)
            for s in range(config.num_suborams)
        ]
        if self.telemetry.enabled:
            attach_telemetry_to_suborams(self.suborams, self.telemetry)
        self._tickets = TicketBook(config.num_load_balancers)
        self._pipeline = None
        self._initialized = False

    # ------------------------------------------------------------------
    # Scheduler plumbing shared with the pipelined scheduler
    # ------------------------------------------------------------------
    @property
    def tickets(self) -> TicketBook:
        """The deployment's pending-ticket ledger."""
        return self._tickets

    @property
    def retry_controller(self) -> EpochRetryController:
        """The fault-tolerance controller consulted by every epoch."""
        return self._retry

    @property
    def injector(self) -> Optional[FaultInjector]:
        """The chaos injector, when a fault plan is attached."""
        return self._injector

    @property
    def state_namespace(self) -> str:
        """This deployment's backend state-cache namespace."""
        return self._state_ns

    # ------------------------------------------------------------------
    # Initialization (Figure 23: shard objects by the keyed hash)
    # ------------------------------------------------------------------
    def initialize(self, objects: Dict[int, bytes]) -> None:
        """Shard ``objects`` across subORAMs and load the partitions.

        Uses the Figure 23 oblivious sharding pipeline (fixed tagging
        scan, oblivious sort, boundary scan) so initialization leaks only
        the public partition sizes.
        """
        require(
            all(key >= 0 for key in objects),
            "object keys must be non-negative (negative ids are reserved "
            "for dummies)",
        )
        partitions = oblivious_shard(
            objects, self.config.num_suborams, self.keychain.sharding_key()
        )
        for suboram, partition in zip(self.suborams, partitions):
            suboram.initialize(partition)
        self._initialized = True

    @property
    def num_objects(self) -> int:
        """Total number of stored objects across all subORAMs."""
        return sum(s.num_objects for s in self.suborams)

    @property
    def partition_sizes(self) -> List[int]:
        """Number of objects per subORAM (public information)."""
        return [s.num_objects for s in self.suborams]

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------
    def submit(
        self, request: Request, load_balancer: Optional[int] = None
    ) -> Ticket:
        """Queue a request; clients pick a random load balancer by default.

        Returns:
            A :class:`~repro.core.tickets.Ticket` naming where the
            request went (``.load_balancer``, ``.arrival`` — the
            coordinates linearizability histories are built from) and
            resolving to its :class:`~repro.types.Response` when the
            epoch closes (``.result()``), with
            :meth:`~repro.core.tickets.Ticket.add_done_callback` for
            asynchronous completion.

        While a pipeline is active (:meth:`start_pipeline`) the submit
        is routed through it — fully non-blocking; the ticket resolves
        when the pipeline's match thread closes the request's epoch.
        """
        if load_balancer is None:
            load_balancer = self._rng.randrange(self.config.num_load_balancers)
        if self._pipeline is not None and self._pipeline.active:
            return self._pipeline.submit(request, load_balancer)
        self.telemetry.counter("snoopy_requests_total").inc()
        arrival = self.load_balancers[load_balancer].submit(request)
        return self._tickets.issue(load_balancer, arrival, request)

    # ------------------------------------------------------------------
    # Pipelined epoch scheduling (§6)
    # ------------------------------------------------------------------
    def start_pipeline(
        self,
        depth: Optional[int] = None,
        clock: bool = True,
        epoch_duration: Optional[float] = None,
    ):
        """Switch to the pipelined epoch scheduler (§6).

        Launches an :class:`~repro.core.pipeline.EpochPipeline` whose
        stage threads overlap the build of epoch ``e+1`` with the
        execute of ``e`` and the match of ``e-1`` over this deployment's
        execution backend.  While the pipeline is active, :meth:`submit`
        routes through it (non-blocking) and :meth:`run_epoch` is
        unavailable; stop the pipeline (``pipeline.stop()`` or the
        context manager) to return to sequential scheduling.

        Args:
            depth: max in-flight epochs (default
                ``config.pipeline_depth``).
            clock: run the background epoch clock (default).  Pass
                ``False`` for manual ``pipeline.close_epoch()`` pacing —
                what tests and benchmarks use for deterministic epoch
                composition.
            epoch_duration: clock period override in seconds (default
                ``config.epoch_duration``).

        Returns:
            The running :class:`~repro.core.pipeline.EpochPipeline`
            (also a context manager that stops itself on exit).

        Raises:
            NotInitializedError: ``initialize`` has not been called.
            ConfigurationError: a pipeline is already active.
        """
        from repro.core.pipeline import EpochPipeline

        if not self._initialized:
            raise NotInitializedError("Snoopy.initialize must be called first")
        if self._pipeline is not None and self._pipeline.active:
            raise ConfigurationError(
                "an epoch pipeline is already active; stop it before "
                "starting another"
            )
        period = None
        if clock:
            period = (
                epoch_duration
                if epoch_duration is not None
                else self.config.epoch_duration
            )
        self._pipeline = EpochPipeline(
            self, depth=depth, clock_period=period
        ).start()
        return self._pipeline

    @property
    def pipeline(self):
        """The current :class:`~repro.core.pipeline.EpochPipeline` (or None).

        Kept after ``stop()`` so stats/occupancy stay inspectable; check
        ``pipeline.active`` for whether it is still scheduling.
        """
        return self._pipeline

    # ------------------------------------------------------------------
    # Epoch execution
    # ------------------------------------------------------------------
    def run_epoch(
        self, permissions=None, backend: Optional[BackendSpec] = None
    ) -> List[Response]:
        """Close the epoch: batch, execute, match; returns all responses.

        SubORAMs execute the load balancers' batches in fixed balancer
        order; each batch is processed in its own linear scan with a fresh
        hash-table key (§4.3: with L balancers each subORAM performs L
        scans per epoch).  The configured execution backend decides how
        much of that work overlaps; see :mod:`repro.core.epoch`.

        A failed epoch attempt (worker crash, task timeout, transport
        fault) is atomic: its requests are requeued, no subORAM state is
        installed, and — when ``config.epoch_max_attempts`` allows — the
        epoch is retried with seeded exponential backoff.  Exhausted
        retries (and non-retryable failures such as security aborts)
        re-raise the underlying error; the requests stay queued for a
        later ``run_epoch``.

        Args:
            permissions: optional §D access-control bits,
                ``{(client_id, seq): 0/1}``; used by
                :class:`repro.core.access_control.AccessControlledStore`.
            backend: one-off backend override for this epoch.

        Raises:
            NotInitializedError: ``initialize`` has not been called.
            ConfigurationError: a pipeline is active — the pipelined and
                sequential schedulers cannot share the epoch counter.
        """
        if not self._initialized:
            raise NotInitializedError("Snoopy.initialize must be called first")
        if self._pipeline is not None and self._pipeline.active:
            raise ConfigurationError(
                "run_epoch is unavailable while the epoch pipeline is "
                "active; use pipeline.close_epoch()/flush(), or stop the "
                "pipeline first"
            )
        self.counter.increment()  # one trusted-counter bump per epoch (§9)
        self._retry.begin_epoch(self.counter.value, self.suborams)

        driver = EpochDriver(
            make_backend(
                backend,
                self.config.max_workers,
                task_timeout=self.config.task_timeout,
            )
            if backend is not None
            else self.backend,
            telemetry=self.telemetry,
        )

        def attempt():
            return driver.run(
                self.load_balancers,
                self.suborams,
                permissions=permissions,
                state_ns=self._state_ns,
                injector=self._injector,
                atomic=self._retry.armed,
            )

        with self.telemetry.span("epoch", epoch=self.counter.value), \
                self.telemetry.time("snoopy_epoch_seconds"):
            result = self._retry.run_with_retry(attempt)
            # Under a process backend the subORAMs mutated in workers; the
            # driver ships the updated state back and we reinstall it.
            # (The same applies to the atomic deep copies of an armed
            # epoch.)
            self.suborams = result.suborams
            if self.telemetry.enabled:
                # Process backends reinstall unpickled copies whose
                # telemetry seam collapsed to the null handle; re-attach.
                attach_telemetry_to_suborams(self.suborams, self.telemetry)
            self._retry.end_epoch(self.suborams)
            with self.telemetry.span("stage", stage="respond"), \
                    self.telemetry.time(
                        "snoopy_epoch_stage_seconds", stage="respond"
                    ):
                for balancer_index, responses in enumerate(
                    result.responses_per_balancer
                ):
                    self._tickets.resolve(
                        balancer_index, responses, epoch=self.counter.value
                    )
        self.telemetry.counter("snoopy_epochs_total").inc()
        self.telemetry.counter("snoopy_responses_total").inc(
            len(result.responses)
        )
        return result.responses

    @property
    def fault_stats(self) -> Dict[str, int]:
        """Fault-tolerance counters (public information).

        Controller counters (``epochs_failed``, ``epochs_retried``,
        ``replicas_recovered``) plus, when a fault plan is attached, the
        injector's fired-event counters (``worker_crashes``,
        ``tasks_timed_out``, ``replica_crashes``, ``replica_rollbacks``,
        ``transport_errors``).
        """
        return self._retry.fault_stats

    def close(self) -> None:
        """Release the execution backend's workers (no-op for serial).

        Stops an active pipeline first (flushing in-flight epochs; a
        poisoned pipeline's stored error stays retrievable via
        ``pipeline.error``).  Only closes backends this deployment
        constructed itself; a backend instance passed in by the caller
        stays open (it may be shared across deployments).
        """
        if self._pipeline is not None and self._pipeline.active:
            self._pipeline.stop()
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "Snoopy":
        """Context-manager entry: returns self."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: closes the execution backend."""
        self.close()

    # ------------------------------------------------------------------
    # One-shot conveniences (single-request epochs)
    # ------------------------------------------------------------------
    def read(self, key: int) -> Optional[bytes]:
        """Read one object in its own epoch."""
        ticket = self.submit(Request(OpType.READ, key))
        self.run_epoch()
        return ticket.result().value

    def write(self, key: int, value: bytes) -> Optional[bytes]:
        """Write one object in its own epoch; returns the prior value."""
        ticket = self.submit(Request(OpType.WRITE, key, value))
        self.run_epoch()
        return ticket.result().value

    def batch(self, requests: Sequence[Request]) -> List[Response]:
        """Submit a set of requests (random balancers) and run one epoch."""
        for request in requests:
            self.submit(request)
        return self.run_epoch()


#: Monotonic id source for per-deployment state-cache namespaces.
_DEPLOYMENT_COUNTER = itertools.count()


def _default_suboram_factory(suboram_id: int, config: SnoopyConfig,
                             keychain: KeyChain) -> SubOram:
    """The paper's throughput-optimized linear-scan subORAM (§5)."""
    return SubOram(
        suboram_id=suboram_id,
        value_size=config.value_size,
        keychain=keychain,
        security_parameter=config.security_parameter,
        kernel=config.kernel,
        crypto=config.crypto,
    )


def _replicated_suboram_factory(suboram_id: int, config: SnoopyConfig,
                                keychain: KeyChain):
    """§9 quorum-replicated subORAM groups (``config.replication=(f, r)``)."""
    # Lazy import: repro.extensions pulls in the simulator, which imports
    # this module — a top-level import would be circular.
    from repro.extensions.replication import ReplicatedSubOram

    crash_tolerance, rollback_tolerance = config.replication
    return ReplicatedSubOram(
        suboram_id=suboram_id,
        value_size=config.value_size,
        crash_tolerance=crash_tolerance,
        rollback_tolerance=rollback_tolerance,
        keychain=keychain,
        security_parameter=config.security_parameter,
        kernel=config.kernel,
        crypto=config.crypto,
    )
