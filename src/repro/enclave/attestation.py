"""Simulated remote attestation (§3.1).

Clients "establish all communication channels using remote attestation so
that clients are confident that they are interacting with legitimate
enclaves running Snoopy".  We model the essentials: an attestation service
holding a signing key, quotes binding an enclave measurement to a fresh
channel key share, and verification that rejects unknown measurements or
tampered quotes.
"""

from __future__ import annotations

import hmac
import hashlib
import os
from dataclasses import dataclass

from repro.errors import AttestationError
from repro.enclave.model import Enclave


@dataclass(frozen=True)
class Quote:
    """An attestation quote: measurement + channel key share + MAC."""

    enclave_name: str
    measurement: bytes
    key_share: bytes
    signature: bytes


class AttestationService:
    """Verifies enclave quotes against a set of trusted measurements.

    Plays the role of Intel's attestation service: it knows a signing key
    (provisioned into genuine enclaves) and the expected measurements of
    the Snoopy load-balancer and subORAM programs.
    """

    def __init__(self, signing_key: bytes | None = None):
        self._signing_key = signing_key if signing_key is not None else os.urandom(32)
        self._trusted: set[bytes] = set()

    @property
    def signing_key(self) -> bytes:
        """Provisioning secret; in reality burned into genuine hardware."""
        return self._signing_key

    def trust(self, measurement: bytes) -> None:
        """Whitelist a program measurement (e.g. the Snoopy release build)."""
        self._trusted.add(measurement)

    def quote(self, enclave: Enclave, key_share: bytes) -> Quote:
        """Produce a quote for ``enclave`` binding ``key_share``."""
        mac = hmac.new(
            self._signing_key,
            enclave.name.encode() + enclave.measurement + key_share,
            hashlib.sha256,
        ).digest()
        return Quote(enclave.name, enclave.measurement, key_share, mac)

    def verify(self, quote: Quote) -> bytes:
        """Verify a quote; returns the bound key share or raises."""
        expect = hmac.new(
            self._signing_key,
            quote.enclave_name.encode() + quote.measurement + quote.key_share,
            hashlib.sha256,
        ).digest()
        if not hmac.compare_digest(expect, quote.signature):
            raise AttestationError(f"quote signature invalid for {quote.enclave_name}")
        if quote.measurement not in self._trusted:
            raise AttestationError(
                f"measurement for {quote.enclave_name} is not a trusted Snoopy build"
            )
        return quote.key_share


def establish_channel_key(
    service: AttestationService, enclave: Enclave, peer_share: bytes
) -> bytes:
    """Derive a shared channel key after verifying the enclave's quote.

    The caller (a client or another enclave) contributes ``peer_share``;
    the enclave contributes a fresh share via its quote.  Both sides derive
    ``H(share_enclave || share_peer)``.
    """
    enclave_share = os.urandom(32)
    quote = service.quote(enclave, enclave_share)
    verified_share = service.verify(quote)
    return hashlib.sha256(verified_share + peer_share).digest()
