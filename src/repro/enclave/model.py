"""The enclave execution model and EPC paging cost.

Intel SGX's protected memory (EPC) is small (256 MB in the paper's
generation); data beyond it is paged in on access at high cost, which is
why the subORAM's linear scan time jumps between 2^15 and 2^20 objects
(Fig. 12) and why the implementation streams data through a shared host
buffer (§7).  :class:`EpcModel` captures that knee for the performance
simulator; :class:`Enclave` carries identity for attestation and owns a
:class:`TracedMemory` heap so algorithms running "inside" an enclave leave
a checkable access trace.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.oblivious.memory import AccessTrace, TracedMemory

# Default EPC size mirrors the paper's SGX generation (256 MB usable ~ 93.5
# MB of it on many parts; we keep the headline number and let the cost
# model own the effective constants).
DEFAULT_EPC_BYTES = 256 * 1024 * 1024


@dataclass(frozen=True)
class EpcModel:
    """Cost model for enclave memory: resident vs paged access.

    Attributes:
        epc_bytes: protected memory size; working sets beyond it page.
        resident_ns_per_byte: amortized cost to stream a resident byte.
        paged_ns_per_byte: amortized cost when the working set exceeds the
            EPC and pages must be faulted or staged through a host buffer.
            The paper's host-loader optimisation (§7) is modelled as this
            constant being a small multiple of the resident one rather than
            the ~1000x of naive SGX paging.
    """

    epc_bytes: int = DEFAULT_EPC_BYTES
    resident_ns_per_byte: float = 0.25
    paged_ns_per_byte: float = 1.6

    def scan_seconds(self, working_set_bytes: int, scanned_bytes: int) -> float:
        """Time to stream ``scanned_bytes`` given the total working set."""
        per_byte = (
            self.resident_ns_per_byte
            if working_set_bytes <= self.epc_bytes
            else self.paged_ns_per_byte
        )
        return scanned_bytes * per_byte * 1e-9


class Enclave:
    """A protected execution context with identity and a traced heap.

    The heap is a :class:`TracedMemory`; everything an in-enclave algorithm
    reads or writes through it lands on the enclave's access trace — the
    attacker-visible side channel in the abstract model.
    """

    def __init__(self, name: str, measurement: bytes | None = None, epc: EpcModel | None = None):
        self.name = name
        # MRENCLAVE analogue: a hash of the (name of the) loaded program.
        self.measurement = (
            measurement
            if measurement is not None
            else hashlib.sha256(f"snoopy-program:{name}".encode()).digest()
        )
        self.epc = epc if epc is not None else EpcModel()
        self.trace = AccessTrace()

    def heap(self, items) -> TracedMemory:
        """Allocate a traced memory region on this enclave's trace."""
        return TracedMemory(items, trace=self.trace)

    def __repr__(self) -> str:
        return f"Enclave({self.name!r})"
