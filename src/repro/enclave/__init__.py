"""Abstract hardware-enclave model (§2, §B.1).

The paper designs Snoopy on "an abstract enclave model where the attacker
controls the software stack outside the enclave and can observe memory
access patterns but cannot learn the contents of the data inside the
processor".  This package provides that abstraction:

* :class:`repro.enclave.model.Enclave` — a protected execution context with
  a bounded EPC and a paging cost model,
* :mod:`repro.enclave.attestation` — simulated remote attestation used to
  establish channels (§3.1),
* :mod:`repro.enclave.sealed` — sealed storage plus a trusted monotonic
  counter, the rollback-defense hooks of §9.
"""

from repro.enclave.model import Enclave, EpcModel
from repro.enclave.attestation import AttestationService, Quote
from repro.enclave.sealed import MonotonicCounter, SealedStore

__all__ = [
    "AttestationService",
    "Enclave",
    "EpcModel",
    "MonotonicCounter",
    "Quote",
    "SealedStore",
]
