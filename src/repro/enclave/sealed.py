"""Sealed storage and trusted monotonic counters (§9 rollback defense).

Enclaves persist state by *sealing* it (encrypting under a hardware key).
A malicious host can replay an older sealed blob — the rollback attack.
The standard defense the paper cites (ROTE / SGX counters) is a trusted
monotonic counter bumped once per epoch; on unsealing, the embedded epoch
must match the counter.  Snoopy "only invokes the trusted counter once per
epoch", which is what :class:`repro.core.snoopy.Snoopy` does.
"""

from __future__ import annotations

import os

from repro.crypto.aead import AeadKey, NONCE_LEN
from repro.errors import RollbackError


class MonotonicCounter:
    """A trusted, strictly increasing counter (ROTE / SGX counter analogue)."""

    def __init__(self) -> None:
        self._value = 0

    @property
    def value(self) -> int:
        """Current counter value."""
        return self._value

    def increment(self) -> int:
        """Advance the counter; returns the new value."""
        self._value += 1
        return self._value


class SealedStore:
    """Seal/unseal enclave state with rollback detection.

    Blobs are AEAD-sealed with the counter value as associated data; the
    host stores the blob, the enclave only the (hardware) counter.  An old
    blob fails authentication against the current counter value.
    """

    def __init__(self, sealing_key: bytes, counter: MonotonicCounter | None = None):
        self._aead = AeadKey(sealing_key)
        self.counter = counter if counter is not None else MonotonicCounter()

    def seal(self, state: bytes) -> tuple[bytes, bytes]:
        """Seal ``state`` at the *next* counter epoch; returns (nonce, blob)."""
        epoch = self.counter.increment()
        nonce = os.urandom(NONCE_LEN)
        blob = self._aead.seal(nonce, state, aad=epoch.to_bytes(8, "big"))
        return nonce, blob

    def unseal(self, nonce: bytes, blob: bytes) -> bytes:
        """Unseal against the current counter; stale blobs raise RollbackError."""
        epoch = self.counter.value
        try:
            return self._aead.open(nonce, blob, aad=epoch.to_bytes(8, "big"))
        except Exception as exc:
            raise RollbackError(
                f"sealed blob does not match trusted counter epoch {epoch}"
            ) from exc
