"""Small shared utilities (bit tricks, validation helpers)."""

from repro.utils.bits import ceil_log2, is_pow2, next_pow2
from repro.utils.validation import require, require_positive

__all__ = ["ceil_log2", "is_pow2", "next_pow2", "require", "require_positive"]
