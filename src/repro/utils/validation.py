"""Tiny argument-validation helpers.

Systems code benefits from failing fast with a precise message; these wrap
the common patterns so call sites stay one line.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


def require_positive(value, name: str) -> None:
    """Require ``value > 0``."""
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
