"""Bit-twiddling helpers used by the oblivious networks.

Bitonic sort and Goodrich compaction both operate on power-of-two sized
arrays; these helpers compute padding sizes.
"""

from __future__ import annotations


def is_pow2(n: int) -> bool:
    """Return True if ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def next_pow2(n: int) -> int:
    """Smallest power of two >= ``n`` (and >= 1)."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def ceil_log2(n: int) -> int:
    """Ceiling of log2(n) for n >= 1."""
    if n < 1:
        raise ValueError(f"ceil_log2 requires n >= 1, got {n}")
    return (n - 1).bit_length()
