"""Core datatypes shared across the Snoopy reproduction.

The wire-level entities of the paper (client requests, subORAM batches,
responses) are modelled as small frozen/slotted dataclasses.  Object ids are
arbitrary integers; values are ``bytes`` of a fixed, per-store object size,
mirroring the paper's fixed-size object regime (160-byte objects in most
experiments, 32-byte objects for key transparency).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class OpType(enum.Enum):
    """Request type. Dummy requests are reads for unpredictable ids."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class Request:
    """A client request for one object.

    Attributes:
        op: read or write.
        key: logical object id.
        value: payload for writes, ``None`` for reads.
        client_id: identifier of the issuing client (used to route replies
            and, with access control, to look up privileges).
        seq: client-local sequence number, used to match replies and to
            build linearizability histories.
    """

    op: OpType
    key: int
    value: Optional[bytes] = None
    client_id: int = 0
    seq: int = 0

    def is_read(self) -> bool:
        """True for read requests."""
        return self.op is OpType.READ

    def is_write(self) -> bool:
        """True for write requests."""
        return self.op is OpType.WRITE


@dataclass(frozen=True)
class Response:
    """A reply to a single :class:`Request`.

    ``value`` carries the object contents before the write for write
    requests (the paper's batch-access semantics) and the current contents
    for reads.  ``ok`` is ``False`` only when access control denied the
    operation.
    """

    key: int
    value: Optional[bytes]
    client_id: int = 0
    seq: int = 0
    ok: bool = True


@dataclass
class StoredObject:
    """An object at rest in a subORAM partition."""

    key: int
    value: bytes


# Sentinel key used for dummy requests/objects inside oblivious structures.
# Dummies must be indistinguishable from real entries by access pattern; the
# *content* of entries is never visible to the attacker in our model (only
# addresses are), so a sentinel key is faithful to the paper's encrypted
# dummies.
DUMMY_KEY = -1


@dataclass
class BatchEntry:
    """Mutable working entry used inside load-balancer/subORAM algorithms.

    This is the in-enclave representation: plaintext from the enclave's point
    of view, opaque ciphertext from the attacker's.  Fields mirror the tuples
    used in Figures 5, 6, 19, 25 of the paper.
    """

    op: OpType = OpType.READ
    key: int = DUMMY_KEY
    value: Optional[bytes] = None
    suboram: int = 0
    tag: int = 0  # the paper's bit b; also reused as a mark bit
    client_id: int = 0
    seq: int = 0
    is_dummy: bool = True
    permitted: int = 1  # access-control bit (§D); 1 unless ACL denies

    @classmethod
    def from_request(cls, request: Request) -> "BatchEntry":
        return cls(
            op=request.op,
            key=request.key,
            value=request.value,
            client_id=request.client_id,
            seq=request.seq,
            is_dummy=False,
        )

    def copy(self) -> "BatchEntry":
        """Deep-enough copy: a new entry with identical fields."""
        return BatchEntry(
            op=self.op,
            key=self.key,
            value=self.value,
            suboram=self.suboram,
            tag=self.tag,
            client_id=self.client_id,
            seq=self.seq,
            is_dummy=self.is_dummy,
            permitted=self.permitted,
        )


@dataclass
class Epoch:
    """Bookkeeping for one load-balancer epoch."""

    number: int
    requests: list = field(default_factory=list)
    start_time: float = 0.0
    commit_time: float = 0.0
