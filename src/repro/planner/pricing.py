"""Machine pricing for the planner's cost objective (Eq. 3, Fig. 14b).

Mirrors the paper's deployment: load balancers and subORAMs both run on
DC4s_v2 instances, so they share a monthly price; only relative prices
shape the planner output.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PriceTable:
    """Monthly USD prices per machine role."""

    load_balancer: float = 292.0  # Azure DC4s_v2, ~$0.40/hr
    suboram: float = 292.0

    def monthly_cost(self, num_load_balancers: int, num_suborams: int) -> float:
        """Eq. (3): C_sys = B*C_LB + S*C_S."""
        return (
            num_load_balancers * self.load_balancer
            + num_suborams * self.suboram
        )


DEFAULT_PRICES = PriceTable()
