"""The configuration planner (§6).

Given a data size, a minimum throughput, and a maximum average latency,
search (L, S) space for the cheapest configuration whose modelled
performance meets both targets:

    T >= max(L_LB(X*T/L, S), L * L_S(f(X*T/L, S), N))   (1)
    L_sys <= 5T/2                                        (2)
    minimize  C_sys = L*C_LB + S*C_S                     (3)

As in the paper, the model "is meant to be a starting point": it assumes
uniformly timed arrivals and uses the calibrated microbenchmark-derived
cost functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import PlannerError
from repro.sim.costmodel import max_throughput, mean_latency
from repro.sim.machines import DEFAULT_PROFILE, MachineProfile
from repro.planner.pricing import DEFAULT_PRICES, PriceTable
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class Plan:
    """A planner recommendation."""

    num_load_balancers: int
    num_suborams: int
    monthly_cost: float
    predicted_throughput: float
    predicted_latency: float

    @property
    def num_machines(self) -> int:
        """Total machine count of the plan."""
        return self.num_load_balancers + self.num_suborams


class Planner:
    """Searches configurations for throughput/latency/cost goals."""

    def __init__(
        self,
        num_objects: int,
        object_size: int = 160,
        profile: MachineProfile = DEFAULT_PROFILE,
        prices: PriceTable = DEFAULT_PRICES,
        max_machines_per_role: int = 64,
    ):
        require_positive(num_objects, "num_objects")
        self.num_objects = num_objects
        self.object_size = object_size
        self.profile = profile
        self.prices = prices
        self.max_machines_per_role = max_machines_per_role

    def _candidates(
        self, min_throughput: float, max_latency: float
    ) -> List[Plan]:
        plans = []
        for balancers in range(1, self.max_machines_per_role + 1):
            for suborams in range(1, self.max_machines_per_role + 1):
                throughput = max_throughput(
                    balancers,
                    suborams,
                    self.num_objects,
                    max_latency,
                    profile=self.profile,
                    object_size=self.object_size,
                )
                if throughput < min_throughput:
                    continue
                latency = mean_latency(
                    min_throughput,
                    balancers,
                    suborams,
                    self.num_objects,
                    profile=self.profile,
                    object_size=self.object_size,
                )
                plans.append(
                    Plan(
                        num_load_balancers=balancers,
                        num_suborams=suborams,
                        monthly_cost=self.prices.monthly_cost(balancers, suborams),
                        predicted_throughput=throughput,
                        predicted_latency=latency,
                    )
                )
                break  # more subORAMs only raises cost at this L
        return plans

    def plan(self, min_throughput: float, max_latency: float) -> Plan:
        """Cheapest configuration meeting the targets (Fig. 14).

        Raises:
            PlannerError: no configuration within the search bounds works.
        """
        candidates = self._candidates(min_throughput, max_latency)
        if not candidates:
            raise PlannerError(
                f"no configuration sustains {min_throughput:,.0f} reqs/s at "
                f"<= {max_latency * 1e3:.0f} ms with <= "
                f"{self.max_machines_per_role} machines per role"
            )
        return min(
            candidates,
            key=lambda p: (p.monthly_cost, -p.predicted_throughput),
        )

    def sweep(
        self, throughputs: List[float], max_latency: float
    ) -> List[Optional[Plan]]:
        """Fig. 14 data: a plan (or None) per target throughput."""
        plans: List[Optional[Plan]] = []
        for target in throughputs:
            try:
                plans.append(self.plan(target, max_latency))
            except PlannerError:
                plans.append(None)
        return plans

    def plan_min_latency(
        self, min_throughput: float, max_monthly_cost: float
    ) -> Plan:
        """The §6 extension: "given a throughput, data size, and cost,
        output a configuration minimizing latency".

        Searches every configuration within budget and returns the one
        with the lowest predicted mean latency that still sustains the
        target throughput.

        Raises:
            PlannerError: nothing within budget sustains the throughput.
        """
        best: Optional[Plan] = None
        for balancers in range(1, self.max_machines_per_role + 1):
            if balancers * self.prices.load_balancer > max_monthly_cost:
                break
            for suborams in range(1, self.max_machines_per_role + 1):
                cost = self.prices.monthly_cost(balancers, suborams)
                if cost > max_monthly_cost:
                    break
                latency = mean_latency(
                    min_throughput,
                    balancers,
                    suborams,
                    self.num_objects,
                    profile=self.profile,
                    object_size=self.object_size,
                )
                if latency == float("inf"):
                    continue
                candidate = Plan(
                    num_load_balancers=balancers,
                    num_suborams=suborams,
                    monthly_cost=cost,
                    predicted_throughput=min_throughput,
                    predicted_latency=latency,
                )
                if best is None or candidate.predicted_latency < (
                    best.predicted_latency
                ):
                    best = candidate
        if best is None:
            raise PlannerError(
                f"no configuration under ${max_monthly_cost:,.0f}/month "
                f"sustains {min_throughput:,.0f} reqs/s"
            )
        return best

    def pareto_frontier(
        self, max_latency: float, max_machines: int = 24
    ) -> List[Plan]:
        """Non-dominated (cost, throughput) configurations.

        A configuration is on the frontier when no cheaper-or-equal
        configuration achieves strictly higher throughput at the latency
        cap.  Gives an operator the whole cost/performance menu instead
        of a single answer; sorted by cost ascending.
        """
        candidates: List[Plan] = []
        for balancers in range(1, max_machines):
            for suborams in range(1, max_machines - balancers + 1):
                throughput = max_throughput(
                    balancers,
                    suborams,
                    self.num_objects,
                    max_latency,
                    profile=self.profile,
                    object_size=self.object_size,
                )
                if throughput <= 0:
                    continue
                candidates.append(
                    Plan(
                        num_load_balancers=balancers,
                        num_suborams=suborams,
                        monthly_cost=self.prices.monthly_cost(
                            balancers, suborams
                        ),
                        predicted_throughput=throughput,
                        predicted_latency=max_latency,
                    )
                )
        candidates.sort(key=lambda p: (p.monthly_cost, -p.predicted_throughput))
        frontier: List[Plan] = []
        best_throughput = 0.0
        for plan in candidates:
            if plan.predicted_throughput > best_throughput:
                frontier.append(plan)
                best_throughput = plan.predicted_throughput
        return frontier
