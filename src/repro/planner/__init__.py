"""The Snoopy planner (§6): cheapest configuration meeting SLOs."""

from repro.planner.planner import Plan, Planner
from repro.planner.pricing import PriceTable, DEFAULT_PRICES

__all__ = ["DEFAULT_PRICES", "Plan", "Planner", "PriceTable"]
