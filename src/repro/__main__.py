"""``python -m repro`` — the operator CLI."""

import sys

from repro.tools.cli import main

if __name__ == "__main__":
    sys.exit(main())
