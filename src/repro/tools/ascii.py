"""Terminal-friendly rendering of figure series.

The CLI and examples print evaluation curves as labelled horizontal bar
charts and aligned tables — close enough to eyeball the paper's figure
shapes without a plotting stack.
"""

from __future__ import annotations

from typing import Sequence, Tuple

BAR = "#"


def bar_chart(
    rows: Sequence[Tuple[str, float]],
    width: int = 50,
    unit: str = "",
) -> str:
    """Render (label, value) rows as horizontal bars scaled to ``width``."""
    if not rows:
        return "(no data)"
    peak = max(value for _, value in rows) or 1.0
    label_width = max(len(label) for label, _ in rows)
    lines = []
    for label, value in rows:
        bar = BAR * max(0, round(width * value / peak))
        lines.append(f"{label:<{label_width}}  {bar} {value:,.0f}{unit}")
    return "\n".join(lines)


def series_table(
    header: Sequence[str],
    rows: Sequence[Sequence],
) -> str:
    """Render rows under a header with aligned columns."""
    cells = [list(map(_fmt, header))] + [list(map(_fmt, row)) for row in rows]
    widths = [
        max(len(row[col]) for row in cells) for col in range(len(cells[0]))
    ]
    lines = [
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        for row in cells
    ]
    lines.insert(1, "  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:,.1f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
