"""Generate a Markdown API index from the library's docstrings.

``python -m repro.tools.apidocs > docs/API.md`` (or the checked-in copy
under ``docs/``) produces guide sections (full module docstrings for the
subsystems that need narrative docs) followed by one section per module
with the first docstring line of every public class, method, and
function — a browsable map of the library without a docs toolchain.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
from typing import Iterator, List

#: Narrative guide sections: (heading, module(s) whose full docstring is
#: the guide text).  Kept as docstrings so the guides cannot drift from
#: code.  A tuple of module names concatenates their docstrings.
GUIDES = [
    ("Execution backends", "repro.exec"),
    ("Oblivious kernels", "repro.oblivious.kernels"),
    ("Tickets", "repro.core.tickets"),
    (
        "Epoch pipelining",
        ("repro.core.pipeline", "repro.telemetry.overlap"),
    ),
    (
        "Fault tolerance & chaos testing",
        ("repro.core.resilience", "repro.core.faults"),
    ),
    ("Telemetry", "repro.telemetry"),
    ("The SnoopyClient protocol", "repro.core.client"),
    (
        "The network front door",
        ("repro.serve", "repro.serve.server", "repro.serve.workers",
         "repro.serve.secure"),
    ),
    (
        "Batched crypto & zero-copy state",
        ("repro.crypto.aead", "repro.crypto.vector",
         "repro.suboram.store", "repro.exec.shipping"),
    ),
    (
        "Workloads & trace replay",
        ("repro.workloads", "repro.workloads.trace",
         "repro.workloads.tuner"),
    ),
]


def _first_line(obj) -> str:
    doc = inspect.getdoc(obj) or ""
    return doc.strip().splitlines()[0] if doc.strip() else ""


def _iter_modules() -> Iterator:
    import repro

    yield repro
    for info in sorted(
        pkgutil.walk_packages(repro.__path__, "repro."), key=lambda i: i.name
    ):
        yield importlib.import_module(info.name)


def _is_function_like(member) -> bool:
    # lru_cache and similar functools wrappers are still API functions.
    return inspect.isfunction(member) or inspect.isfunction(
        getattr(member, "__wrapped__", None)
    )


def _public_defs(module):
    for name in sorted(vars(module)):
        member = vars(module)[name]
        if name.startswith("_"):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue
        if inspect.isclass(member) or _is_function_like(member):
            yield name, member


def generate() -> str:
    """Render the API index as Markdown text."""
    lines: List[str] = [
        "# API index",
        "",
        "Generated from docstrings by `python -m repro.tools.apidocs`.",
        "",
    ]
    for title, module_names in GUIDES:
        if isinstance(module_names, str):
            module_names = (module_names,)
        lines.append(f"## {title}")
        lines.append("")
        for module_name in module_names:
            module = importlib.import_module(module_name)
            lines.append(inspect.getdoc(module) or "")
            lines.append("")
    for module in _iter_modules():
        entries = list(_public_defs(module))
        if not entries and module.__name__ != "repro":
            continue
        lines.append(f"## `{module.__name__}`")
        lines.append("")
        summary = _first_line(module)
        if summary:
            lines.append(summary)
            lines.append("")
        for name, member in entries:
            kind = "class" if inspect.isclass(member) else "def"
            lines.append(f"- **`{kind} {name}`** — {_first_line(member)}")
            if inspect.isclass(member):
                for method_name in sorted(vars(member)):
                    if method_name.startswith("_"):
                        continue
                    method = vars(member)[method_name]
                    target = (
                        method.fget if isinstance(method, property) else method
                    )
                    if not (inspect.isfunction(target)):
                        continue
                    marker = "property " if isinstance(method, property) else ""
                    lines.append(
                        f"  - `{marker}{method_name}` — {_first_line(target)}"
                    )
        lines.append("")
    return "\n".join(lines)


def main() -> int:
    """Print the API index to stdout."""
    print(generate())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
