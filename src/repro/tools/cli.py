"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``plan``    — run the §6 planner for a throughput/latency/data-size SLO.
* ``figures`` — print the modelled series behind the paper's figures.
* ``demo``    — stand up a tiny in-process deployment and exercise it.
* ``serve``   — expose a deployment over TCP (the network front door).
* ``loadgen`` — drive a running server and report throughput/latency.
* ``chaos-net`` — the deterministic network-chaos soak (differential
  robustness check over the attested stack; exit 1 on mismatch).
* ``tune``    — record or load a workload trace and sweep configurations
  against it; emits the best config as JSON (``--verify`` re-replays an
  emitted config and checks the measurement reproduces).
* ``info``    — library version and default cost-model constants.

``serve`` and ``loadgen`` follow the machine-readable convention:
structured results are JSON on **stdout**, human progress goes to
**stderr**, so ``python -m repro loadgen ... > stats.json`` just works.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from repro import __version__
from repro.core.config import SnoopyConfig
from repro.core.snoopy import Snoopy
from repro.planner.planner import Planner
from repro.sim.cluster import (
    epoch_wallclock_series,
    latency_vs_suborams,
    snoopy_oblix_best_split,
    throughput_scaling_series,
)
from repro.sim.costmodel import obladi_throughput, oblix_throughput
from repro.sim.machines import DEFAULT_PROFILE
from repro.analysis.overhead import capacity_curve, dummy_overhead_percent
from repro.tools.ascii import bar_chart, series_table
from repro.types import OpType, Request


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Snoopy (SOSP 2021) reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    plan = sub.add_parser("plan", help="run the configuration planner (§6)")
    plan.add_argument("--spec", type=str, default=None,
                      help="JSON spec file with an 'slo' section "
                           "(overridden by explicit flags)")
    plan.add_argument("--objects", type=int, default=None,
                      help="number of stored objects")
    plan.add_argument("--throughput", type=float, default=None,
                      help="minimum sustained requests/second")
    plan.add_argument("--latency", type=float, default=1.0,
                      help="maximum mean latency in seconds (default 1.0)")
    plan.add_argument("--object-size", type=int, default=160)
    plan.add_argument("--budget", type=float, default=None,
                      help="monthly budget; switches to latency-minimizing "
                           "mode (§6 extension)")

    figures = sub.add_parser(
        "figures", help="print modelled series for the paper's figures"
    )
    figures.add_argument(
        "which",
        choices=["fig3", "fig4", "fig9a", "fig10", "fig11b", "fig13", "all"],
        nargs="?",
        default="all",
    )
    figures.add_argument("--objects", type=int, default=2_000_000)

    demo = sub.add_parser("demo", help="run a tiny live deployment")
    demo.add_argument("--balancers", type=int, default=2)
    demo.add_argument("--suborams", type=int, default=3)
    demo.add_argument("--objects", type=int, default=500)
    demo.add_argument("--requests", type=int, default=40)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--backend", type=str, default="serial",
                      help="execution backend spec: serial, thread[:N], "
                           "process[:N] (default serial)")
    demo.add_argument("--workers", type=int, default=None,
                      help="worker-pool size for parallel backends")
    demo.add_argument("--kernel", type=str, default="python",
                      choices=["python", "numpy"],
                      help="oblivious-kernel implementation: the traced "
                           "scalar reference or the vectorized NumPy "
                           "fast path (default python)")
    demo.add_argument("--epochs", type=int, default=1,
                      help="number of epochs to spread the requests over "
                           "(default 1)")
    demo.add_argument("--pipelined", action="store_true",
                      help="drive the epochs through the pipelined "
                           "scheduler (build/execute/match overlap) and "
                           "print its stage-occupancy table")
    demo.add_argument("--pipeline-depth", type=int, default=None,
                      metavar="N",
                      help="max in-flight epochs for --pipelined "
                           "(default: config pipeline_depth, 2)")
    demo.add_argument("--faults", type=int, default=None, metavar="SEED",
                      help="inject a deterministic FaultPlan generated "
                           "from SEED (worker crashes and task timeouts); "
                           "epochs are retried atomically and fault_stats "
                           "printed at the end")
    demo.add_argument("--metrics-out", type=str, default=None, metavar="PATH",
                      help="write the final metrics registry to PATH in "
                           "the Prometheus text exposition format")
    demo.add_argument("--trace-out", type=str, default=None, metavar="PATH",
                      help="append the metrics and finished trace-span "
                           "trees to PATH as JSON lines")

    serve = sub.add_parser(
        "serve", help="serve a deployment over TCP (asyncio front door)"
    )
    serve.add_argument("--host", type=str, default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="listen port (default 0: pick a free port, "
                            "reported in the startup JSON line)")
    serve.add_argument("--balancers", type=int, default=2)
    serve.add_argument("--suborams", type=int, default=2)
    serve.add_argument("--objects", type=int, default=1000)
    serve.add_argument("--value-size", type=int, default=16)
    serve.add_argument("--backend", type=str, default="thread",
                       help="execution backend spec: serial or thread[:N] "
                            "(default thread; the server needs a "
                            "shared-state backend)")
    serve.add_argument("--kernel", type=str, default="python",
                       choices=["python", "numpy"])
    serve.add_argument("--epoch-duration", type=float, default=0.01,
                       metavar="SECONDS",
                       help="epoch clock period (default 0.01)")
    serve.add_argument("--pipeline-depth", type=int, default=None)
    serve.add_argument("--manual-epochs", action="store_true",
                       help="disable the epoch clock; epochs close only "
                            "on client CLOSE_EPOCH admin frames "
                            "(deterministic mode)")
    serve.add_argument("--max-pending", type=int, default=1024,
                       metavar="N",
                       help="per-connection open-ticket backpressure "
                            "window (default 1024)")
    serve.add_argument("--worker-processes", action="store_true",
                       help="run each subORAM in its own OS process "
                            "behind the wire protocol (the paper's "
                            "deployment boundary) instead of in-process")
    serve.add_argument("--retries", type=int, default=1, metavar="N",
                       help="epoch attempts with --worker-processes "
                            "(>1 enables atomic epoch retry)")
    serve.add_argument("--duration", type=float, default=None,
                       metavar="SECONDS",
                       help="serve for a fixed time then exit "
                            "(default: until interrupted)")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--trust-secret", type=str,
                       default="snoopy-dev-trust", metavar="SECRET",
                       help="shared deployment trust secret (>= 16 "
                            "chars) for the attested handshake and "
                            "sealed channels; clients must present the "
                            "same secret (default: a well-known dev "
                            "secret — override it for anything real)")
    serve.add_argument("--plaintext", action="store_true",
                       help="disable channel attestation and sealing "
                            "(benchmark baselines only; attested "
                            "clients will refuse to connect)")

    loadgen = sub.add_parser(
        "loadgen", help="drive a running server over TCP and report stats"
    )
    loadgen.add_argument("--host", type=str, default="127.0.0.1")
    loadgen.add_argument("--port", type=int, required=True)
    loadgen.add_argument("--requests", type=int, default=10_000)
    loadgen.add_argument("--connections", type=int, default=4)
    loadgen.add_argument("--window", type=int, default=256,
                         help="open requests kept in flight per "
                              "connection (default 256)")
    loadgen.add_argument("--keys", type=int, default=1000,
                         help="keyspace size requests draw from")
    loadgen.add_argument("--write-fraction", type=float, default=0.5)
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--workload", type=str, default=None,
                         metavar="SPEC",
                         help="drive a seeded repro.workloads generator "
                              "instead of the inline uniform stream: "
                              "uniform, zipf[:s], tenant[:NxK], or a "
                              "WorkloadSpec JSON path")
    loadgen.add_argument("--trace-in", type=str, default=None,
                         metavar="PATH",
                         help="replay a recorded trace file over the "
                              "wire (overrides --requests/--workload)")
    loadgen.add_argument("--trace-out", type=str, default=None,
                         metavar="PATH",
                         help="record every request sent (with "
                              "client-side timestamps) as a replayable "
                              "trace file at PATH")
    loadgen.add_argument("--out", type=str, default=None, metavar="PATH",
                         help="also write the JSON stats to PATH")
    loadgen.add_argument("--trust-secret", type=str,
                         default="snoopy-dev-trust", metavar="SECRET",
                         help="trust secret matching the server's "
                              "(attested sealed channels; the default "
                              "matches serve's default)")
    loadgen.add_argument("--plaintext", action="store_true",
                         help="connect without attestation (the server "
                              "must also run --plaintext)")

    chaos = sub.add_parser(
        "chaos-net",
        help="run the deterministic network-chaos soak and report "
             "whether the chaotic run matched the fault-free oracle",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--epochs", type=int, default=12)
    chaos.add_argument("--requests-per-epoch", type=int, default=8)
    chaos.add_argument("--objects", type=int, default=96)
    chaos.add_argument("--balancers", type=int, default=2)
    chaos.add_argument("--suborams", type=int, default=2)
    chaos.add_argument("--intensity", type=int, default=1,
                       help="scheduled events per fault kind per link "
                            "(default 1)")
    chaos.add_argument("--worker-processes", action="store_true",
                       help="also run subORAMs out of process and "
                            "inject faults on the balancer-worker links")
    chaos.add_argument("--kernel", type=str, default="python",
                       choices=["python", "numpy"])
    chaos.add_argument("--timeout", type=float, default=60.0,
                       help="client/admin timeout in seconds")
    chaos.add_argument("--out", type=str, default=None, metavar="PATH",
                       help="also write the JSON report to PATH")

    tune = sub.add_parser(
        "tune",
        help="sweep configurations against a workload trace and emit "
             "the best one as JSON",
    )
    tune.add_argument("--trace", type=str, default=None, metavar="PATH",
                      help="tune against this recorded trace file "
                           "(default: record a synthetic trace from "
                           "--workload first)")
    tune.add_argument("--workload", type=str, default="zipf:1.1",
                      metavar="SPEC",
                      help="workload shorthand used when no --trace is "
                           "given: uniform, zipf[:s], tenant[:NxK], or "
                           "a WorkloadSpec JSON path (default zipf:1.1)")
    tune.add_argument("--arrival", type=str, default="poisson",
                      choices=["poisson", "bursty", "diurnal",
                               "flash_crowd"],
                      help="arrival process for the synthetic trace "
                           "(default poisson)")
    tune.add_argument("--rate", type=float, default=2000.0,
                      help="mean arrival rate for the synthetic trace "
                           "(default 2000 req/s)")
    tune.add_argument("--requests", type=int, default=400,
                      help="synthetic trace length (default 400)")
    tune.add_argument("--keys", type=int, default=512,
                      help="key-space size for --workload (default 512)")
    tune.add_argument("--write-fraction", type=float, default=0.5)
    tune.add_argument("--value-size", type=int, default=32)
    tune.add_argument("--seed", type=int, default=0)
    tune.add_argument("--balancers", type=int, default=1)
    tune.add_argument("--suborams", type=int, default=2)
    tune.add_argument("--epoch-durations", type=str, default=None,
                      metavar="LIST",
                      help="comma-separated sweep axis, e.g. 0.05,0.1,0.2")
    tune.add_argument("--backends", type=str, default=None, metavar="LIST",
                      help="comma-separated backend specs, e.g. "
                           "serial,thread:4")
    tune.add_argument("--no-measure", action="store_true",
                      help="model-based selection only; skip the replay "
                           "measurement (fully deterministic output)")
    tune.add_argument("--repeats", type=int, default=2,
                      help="replay repeats per measurement (best-of; "
                           "default 2)")
    tune.add_argument("--verify", action="store_true",
                      help="after tuning, re-replay the emitted config "
                           "and exit 1 unless the measured throughput "
                           "reproduces within 10%%")
    tune.add_argument("--trace-out", type=str, default=None, metavar="PATH",
                      help="also write the (synthetic) trace used for "
                           "tuning to PATH")
    tune.add_argument("--out", type=str, default=None, metavar="PATH",
                      help="write the best-config JSON to PATH (stdout "
                           "always gets the full report)")
    tune.add_argument("--report-out", type=str, default=None,
                      metavar="PATH",
                      help="also write the full report JSON to PATH")

    sub.add_parser("info", help="version and cost-model constants")
    return parser


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------
def cmd_plan(args) -> int:
    """``plan``: run the planner for an SLO."""
    if args.spec is not None:
        from repro.tools.config_file import load_spec

        _, slo = load_spec(args.spec)
        if args.objects is None:
            args.objects = slo.get("num_objects")
        if args.throughput is None:
            args.throughput = slo.get("min_throughput")
        args.latency = slo.get("max_latency", args.latency)
        args.object_size = slo.get("object_size", args.object_size)
        if args.budget is None:
            args.budget = slo.get("max_monthly_cost")
    if args.objects is None or args.throughput is None:
        raise SystemExit("plan requires --objects and --throughput "
                         "(directly or via --spec)")
    planner = Planner(args.objects, object_size=args.object_size)
    if args.budget is not None:
        plan = planner.plan_min_latency(args.throughput, args.budget)
        mode = f"min-latency within ${args.budget:,.0f}/month"
    else:
        plan = planner.plan(args.throughput, args.latency)
        mode = f"min-cost at <= {args.latency * 1e3:.0f} ms"
    print(f"planner ({mode}) for {args.objects:,} objects:")
    print(f"  load balancers : {plan.num_load_balancers}")
    print(f"  subORAMs       : {plan.num_suborams}")
    print(f"  monthly cost   : ${plan.monthly_cost:,.0f}")
    print(f"  predicted      : {plan.predicted_throughput:,.0f} reqs/s "
          f"@ {plan.predicted_latency * 1e3:.0f} ms mean")
    return 0


def cmd_figures(args) -> int:
    """``figures``: print modelled figure series."""
    which = args.which
    if which in ("fig3", "all"):
        print("== Fig 3: dummy overhead % (lambda=128) ==")
        rows = [
            (r, *(round(dummy_overhead_percent(r, s), 1) for s in (2, 10, 20)))
            for r in (1000, 2000, 5000, 10_000)
        ]
        print(series_table(["R", "S=2", "S=10", "S=20"], rows))
        print()
    if which in ("fig4", "all"):
        print("== Fig 4: real request capacity (1K/subORAM budget) ==")
        curves = capacity_curve(20)
        rows = [
            (s, curves[0][s - 1], curves[80][s - 1], curves[128][s - 1])
            for s in (1, 5, 10, 20)
        ]
        print(series_table(["S", "lambda=0", "lambda=80", "lambda=128"], rows))
        print()
    if which in ("fig9a", "all"):
        print(f"== Fig 9a: throughput vs machines ({args.objects:,} objects, "
              "500 ms) ==")
        series = throughput_scaling_series(
            list(range(4, 19, 2)), args.objects, [0.5]
        )
        print(
            bar_chart(
                [(f"{m} machines", x) for m, _, _, x in series[0.5]],
                unit=" reqs/s",
            )
        )
        print(f"Obladi: {obladi_throughput(args.objects):,.0f}  "
              f"Oblix: {oblix_throughput(args.objects):,.0f}")
        print()
    if which in ("fig10", "all"):
        print("== Fig 10: Snoopy-Oblix hybrid (500 ms) ==")
        rows = []
        for machines in (5, 9, 13, 17):
            balancers, suborams, x = snoopy_oblix_best_split(
                machines, args.objects, 0.5
            )
            rows.append((f"{machines} machines (L={balancers},S={suborams})", x))
        print(bar_chart(rows, unit=" reqs/s"))
        print()
    if which in ("fig11b", "all"):
        print(f"== Fig 11b: latency vs subORAMs ({args.objects:,} objects) ==")
        rows = [
            (f"S={s}", latency * 1e3)
            for s, latency in latency_vs_suborams([1, 5, 10, 15], args.objects)
        ]
        print(bar_chart(rows, unit=" ms"))
        print()
    if which in ("fig13", "all"):
        print("== Fig 13 (engine): measured epoch wall-clock per backend ==")
        series = epoch_wallclock_series(["serial", "thread"])
        rows = [(spec, seconds * 1e3) for spec, seconds in series.items()]
        print(bar_chart(rows, unit=" ms"))
        speedup = series["serial"] / max(series["thread"], 1e-9)
        print(f"thread-backend speedup over serial: {speedup:.1f}x")
        print()
    return 0


def cmd_demo(args) -> int:
    """``demo``: run a tiny in-process deployment."""
    from repro.core.faults import FaultPlan
    from repro.telemetry import Telemetry, stage_breakdown
    from repro.telemetry.sinks import JsonLinesSink, PrometheusTextSink

    rng = random.Random(args.seed)
    fault_plan = None
    if args.faults is not None:
        fault_plan = FaultPlan.generate(
            seed=args.faults,
            epochs=args.epochs,
            num_suborams=args.suborams,
        )
    telemetry = Telemetry()
    if args.metrics_out is not None:
        telemetry.add_sink(PrometheusTextSink(args.metrics_out))
    if args.trace_out is not None:
        telemetry.add_sink(JsonLinesSink(args.trace_out))
    config = SnoopyConfig(
        num_load_balancers=args.balancers,
        num_suborams=args.suborams,
        value_size=16,
        security_parameter=32,
        execution_backend=args.backend,
        max_workers=args.workers,
        kernel=args.kernel,
        epoch_max_attempts=4 if fault_plan is not None else 1,
        telemetry=telemetry,
    )
    with Snoopy(config, rng=random.Random(args.seed),
                fault_plan=fault_plan) as store:
        store.initialize({k: bytes(16) for k in range(args.objects)})
        print(f"deployment: {args.balancers} LB + {args.suborams} subORAMs, "
              f"{store.num_objects} objects "
              f"(partitions {store.partition_sizes}, "
              f"backend {store.backend.name}, kernel {config.kernel})")
        if fault_plan is not None:
            print(f"fault plan (seed {args.faults}): "
                  f"{len(fault_plan)} scheduled events over "
                  f"{args.epochs} epochs")

        requests = []
        for i in range(args.requests):
            key = rng.randrange(args.objects)
            if rng.random() < 0.5:
                requests.append(
                    Request(OpType.WRITE, key, bytes([i % 256]) * 16, seq=i)
                )
            else:
                requests.append(Request(OpType.READ, key, seq=i))
        epochs = max(1, args.epochs)
        per_epoch = (len(requests) + epochs - 1) // epochs
        tickets = []
        pipeline = None
        if args.pipelined:
            pipeline = store.start_pipeline(
                depth=args.pipeline_depth, clock=False
            )
            for start in range(0, len(requests), per_epoch):
                for request in requests[start:start + per_epoch]:
                    tickets.append(store.submit(request))
                pipeline.close_epoch()
            pipeline.flush()
            pipeline.stop()
        else:
            served = 0
            for start in range(0, len(requests), per_epoch):
                for request in requests[start:start + per_epoch]:
                    tickets.append(store.submit(request))
                served += len(store.run_epoch())
        responses = [ticket.result() for ticket in tickets]
        if not args.pipelined:
            assert served == len(responses)
        reads = sum(1 for r in requests if r.op is OpType.READ)
        print(f"{epochs} epoch(s) served {len(responses)} requests "
              f"({reads} reads, {len(requests) - reads} writes)")
        print(f"trusted counter: {store.counter.value}")
        if pipeline is not None:
            stats = pipeline.stats
            print(f"pipeline: depth {stats['depth']}, "
                  f"{stats['epochs_completed']} epochs completed, "
                  f"max {stats['max_inflight']} in flight, "
                  f"build/execute overlap "
                  f"{pipeline.overlap() * 1e3:.1f} ms")
            print("pipeline stage occupancy:")
            occupancy_rows = [
                (row["stage"], int(row["count"]), row["busy_s"] * 1e3,
                 row["span_s"] * 1e3, f"{row['occupancy']:.0%}")
                for row in pipeline.occupancy()
            ]
            print(series_table(
                ["stage", "epochs", "busy ms", "span ms", "occupancy"],
                occupancy_rows,
            ))
        if fault_plan is not None:
            print("fault_stats:")
            for name, count in sorted(store.fault_stats.items()):
                print(f"  {name:20s}: {count}")

        print("epoch-stage breakdown:")
        rows = [
            (row["stage"], row["count"], row["mean_s"] * 1e3,
             row["p95_s"] * 1e3, row["total_s"] * 1e3)
            for row in stage_breakdown(telemetry.registry)
        ]
        print(series_table(
            ["stage", "epochs", "mean ms", "p95 ms", "total ms"], rows
        ))
    telemetry.flush()
    if args.metrics_out is not None:
        print(f"metrics written to {args.metrics_out}")
    if args.trace_out is not None:
        print(f"trace written to {args.trace_out}")
    return 0


def cmd_serve(args) -> int:
    """``serve``: host a deployment behind the TCP front door.

    Emits one JSON line to stdout when listening (machine-readable:
    ``{"event": "listening", "port": ...}``) and progress to stderr;
    serves until interrupted or ``--duration`` elapses.
    """
    import asyncio
    import contextlib
    import json

    from repro.serve import SnoopyServer, WorkerCluster
    from repro.serve.secure import ServeTrust

    def log(message: str) -> None:
        print(message, file=sys.stderr, flush=True)

    trust = None
    if not args.plaintext:
        trust = ServeTrust(args.trust_secret.encode("utf-8"))
    config = SnoopyConfig(
        num_load_balancers=args.balancers,
        num_suborams=args.suborams,
        value_size=args.value_size,
        security_parameter=32,
        execution_backend=args.backend,
        kernel=args.kernel,
        epoch_max_attempts=args.retries,
    )
    with contextlib.ExitStack() as stack:
        factory = None
        if args.worker_processes:
            cluster = stack.enter_context(WorkerCluster(
                args.suborams,
                value_size=args.value_size,
                security_parameter=32,
                kernel=args.kernel,
                trust=trust,
            ))
            cluster.start()
            factory = cluster.factory
            log(f"spawned {args.suborams} subORAM worker processes "
                + ("(attested links)" if trust is not None
                   else "(plaintext links)"))
        store = stack.enter_context(Snoopy(
            config, rng=random.Random(args.seed), suboram_factory=factory,
        ))
        store.initialize(
            {k: bytes(args.value_size) for k in range(args.objects)}
        )
        log(f"deployment: {args.balancers} LB + {args.suborams} subORAMs, "
            f"{store.num_objects} objects, backend {store.backend.name}, "
            f"kernel {config.kernel}")

        async def _serve() -> None:
            server = SnoopyServer(
                store,
                args.host,
                args.port,
                clock=not args.manual_epochs,
                epoch_duration=args.epoch_duration,
                pipeline_depth=args.pipeline_depth,
                max_pending_per_connection=args.max_pending,
                attested=trust is not None,
                trust=trust,
            )
            await server.start()
            print(json.dumps({
                "event": "listening",
                "host": args.host,
                "port": server.port,
                "attested": trust is not None,
                "value_size": args.value_size,
                "num_load_balancers": args.balancers,
                "num_suborams": args.suborams,
                "epoch_duration_s": (
                    None if args.manual_epochs else args.epoch_duration
                ),
            }), flush=True)
            try:
                if args.duration is not None:
                    with contextlib.suppress(asyncio.TimeoutError):
                        await asyncio.wait_for(
                            server.serve_forever(), timeout=args.duration
                        )
                else:
                    await server.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                await server.aclose()
                log(f"served {server.stats['responses']} responses over "
                    f"{server.stats['connections']} connections, "
                    f"{server.stats['epochs']} epochs")

        try:
            asyncio.run(_serve())
        except KeyboardInterrupt:
            log("interrupted; shut down cleanly")
    return 0


def cmd_loadgen(args) -> int:
    """``loadgen``: drive a running server, print JSON stats to stdout."""
    import json

    from repro.serve import run_loadgen

    trust = None
    if not args.plaintext:
        trust = args.trust_secret.encode("utf-8")
    print(f"loadgen: {args.requests} requests over {args.connections} "
          f"connections (window {args.window}, "
          f"{'attested' if trust is not None else 'plaintext'}) against "
          f"{args.host}:{args.port}", file=sys.stderr, flush=True)
    stats = run_loadgen(
        args.host,
        args.port,
        requests=args.requests,
        connections=args.connections,
        window=args.window,
        num_keys=args.keys,
        write_fraction=args.write_fraction,
        seed=args.seed,
        trust=trust,
        workload=args.workload,
        trace_in=args.trace_in,
        trace_out=args.trace_out,
    )
    rendered = json.dumps(stats, indent=2, sort_keys=True)
    print(rendered)
    if args.out is not None:
        with open(args.out, "w") as handle:
            handle.write(rendered + "\n")
        print(f"stats written to {args.out}", file=sys.stderr)
    return 0


def cmd_chaos_net(args) -> int:
    """``chaos-net``: deterministic network-chaos soak, JSON verdict.

    Exit code 0 when the chaos-soaked attested run matched the
    fault-free oracle byte-for-byte *and* every scheduled fault fired
    exactly once; 1 otherwise.
    """
    import json

    from repro.serve.chaos import run_network_soak

    print(f"chaos-net: seed {args.seed}, {args.epochs} epochs x "
          f"{args.requests_per_epoch} requests, intensity "
          f"{args.intensity}"
          + (", worker processes" if args.worker_processes else ""),
          file=sys.stderr, flush=True)
    report = run_network_soak(
        seed=args.seed,
        epochs=args.epochs,
        requests_per_epoch=args.requests_per_epoch,
        objects=args.objects,
        num_load_balancers=args.balancers,
        num_suborams=args.suborams,
        intensity=args.intensity,
        worker_processes=args.worker_processes,
        kernel=args.kernel,
        timeout=args.timeout,
    )
    rendered = json.dumps(report, indent=2, sort_keys=True)
    print(rendered)
    if args.out is not None:
        with open(args.out, "w") as handle:
            handle.write(rendered + "\n")
        print(f"report written to {args.out}", file=sys.stderr)
    return 0 if report["matched"] else 1


def cmd_tune(args) -> int:
    """``tune``: sweep configs against a trace, emit the best as JSON.

    Follows the machine-readable convention: the full report JSON goes
    to stdout, progress to stderr.  ``--out`` captures just the
    deterministic best-config document (byte-stable for a given trace
    and sweep).  With ``--verify`` the emitted config is re-replayed
    and the exit code reflects whether the measured throughput
    reproduced within tolerance.
    """
    import dataclasses
    import json

    from repro.workloads import (
        TunerSweep,
        load_trace,
        parse_workload_spec,
        record_trace,
        dump_trace,
        tune,
        verify_reproduction,
    )

    def log(message: str) -> None:
        print(message, file=sys.stderr, flush=True)

    if args.trace is not None:
        trace = load_trace(args.trace)
        log(f"tune: loaded trace {args.trace} "
            f"({len(trace)} records, checksum "
            f"{trace.checksum()[:12]}...)")
    else:
        spec = parse_workload_spec(
            args.workload, num_keys=args.keys,
            write_fraction=args.write_fraction, value_size=args.value_size,
        )
        trace = record_trace(
            spec, args.requests, args.seed,
            arrival=args.arrival, rate=args.rate,
        )
        log(f"tune: recorded synthetic trace ({args.workload}, "
            f"{args.arrival} arrivals at {args.rate:g}/s, "
            f"{len(trace)} records)")
    if args.trace_out is not None:
        dump_trace(trace, args.trace_out)
        log(f"trace written to {args.trace_out}")

    sweep_kwargs = {}
    if args.epoch_durations is not None:
        sweep_kwargs["epoch_durations"] = tuple(
            float(x) for x in args.epoch_durations.split(",") if x
        )
    if args.backends is not None:
        sweep_kwargs["backends"] = tuple(
            x for x in args.backends.split(",") if x
        )
    sweep = dataclasses.replace(TunerSweep(), **sweep_kwargs)
    result = tune(
        trace,
        sweep=sweep,
        num_load_balancers=args.balancers,
        num_suborams=args.suborams,
        measure=not args.no_measure,
        repeats=args.repeats,
    )
    log(f"best config: {result.best.to_dict()}")
    if result.measured is not None:
        log(f"measured: {result.measured['best_rps']:,.0f} rps "
            f"(default {result.measured['default_rps']:,.0f} rps, "
            f"{result.measured['speedup_over_default']:.2f}x)")
    print(json.dumps(result.report(), indent=2, sort_keys=True))
    if args.out is not None:
        with open(args.out, "w") as handle:
            handle.write(result.best_config_json())
        log(f"best config written to {args.out}")
    if args.report_out is not None:
        with open(args.report_out, "w") as handle:
            handle.write(
                json.dumps(result.report(), indent=2, sort_keys=True) + "\n"
            )
        log(f"report written to {args.report_out}")
    if args.verify:
        if result.measured is None:
            raise SystemExit("--verify requires measurement "
                             "(drop --no-measure)")
        verdict = verify_reproduction(trace, result, repeats=args.repeats)
        log(f"verify: reported {verdict['reported_rps']:,.0f} rps, "
            f"replayed {verdict['replayed_rps']:,.0f} rps "
            f"(error {verdict['relative_error']:.1%}, digest "
            f"{'ok' if verdict['digest_matches'] else 'MISMATCH'})")
        if not (verdict["within_tolerance"] and verdict["digest_matches"]):
            return 1
    return 0


def cmd_info(_args) -> int:
    """``info``: version and cost-model constants."""
    profile = DEFAULT_PROFILE
    print(f"snoopy-repro {__version__}")
    print(f"cost-model profile (calibrated to the paper's anchors):")
    print(f"  cores                : {profile.cores}")
    print(f"  usable EPC           : {profile.epc_bytes / 1e6:.1f} MB")
    print(f"  sort comparator      : {profile.sort_compare_s * 1e9:.0f} ns")
    print(f"  scan per object      : {profile.scan_object_s * 1e9:.0f} ns + "
          f"{profile.scan_byte_resident_s * 1e9:.1f}/"
          f"{profile.scan_byte_paged_s * 1e9:.1f} ns/B (resident/paged)")
    print(f"  Obladi access        : {profile.obladi_access_s * 1e6:.0f} us")
    print(f"  Oblix block          : {profile.oblix_block_s * 1e6:.1f} us")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "plan": cmd_plan,
        "figures": cmd_figures,
        "demo": cmd_demo,
        "serve": cmd_serve,
        "loadgen": cmd_loadgen,
        "chaos-net": cmd_chaos_net,
        "tune": cmd_tune,
        "info": cmd_info,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
