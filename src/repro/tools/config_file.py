"""Deployment specifications as JSON files.

Operators describe a deployment (or planner SLOs) declaratively::

    {
        "deployment": {
            "num_load_balancers": 3,
            "num_suborams": 15,
            "value_size": 160,
            "security_parameter": 128,
            "epoch_duration": 0.2
        },
        "slo": {
            "num_objects": 2000000,
            "min_throughput": 90000,
            "max_latency": 0.5
        }
    }

``load_spec`` validates and returns (:class:`SnoopyConfig`, slo dict);
``python -m repro plan`` accepts the same fields.
"""

from __future__ import annotations

import json
import pathlib
from typing import Optional, Tuple

from repro.core.config import SnoopyConfig
from repro.errors import ConfigurationError

_DEPLOYMENT_FIELDS = {
    "num_load_balancers",
    "num_suborams",
    "value_size",
    "security_parameter",
    "epoch_duration",
    "execution_backend",
    "max_workers",
}
_SLO_FIELDS = {"num_objects", "min_throughput", "max_latency", "object_size",
               "max_monthly_cost"}


def load_spec(path) -> Tuple[Optional[SnoopyConfig], dict]:
    """Parse a deployment spec file; returns (config or None, slo dict)."""
    text = pathlib.Path(path).read_text()
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise ConfigurationError(f"{path}: top level must be an object")

    unknown = set(document) - {"deployment", "slo"}
    if unknown:
        raise ConfigurationError(f"{path}: unknown sections {sorted(unknown)}")

    config = None
    if "deployment" in document:
        section = document["deployment"]
        bad = set(section) - _DEPLOYMENT_FIELDS
        if bad:
            raise ConfigurationError(
                f"{path}: unknown deployment fields {sorted(bad)}"
            )
        config = SnoopyConfig(**section)

    slo = {}
    if "slo" in document:
        slo = dict(document["slo"])
        bad = set(slo) - _SLO_FIELDS
        if bad:
            raise ConfigurationError(f"{path}: unknown slo fields {sorted(bad)}")
    return config, slo


def dump_spec(config: SnoopyConfig, slo: Optional[dict] = None) -> str:
    """Serialize a deployment spec to JSON text."""
    document = {
        "deployment": {
            "num_load_balancers": config.num_load_balancers,
            "num_suborams": config.num_suborams,
            "value_size": config.value_size,
            "security_parameter": config.security_parameter,
            "epoch_duration": config.epoch_duration,
            "execution_backend": config.execution_backend,
        }
    }
    if config.max_workers is not None:
        document["deployment"]["max_workers"] = config.max_workers
    if slo:
        document["slo"] = slo
    return json.dumps(document, indent=2)
