"""Rendering access traces for human inspection.

Obliviousness proofs are about address sequences; seeing them makes the
property tangible.  ``heatmap`` renders an :class:`AccessTrace` as an
ASCII address-frequency map; ``diff_summary`` reports where two traces
first diverge (or certifies equality) — the exact question the real-vs-
ideal experiments ask.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.oblivious.memory import AccessTrace

_SHADES = " .:-=+*#%@"


def heatmap(trace: AccessTrace, buckets: int = 32, width: int = 50) -> str:
    """Render address-access frequency as an ASCII bar heat map.

    Addresses are grouped into ``buckets`` equal ranges; each row shows
    the access count for that range with a shaded bar.
    """
    if not trace.events:
        return "(empty trace)"
    addresses = [index for _, index in trace.events]
    top = max(addresses) + 1
    bucket_span = max(1, (top + buckets - 1) // buckets)
    counts = [0] * ((top + bucket_span - 1) // bucket_span)
    for address in addresses:
        counts[address // bucket_span] += 1
    peak = max(counts) or 1
    lines = []
    for i, count in enumerate(counts):
        bar = "#" * round(width * count / peak)
        lines.append(
            f"[{i * bucket_span:>6}-{min(top, (i + 1) * bucket_span) - 1:>6}] "
            f"{bar} {count}"
        )
    return "\n".join(lines)


def shade_strip(trace: AccessTrace, buckets: int = 64) -> str:
    """A one-line density strip (darker = more accesses) for quick diffing."""
    if not trace.events:
        return "(empty)"
    addresses = [index for _, index in trace.events]
    top = max(addresses) + 1
    bucket_span = max(1, (top + buckets - 1) // buckets)
    counts = [0] * ((top + bucket_span - 1) // bucket_span)
    for address in addresses:
        counts[address // bucket_span] += 1
    peak = max(counts) or 1
    return "".join(
        _SHADES[min(len(_SHADES) - 1, round((len(_SHADES) - 1) * c / peak))]
        for c in counts
    )


def diff_summary(a: AccessTrace, b: AccessTrace) -> Tuple[bool, str]:
    """(equal, human summary).  On divergence, reports the first index."""
    if a.events == b.events:
        return True, (
            f"traces identical: {len(a.events)} events, "
            "zero distinguishing advantage from access patterns"
        )
    if len(a.events) != len(b.events):
        return False, (
            f"traces differ in length: {len(a.events)} vs {len(b.events)}"
        )
    for i, (ea, eb) in enumerate(zip(a.events, b.events)):
        if ea != eb:
            return False, f"traces diverge at event {i}: {ea} vs {eb}"
    return False, "unreachable"
