"""Operator tooling: ASCII rendering and the command-line interface."""

from repro.tools.ascii import bar_chart, series_table

__all__ = ["bar_chart", "series_table"]
