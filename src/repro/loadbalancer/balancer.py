"""The load balancer entity: epoch queue + the oblivious pipeline (§4.3).

A ``LoadBalancer`` owns no dynamic request-routing state — only the
deployment sharding key — so any number of them can run independently and
in parallel.  Each epoch it turns its queued requests into one fixed-size
batch per subORAM, hands them to the subORAMs, and matches the responses
back to clients.
"""

from __future__ import annotations

from typing import Callable, List

from repro.loadbalancer.batching import generate_batches
from repro.loadbalancer.matching import match_responses
from repro.oblivious.kernels import resolve_kernel
from repro.types import BatchEntry, Request, Response
from repro.utils.validation import require_positive


class LoadBalancer:
    """One stateless (across epochs) Snoopy load balancer.

    Args:
        balancer_id: index among the deployment's load balancers.
        num_suborams: number of data partitions.
        sharding_key: the deployment-wide keyed-hash key (same on every
            load balancer; fixed across epochs, §4.1).
        security_parameter: lambda for batch sizing.
        kernel: oblivious-kernel selector ("python" or "numpy") for the
            batching/matching sorts and compactions (see
            :mod:`repro.oblivious.kernels`).
    """

    def __init__(
        self,
        balancer_id: int,
        num_suborams: int,
        sharding_key: bytes,
        security_parameter: int = 128,
        kernel=None,
    ):
        require_positive(num_suborams, "num_suborams")
        self.balancer_id = balancer_id
        self.num_suborams = num_suborams
        self.sharding_key = sharding_key
        self.security_parameter = security_parameter
        self.kernel = resolve_kernel(kernel)
        self._queue: List[Request] = []
        self.epochs_processed = 0

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> int:
        """Queue a client request; returns its arrival index in the epoch."""
        self._queue.append(request)
        return len(self._queue) - 1

    @property
    def pending(self) -> int:
        """Requests queued for the current epoch."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Epoch processing, as three separable pipeline stages.  The epoch
    # driver (repro.core.epoch) runs the stages of different balancers
    # concurrently; run_epoch below chains them serially for callers that
    # own their own delivery loop.
    # ------------------------------------------------------------------
    def drain(self) -> List[Request]:
        """Take this epoch's queued requests and bump the epoch counter."""
        requests, self._queue = self._queue, []
        self.epochs_processed += 1
        return requests

    def requeue(self, requests: List[Request]) -> None:
        """Undo a :meth:`drain` after a failed epoch attempt.

        The requests go back to the *front* of the queue (ahead of any
        newly submitted ones) in their original arrival order, and the
        epoch counter is rolled back — so a retried epoch is
        indistinguishable from one that never failed.
        """
        self._queue = list(requests) + self._queue
        self.epochs_processed -= 1

    def build_batches(
        self, requests: List[Request], permissions=None
    ) -> tuple:
        """Stage ➊: one fixed-size batch per subORAM from ``requests``.

        Returns ``(batches, originals, batch_size)`` — see
        :func:`~repro.loadbalancer.batching.generate_batches`.
        """
        return generate_batches(
            requests,
            self.num_suborams,
            self.sharding_key,
            self.security_parameter,
            permissions=permissions,
            kernel=self.kernel,
        )

    def match(
        self, originals: List[BatchEntry], responses: List[BatchEntry]
    ) -> List[Response]:
        """Stage ➌: obliviously map subORAM responses back to clients."""
        return match_responses(originals, responses, kernel=self.kernel)

    def run_epoch(
        self,
        send_batch: Callable[[int, List[BatchEntry]], List[BatchEntry]],
        permissions=None,
    ) -> List[Response]:
        """Process one epoch serially (build ➊, deliver ➋, match ➌).

        Args:
            send_batch: callable ``(suboram_id, batch) -> responses``
                implementing delivery to the subORAMs (direct call in the
                in-process deployment, an encrypted channel in a networked
                one).
            permissions: optional §D access-control bits,
                ``{(client_id, seq): 0/1}``.

        Returns:
            Responses for every queued request, in arrival order.
        """
        requests = self.drain()
        if not requests:
            return []
        batches, originals, _ = self.build_batches(
            requests, permissions=permissions
        )
        responses: List[BatchEntry] = []
        for suboram_id, batch in enumerate(batches):
            responses.extend(send_batch(suboram_id, batch))
        return self.match(originals, responses)
