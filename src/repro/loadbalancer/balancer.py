"""The load balancer entity: epoch queue + the oblivious pipeline (§4.3).

A ``LoadBalancer`` owns no dynamic request-routing state — only the
deployment sharding key — so any number of them can run independently and
in parallel.  Each epoch it turns its queued requests into one fixed-size
batch per subORAM, hands them to the subORAMs, and matches the responses
back to clients.
"""

from __future__ import annotations

from typing import Callable, List

from repro.loadbalancer.batching import generate_batches
from repro.loadbalancer.matching import match_responses
from repro.types import BatchEntry, Request, Response
from repro.utils.validation import require_positive


class LoadBalancer:
    """One stateless (across epochs) Snoopy load balancer.

    Args:
        balancer_id: index among the deployment's load balancers.
        num_suborams: number of data partitions.
        sharding_key: the deployment-wide keyed-hash key (same on every
            load balancer; fixed across epochs, §4.1).
        security_parameter: lambda for batch sizing.
    """

    def __init__(
        self,
        balancer_id: int,
        num_suborams: int,
        sharding_key: bytes,
        security_parameter: int = 128,
    ):
        require_positive(num_suborams, "num_suborams")
        self.balancer_id = balancer_id
        self.num_suborams = num_suborams
        self.sharding_key = sharding_key
        self.security_parameter = security_parameter
        self._queue: List[Request] = []
        self.epochs_processed = 0

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> int:
        """Queue a client request; returns its arrival index in the epoch."""
        self._queue.append(request)
        return len(self._queue) - 1

    @property
    def pending(self) -> int:
        """Requests queued for the current epoch."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Epoch processing
    # ------------------------------------------------------------------
    def run_epoch(
        self,
        send_batch: Callable[[int, List[BatchEntry]], List[BatchEntry]],
        permissions=None,
    ) -> List[Response]:
        """Process one epoch.

        Args:
            send_batch: callable ``(suboram_id, batch) -> responses``
                implementing delivery to the subORAMs (direct call in the
                in-process deployment, an encrypted channel in a networked
                one).
            permissions: optional §D access-control bits,
                ``{(client_id, seq): 0/1}``.

        Returns:
            Responses for every queued request, in arrival order.
        """
        requests, self._queue = self._queue, []
        self.epochs_processed += 1
        if not requests:
            return []

        batches, originals, _ = generate_batches(
            requests,
            self.num_suborams,
            self.sharding_key,
            self.security_parameter,
            permissions=permissions,
        )
        responses: List[BatchEntry] = []
        for suboram_id, batch in enumerate(batches):
            responses.extend(send_batch(suboram_id, batch))
        return match_responses(originals, responses)
