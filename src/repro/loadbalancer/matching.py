"""Oblivious response matching (Figure 6 / Figure 26).

➊ merge the subORAM responses (tag 0) with the original client requests
  (tag 1);
➋ obliviously sort by (key, tag) so each response immediately precedes
  every client request for its key;
➌ a fixed scan propagates each response's value to the following
  request(s) — duplicates all receive the value, dummy responses have no
  followers;
➍ oblivious compaction keeps only the client requests, now carrying
  response values.

A final (non-secret-dependent) sort restores client arrival order so the
caller can zip responses with its request list.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.oblivious.kernels import resolve_kernel
from repro.oblivious.primitives import and_bit, eq_bit, o_select
from repro.telemetry import resolve_telemetry
from repro.telemetry.kernelbridge import TimedKernelTrace, flush_kernel_trace
from repro.types import BatchEntry, Response


def match_responses(
    originals: Sequence[BatchEntry],
    responses: Sequence[BatchEntry],
    mem_factory=None,
    kernel=None,
    telemetry=None,
) -> List[Response]:
    """Map subORAM responses back onto the epoch's client requests.

    Args:
        originals: the client-request entries from ``generate_batches``
            (``tag`` holds arrival order).
        responses: every entry returned by every subORAM (including dummy
            responses).
        kernel: oblivious-kernel selector for the sort and compaction
            (see :mod:`repro.oblivious.kernels`); ``mem_factory`` forces
            the python kernel.
        telemetry: optional :class:`~repro.telemetry.Telemetry` handle;
            records the matching sort/compaction per-level timings
            through the kernel trace seam.

    Returns:
        One :class:`Response` per original request, in arrival order,
        carrying the object value prior to this epoch's writes.
    """
    telemetry = resolve_telemetry(telemetry)
    kernel_trace = TimedKernelTrace() if telemetry.enabled else None
    # ➊ Merge: responses get tag bit 0, requests tag bit 1.  We stash the
    # arrival order separately so sorting can't disturb it.
    merged: List[list] = []
    for entry in responses:
        merged.append([entry.key, 0, entry.value, entry, 0])
    for entry in originals:
        merged.append([entry.key, 1, None, entry, entry.tag])

    # ➋ Sort by object id, responses before requests.
    kern = resolve_kernel(kernel, mem_factory)
    merged = kern.sort(
        merged,
        columns=[
            [r[0] for r in merged],
            [r[1] for r in merged],
            [r[4] for r in merged],
        ],
        mem_factory=mem_factory,
        trace=kernel_trace,
    )

    # ➌ Propagate response values forward (fixed scan).
    prev_key = None
    prev_value = None
    for record in merged:
        is_response = eq_bit(record[1], 0)
        prev_key = o_select(is_response, prev_key, record[0])
        prev_value = o_select(is_response, prev_value, record[2])
        same_key = int(record[0] == prev_key)
        take = and_bit(eq_bit(record[1], 1), same_key)
        record[2] = o_select(take, record[2], prev_value)

    # ➍ Keep only client requests.
    flags = [record[1] for record in merged]
    kept = kern.compact(
        merged, flags, mem_factory=mem_factory, trace=kernel_trace
    )
    if kernel_trace is not None:
        flush_kernel_trace(telemetry.registry, kernel_trace, kern.name)
    assert len(kept) == len(originals)

    # Access control (§D): a denied request receives a null value; the
    # masking happens here, after the oblivious pipeline, per *original*
    # request (duplicates may have different privileges).
    results = [
        Response(
            key=record[3].key,
            value=o_select(record[3].permitted, None, record[2]),
            client_id=record[3].client_id,
            seq=record[3].seq,
            ok=bool(record[3].permitted),
        )
        for record in kept
    ]
    # Restore arrival order (public permutation: depends only on arrival
    # tags, which the attacker already observes).
    order = {id(entry): i for i, entry in enumerate(originals)}
    results_with_pos = sorted(
        zip(results, kept), key=lambda pair: order[id(pair[1][3])]
    )
    return [response for response, _ in results_with_pos]
