"""The oblivious load balancer (§4).

Per epoch, a load balancer:

1. assigns each client request to the subORAM owning its key (keyed hash,
   fixed across epochs),
2. deduplicates requests per key with a last-write-wins policy and pads
   every subORAM's batch to exactly ``f(R, S)`` entries with dummies —
   all through oblivious sort / fixed scans / oblivious compaction
   (Figure 5, Figure 25),
3. after the subORAMs reply, obliviously matches responses back to the
   original requests, propagating values to duplicates and discarding
   dummy responses (Figure 6, Figure 26).

Load balancers are stateless across epochs (besides the sharding key), so
adding more of them requires no coordination (§4.3).
"""

from repro.loadbalancer.batching import generate_batches
from repro.loadbalancer.matching import match_responses
from repro.loadbalancer.balancer import LoadBalancer

__all__ = ["LoadBalancer", "generate_batches", "match_responses"]
