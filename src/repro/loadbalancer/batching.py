"""Oblivious batch generation (Figure 5 / Figure 25).

The pipeline, all of whose access patterns depend only on the public pair
``(R, S)`` and the security parameter:

➊ a fixed scan assigns each request its subORAM via the keyed hash;
➋ exactly ``B = f(R, S)`` dummy requests per subORAM are appended
  (dummy ids come from a reserved id space so they never collide with
  client keys or with each other);
➌ one oblivious sort groups entries by subORAM, placing real requests
  before dummies and duplicate keys adjacently, ordered so the
  *last-write-wins* representative of each duplicate group sorts last;
➍ a fixed scan marks, per subORAM, the representative of each distinct
  key and enough dummies to reach exactly ``B`` kept entries, and
  oblivious compaction drops the rest.

The output is one ``B``-sized batch per subORAM, so batch sizes leak
nothing; a request is dropped only in the cryptographically negligible
overflow event, which raises :class:`~repro.errors.BatchOverflowError`
instead of silently retrying (a retry would leak, §4.1).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.analysis.balls_bins import batch_size
from repro.crypto.prf import Prf
from repro.errors import BatchOverflowError
from repro.oblivious.kernels import resolve_kernel
from repro.oblivious.primitives import and_bit, lt_bit, not_bit, o_select
from repro.telemetry import resolve_telemetry
from repro.telemetry.kernelbridge import TimedKernelTrace, flush_kernel_trace
from repro.types import BatchEntry, OpType, Request

# Reserved id space for load-balancer dummy requests: far below any
# plausible client key and disjoint from hash-table spill fillers (-2^62-).
_DUMMY_ID_BASE = 2**61


def dummy_key(suboram: int, index: int) -> int:
    """Unique dummy id for the ``index``-th dummy of a subORAM's batch."""
    return -(_DUMMY_ID_BASE + suboram * 2**20 + index)


def generate_batches(
    requests: Sequence[Request],
    num_suborams: int,
    sharding_key: bytes,
    security_parameter: int = 128,
    mem_factory=None,
    permissions=None,
    kernel=None,
    telemetry=None,
) -> Tuple[List[List[BatchEntry]], List[BatchEntry], int]:
    """Build one fixed-size batch per subORAM from an epoch's requests.

    Args (beyond the obvious):
        permissions: optional ``{(client_id, seq): 0/1}`` access-control
            bits from the §D recursive ACL lookup; missing pairs default
            to permitted.
        kernel: oblivious-kernel selector for the sort and compaction
            (see :mod:`repro.oblivious.kernels`); ``mem_factory`` forces
            the python kernel.
        telemetry: optional :class:`~repro.telemetry.Telemetry` handle;
            times the pipeline steps into
            ``snoopy_lb_stage_seconds{stage=route|pad|sort|dedupe}`` and
            records per-level kernel timings through the trace seam.

    Returns:
        (batches, originals, batch_size) where ``batches[s]`` is subORAM
        ``s``'s batch of exactly ``B`` entries, ``originals`` preserves the
        client requests (with arrival order in ``tag``) for response
        matching, and ``batch_size`` is ``B = f(R, S)``.

    Raises:
        BatchOverflowError: more than ``B`` distinct keys hashed to one
            subORAM (probability <= 2^-lambda by Theorem 3).
    """
    prf = Prf(sharding_key)
    kern = resolve_kernel(kernel, mem_factory)
    telemetry = resolve_telemetry(telemetry)
    kernel_trace = TimedKernelTrace() if telemetry.enabled else None
    num_requests = len(requests)
    size = batch_size(num_requests, num_suborams, security_parameter)

    # ➊ Assign subORAMs (fixed scan over the request list).
    with telemetry.time("snoopy_lb_stage_seconds", stage="route"):
        originals: List[BatchEntry] = []
        for arrival, request in enumerate(requests):
            entry = BatchEntry.from_request(request)
            entry.suboram = prf.range(request.key, num_suborams)
            entry.tag = arrival  # remember arrival order: last-write-wins
            if permissions is not None:
                entry.permitted = int(
                    permissions.get((request.client_id, request.seq), 1)
                )
            originals.append(entry)

    # ➋ Append B dummies per subORAM.
    with telemetry.time("snoopy_lb_stage_seconds", stage="pad"):
        working = [entry.copy() for entry in originals]
        for suboram in range(num_suborams):
            for index in range(size):
                working.append(
                    BatchEntry(
                        op=OpType.READ,
                        key=dummy_key(suboram, index),
                        suboram=suboram,
                        is_dummy=True,
                    )
                )

    # ➌ Oblivious sort: group by subORAM; reals before dummies; duplicate
    # keys adjacent with the last-write-wins representative sorting last.
    with telemetry.time("snoopy_lb_stage_seconds", stage="sort"):
        working = kern.sort(
            working,
            columns=[
                [e.suboram for e in working],
                [int(e.is_dummy) for e in working],
                [e.key for e in working],
                [int(e.op is OpType.WRITE) for e in working],
                [e.tag for e in working],
            ],
            mem_factory=mem_factory,
            trace=kernel_trace,
        )

    # ➍ Fixed scan marking keeps; compact.  An entry is the representative
    # of its key iff the next entry differs in (suboram, is_dummy, key).
    with telemetry.time("snoopy_lb_stage_seconds", stage="dedupe"):
        keep_flags: List[int] = []
        kept_in_suboram = 0
        current_suboram = -1
        dropped_real = 0
        for i, entry in enumerate(working):
            new_suboram = int(entry.suboram != current_suboram)
            kept_in_suboram = o_select(new_suboram, kept_in_suboram, 0)
            current_suboram = entry.suboram

            if i + 1 < len(working):
                nxt = working[i + 1]
                is_last_of_key = not_bit(
                    and_bit(
                        int(nxt.suboram == entry.suboram),
                        and_bit(
                            int(nxt.is_dummy == entry.is_dummy),
                            int(nxt.key == entry.key),
                        ),
                    )
                )
            else:
                is_last_of_key = 1

            keep = and_bit(is_last_of_key, lt_bit(kept_in_suboram, size))
            keep_flags.append(keep)
            kept_in_suboram += keep
            dropped_real += and_bit(
                is_last_of_key,
                and_bit(not_bit(keep), not_bit(int(entry.is_dummy))),
            )

        if dropped_real:
            raise BatchOverflowError(
                f"{dropped_real} distinct request(s) exceeded batch size "
                f"{size}; probability <= 2^-{security_parameter} under "
                "Theorem 3"
            )

        compacted = kern.compact(
            working, keep_flags, mem_factory=mem_factory, trace=kernel_trace
        )
    if kernel_trace is not None:
        flush_kernel_trace(telemetry.registry, kernel_trace, kern.name)
    assert len(compacted) == num_suborams * size

    batches = [
        compacted[s * size : (s + 1) * size] for s in range(num_suborams)
    ]
    return batches, originals, size
