"""Oblivious initialization (Figure 23): sharding the object store.

``Snoopy.initialize`` must place each object into the subORAM its keyed
hash names — without the placement process itself leaking the mapping
(the trace of building partitions is visible to the cloud just like any
other enclave execution).  Figure 23's algorithm:

1. a fixed scan tags every object with ``t = H_k(idx)``;
2. one oblivious sort orders objects by tag — after which each partition
   is a contiguous run;
3. a fixed scan finds the run boundaries ``y_0..y_{S-1}``;
4. partition ``s`` is the slice ``O[y_{s-1} : y_s]``.

The boundary *positions* (partition sizes) are revealed — they are public
information (the keyed hash of the static key set; equivalently the
partition sizes the server observes anyway when storing the shards).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.crypto.prf import Prf
from repro.oblivious.sort import bitonic_sort


def oblivious_shard(
    objects: Dict[int, bytes],
    num_suborams: int,
    sharding_key: bytes,
    mem_factory=None,
) -> List[Dict[int, bytes]]:
    """Partition ``objects`` per Figure 23; returns one dict per subORAM.

    Args:
        objects: the full object store, ``{key: value}``.
        num_suborams: S.
        sharding_key: the deployment keyed-hash key.
        mem_factory: optional traced-memory wrapper for the oblivious sort
            (security tests).
    """
    prf = Prf(sharding_key)

    # ➊ Fixed scan: attach the tag t = H_k(idx) to each object.
    tagged: List[Tuple[int, int, bytes]] = [
        (prf.range(key, num_suborams), key, value)
        for key, value in objects.items()
    ]

    # ➋ Oblivious sort by tag (ties broken by key for determinism).
    ordered = bitonic_sort(
        tagged, key=lambda record: (record[0], record[1]),
        mem_factory=mem_factory,
    )

    # ➌ Fixed scan locating partition boundaries.
    partitions: List[Dict[int, bytes]] = [{} for _ in range(num_suborams)]
    for tag, key, value in ordered:
        partitions[tag][key] = value
    return partitions


def partition_sizes(
    objects: Sequence[int], num_suborams: int, sharding_key: bytes
) -> List[int]:
    """The public partition-size vector for a key set."""
    prf = Prf(sharding_key)
    sizes = [0] * num_suborams
    for key in objects:
        sizes[prf.range(key, num_suborams)] += 1
    return sizes
